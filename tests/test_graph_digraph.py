"""Unit tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty(self):
        g = DiGraph(3)
        assert g.n == 3 and g.m == 0

    def test_duplicates_dropped(self):
        g = DiGraph(3, [(0, 1), (0, 1), (1, 2)])
        assert g.m == 2

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiGraph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiGraph(2, [(0, 5)])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiGraph(-1)

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiGraph(3, np.array([[0, 1, 2]]))


class TestQueries:
    def test_successors_sorted(self):
        g = DiGraph(4, [(0, 3), (0, 1), (0, 2)])
        assert list(g.successors(0)) == [1, 2, 3]
        assert list(g.successors(1)) == []

    def test_degrees(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert list(g.out_degrees()) == [2, 1, 0]
        assert list(g.in_degrees()) == [0, 1, 2]
        assert g.out_degree(0) == 2

    def test_has_edge(self):
        g = DiGraph(3, [(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_reversed(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        r = g.reversed()
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert r.m == 2

    def test_reversed_empty(self):
        assert DiGraph(3).reversed().m == 0


class TestReachability:
    def test_chain(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.reachable_from(0).all()
        assert list(g.reachable_from(2)) == [False, False, True, True]

    def test_cycle(self):
        g = DiGraph(3, [(0, 1), (1, 2), (2, 0)])
        for v in range(3):
            assert g.reachable_from(v).all()

    def test_to_networkx_roundtrip(self):
        g = DiGraph(3, [(0, 1), (2, 1)])
        nxg = g.to_networkx()
        assert set(nxg.edges()) == {(0, 1), (2, 1)}
        assert nxg.number_of_nodes() == 3
