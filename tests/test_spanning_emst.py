"""Unit tests for repro.spanning.emst (including the networkx oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidPointSetError
from repro.experiments.workloads import hexagonal_lattice
from repro.geometry.points import PointSet
from repro.spanning.emst import (
    SpanningTree,
    euclidean_mst,
    kruskal_on_edges,
    prim_mst_edges,
)


def nx_mst_weight(coords: np.ndarray) -> float:
    g = nx.Graph()
    n = coords.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight=float(np.hypot(*(coords[i] - coords[j]))))
    t = nx.minimum_spanning_tree(g)
    return sum(d["weight"] for _, _, d in t.edges(data=True))


class TestSpanningTreeStructure:
    def test_edge_count_enforced(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0]])
        with pytest.raises(InvalidPointSetError):
            SpanningTree(ps, np.array([[0, 1]]))

    def test_cycle_rejected(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0], [3, 0]])
        with pytest.raises(InvalidPointSetError):
            SpanningTree(ps, np.array([[0, 1], [1, 2], [0, 2]]))

    def test_disconnected_rejected(self):
        ps = PointSet([[0, 0], [1, 0], [5, 0], [6, 0]])
        with pytest.raises(InvalidPointSetError):
            SpanningTree(ps, np.array([[0, 1], [2, 3], [2, 3]]))

    def test_lengths_computed(self):
        ps = PointSet([[0, 0], [3, 4]])
        t = SpanningTree(ps, np.array([[0, 1]]))
        assert t.lengths[0] == pytest.approx(5.0)
        assert t.lmax == pytest.approx(5.0)

    def test_adjacency_and_degrees(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0]])
        t = SpanningTree(ps, np.array([[0, 1], [1, 2]]))
        assert t.adjacency()[1] == [0, 2]
        assert list(t.degrees()) == [1, 2, 1]
        assert t.max_degree() == 2
        assert set(t.leaves()) == {0, 2}

    def test_replace_edge(self):
        ps = PointSet([[0, 0], [1, 0], [1, 1]])
        t = SpanningTree(ps, np.array([[0, 1], [1, 2]]))
        t2 = t.replace_edge((1, 2), (0, 2))
        assert (0, 2) in t2.edge_set()
        assert (1, 2) not in t2.edge_set()
        with pytest.raises(KeyError):
            t.replace_edge((0, 2), (1, 2))

    def test_single_point(self):
        t = euclidean_mst(PointSet([[0.0, 0.0]]))
        assert t.edges.shape == (0, 2)
        assert t.lmax == 0.0


class TestEuclideanMst:
    @pytest.mark.parametrize("n", [2, 3, 5, 20, 60])
    def test_weight_matches_networkx(self, n, rng):
        coords = rng.random((n, 2)) * 10
        tree = euclidean_mst(PointSet(coords))
        assert tree.total_weight == pytest.approx(nx_mst_weight(coords), rel=1e-9)

    def test_collinear_points_fall_back(self):
        coords = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        tree = euclidean_mst(PointSet(coords))
        assert tree.total_weight == pytest.approx(9.0)
        assert tree.max_degree() == 2

    def test_max_degree_five_generic(self, rng):
        for _ in range(5):
            coords = rng.random((80, 2))
            assert euclidean_mst(PointSet(coords)).max_degree() <= 5

    def test_hexagonal_ties_repaired(self):
        tree = euclidean_mst(PointSet(hexagonal_lattice(2)))
        assert tree.max_degree() <= 5
        # Weight must equal the unrepaired MST weight (ties swap at equal length).
        raw = euclidean_mst(PointSet(hexagonal_lattice(2)), max_degree=None)
        assert tree.total_weight == pytest.approx(raw.total_weight, rel=1e-9)

    def test_prim_matches_kruskal(self, rng):
        coords = rng.random((30, 2)) * 4
        prim_edges = prim_mst_edges(coords)
        ps = PointSet(coords)
        t_prim = SpanningTree(ps, prim_edges)
        t_delaunay = euclidean_mst(ps, max_degree=None)
        assert t_prim.total_weight == pytest.approx(t_delaunay.total_weight, rel=1e-9)

    def test_accepts_raw_arrays(self, rng):
        tree = euclidean_mst(rng.random((12, 2)))
        assert tree.n == 12


class TestKruskalOnEdges:
    def test_disconnected_candidates_raise(self):
        with pytest.raises(InvalidPointSetError):
            kruskal_on_edges(4, np.array([[0, 1], [2, 3]]), np.array([1.0, 1.0]))

    def test_deterministic_tie_breaking(self):
        cand = np.array([[0, 1], [1, 2], [0, 2]])
        w = np.array([1.0, 1.0, 1.0])
        e1 = kruskal_on_edges(3, cand, w)
        e2 = kruskal_on_edges(3, cand, w)
        assert np.array_equal(e1, e2)


class TestDegenerateDelaunayFallback:
    def test_near_collinear_qhull_gap_falls_back_to_prim(self):
        # Hypothesis-discovered: qhull triangulates this almost-collinear set
        # but the resulting edges miss a point, so Delaunay-restricted
        # Kruskal cannot span; euclidean_mst must fall back to dense Prim.
        coords = [
            (0.0, 0.0),
            (0.0, 1.0),
            (5.960464477539063e-08, 0.0),
            (1e-07, 0.0),
        ]
        tree = euclidean_mst(PointSet(coords))
        assert tree.n == 4
        assert tree.max_degree() <= 5


class TestSpanningTreeCaches:
    def test_degrees_cached_and_reused(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0], [2, 1]])
        tree = SpanningTree(ps, [[0, 1], [1, 2], [2, 3]])
        d1 = tree.degrees()
        assert d1 is tree.degrees()  # cached object, not recomputed
        assert list(d1) == [1, 2, 2, 1]
        assert list(tree.leaves()) == [0, 3]
        assert tree.max_degree() == 2

    def test_replace_edge_vectorized_semantics(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0], [2, 1]])
        tree = SpanningTree(ps, [[0, 1], [1, 2], [2, 3]])
        # Accepts either endpoint order for the old edge.
        swapped = tree.replace_edge((2, 1), (0, 2))
        assert {(0, 1), (0, 2), (2, 3)} == swapped.edge_set()
        # Fresh caches on the new tree.
        assert list(swapped.degrees()) == [2, 1, 2, 1]
        with pytest.raises(KeyError):
            tree.replace_edge((0, 3), (0, 2))
