"""Unit tests for repro.antenna.model."""

import pytest

from repro.antenna.model import AntennaAssignment
from repro.errors import InvalidParameterError
from repro.geometry.sectors import Sector


class TestConstruction:
    def test_empty(self):
        a = AntennaAssignment(3)
        assert len(a) == 3
        assert a.total_antennae() == 0

    def test_from_sector_lists(self):
        a = AntennaAssignment(2, [[Sector(0, 1)], [Sector(1, 0.5), Sector(2, 0.25)]])
        assert list(a.counts()) == [1, 2]

    def test_wrong_list_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            AntennaAssignment(2, [[Sector(0, 1)]])

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            AntennaAssignment(-1)

    def test_add_bounds_checked(self):
        a = AntennaAssignment(2)
        with pytest.raises(InvalidParameterError):
            a.add(5, Sector(0, 1))

    def test_non_sector_rejected(self):
        a = AntennaAssignment(2)
        with pytest.raises(InvalidParameterError):
            a.add(0, "not a sector")  # type: ignore[arg-type]


class TestAggregates:
    def make(self) -> AntennaAssignment:
        a = AntennaAssignment(3)
        a.add(0, Sector(0.0, 1.0, 2.0))
        a.add(0, Sector(1.0, 0.5, 3.0))
        a.add(2, Sector(2.0, 0.0, 1.0))
        return a

    def test_counts(self):
        assert list(self.make().counts()) == [2, 0, 1]

    def test_spread_sums(self):
        sums = self.make().spread_sums()
        assert sums[0] == pytest.approx(1.5)
        assert sums[1] == 0.0

    def test_max_spread_sum(self):
        assert self.make().max_spread_sum() == pytest.approx(1.5)

    def test_max_radius(self):
        assert self.make().max_radius() == pytest.approx(3.0)

    def test_iteration_yields_pairs(self):
        pairs = list(self.make())
        assert len(pairs) == 3
        assert all(isinstance(s, Sector) for _, s in pairs)

    def test_getitem_copies(self):
        a = self.make()
        lst = a[0]
        lst.append(Sector(0, 0))
        assert len(a[0]) == 2

    def test_extend(self):
        a = AntennaAssignment(1)
        a.extend(0, [Sector(0, 0), Sector(1, 0)])
        assert a.total_antennae() == 2


class TestTransforms:
    def test_with_uniform_radius(self):
        a = AntennaAssignment(2)
        a.add(0, Sector(0.0, 1.0, 5.0))
        a.add(1, Sector(1.0, 2.0, 7.0))
        b = a.with_uniform_radius(3.0)
        assert all(s.radius == 3.0 for _, s in b)
        # original untouched
        assert a.max_radius() == 7.0

    def test_flattened(self):
        a = AntennaAssignment(2)
        a.add(1, Sector(0.5, 1.0, 2.0))
        a.add(0, Sector(0.25, 0.0, 1.0))
        idx, start, spread, radius = a.flattened()
        assert list(idx) == [0, 1]
        assert start[1] == pytest.approx(0.5)
        assert spread[1] == pytest.approx(1.0)
        assert radius[0] == pytest.approx(1.0)
