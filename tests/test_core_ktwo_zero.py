"""Unit tests for repro.core.ktwo_zero (LCRS construction)."""


from repro.core.ktwo_zero import orient_k2_zero_spread
from repro.experiments.workloads import spider_points
from repro.geometry.points import PointSet
from tests.conftest import assert_result_valid


class TestK2ZeroSpread:
    def test_valid_on_uniform(self, uniform50):
        res = orient_k2_zero_spread(uniform50)
        assert res.range_bound == 2.0
        assert_result_valid(res)

    def test_range_within_two_lmax(self, clustered60):
        res = orient_k2_zero_spread(clustered60)
        assert res.realized_range_normalized() <= 2.0 + 1e-9

    def test_zero_spread_everywhere(self, uniform50):
        res = orient_k2_zero_spread(uniform50)
        assert res.max_spread_sum() == 0.0

    def test_at_most_two_antennas(self, clustered60):
        res = orient_k2_zero_spread(clustered60)
        assert int(res.assignment.counts().max()) <= 2

    def test_spider_works_where_k1_cannot(self):
        # The spider defeats k=1 range-2 tours; k=2 handles it within 2 lmax.
        ps = PointSet(spider_points(3, 2))
        res = orient_k2_zero_spread(ps)
        assert res.realized_range_normalized() <= 2.0 + 1e-9
        assert_result_valid(res)

    def test_sibling_edge_stat(self, clustered60):
        res = orient_k2_zero_spread(clustered60)
        assert res.stats["max_sibling_edge_normalized"] <= 2.0 + 1e-9

    def test_small_instances(self):
        assert_result_valid(orient_k2_zero_spread(PointSet([[0, 0], [1, 0]])))
        res = orient_k2_zero_spread(PointSet([[0.0, 0.0]]))
        assert res.intended_edges.size == 0

    def test_custom_root(self, uniform50, tree50):
        res = orient_k2_zero_spread(uniform50, tree=tree50, root=3)
        assert_result_valid(res)
