"""Tests for the planning service: jobs API, workers, coordination files.

Determinism conventions match the store tests: idempotency and resume
claims are validated with the process-wide kernel instrument counters
(zero re-execution means zero coverage/critical calls), multi-worker
claims are validated by bit-identical merged tables against a serial
reference — never by wall-clock.  The 2-worker race runs the drain loop
on two *threads* sharing one directory: the claim files are
``O_CREAT | O_EXCL`` at the filesystem level, so threads exercise exactly
the atomicity that separates two processes.
"""

import json
import math
import threading

import pytest

from repro.api import FrontierRequest, PlanRequest, submit
from repro.engine import Scenario, Shard
from repro.errors import PlanCancelled
from repro.kernels.instrument import recording
from repro.service import (
    JobManager,
    ServiceClient,
    create_app,
    drain_plan,
    submit_payload,
)
from repro.store import (
    RunStore,
    StoreError,
    claim_shard,
    enqueue,
    is_shard_dead,
    mark_shard_dead,
    plan_progress,
    queued_plans,
    release_shard,
)


def sweep_request(seeds=4, tag="svc", critical=False) -> PlanRequest:
    return PlanRequest.sweep(
        workloads=["uniform"], sizes=[16], seeds=seeds, ks=[1, 2],
        phis=[math.pi], tag=tag, compute_critical=critical,
    )


def frontier_request(tag="svc-frontier") -> FrontierRequest:
    return FrontierRequest(
        scenarios=(Scenario("uniform", 16, seeds=2, tag=tag),),
        ks=(1,), metric="critical_range", target=None,
        phi_lo=math.pi, phi_hi=2 * math.pi, tol=0.1,
    )


@pytest.fixture
def store(tmp_path) -> RunStore:
    s = RunStore(tmp_path / "run")
    yield s
    s.close()


@pytest.fixture
def client(store) -> ServiceClient:
    return ServiceClient(create_app(store))


def wait_done(client: ServiceClient, job: str, timeout: float = 60.0) -> dict:
    client.app.manager.join(job, timeout=timeout)
    status = client.get(f"/plans/{job}").raise_for_status().json
    assert status["state"] == "done", status
    return status


class TestSubmitLifecycle:
    def test_submit_poll_fetch(self, client):
        request = sweep_request()
        response = client.post(
            "/plans", json_body=submit_payload(request)
        ).raise_for_status()
        job = response.json["id"]
        assert job == request.fingerprint()
        assert response.json["attached"] is False

        wait_done(client, job)
        progress = client.get(f"/plans/{job}/progress").raise_for_status().json
        assert progress["done_instances"] == progress["total_instances"] == 4
        assert all(s["done"] == s["expected"] for s in progress["shards"])

        result = client.get(f"/plans/{job}/result").raise_for_status().json
        assert result["instances"] == 4
        assert len(result["rows"]) == 2  # one per grid cell

    def test_double_submit_idempotent_zero_kernels(self, client):
        """The acceptance criterion: same id, zero kernel work second time."""
        request = sweep_request(tag="idem", critical=True)
        payload = submit_payload(request)
        first = client.post("/plans", json_body=payload).raise_for_status()
        wait_done(client, first.json["id"])

        with recording() as counters:
            second = client.post("/plans", json_body=payload).raise_for_status()
            wait_done(client, second.json["id"])
            result = client.get(
                f"/plans/{second.json['id']}/result"
            ).raise_for_status()
        assert second.json["id"] == first.json["id"]
        assert second.json["attached"] is True
        assert second.json["state"] == "done"
        assert counters.coverage_calls == 0
        assert counters.critical_searches == 0
        assert counters.graph_builds == 0
        assert result.json["instances"] == 4

    def test_frontier_submission(self, client):
        request = frontier_request()
        response = client.post(
            "/plans", json_body=submit_payload(request)
        ).raise_for_status()
        job = response.json["id"]
        assert response.json["kind"] == "frontier"
        wait_done(client, job)
        result = client.get(f"/plans/{job}/result").raise_for_status().json
        assert result["kind"] == "frontier"
        assert result["rows"][0]["k"] == 1

    def test_result_before_completion_is_409(self, store):
        app = create_app(store, execute=False)  # queue only, nothing runs
        client = ServiceClient(app)
        job = client.post(
            "/plans", json_body=submit_payload(sweep_request(tag="pending"))
        ).raise_for_status().json["id"]
        response = client.get(f"/plans/{job}/result")
        assert response.status == 409
        assert response.json["progress"]["state"] == "queued"

    def test_progress_monotone_during_run(self, store):
        """Polling mid-run: done_instances never decreases, ends complete."""
        request = sweep_request(seeds=6, tag="mono")
        client = ServiceClient(create_app(store, execute=False))
        job = client.post(
            "/plans", json_body=submit_payload(request)
        ).raise_for_status().json["id"]

        counts = []

        def poll(_report):
            counts.append(
                client.get(f"/plans/{job}/progress").json["done_instances"]
            )

        submit(request, store=store, resume=True, on_instance=poll)
        assert counts == sorted(counts)
        assert counts[-1] >= 5  # last poll fires before the final checkpoint
        final = client.get(f"/plans/{job}/progress").json
        assert final["done_instances"] == 6 and final["state"] == "done"

    def test_wire_errors_are_400(self, client):
        assert client.post("/plans", json_body=[1, 2]).status == 400
        assert client.post("/plans", json_body={"kind": "sweep"}).status == 400
        assert (
            client.post(
                "/plans", json_body={"kind": "alien", "request": {}}
            ).status
            == 400
        )
        bad_shards = submit_payload(sweep_request())
        bad_shards["shards"] = 0
        assert client.post("/plans", json_body=bad_shards).status == 400

    def test_unknown_ids_are_404(self, client):
        assert client.get("/plans/ffffffffffff").status == 404
        assert client.get("/plans/ffffffffffff/progress").status == 404
        assert client.post("/plans/ffffffffffff/cancel").status == 404
        assert client.get("/nope").status == 404

    def test_listing_and_metrics(self, client):
        job = client.post(
            "/plans", json_body=submit_payload(sweep_request(tag="list"))
        ).raise_for_status().json["id"]
        wait_done(client, job)
        plans = client.get("/plans").raise_for_status().json["plans"]
        assert [p["id"] for p in plans] == [job]
        metrics = client.get("/metrics").raise_for_status().json
        assert "coverage_calls" in metrics["kernels"]
        assert client.get("/healthz").raise_for_status().json == {"ok": True}


class TestCancellation:
    def test_cancel_then_resume(self, store):
        """Cancel mid-run; resubmit resumes from ledgered chunks only."""
        request = sweep_request(seeds=6, tag="cancel")
        key = request.fingerprint()

        seen = []

        def hook(report):
            seen.append(report)
            if len(seen) == 2:
                store.cancel(key, "mid-run cancel")

        with pytest.raises(PlanCancelled):
            submit(request, store=store, on_instance=hook)
        progress = plan_progress(store, key)
        assert progress.state == "cancelled"
        assert 0 < progress.done_instances < 6

        done_before = progress.done_instances
        store.clear_cancel(key)
        with recording() as counters:
            result = submit(request, store=store, resume=True)
        assert len(result.records) == 12  # 6 instances x 2 cells
        assert result.replayed_instances == done_before
        assert plan_progress(store, key).state == "done"
        # replayed chunks must not re-run: one graph build per fresh
        # instance-cell at most, none for the replayed ones
        assert counters.coverage_calls > 0  # the remainder did run

    def test_cancel_via_service_resubmit_resumes(self, store):
        client = ServiceClient(create_app(store, execute=False))
        request = sweep_request(seeds=4, tag="svc-cancel")
        payload = submit_payload(request)
        job = client.post("/plans", json_body=payload).raise_for_status().json["id"]

        status = client.post(
            f"/plans/{job}/cancel", json_body={"reason": "changed my mind"}
        ).raise_for_status()
        assert status.json["state"] == "cancelled"
        assert store.is_cancelled(job)

        # resubmitting clears the tombstone and re-queues
        second = client.post("/plans", json_body=payload).raise_for_status()
        assert second.json["id"] == job
        assert not store.is_cancelled(job)
        assert plan_progress(store, job).state == "queued"

    def test_worker_skips_cancelled_plans(self, store):
        request = sweep_request(tag="wk-cancel")
        key = enqueue(store, request)
        store.cancel(key)
        assert drain_plan(store, key, owner="t") is False
        assert plan_progress(store, key).done_instances == 0


class TestWorkers:
    def test_two_worker_claim_race_bit_identical(self, store):
        """Two drain loops racing on a 2-shard plan == serial run."""
        request = sweep_request(seeds=6, tag="race", critical=True)
        key = enqueue(store, request, shards=2)

        errors = []

        def drain(name):
            try:
                drain_plan(store, key, owner=name)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(f"racer-{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        assert not errors

        progress = plan_progress(store, key)
        assert progress.complete
        assert not queued_plans(store)

        from repro.api import assemble

        merged = assemble(request, store)
        serial = submit(request)
        assert [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in merged.records
        ] == [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in serial.records
        ]

    def test_claim_is_exclusive(self, store):
        request = sweep_request(tag="claims")
        key = enqueue(store, request, shards=2)
        shard = Shard(0, 2)
        assert claim_shard(store, key, shard, "a")
        assert not claim_shard(store, key, shard, "b")
        release_shard(store, key, shard)
        assert claim_shard(store, key, shard, "b")

    def test_manager_runs_through_worker_path(self, store):
        manager = JobManager(store)
        request = sweep_request(seeds=3, tag="mgr")
        descriptor = manager.submit(request, shards=2)
        manager.join(descriptor["id"], timeout=60)
        progress = plan_progress(store, descriptor["id"])
        assert progress.complete
        # both shard ledgers exist: the service executed via claims
        assert len(store.ledger_paths(descriptor["id"])) == 2


class TestTornLedgerPolicy:
    def _run_sharded(self, store, request):
        key = store.write_plan(request)
        submit(request, store=store, shard=Shard(0, 2))
        submit(request, store=store, shard=Shard(1, 2))
        return key

    def test_torn_middle_refused_without_dead_marker(self, store):
        request = sweep_request(tag="torn")
        key = self._run_sharded(store, request)
        path = store.ledger_path(key, Shard(0, 2))
        lines = path.read_text("utf8").splitlines(keepends=True)
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
        path.write_text("".join(lines), encoding="utf8")
        with pytest.raises(StoreError, match="corrupt"):
            store.load_rows(key)

    def test_torn_middle_skipped_with_dead_marker(self, store):
        request = sweep_request(tag="torn-dead")
        key = self._run_sharded(store, request)
        shard = Shard(0, 2)
        path = store.ledger_path(key, shard)
        lines = path.read_text("utf8").splitlines(keepends=True)
        torn_slot = json.loads(lines[0])["slot"]
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
        path.write_text("".join(lines), encoding="utf8")

        mark_shard_dead(store, key, shard)
        assert is_shard_dead(store, key, shard)
        rows = store.load_rows(key)
        assert torn_slot not in rows  # the torn row is lost, not invented
        assert len(rows) == request.total_instances - 1
        # progress counts survive the tear too (and see the dead marker)
        progress = plan_progress(store, key)
        assert progress.done_instances == request.total_instances - 1
        assert any(s.dead for s in progress.shards)

    def test_resume_reexecutes_the_torn_slot(self, store):
        request = sweep_request(tag="torn-resume")
        key = self._run_sharded(store, request)
        shard = Shard(0, 2)
        path = store.ledger_path(key, shard)
        lines = path.read_text("utf8").splitlines(keepends=True)
        lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
        path.write_text("".join(lines), encoding="utf8")
        mark_shard_dead(store, key, shard)

        result = submit(request, store=store, shard=shard, resume=True)
        assert result.replayed_instances == 1  # shard 0 owns 2 of 4
        rows = store.load_rows(key)
        assert len(rows) == request.total_instances
