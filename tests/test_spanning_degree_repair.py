"""Unit tests for repro.spanning.degree_repair."""

import numpy as np
import pytest

from repro.geometry.points import PointSet
from repro.spanning.degree_repair import find_tight_pair, repair_degree
from repro.spanning.emst import SpanningTree


def perfect_hexagon_star() -> SpanningTree:
    """Centre + 6 unit points at exact 60°: a degree-6 tie configuration."""
    ang = np.linspace(0, 2 * np.pi, 6, endpoint=False)
    pts = np.vstack([[0.0, 0.0], np.stack([np.cos(ang), np.sin(ang)], axis=1)])
    ps = PointSet(pts)
    edges = np.array([[0, i] for i in range(1, 7)])
    return SpanningTree(ps, edges)


class TestFindTightPair:
    def test_finds_sixty_degree_pair(self):
        tree = perfect_hexagon_star()
        pair = find_tight_pair(tree, 0)
        assert pair is not None
        v, w = pair
        assert v != w and v != 0 and w != 0

    def test_none_for_wide_angles(self):
        ps = PointSet([[0, 0], [1, 0], [-1, 0.2]])
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2]]))
        assert find_tight_pair(tree, 0) is None

    def test_none_for_leaf(self):
        ps = PointSet([[0, 0], [1, 0]])
        tree = SpanningTree(ps, np.array([[0, 1]]))
        assert find_tight_pair(tree, 0) is None


class TestRepairDegree:
    def test_hexagon_star_repaired(self):
        tree = perfect_hexagon_star()
        fixed = repair_degree(tree, max_degree=5)
        assert fixed.max_degree() <= 5
        assert fixed.total_weight == pytest.approx(tree.total_weight, rel=1e-9)

    def test_no_change_when_already_ok(self, tree50):
        fixed = repair_degree(tree50, max_degree=5)
        assert fixed.edge_set() == tree50.edge_set()

    def test_repair_down_to_degree_three(self):
        # Aggressive target on the hexagon: swaps continue until deg <= 3.
        tree = perfect_hexagon_star()
        fixed = repair_degree(tree, max_degree=3)
        assert fixed.max_degree() <= 4  # may stop when no tie pair remains
        assert fixed.total_weight <= tree.total_weight * (1 + 1e-9)

    def test_tiny_trees_untouched(self):
        ps = PointSet([[0, 0], [1, 0]])
        tree = SpanningTree(ps, np.array([[0, 1]]))
        assert repair_degree(tree).edge_set() == tree.edge_set()
