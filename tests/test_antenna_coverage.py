"""Unit tests for repro.antenna.coverage."""

import numpy as np
import pytest

from repro.antenna.coverage import (
    coverage_matrix,
    covered_pairs,
    critical_range,
    transmission_graph,
)
from repro.antenna.model import AntennaAssignment
from repro.geometry.points import PointSet
from repro.geometry.sectors import Sector, sector_toward
from repro.graph.connectivity import is_strongly_connected


def square_points() -> PointSet:
    return PointSet([[0, 0], [1, 0], [1, 1], [0, 1]])


def ring_assignment(ps: PointSet, radius: float = 1.5) -> AntennaAssignment:
    """Each sensor aims a zero-spread antenna at the next (a 4-cycle)."""
    a = AntennaAssignment(len(ps))
    for i in range(len(ps)):
        j = (i + 1) % len(ps)
        a.add(i, sector_toward(ps[i], ps[j], radius=radius))
    return a


class TestCoverageMatrix:
    def test_cycle_coverage(self):
        ps = square_points()
        cover = coverage_matrix(ps, ring_assignment(ps))
        for i in range(4):
            assert cover[i, (i + 1) % 4]
        assert cover.sum() == 4

    def test_radius_respected(self):
        ps = square_points()
        a = AntennaAssignment(4)
        a.add(0, sector_toward(ps[0], ps[2], radius=0.5))  # too short
        cover = coverage_matrix(ps, a)
        assert cover.sum() == 0

    def test_ignore_radius(self):
        ps = square_points()
        a = AntennaAssignment(4)
        a.add(0, sector_toward(ps[0], ps[2], radius=0.5))
        cover = coverage_matrix(ps, a, ignore_radius=True)
        assert cover[0, 2]

    def test_omni_covers_all(self):
        ps = square_points()
        a = AntennaAssignment(4)
        a.add(1, Sector(0.0, 2 * np.pi, 10.0))
        cover = coverage_matrix(ps, a)
        assert cover[1].sum() == 3
        assert not cover[1, 1]

    def test_no_diagonal(self):
        ps = square_points()
        cover = coverage_matrix(ps, ring_assignment(ps))
        assert not cover.diagonal().any()


class TestTransmissionGraph:
    def test_cycle_strongly_connected(self):
        ps = square_points()
        g = transmission_graph(ps, ring_assignment(ps))
        assert g.m == 4
        assert is_strongly_connected(g)

    def test_empty_assignment(self):
        ps = square_points()
        g = transmission_graph(ps, AntennaAssignment(4))
        assert g.m == 0


class TestCoveredPairs:
    def test_pairs_and_distances(self):
        ps = square_points()
        pairs, dists = covered_pairs(ps, ring_assignment(ps))
        assert pairs.shape == (4, 2)
        assert np.allclose(dists, 1.0)

    def test_empty(self):
        ps = square_points()
        pairs, dists = covered_pairs(ps, AntennaAssignment(4))
        assert pairs.size == 0


class TestCriticalRange:
    def test_cycle_critical_is_edge_length(self):
        ps = square_points()
        # Generous stored radii; critical range recomputes from scratch.
        assert critical_range(ps, ring_assignment(ps, radius=100.0)) == pytest.approx(1.0)

    def test_inf_when_never_connected(self):
        ps = square_points()
        a = AntennaAssignment(4)
        a.add(0, sector_toward(ps[0], ps[1]))
        assert critical_range(ps, a) == np.inf

    def test_single_point(self):
        ps = PointSet([[0.0, 0.0]])
        assert critical_range(ps, AntennaAssignment(1)) == 0.0

    def test_scales_with_instance(self):
        ps = square_points()
        big = PointSet(ps.coords * 7.0)
        assert critical_range(big, ring_assignment(big, radius=100.0)) == pytest.approx(7.0)

    def test_orientation_result_consistency(self, uniform50):
        from repro.core.planner import orient_antennae

        res = orient_antennae(uniform50, 2, np.pi)
        crit = res.measured_critical_range()
        assert crit <= res.realized_range() + 1e-9
        assert crit <= res.range_bound_absolute * (1 + 1e-7)
