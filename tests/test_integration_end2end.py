"""End-to-end integration tests across the whole stack.

Exercises the realistic user journey: generate a deployment, plan antennae,
inspect the transmission graph, measure robustness/interference, and verify
everything against the paper's bounds — plus cross-checks between
independent implementations (critical range vs realized range, exact tiny
optima vs constructions).
"""

import numpy as np
import pytest

from repro import (
    PointSet,
    critical_range,
    euclidean_mst,
    is_strongly_connected,
    orient_antennae,
    paper_range_bound,
    transmission_graph,
)
from repro.analysis.interference import compare_interference
from repro.analysis.robustness import failure_sweep
from repro.baselines.exact_orientation import exact_min_range_single_antenna
from repro.baselines.omni import orient_omnidirectional
from repro.core.kone import orient_k1_pairs
from repro.experiments.workloads import (
    clustered_points,
    hexagonal_lattice,
    make_workload,
    perturbed_star,
    spider_points,
)

PI = np.pi

ALL_CONFIGS = [
    (1, 0.0), (1, 1.1 * PI), (1, 1.7 * PI),
    (2, 0.0), (2, 2 * PI / 3), (2, PI), (2, 1.25 * PI),
    (3, 0.0), (3, 0.85 * PI), (4, 0.0), (4, 0.45 * PI), (5, 0.0),
]


class TestFullPipeline:
    @pytest.mark.parametrize("workload", ["uniform", "clustered", "grid", "annulus"])
    def test_all_configs_on_all_workloads(self, workload):
        pts = PointSet(make_workload(workload, 48, seed=13))
        tree = euclidean_mst(pts)
        for k, phi in ALL_CONFIGS:
            res = orient_antennae(pts, k, phi, tree=tree)
            g = transmission_graph(pts, res.assignment)
            assert is_strongly_connected(g), (workload, k, phi)
            expected, _ = paper_range_bound(k, phi)
            if not (k == 1 and phi < PI):
                assert res.realized_range_normalized() <= expected * (1 + 1e-7)

    def test_adversarial_families(self):
        for pts_arr in (
            perturbed_star(5, leg=2, seed=3),
            perturbed_star(4, leg=3, seed=4),
            spider_points(3, 2),
            spider_points(5, 1),
            hexagonal_lattice(2),
        ):
            pts = PointSet(pts_arr)
            for k, phi in ((2, PI), (2, 0.8 * PI), (3, 0.0), (4, 0.0)):
                res = orient_antennae(pts, k, phi)
                assert res.validate().ok, (k, phi)

    def test_critical_range_dominated_by_realized(self):
        pts = PointSet(clustered_points(50, seed=21))
        for k, phi in ((2, PI), (3, 0.0), (1, 1.2 * PI)):
            res = orient_antennae(pts, k, phi)
            crit = critical_range(pts, res.assignment)
            assert crit <= res.realized_range() + 1e-9

    def test_scale_and_translation_invariance(self):
        base = clustered_points(40, seed=8)
        res0 = orient_antennae(PointSet(base), 2, PI)
        res1 = orient_antennae(PointSet(base * 37.0 + 1000.0), 2, PI)
        assert res0.realized_range_normalized() == pytest.approx(
            res1.realized_range_normalized(), rel=1e-9
        )

    def test_exact_optimum_brackets_construction(self):
        # On tiny instances the k=1 pair construction is sandwiched between
        # the exact optimum and its proven bound.
        rng = np.random.default_rng(5)
        for _ in range(3):
            pts = PointSet(rng.random((6, 2)) * 2)
            res = orient_k1_pairs(pts, 1.2 * PI)
            opt = exact_min_range_single_antenna(pts, 1.2 * PI)
            assert opt <= res.realized_range() + 1e-9
            assert res.realized_range() <= res.range_bound_absolute * (1 + 1e-7)


class TestAnalysisIntegration:
    def test_robustness_pipeline(self):
        pts = PointSet(make_workload("uniform", 36, seed=2))
        res = orient_antennae(pts, 4, 0.0)
        rep = failure_sweep(res, max_failures=2, trials=15, seed=3)
        assert rep.connectivity_order >= 1

    def test_interference_pipeline(self):
        pts = PointSet(make_workload("uniform", 64, seed=6))
        d = orient_antennae(pts, 2, 2 * PI / 3)
        o = orient_omnidirectional(pts)
        cmp = compare_interference(d, o)
        assert cmp["mean_reduction_factor"] > 1.0


class TestDeterminism:
    def test_same_input_same_output(self):
        pts = PointSet(make_workload("clustered", 40, seed=4))
        a = orient_antennae(pts, 2, PI)
        b = orient_antennae(pts, 2, PI)
        assert np.array_equal(a.intended_edges, b.intended_edges)
        sa = [(i, s.start, s.spread) for i, s in a.assignment]
        sb = [(i, s.start, s.spread) for i, s in b.assignment]
        assert sa == sb
