"""Hypothesis property tests for the orientation algorithms.

The central invariant of the whole library: for any point set in general
position and any Table-1 configuration, the planner's orientation is
strongly connected, respects the antenna count and spread budget, and stays
within the proven range bound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import paper_range_bound
from repro.core.planner import orient_antennae
from repro.geometry.points import PointSet, pairwise_distances
from repro.graph.connectivity import is_strongly_connected

PI = np.pi

coords_st = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    ),
    min_size=2,
    max_size=20,
    unique=True,
)

config_st = st.sampled_from(
    [
        (1, 0.0), (1, PI), (1, 1.3 * PI), (1, 1.7 * PI),
        (2, 0.0), (2, 2 * PI / 3), (2, 0.85 * PI), (2, PI), (2, 1.3 * PI),
        (3, 0.0), (3, 0.9 * PI),
        (4, 0.0), (4, 0.5 * PI),
        (5, 0.0),
    ]
)


def distinct(coords) -> bool:
    arr = np.asarray(coords, dtype=float)
    d = pairwise_distances(arr)
    np.fill_diagonal(d, np.inf)
    return bool(d.min() > 1e-6)


@settings(max_examples=120, deadline=None)
@given(coords_st, config_st)
def test_planner_full_contract(coords, config):
    if not distinct(coords):
        return
    k, phi = config
    ps = PointSet(np.asarray(coords, dtype=float))
    result = orient_antennae(ps, k, phi)

    # 1. Antenna count and spread budget.
    assert int(result.assignment.counts().max()) <= k
    assert result.max_spread_sum() <= phi + 1e-9

    # 2. Strong connectivity of the full transmission graph.
    assert is_strongly_connected(result.transmission_graph())

    # 3. Range guarantee (in lmax units), except the loose k=1 BTSP row.
    expected, _ = paper_range_bound(k, phi)
    if not (k == 1 and phi < PI):
        assert result.realized_range_normalized() <= expected * (1 + 1e-7)

    # 4. Certificate validation.
    report = result.validate()
    assert report.ok, report.summary()


@settings(max_examples=40, deadline=None)
@given(coords_st)
def test_theorem3_realized_never_exceeds_part1_bound(coords):
    if not distinct(coords):
        return
    ps = PointSet(np.asarray(coords, dtype=float))
    result = orient_antennae(ps, 2, PI)
    bound = 2 * np.sin(2 * PI / 9)
    assert result.realized_range_normalized() <= bound * (1 + 1e-7)


@settings(max_examples=40, deadline=None)
@given(coords_st, st.floats(min_value=2 * PI / 3 + 1e-6, max_value=PI - 1e-6))
def test_theorem3_part2_bound_scales_with_phi(coords, phi):
    if not distinct(coords):
        return
    ps = PointSet(np.asarray(coords, dtype=float))
    result = orient_antennae(ps, 2, phi)
    bound = 2 * np.sin(PI / 2 - phi / 4)
    assert result.realized_range_normalized() <= bound * (1 + 1e-7)
