"""Unit tests for repro.geometry.triangles."""

import numpy as np
import pytest

from repro.geometry.triangles import (
    law_of_cosines_side,
    max_pair_distance_bound,
    triangle_is_empty,
)


class TestLawOfCosines:
    def test_right_angle(self):
        assert law_of_cosines_side(3.0, 4.0, np.pi / 2) == pytest.approx(5.0)

    def test_degenerate_zero_angle(self):
        assert law_of_cosines_side(2.0, 5.0, 0.0) == pytest.approx(3.0)

    def test_straight_angle(self):
        assert law_of_cosines_side(2.0, 5.0, np.pi) == pytest.approx(7.0)

    def test_vectorized(self):
        out = law_of_cosines_side(1.0, 1.0, np.array([np.pi / 3, np.pi]))
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(2.0)


class TestMaxPairDistanceBound:
    def test_unit_radii_large_angle_is_chord(self):
        assert max_pair_distance_bound(np.pi) == pytest.approx(2.0)

    def test_small_angle_floor_is_radius(self):
        # With theta -> 0 the farthest configuration is one point at full
        # radius, the other at the apex.
        assert max_pair_distance_bound(0.01) == pytest.approx(1.0)

    def test_monte_carlo_dominates(self, rng):
        for _ in range(200):
            theta = rng.uniform(0, np.pi)
            r1, r2 = rng.uniform(0, 1.0, 2)
            d = law_of_cosines_side(r1, r2, theta)
            assert d <= max_pair_distance_bound(theta) + 1e-12


class TestTriangleIsEmpty:
    TRI = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0]])

    def test_empty_when_no_other_points(self):
        assert triangle_is_empty(self.TRI, np.empty((0, 2)))

    def test_vertices_do_not_count(self):
        assert triangle_is_empty(self.TRI, self.TRI)

    def test_interior_point_detected(self):
        assert not triangle_is_empty(self.TRI, np.array([[0.5, 0.5]]))

    def test_edge_point_detected(self):
        assert not triangle_is_empty(self.TRI, np.array([[1.0, 0.0]]))

    def test_outside_points_ignored(self):
        pts = np.array([[5.0, 5.0], [-1.0, -1.0], [3.0, 0.1]])
        assert triangle_is_empty(self.TRI, pts)

    def test_clockwise_triangle(self):
        tri = self.TRI[::-1]
        assert not triangle_is_empty(tri, np.array([[0.5, 0.5]]))
        assert triangle_is_empty(tri, np.array([[5.0, 5.0]]))

    def test_degenerate_triangle_is_empty(self):
        tri = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        assert triangle_is_empty(tri, np.array([[0.5, 0.0]]))

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            triangle_is_empty(np.zeros((2, 2)), np.empty((0, 2)))
