"""Unit tests for repro.core.theorem2."""

import pytest

from repro.core.bounds import thm2_phi_threshold
from repro.core.theorem2 import orient_theorem2
from repro.errors import InvalidParameterError
from repro.geometry.points import PointSet
from repro.graph.connectivity import is_strongly_connected
from tests.conftest import assert_result_valid


class TestOrientTheorem2:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_all_k_valid(self, k, uniform50):
        res = orient_theorem2(uniform50, k)
        assert res.range_bound == 1.0
        assert res.realized_range_normalized() <= 1.0 + 1e-9
        assert_result_valid(res)

    def test_bidirected_mst_edges(self, uniform50, tree50):
        res = orient_theorem2(uniform50, 2, tree=tree50)
        intended = {(int(u), int(v)) for u, v in res.intended_edges}
        for u, v in tree50.edges:
            assert (int(u), int(v)) in intended
            assert (int(v), int(u)) in intended

    def test_phi_below_threshold_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem2(uniform50, 2, phi=1.0)

    def test_phi_defaults_to_threshold(self, uniform50):
        res = orient_theorem2(uniform50, 3)
        assert res.phi == pytest.approx(thm2_phi_threshold(3))

    def test_spread_within_threshold(self, clustered60):
        for k in (1, 2, 3):
            res = orient_theorem2(clustered60, k)
            assert res.max_spread_sum() <= thm2_phi_threshold(k) + 1e-9

    def test_lemma1_construction_variant(self, clustered60):
        res = orient_theorem2(clustered60, 2, construction="lemma1")
        assert_result_valid(res)
        opt = orient_theorem2(clustered60, 2, construction="optimal")
        assert opt.max_spread_sum() <= res.max_spread_sum() + 1e-9

    def test_unknown_construction(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem2(uniform50, 2, construction="magic")

    def test_invalid_k(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem2(uniform50, 0)

    def test_single_point(self):
        res = orient_theorem2(PointSet([[0.0, 0.0]]), 2)
        assert is_strongly_connected(res.transmission_graph())

    def test_two_points(self):
        res = orient_theorem2(PointSet([[0.0, 0.0], [2.0, 0.0]]), 1)
        assert_result_valid(res)
        assert res.realized_range() == pytest.approx(2.0)

    def test_k_above_five(self, uniform50):
        res = orient_theorem2(uniform50, 8)
        assert_result_valid(res)

    def test_star5_instance(self, star5):
        # Degree-5 hub with k=1: the hub needs spread <= 8pi/5.
        res = orient_theorem2(star5, 1)
        assert_result_valid(res)
        assert res.max_spread_sum() <= thm2_phi_threshold(1) + 1e-9
