"""Hypothesis property tests for the angular/sector primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry.angles import (
    TWO_PI,
    ccw_angle,
    ccw_gaps,
    circular_windows_sum,
    in_ccw_interval,
    normalize_angle,
    signed_angle_diff,
)
from repro.geometry.sectors import Sector

angles_st = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
angle_arrays = arrays(
    float,
    st.integers(min_value=1, max_value=9),
    elements=st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
)


class TestAngleProperties:
    @given(angles_st)
    def test_normalize_in_range(self, theta):
        out = float(normalize_angle(theta))
        assert 0.0 <= out < TWO_PI

    @given(angles_st, angles_st)
    def test_ccw_angle_range(self, a, b):
        out = float(ccw_angle(a, b))
        assert 0.0 <= out < TWO_PI

    @given(angles_st, angles_st)
    def test_ccw_antisymmetry(self, a, b):
        fwd = float(ccw_angle(a, b))
        bwd = float(ccw_angle(b, a))
        if fwd > 1e-9 and bwd > 1e-9:
            assert fwd + bwd == np.float64(TWO_PI) or abs(fwd + bwd - TWO_PI) < 1e-9

    @given(angles_st, angles_st)
    def test_signed_diff_range(self, a, b):
        out = float(signed_angle_diff(a, b))
        assert -np.pi - 1e-12 < out <= np.pi + 1e-12

    @given(angle_arrays)
    def test_gaps_partition_circle(self, arr):
        _, gaps = ccw_gaps(arr)
        assert abs(float(gaps.sum()) - TWO_PI) < 1e-9
        assert np.all(gaps >= -1e-12)

    @given(angle_arrays, st.integers(min_value=1, max_value=9))
    def test_window_max_at_least_mean(self, arr, k):
        _, gaps = ccw_gaps(arr)
        n = gaps.size
        if k > n:
            return
        wsum = circular_windows_sum(gaps, k)
        assert float(wsum.max()) >= TWO_PI * k / n - 1e-9


class TestSectorProperties:
    @given(
        st.floats(min_value=0.0, max_value=TWO_PI),
        st.floats(min_value=0.0, max_value=TWO_PI),
        angles_st,
    )
    @settings(max_examples=200)
    def test_containment_matches_interval(self, start, spread, theta):
        s = Sector(start, spread)
        assert bool(s.contains_direction(theta)) == bool(
            in_ccw_interval(theta, s.start, s.spread)
        )

    @given(st.floats(min_value=0.0, max_value=TWO_PI - 1e-6))
    def test_boundaries_always_contained(self, start):
        s = Sector(start, 1.0)
        assert s.contains_direction(s.start)
        assert s.contains_direction(s.end)

    @given(
        st.floats(min_value=0.0, max_value=TWO_PI),
        st.floats(min_value=0.1, max_value=TWO_PI - 0.1),
    )
    def test_complement_direction_excluded(self, start, spread):
        s = Sector(start, spread)
        # Midpoint of the uncovered wedge must not be contained (for
        # spreads away from full circle).
        gap_mid = normalize_angle(start + spread + (TWO_PI - spread) / 2.0)
        if TWO_PI - spread > 1e-6:
            assert not s.contains_direction(float(gap_mid), eps=1e-12)
