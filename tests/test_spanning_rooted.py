"""Unit tests for repro.spanning.rooted."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree
from repro.spanning.rooted import RootedTree


def path_tree(n: int = 5) -> SpanningTree:
    ps = PointSet([[float(i), 0.0] for i in range(n)])
    return SpanningTree(ps, np.array([[i, i + 1] for i in range(n - 1)]))


class TestRootedStructure:
    def test_parents_and_children(self):
        rt = RootedTree(path_tree(), 0)
        assert rt.parent[0] == -1
        assert rt.parent[3] == 2
        assert rt.children[0] == [1]
        assert rt.children[4] == []

    def test_bad_root_raises(self):
        with pytest.raises(InvalidParameterError):
            RootedTree(path_tree(), 99)

    def test_mst_degree(self):
        rt = RootedTree(path_tree(), 0)
        assert rt.mst_degree(0) == 1
        assert rt.mst_degree(2) == 2
        assert rt.mst_degree(4) == 1

    def test_depth(self):
        rt = RootedTree(path_tree(), 0)
        assert rt.depth(0) == 0
        assert rt.depth(4) == 4

    def test_is_leaf_rooted_sense(self):
        rt = RootedTree(path_tree(), 2)
        assert rt.is_leaf(0)
        assert rt.is_leaf(4)
        assert not rt.is_leaf(2)

    def test_neighbors(self):
        rt = RootedTree(path_tree(), 0)
        assert set(rt.neighbors(2)) == {1, 3}
        assert rt.neighbors(0) == [1]


class TestTraversals:
    def test_preorder_parent_first(self, tree50):
        rt = RootedTree.rooted_at_leaf(tree50)
        seen = set()
        for v in rt.preorder():
            p = rt.parent[v]
            assert p == -1 or p in seen
            seen.add(int(v))
        assert len(seen) == tree50.n

    def test_postorder_children_first(self, tree50):
        rt = RootedTree.rooted_at_leaf(tree50)
        seen = set()
        for v in rt.postorder():
            for c in rt.children[int(v)]:
                assert c in seen
            seen.add(int(v))

    def test_subtree_vertices(self):
        rt = RootedTree(path_tree(), 0)
        assert sorted(rt.subtree_vertices(2)) == [2, 3, 4]
        assert sorted(rt.subtree_vertices(0)) == [0, 1, 2, 3, 4]

    def test_deep_path_no_recursion_error(self):
        n = 5000
        tree = path_tree(n)
        rt = RootedTree(tree, 0)
        assert len(list(rt.preorder())) == n
        assert len(rt.subtree_vertices(0)) == n


class TestCcwChildren:
    def test_order_starts_at_reference_ray(self):
        # Hub at origin, children at E, N, W; reference pointing south.
        ps = PointSet([[0, 0], [1, 0], [0, 1], [-1, 0], [0, -2]])
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]))
        rt = RootedTree(tree, 4)  # root south; hub 0 has children 1, 2, 3
        order = rt.children_ccw_from(0, ps[4])
        # ccw from the south ray: east (1) first, then north (2), then west (3)
        assert order == [1, 2, 3]

    def test_reference_at_vertex_raises(self):
        ps = PointSet([[0, 0], [1, 0], [0, 1]])
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2]]))
        rt = RootedTree(tree, 1)
        with pytest.raises(InvalidParameterError):
            rt.children_ccw_from(0, ps[0])

    def test_edge_length(self):
        rt = RootedTree(path_tree(), 0)
        assert rt.edge_length(1) == pytest.approx(1.0)
        with pytest.raises(InvalidParameterError):
            rt.edge_length(0)


class TestRootedAtLeaf:
    def test_default_smallest_leaf(self, tree50):
        rt = RootedTree.rooted_at_leaf(tree50)
        assert rt.tree.degrees()[rt.root] == 1

    def test_prefer_specific_leaf(self, tree50):
        leaves = tree50.leaves()
        rt = RootedTree.rooted_at_leaf(tree50, prefer=int(leaves[-1]))
        assert rt.root == int(leaves[-1])

    def test_prefer_internal_raises(self, tree50):
        internal = int(np.flatnonzero(tree50.degrees() > 1)[0])
        with pytest.raises(InvalidParameterError):
            RootedTree.rooted_at_leaf(tree50, prefer=internal)
