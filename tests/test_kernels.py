"""Tests for the vectorized kernel layer (repro.kernels).

Three concerns:

* **Equivalence** — the batched coverage kernel and the rebuild-free
  critical-range search must be *bit-identical* to the original loop
  kernels preserved in :mod:`repro.kernels.reference`, on randomized
  instances mixing finite/infinite radii, full-circle sectors and
  zero-spread rays.
* **Edge cases** — deficient orientations (``inf``), single candidate
  distance, exact distance ties at the bottleneck.
* **Perf regression by counters** — wall-clock is meaningless on the
  single-core CI container, so we assert work counts: ``critical_range``
  performs exactly one covered-pairs computation and O(log m) connectivity
  probes with zero per-probe ``DiGraph`` constructions.
"""

import math

import numpy as np
import pytest

from repro.antenna.coverage import (
    coverage_matrix,
    covered_pairs,
    critical_range,
)
from repro.antenna.model import AntennaAssignment
from repro.geometry.points import PointSet
from repro.geometry.sectors import Sector, radius_tolerance, sector_toward
from repro.graph.connectivity import is_strongly_connected
from repro.graph.digraph import DiGraph
from repro.graph.scc import scc_count, strongly_connected_components
from repro.kernels import (
    polar_tables,
    recording,
    reverse_csr,
    strongly_connected_csr,
    strongly_connected_edges,
)
from repro.kernels.connectivity import _bfs_covers_all
from repro.kernels.reference import (
    bfs_strongly_connected,
    coverage_matrix_loop,
    critical_range_rebuild,
)


def random_instance(seed: int, n: int | None = None):
    """A random point set plus a random antenna assignment (adversarial mix)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 36)) if n is None else n
    ps = PointSet(rng.random((n, 2)) * 10.0)
    a = AntennaAssignment(n)
    for i in range(n):
        for _ in range(int(rng.integers(0, 4))):
            spread = float(rng.choice([0.0, rng.random() * 2 * np.pi, 2 * np.pi]))
            radius = float(rng.choice([np.inf, rng.random() * 8.0]))
            a.add(i, Sector(float(rng.random() * 7.0), spread, radius))
    return ps, a


def square_ring(radius: float = 100.0):
    """Unit square, each sensor aiming a zero-spread ray at the next."""
    ps = PointSet([[0, 0], [1, 0], [1, 1], [0, 1]])
    a = AntennaAssignment(4)
    for i in range(4):
        a.add(i, sector_toward(ps[i], ps[(i + 1) % 4], radius=radius))
    return ps, a


class TestCoverageEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("ignore_radius", [False, True])
    def test_bit_identical_to_loop(self, seed, ignore_radius):
        ps, a = random_instance(seed)
        new = coverage_matrix(ps, a, ignore_radius=ignore_radius)
        old = coverage_matrix_loop(ps, a, ignore_radius=ignore_radius)
        assert np.array_equal(new, old)

    def test_precomputed_tables_same_result(self):
        ps, a = random_instance(99)
        tables = polar_tables(ps.coords)
        assert np.array_equal(
            coverage_matrix(ps, a, tables=tables), coverage_matrix(ps, a)
        )

    def test_tables_size_mismatch_rejected(self):
        ps, a = random_instance(7)
        wrong = polar_tables(np.random.default_rng(0).random((len(ps) + 1, 2)))
        with pytest.raises(ValueError):
            coverage_matrix(ps, a, tables=wrong)

    def test_empty_assignment(self):
        ps, _ = random_instance(3)
        cover = coverage_matrix(ps, AntennaAssignment(len(ps)))
        assert cover.shape == (len(ps), len(ps)) and not cover.any()

    def test_covered_pairs_distances_from_tables(self):
        ps, a = random_instance(5)
        pairs, dists = covered_pairs(ps, a)
        if pairs.size:
            diff = ps.coords[pairs[:, 0]] - ps.coords[pairs[:, 1]]
            assert np.array_equal(dists, np.hypot(diff[:, 0], diff[:, 1]))


class TestCriticalEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_bit_identical_to_rebuild(self, seed):
        ps, a = random_instance(seed)
        new = critical_range(ps, a)
        old = critical_range_rebuild(ps, a)
        assert new == old or (math.isinf(new) and math.isinf(old))

    def test_deficient_orientation_is_inf(self):
        # One antenna total: nobody can reach sensor 0, at any radius.
        ps = PointSet([[0, 0], [1, 0], [1, 1], [0, 1]])
        a = AntennaAssignment(4)
        a.add(0, sector_toward(ps[0], ps[1]))
        assert critical_range(ps, a) == np.inf

    def test_no_antennae_is_inf(self):
        ps = PointSet([[0, 0], [1, 0]])
        assert critical_range(ps, AntennaAssignment(2)) == np.inf

    def test_single_candidate_distance(self):
        # Two sensors aiming rays at each other: exactly one candidate.
        ps = PointSet([[0, 0], [3, 4]])
        a = AntennaAssignment(2)
        a.add(0, sector_toward(ps[0], ps[1]))
        a.add(1, sector_toward(ps[1], ps[0]))
        with recording() as rec:
            assert critical_range(ps, a) == 5.0
        # One candidate => the top-of-range feasibility probe is the search.
        assert rec.connectivity_probes == 1

    def test_exact_tie_distances_at_bottleneck(self):
        # All four ring edges have length exactly 1: the bottleneck is a
        # 4-way tie and must collapse to a single candidate value.
        ps, a = square_ring()
        assert critical_range(ps, a) == 1.0

    def test_single_point_zero(self):
        assert critical_range(PointSet([[0.0, 0.0]]), AntennaAssignment(1)) == 0.0

    def test_scales_with_instance(self):
        ps, _ = square_ring()
        big = PointSet(ps.coords * 7.0)
        a = AntennaAssignment(4)
        for i in range(4):
            a.add(i, sector_toward(big[i], big[(i + 1) % 4]))
        assert critical_range(big, a) == pytest.approx(7.0)


class TestCriticalCounters:
    """The acceptance criterion: 1 covered-pairs pass, O(log m) probes, 0 builds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rebuild_free_search(self, seed):
        ps, a = random_instance(seed, n=30)
        pairs, dists = covered_pairs(ps, a)
        if pairs.shape[0] == 0:
            pytest.skip("degenerate draw: no covered pairs")
        ncand = np.unique(dists).size
        with recording() as rec:
            critical_range(ps, a)
        assert rec.graph_builds == 0  # zero per-probe DiGraph constructions
        assert rec.coverage_calls == 1  # exactly one covered-pairs computation
        assert rec.polar_builds == 1
        assert rec.critical_searches == 1
        # 1 feasibility probe + ceil(log2(ncand)) bisection probes at most.
        assert rec.connectivity_probes <= 1 + math.ceil(math.log2(max(ncand, 1))) + 1

    def test_shared_tables_skip_trig(self):
        ps, a = random_instance(4, n=20)
        tables = polar_tables(ps.coords)
        with recording() as rec:
            critical_range(ps, a, tables=tables)
            coverage_matrix(ps, a, tables=tables)
        assert rec.polar_builds == 0
        assert rec.trig_evals == 0

    def test_reference_kernel_rebuilds_per_probe(self):
        # The old search really did build one DiGraph per probe — the
        # counter contrast the benchmarks report.
        ps, a = square_ring()
        with recording() as rec:
            critical_range_rebuild(ps, a)
        assert rec.graph_builds >= 1
        with recording() as rec:
            critical_range(ps, a)
        assert rec.graph_builds == 0


class TestConnectivityKernels:
    @pytest.mark.parametrize("seed", range(8))
    def test_edges_kernel_matches_digraph_check(self, seed):
        rng = np.random.default_rng(seed)
        n = 25
        e = rng.integers(0, n, size=(int(rng.integers(0, 120)), 2))
        e = e[e[:, 0] != e[:, 1]]
        e = np.unique(e, axis=0) if e.size else e.reshape(0, 2)
        g = DiGraph(n, e)
        assert strongly_connected_edges(n, e[:, 0], e[:, 1]) == is_strongly_connected(g)

    def test_bfs_fallback_agrees_with_scipy(self):
        rng = np.random.default_rng(11)
        for _ in range(10):
            e = rng.integers(0, 12, size=(40, 2))
            e = e[e[:, 0] != e[:, 1]]
            g = DiGraph(12, e)
            indptr, indices = g.csr()
            scipy_ans = strongly_connected_csr(12, indptr, indices)
            rptr, ridx = reverse_csr(12, indptr, indices)
            bfs_ans = _bfs_covers_all(12, indptr, indices) and _bfs_covers_all(
                12, rptr, ridx
            )
            assert scipy_ans == bfs_ans == bfs_strongly_connected(g)

    def test_trivial_sizes(self):
        assert strongly_connected_csr(0, np.zeros(1, np.int64), np.zeros(0, np.int64))
        assert strongly_connected_csr(1, np.zeros(2, np.int64), np.zeros(0, np.int64))
        assert strongly_connected_edges(2, np.array([0, 1]), np.array([1, 0]))
        assert not strongly_connected_edges(2, np.array([0]), np.array([1]))

    @pytest.mark.parametrize("seed", range(5))
    def test_scc_count_matches_tarjan(self, seed):
        rng = np.random.default_rng(seed)
        e = rng.integers(0, 30, size=(70, 2))
        e = e[e[:, 0] != e[:, 1]]
        g = DiGraph(30, e)
        tarjan = int(strongly_connected_components(g).max()) + 1
        assert scc_count(g) == tarjan

    def test_scc_count_empty(self):
        assert scc_count(DiGraph(0)) == 0


class TestRadiusTolerance:
    def test_matches_legacy_scalar_rule(self):
        eps = 1e-9
        assert radius_tolerance(0.5, eps) == eps * 1.0
        assert radius_tolerance(3.0, eps) == eps * 3.0
        assert radius_tolerance(np.inf, eps) == eps  # inf contributes no scaling

    def test_vectorized(self):
        out = radius_tolerance(np.array([0.25, 2.0, np.inf]), 1e-6)
        assert np.allclose(out, [1e-6, 2e-6, 1e-6])

    def test_sector_and_kernel_agree_at_boundary(self):
        # A point exactly at radius + tol/2 must be covered by both paths.
        eps = 1e-9
        r = 2.0
        ps = PointSet([[0.0, 0.0], [r + radius_tolerance(r, eps) / 2, 0.0]])
        a = AntennaAssignment(2)
        sec = Sector(-0.1, 0.2, r)
        a.add(0, sec)
        cover = coverage_matrix(ps, a, eps=eps)
        assert bool(cover[0, 1]) == sec.covers_point(ps[0], ps[1], eps=eps) == True  # noqa: E712


class TestPolarTables:
    def test_tables_match_rowwise_geometry(self):
        rng = np.random.default_rng(2)
        c = rng.random((17, 2)) * 5
        t = polar_tables(c)
        ps = PointSet(c)
        for u in (0, 7, 16):
            assert np.array_equal(t.dist[u], ps.distances_from(u))
            assert np.array_equal(t.ang[u], ps.angles_from(u))

    def test_read_only(self):
        t = polar_tables(np.random.default_rng(0).random((5, 2)))
        with pytest.raises(ValueError):
            t.dist[0, 0] = 1.0

    def test_counts_one_build(self):
        with recording() as rec:
            polar_tables(np.random.default_rng(1).random((9, 2)))
        assert rec.polar_builds == 1
        assert rec.trig_evals == 81
