"""Unit tests for repro.io (serialization round-trips)."""

import numpy as np
import pytest

from repro.core.planner import orient_antennae
from repro.errors import ValidationError
from repro.geometry.points import PointSet
from repro.io import (
    load_result,
    points_from_csv,
    points_to_csv,
    result_from_dict,
    result_to_dict,
    save_result,
)


class TestResultRoundTrip:
    def test_json_file_round_trip(self, uniform50, tmp_path):
        res = orient_antennae(uniform50, 2, np.pi)
        path = str(tmp_path / "orientation.json")
        save_result(res, path)
        back = load_result(path)
        assert back.algorithm == res.algorithm
        assert back.k == res.k
        assert back.range_bound == pytest.approx(res.range_bound)
        assert np.allclose(back.points.coords, res.points.coords)
        assert np.array_equal(back.intended_edges, res.intended_edges)
        # Sectors identical.
        a = [(i, s.start, s.spread, s.radius) for i, s in res.assignment]
        b = [(i, s.start, s.spread, s.radius) for i, s in back.assignment]
        assert a == pytest.approx(b)

    def test_round_trip_still_validates(self, clustered60, tmp_path):
        res = orient_antennae(clustered60, 3, 0.0)
        path = str(tmp_path / "o.json")
        save_result(res, path)
        back = load_result(path)
        assert back.validate().ok

    def test_infinite_radius_round_trip(self):
        from repro.antenna.model import AntennaAssignment
        from repro.core.result import OrientationResult
        from repro.geometry.sectors import Sector

        ps = PointSet([[0, 0], [1, 0]])
        a = AntennaAssignment(2)
        a.add(0, Sector(0.0, 1.0))  # infinite radius
        a.add(1, Sector(np.pi, 1.0))
        res = OrientationResult(ps, a, np.array([[0, 1], [1, 0]]), 1, 1.0, 1.0,
                                1.0, "manual")
        back = result_from_dict(result_to_dict(res))
        assert all(not np.isfinite(s.radius) for _, s in back.assignment)

    def test_bad_schema_version(self, uniform50):
        res = orient_antennae(uniform50, 2, np.pi)
        data = result_to_dict(res)
        data["schema_version"] = 99
        with pytest.raises(ValidationError):
            result_from_dict(data)

    def test_missing_field(self, uniform50):
        res = orient_antennae(uniform50, 2, np.pi)
        data = result_to_dict(res)
        del data["sectors"]
        with pytest.raises(ValidationError):
            result_from_dict(data)

    def test_stats_jsonable(self, uniform50):
        import json

        res = orient_antennae(uniform50, 2, np.pi)
        json.dumps(result_to_dict(res))  # must not raise


class TestPointsCsv:
    def test_round_trip(self, uniform50, tmp_path):
        path = str(tmp_path / "pts.csv")
        points_to_csv(uniform50, path)
        back = points_from_csv(path)
        assert np.allclose(back.coords, uniform50.coords)

    def test_headerless_csv(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.5,2.5\n3.0,4.0\n")
        ps = points_from_csv(str(path))
        assert len(ps) == 2
        assert ps[0][0] == 1.5
