"""Unit tests for repro.spanning.facts (Facts 1 & 2)."""

import numpy as np
import pytest

from repro.experiments.workloads import perturbed_star
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree, euclidean_mst
from repro.spanning.facts import (
    adjacent_angle_report,
    check_fact1,
    check_fact2,
    min_adjacent_angle,
)


class TestFact1:
    def test_holds_on_random_mst(self, tree50):
        rep = check_fact1(tree50)
        assert rep.ok, rep.violations[:3]
        assert rep.min_adjacent_angle >= np.pi / 3 - 1e-7
        assert rep.max_chord_ratio <= 1.0 + 1e-9

    def test_detects_violation_on_non_mst(self):
        # A deliberately bad "tree": hub with two neighbours 10 degrees apart.
        ps = PointSet([[0, 0], [1, 0], [np.cos(0.17), np.sin(0.17)]])
        bad = SpanningTree(ps, np.array([[0, 1], [0, 2]]))
        rep = check_fact1(bad, check_empty_triangles=False)
        assert not rep.ok
        assert any("Fact1.1" in v for v in rep.violations)

    def test_detects_nonempty_triangle(self):
        # Hub with neighbours at 90 degrees and an intruder inside the triangle.
        ps = PointSet([[0, 0], [1, 0], [0, 1], [0.3, 0.3]])
        bad = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3]]))
        rep = check_fact1(bad)
        assert not rep.ok

    def test_path_tree_trivial(self):
        ps = PointSet([[0, 0], [1, 0], [2, 0]])
        tree = SpanningTree(ps, np.array([[0, 1], [1, 2]]))
        assert check_fact1(tree).ok


class TestFact2:
    def test_holds_on_degree5_stars(self):
        for s in range(10):
            tree = euclidean_mst(PointSet(perturbed_star(5, leg=2, seed=s)))
            if (tree.degrees() == 5).any():
                assert check_fact2(tree).ok

    def test_no_degree5_is_vacuous(self, tree50):
        rep = check_fact2(tree50)
        assert rep.ok

    def test_detects_violation(self):
        # Fake degree-5 hub with one 20-degree gap (not an MST).
        ang = np.array([0.0, 0.35, 2.0, 3.5, 5.0])
        pts = np.vstack([[0, 0], np.stack([np.cos(ang), np.sin(ang)], axis=1)])
        ps = PointSet(pts)
        bad = SpanningTree(ps, np.array([[0, i] for i in range(1, 6)]))
        rep = check_fact2(bad)
        assert not rep.ok


class TestAngleHelpers:
    def test_min_adjacent_angle_matches_report(self, tree50):
        rep = check_fact1(tree50)
        assert min_adjacent_angle(tree50) == pytest.approx(rep.min_adjacent_angle)

    def test_adjacent_angle_report_sums(self, tree50):
        angles = adjacent_angle_report(tree50)
        assert angles.min() >= np.pi / 3 - 1e-7
        # Every internal vertex contributes gaps summing to 2 pi.
        deg = tree50.degrees()
        internal = int((deg >= 2).sum())
        assert angles.size == sum(int(d) for d in deg if d >= 2)
        assert angles.sum() == pytest.approx(2 * np.pi * internal)
