"""Unit tests for repro.core.theorem3 (the main k = 2 result)."""

import numpy as np
import pytest

from repro.core.bounds import thm3_part1_bound, thm3_part2_bound
from repro.core.theorem3 import Theorem3Engine, orient_theorem3
from repro.errors import InvalidParameterError
from repro.experiments.workloads import perturbed_star
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.spanning.rooted import RootedTree
from tests.conftest import assert_result_valid

PI = np.pi


class TestDispatchAndValidation:
    def test_part1_bound(self, uniform50):
        res = orient_theorem3(uniform50, PI)
        assert res.algorithm == "theorem3.part1"
        assert res.range_bound == pytest.approx(thm3_part1_bound())
        assert_result_valid(res)

    @pytest.mark.parametrize("phi", [2 * PI / 3, 0.75 * PI, 0.9 * PI])
    def test_part2_bound(self, phi, uniform50):
        res = orient_theorem3(uniform50, phi)
        assert res.algorithm == "theorem3.part2"
        assert res.range_bound == pytest.approx(thm3_part2_bound(phi))
        assert_result_valid(res)

    def test_phi_too_small_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem3(uniform50, 1.0)

    def test_two_antennas_max(self, clustered60):
        res = orient_theorem3(clustered60, PI)
        assert int(res.assignment.counts().max()) <= 2

    def test_spread_budget_pi(self, clustered60):
        res = orient_theorem3(clustered60, PI)
        assert res.max_spread_sum() <= PI + 1e-9

    def test_spread_budget_part2(self, clustered60):
        phi = 0.8 * PI
        res = orient_theorem3(clustered60, phi)
        assert res.max_spread_sum() <= phi + 1e-9

    def test_forced_part2_at_pi(self, uniform50):
        res = orient_theorem3(uniform50, PI, part=2)
        assert res.range_bound == pytest.approx(np.sqrt(2.0))
        assert_result_valid(res)

    def test_part1_below_pi_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem3(uniform50, 0.9 * PI, part=1)

    def test_bad_part_value(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_theorem3(uniform50, PI, part=3)

    def test_root_must_be_leaf(self, uniform50, tree50):
        internal = int(np.flatnonzero(tree50.degrees() >= 2)[0])
        with pytest.raises(InvalidParameterError):
            orient_theorem3(uniform50, PI, tree=tree50, root=internal)

    def test_explicit_leaf_root(self, uniform50, tree50):
        leaf = int(tree50.leaves()[-1])
        res = orient_theorem3(uniform50, PI, tree=tree50, root=leaf)
        assert_result_valid(res)

    def test_single_point(self):
        res = orient_theorem3(PointSet([[0.0, 0.0]]), PI)
        assert res.intended_edges.size == 0

    def test_two_points(self):
        res = orient_theorem3(PointSet([[0, 0], [1, 0]]), PI)
        assert_result_valid(res)

    def test_case_stats_recorded(self, clustered60):
        res = orient_theorem3(clustered60, PI)
        assert res.stats["part"] == 1
        assert res.stats["cases"]["root"] == 1
        assert sum(res.stats["cases"].values()) >= len(clustered60)


class TestHighDegreeInstances:
    @pytest.mark.parametrize("d", [4, 5])
    @pytest.mark.parametrize("phi", [PI, 0.7 * PI, 2 * PI / 3])
    def test_star_families(self, d, phi):
        for s in range(10):
            pts = PointSet(perturbed_star(d, leg=2, seed=1000 * d + s))
            res = orient_theorem3(pts, phi)
            assert_result_valid(res)

    def test_deg5_cases_fire(self):
        seen = set()
        for s in range(25):
            pts = PointSet(perturbed_star(5, leg=2, seed=s))
            res = orient_theorem3(pts, PI)
            seen.update(res.stats["cases"])
        assert any(c.startswith("deg5") for c in seen)


class TestBoundTightness:
    """A witness instance where part 1's realized range EQUALS the bound.

    Hub with parent on the zero ray and four unit children whose inner gaps
    are all exactly 4π/9: the big-gap case must delegate across a 4π/9 gap,
    whose chord at unit radii is exactly 2·sin(2π/9) — the theorem's range.
    """

    def test_part1_bound_attained(self):
        g = 4 * PI / 9
        base = 2 * PI / 3 / 2  # p-gap is 2pi/3, split evenly around the parent
        pos = np.array([base, base + g, base + 2 * g, base + 3 * g])
        pts = [(1.0, 0.0), (0.0, 0.0)]  # parent (root leaf), hub
        pts += [(np.cos(a), np.sin(a)) for a in pos]
        ps = PointSet(np.asarray(pts))
        from repro.spanning.emst import SpanningTree

        tree = SpanningTree(ps, np.asarray([[0, 1], [1, 2], [1, 3], [1, 4], [1, 5]]))
        res = orient_theorem3(ps, PI, tree=tree, root=0)
        assert_result_valid(res)
        bound = 2 * np.sin(2 * PI / 9)
        assert res.realized_range_normalized() == pytest.approx(bound, rel=1e-9)
        assert any(c.startswith("deg5.biggap") for c in res.stats["cases"])


class TestProperty1Engine:
    """Direct Property-1 checks: the root also covers an imaginary point."""

    @pytest.mark.parametrize("angle_i", range(8))
    def test_imaginary_point_covered(self, angle_i, clustered60):
        tree = euclidean_mst(clustered60)
        rooted = RootedTree.rooted_at_leaf(tree)
        bound = thm3_part1_bound()
        radius = bound * tree.lmax
        theta = 2 * PI * angle_i / 8
        p = clustered60[rooted.root] + 0.9 * radius * np.array(
            [np.cos(theta), np.sin(theta)]
        )
        engine = Theorem3Engine(rooted, PI, 1, radius)
        engine.run(root_cover=p)
        covered = any(
            s.covers_point(clustered60[rooted.root], p)
            for s in engine.assignment[rooted.root]
        )
        assert covered
        # The intended edges still strongly connect the tree.
        from repro.graph.connectivity import is_strongly_connected
        from repro.graph.digraph import DiGraph

        g = DiGraph(tree.n, np.asarray(engine.intended))
        assert is_strongly_connected(g)
