"""Unit tests for Theorems 5 and 6 (and the shared star-chain engine)."""

import numpy as np
import pytest

from repro.core.star_tree import orient_star_chain_tree
from repro.core.theorem5 import orient_theorem5
from repro.core.theorem6 import orient_theorem6
from repro.errors import InvalidParameterError
from repro.experiments.workloads import perturbed_star
from repro.geometry.points import PointSet
from tests.conftest import assert_result_valid


class TestTheorem5:
    def test_valid_on_uniform(self, uniform50):
        res = orient_theorem5(uniform50)
        assert res.range_bound == pytest.approx(np.sqrt(3.0))
        assert_result_valid(res)

    def test_three_antennas_max(self, clustered60):
        res = orient_theorem5(clustered60)
        assert int(res.assignment.counts().max()) <= 3

    def test_all_zero_spread(self, uniform50):
        res = orient_theorem5(uniform50)
        assert res.max_spread_sum() == 0.0

    def test_out_degree_invariant(self, clustered60):
        # Every vertex's intended out-degree is at most 3 (k antennae), and
        # the *root gadget* out-degree (chain heads) is at most 2.
        res = orient_theorem5(clustered60)
        out = {}
        for u, v in res.intended_edges:
            out[int(u)] = out.get(int(u), 0) + 1
        assert max(out.values()) <= 3

    def test_chain_edges_within_sqrt3(self, star5):
        res = orient_theorem5(star5)
        assert res.stats["max_chain_edge_normalized"] <= np.sqrt(3.0) + 1e-9
        assert_result_valid(res)

    def test_root_parameter(self, uniform50, tree50):
        res = orient_theorem5(uniform50, tree=tree50, root=7)
        assert_result_valid(res)

    def test_single_and_two_points(self):
        assert orient_theorem5(PointSet([[0, 0]])).intended_edges.size == 0
        res = orient_theorem5(PointSet([[0, 0], [1, 0]]))
        assert_result_valid(res)


class TestTheorem6:
    def test_valid_on_uniform(self, uniform50):
        res = orient_theorem6(uniform50)
        assert res.range_bound == pytest.approx(np.sqrt(2.0))
        assert_result_valid(res)

    def test_four_antennas_max(self, clustered60):
        res = orient_theorem6(clustered60)
        assert int(res.assignment.counts().max()) <= 4

    def test_chain_edges_within_sqrt2(self):
        for s in range(10):
            ps = PointSet(perturbed_star(5, leg=1, seed=s))
            res = orient_theorem6(ps)
            assert res.stats["max_chain_edge_normalized"] <= np.sqrt(2.0) + 1e-9
            assert_result_valid(res)

    def test_tighter_than_theorem5(self, star5):
        r5 = orient_theorem5(star5)
        r6 = orient_theorem6(star5)
        assert r6.range_bound < r5.range_bound


class TestStarChainEngine:
    def test_k5_behaves_like_folklore(self, uniform50):
        res = orient_star_chain_tree(uniform50, 5, 1.0, "k5")
        assert res.realized_range_normalized() <= 1.0 + 1e-9
        assert_result_valid(res)

    def test_k2_single_chains(self, uniform50):
        res = orient_star_chain_tree(uniform50, 2, 2.0, "k2-chains")
        assert_result_valid(res)
        assert int(res.assignment.counts().max()) <= 2

    def test_k1_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_star_chain_tree(uniform50, 1, 2.0, "bad")

    def test_stats_histogram(self, clustered60):
        res = orient_theorem5(clustered60)
        hist = res.stats["chains_per_vertex"]
        assert all(1 <= c <= 2 for c in hist)
        assert sum(hist.values()) >= 1
