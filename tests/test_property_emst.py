"""Hypothesis property tests for the EMST substrate."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import PointSet, pairwise_distances
from repro.spanning.emst import euclidean_mst
from repro.spanning.facts import check_fact1

coords_st = st.lists(
    st.tuples(
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ),
    min_size=2,
    max_size=24,
    unique=True,
)


def distinct(coords) -> bool:
    arr = np.asarray(coords, dtype=float)
    d = pairwise_distances(arr)
    np.fill_diagonal(d, np.inf)
    return bool(d.min() > 1e-9)


@settings(max_examples=60, deadline=None)
@given(coords_st)
def test_mst_weight_matches_networkx(coords):
    if not distinct(coords):
        return
    arr = np.asarray(coords, dtype=float)
    tree = euclidean_mst(PointSet(arr))
    g = nx.Graph()
    n = arr.shape[0]
    d = pairwise_distances(arr)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight=float(d[i, j]))
    expected = sum(dd["weight"] for _, _, dd in nx.minimum_spanning_tree(g).edges(data=True))
    assert abs(tree.total_weight - expected) <= 1e-6 * max(1.0, expected)


@settings(max_examples=60, deadline=None)
@given(coords_st)
def test_mst_structural_invariants(coords):
    if not distinct(coords):
        return
    arr = np.asarray(coords, dtype=float)
    tree = euclidean_mst(PointSet(arr))
    n = arr.shape[0]
    # Tree shape.
    assert tree.edges.shape == (n - 1, 2)
    assert tree.max_degree() <= 5
    # lmax is the bottleneck-connectivity threshold: removing every edge
    # strictly longer than lmax - eps disconnects nothing (they're all <=).
    assert tree.lengths.max() == tree.lmax
    # Fact 1 holds (angles >= pi/3 up to tolerance, chords bounded).
    rep = check_fact1(tree, check_empty_triangles=False)
    assert rep.ok, rep.violations[:2]


@settings(max_examples=40, deadline=None)
@given(coords_st, st.floats(min_value=0.1, max_value=10.0))
def test_mst_scale_invariance(coords, scale):
    if not distinct(coords):
        return
    arr = np.asarray(coords, dtype=float)
    t1 = euclidean_mst(PointSet(arr))
    t2 = euclidean_mst(PointSet(arr * scale))
    assert t1.edge_set() == t2.edge_set()
    assert t2.lmax == np.float64(t1.lmax * scale) or abs(t2.lmax - t1.lmax * scale) < 1e-9
