"""Tests for the batch planning engine (spec, cache, executor)."""

import numpy as np
import pytest

from repro.analysis.metrics import OrientationMetrics
from repro.engine import (
    ArtifactCache,
    GridCell,
    PlanRequest,
    Scenario,
    content_hash,
    execute_plan,
    run_instance_grid,
)
from repro.errors import InvalidParameterError
from repro.experiments.workloads import uniform_points
from repro.geometry.points import PointSet


def small_request(**kwargs) -> PlanRequest:
    return PlanRequest(
        scenarios=(
            Scenario("uniform", 20, seeds=2, tag="test-engine"),
            Scenario("grid", 16, seeds=1, tag="test-engine"),
        ),
        grid=(GridCell(1, np.pi), GridCell(2, 2 * np.pi / 3), GridCell(3, 0.0)),
        **kwargs,
    )


class TestScenario:
    def test_instances_deterministic(self):
        s = Scenario("uniform", 12, seeds=3, tag="t")
        a = list(s.instances())
        b = list(s.instances())
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_tag_namespaces_seeds(self):
        a = Scenario("uniform", 12, seeds=1, tag="a").instance(0)
        b = Scenario("uniform", 12, seeds=1, tag="b").instance(0)
        assert not np.array_equal(a, b)

    def test_seed_offset_shards(self):
        whole = Scenario("uniform", 12, seeds=4, tag="t")
        shard = Scenario("uniform", 12, seeds=2, tag="t", seed_offset=2)
        assert np.array_equal(whole.instance(2), shard.instance(0))

    def test_matches_legacy_table1_seeding(self):
        # Scenario seeding must reproduce the historical experiment
        # instances: stable_seed(tag, workload, n, index).
        from repro.experiments.workloads import make_workload
        from repro.utils.rng import stable_seed

        s = Scenario("uniform", 24, seeds=1, tag="table1")
        legacy = make_workload("uniform", 24, stable_seed("table1", "uniform", 24, 0))
        assert np.array_equal(s.instance(0), legacy)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workload": "nope", "n": 10},
            {"workload": "uniform", "n": 0},
            {"workload": "uniform", "n": 10, "seeds": 0},
            {"workload": "uniform", "n": 10, "seed_offset": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            Scenario(**kwargs)

    def test_index_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            Scenario("uniform", 10, seeds=2).instance(2)


class TestGridCell:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GridCell(0, np.pi)
        with pytest.raises(InvalidParameterError):
            GridCell(1, -0.1)
        with pytest.raises(InvalidParameterError):
            GridCell(1, 7.0)

    def test_phi_clamped_at_two_pi(self):
        """Values inside the acceptance slop above 2π snap to 2π exactly —
        downstream sector construction assumes φ ≤ 2π."""
        two_pi = 2.0 * np.pi
        assert GridCell(1, two_pi).phi == two_pi
        assert GridCell(1, two_pi + 1e-13).phi == two_pi
        assert GridCell(1, np.nextafter(two_pi, 7.0)).phi == two_pi
        with pytest.raises(InvalidParameterError):
            GridCell(1, two_pi + 1e-9)  # outside the slop: still rejected

    def test_label_is_display_only_identity_lives_elsewhere(self):
        """Two φ values closer than the 4-digit display precision collide in
        the display label — identity is carried by full-precision rendering
        (CLI tables, see test_cli) and by the exact-bits plan fingerprint."""
        from repro.store import plan_fingerprint

        a = GridCell(2, 3.14159)
        b = GridCell(2, 3.14161)
        assert a.label == b.label
        scenario = (Scenario("uniform", 8, tag="label-id"),)
        assert plan_fingerprint(PlanRequest(scenario, (a,))) != plan_fingerprint(
            PlanRequest(scenario, (b,))
        )


class TestPlanRequest:
    def test_counts(self):
        req = small_request()
        assert req.total_instances == 3
        assert req.total_runs == 9

    def test_needs_scenarios_and_cells(self):
        with pytest.raises(InvalidParameterError):
            PlanRequest((), (GridCell(1, np.pi),))
        with pytest.raises(InvalidParameterError):
            PlanRequest((Scenario("uniform", 10),), ())

    def test_sweep_builder(self):
        req = PlanRequest.sweep(
            workloads=["uniform", "grid"], sizes=[10, 20], seeds=2,
            ks=[1, 2], phis=[0.0, np.pi],
        )
        assert len(req.scenarios) == 4
        assert len(req.grid) == 4
        assert req.total_runs == 4 * 2 * 4

    def test_describe(self):
        assert "instances" in small_request().describe()


class TestContentHash:
    def test_stable_and_content_addressed(self):
        pts = uniform_points(10, seed=3)
        assert content_hash(pts) == content_hash(pts.copy())
        assert content_hash(pts) == content_hash(PointSet(pts))
        assert content_hash(pts) != content_hash(pts + 1e-12)


class TestArtifactCache:
    def test_one_build_per_instance(self):
        cache = ArtifactCache()
        pts = uniform_points(15, seed=1)
        t1 = cache.tree(pts)
        t2 = cache.tree(pts.copy())
        assert t1 is t2
        assert cache.stats.tree_builds == 1
        assert cache.stats.hits == 1
        d1 = cache.distances(pts)
        d2 = cache.distances(pts)
        assert d1 is d2
        assert cache.stats.distance_builds == 1

    def test_distances_match_pointset(self):
        cache = ArtifactCache()
        pts = uniform_points(8, seed=5)
        assert np.allclose(cache.distances(pts), PointSet(pts).distance_matrix())

    def test_lru_eviction(self):
        cache = ArtifactCache(maxsize=2)
        a, b, c = (uniform_points(6, seed=s) for s in range(3))
        cache.tree(a), cache.tree(b), cache.tree(c)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.tree(a)  # evicted -> rebuilt
        assert cache.stats.tree_builds == 4


class TestRunInstanceGrid:
    def test_one_emst_per_instance_across_grid(self):
        """The tentpole cache guarantee: 1 EMST build per instance per sweep."""
        cache = ArtifactCache()
        grid = (GridCell(1, np.pi), GridCell(2, np.pi), GridCell(3, 0.0),
                GridCell(4, 0.0))
        for seed in range(3):
            metrics, facts = run_instance_grid(
                uniform_points(18, seed=seed), grid, cache=cache
            )
            assert len(metrics) == len(grid)
            assert facts["lmax"] > 0
            assert facts["diameter"] >= facts["lmax"]
        assert cache.stats.tree_builds == 3
        # The engine now reads diameters from the kernel polar tables; the
        # legacy einsum distance matrix is only built for callers who ask.
        assert cache.stats.polar_builds == 3
        assert cache.stats.distance_builds == 0
        # One miss per instance (first touch), then tree + polar hit.
        assert cache.stats.misses == 3
        assert cache.stats.hits == 2 * 3


class TestExecutePlan:
    def test_serial_results_in_plan_order(self):
        req = small_request()
        batch = execute_plan(req, jobs=1)
        assert len(batch.records) == req.total_runs
        expected = [
            (s.label, i, cell)
            for s in req.scenarios
            for i in range(s.seeds)
            for cell in req.grid
        ]
        got = [
            (r.scenario.label, r.instance_index, r.cell) for r in batch.records
        ]
        assert got == expected

    def test_parallel_bit_identical_to_serial(self):
        """Determinism: jobs=3 returns bit-identical OrientationMetrics."""
        req = small_request()
        serial = execute_plan(req, jobs=1)
        parallel = execute_plan(req, jobs=3)
        assert parallel.fallback_reason is None
        a = [r.metrics for r in serial.records]
        b = [r.metrics for r in parallel.records]
        assert a == b  # exact float equality, field by field

    def test_cache_hit_accounting(self):
        req = small_request()
        cache = ArtifactCache()
        execute_plan(req, jobs=1, cache=cache)
        assert cache.stats.tree_builds == req.total_instances
        assert cache.stats.misses == req.total_instances

    def test_parallel_merges_worker_cache_stats(self):
        req = small_request()
        batch = execute_plan(req, jobs=2)
        assert batch.cache_stats.tree_builds == req.total_instances

    def test_result_stats_are_per_run_deltas(self):
        """A reused caller cache must not inflate a later result's stats."""
        req = small_request()
        cache = ArtifactCache()
        first = execute_plan(req, jobs=1, cache=cache)
        second = execute_plan(req, jobs=1, cache=cache)
        assert first.cache_stats.tree_builds == req.total_instances
        assert second.cache_stats.tree_builds == 0  # warm cache: all hits
        assert second.cache_stats.misses == 0
        # And the first result's record did not mutate retroactively.
        assert first.cache_stats.tree_builds == req.total_instances

    def test_aggregate_by_cell_row_per_cell(self):
        req = small_request()
        batch = execute_plan(req)
        rows = batch.aggregate_by_cell()
        assert len(rows) == len(req.grid)
        assert all(row["runs"] == req.total_instances for row in rows)

    def test_aggregate_by_scenario_cell(self):
        req = small_request()
        batch = execute_plan(req)
        rows = batch.aggregate_by_scenario_cell()
        assert len(rows) == len(req.scenarios) * len(req.grid)
        assert rows[0]["workload"] == "uniform"
        assert rows[-1]["workload"] == "grid"
        assert all(r["runs"] == s.seeds
                   for s, block in zip(req.scenarios, _chunks(rows, len(req.grid)))
                   for r in block)

    def test_skip_critical_propagates(self):
        req = small_request(compute_critical=False)
        batch = execute_plan(req)
        assert all(np.isnan(r.metrics.critical_range) for r in batch.records)
        rows = batch.aggregate_by_cell()
        assert all(row["critical_max"] is None for row in rows)
        assert all(row["bound_ok"] is None for row in rows)

    def test_on_instance_progress_hook(self):
        seen = []
        execute_plan(small_request(), on_instance=seen.append)
        assert len(seen) == 3
        assert {(r.scenario_index, r.instance_index) for r in seen} == {
            (0, 0), (0, 1), (1, 0)
        }

    def test_identical_predicate_handles_nan(self):
        req = small_request(compute_critical=False)
        a = execute_plan(req).records[0].metrics
        b = execute_plan(req).records[0].metrics
        assert isinstance(a, OrientationMetrics)
        assert a != b          # dataclass == is poisoned by NaN
        assert a.identical(b)  # the engine's determinism predicate


def _chunks(seq, size):
    return [seq[i : i + size] for i in range(0, len(seq), size)]
