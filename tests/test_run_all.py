"""Tests for the run_all entry point (``python -m repro.experiments.run_all``)."""

import pytest

from repro.experiments.run_all import main


class TestRunAllCli:
    def test_single_experiment_to_stdout(self, capsys):
        assert main(["--only", "X5"]) == 0
        out = capsys.readouterr().out
        assert "### X5" in out
        assert "| n |" in out

    def test_write_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "body.md"
        assert main(["--only", "F1", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("### F1")
        assert "necessity tight" in text
        # Progress goes to stderr, body file only to --out.
        assert "### F1" not in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "NOPE"])

    def test_multiple_ids_ordered(self, tmp_path):
        out_file = tmp_path / "two.md"
        assert main(["--only", "X5", "F1", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.index("### X5") < text.index("### F1")
