"""Tests for the run_all entry point (``python -m repro.experiments.run_all``)."""

import pytest

from repro.experiments.run_all import main


class TestRunAllCli:
    def test_single_experiment_to_stdout(self, capsys):
        assert main(["--only", "X5"]) == 0
        out = capsys.readouterr().out
        assert "### X5" in out
        assert "| n |" in out

    def test_write_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "body.md"
        assert main(["--only", "F1", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("### F1")
        assert "necessity tight" in text
        # Progress goes to stderr, body file only to --out.
        assert "### F1" not in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "NOPE"])

    def test_multiple_ids_ordered(self, tmp_path):
        out_file = tmp_path / "two.md"
        assert main(["--only", "X5", "F1", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.index("### X5") < text.index("### F1")

    def test_jobs_produces_identical_rows(self, tmp_path):
        """--jobs N must emit the same markdown body as the serial run."""
        serial, parallel = tmp_path / "serial.md", tmp_path / "parallel.md"
        args = ["--only", "X1", "--out"]
        assert main(args + [str(serial)]) == 0
        assert main(args + [str(parallel), "--jobs", "2"]) == 0
        assert serial.read_text() == parallel.read_text()

    def test_run_dir_resume_replays_identically(self, tmp_path, capsys):
        """A finished --run-dir run resumes from ledger with the same body."""
        first, resumed = tmp_path / "a.md", tmp_path / "b.md"
        run_dir = str(tmp_path / "runs")
        args = ["--only", "X1", "--run-dir", run_dir, "--out"]
        assert main(args + [str(first)]) == 0
        assert main(args + [str(resumed), "--resume"]) == 0
        assert first.read_text() == resumed.read_text()
        # Forgetting --resume on a used run dir: clean error, not a traceback.
        capsys.readouterr()
        assert main(args + [str(tmp_path / "c.md")]) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_requires_run_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "X5", "--resume"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "F1", "--jobs", "0"])


class TestRegistryJobs:
    def test_supports_jobs_flags_engine_drivers(self):
        from repro.experiments.registry import supports_jobs

        assert supports_jobs("T1")
        assert supports_jobs("X1")
        assert not supports_jobs("F1")

    def test_run_experiment_forwards_jobs_to_serial_driver(self):
        from repro.experiments.registry import run_experiment

        rec = run_experiment("F1", jobs=4)  # serial driver: jobs ignored
        assert rec.experiment_id == "F1"
