"""Unit tests for the k = 1 algorithm family (repro.core.kone)."""

import numpy as np
import pytest

from repro.core.bounds import kone_pair_bound
from repro.core.kone import (
    orient_k1,
    orient_k1_pairs,
    orient_k1_tour,
    saturating_matching,
)
from repro.errors import InvalidParameterError
from repro.experiments.workloads import spider_points, uniform_points
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from tests.conftest import assert_result_valid

PI = np.pi


class TestSaturatingMatching:
    def test_matching_is_symmetric_and_on_edges(self, tree50):
        m = saturating_matching(tree50)
        edge_set = tree50.edge_set()
        for u, v in m.items():
            assert m[v] == u
            assert (min(u, v), max(u, v)) in edge_set

    def test_all_internal_saturated(self):
        for seed in range(30):
            tree = euclidean_mst(PointSet(uniform_points(40, seed=seed)))
            m = saturating_matching(tree)
            deg = tree.degrees()
            for v in range(tree.n):
                if deg[v] >= 2:
                    assert v in m, f"internal vertex {v} unmatched (seed {seed})"

    def test_spider_center_saturated(self):
        tree = euclidean_mst(PointSet(spider_points(3, 2)))
        m = saturating_matching(tree)
        center = int(np.argmax(tree.degrees()))
        assert center in m

    def test_two_vertices(self):
        tree = euclidean_mst(PointSet([[0, 0], [1, 0]]))
        m = saturating_matching(tree)
        # Both are leaves: empty matching is acceptable.
        for u, v in m.items():
            assert m[v] == u

    def test_single_vertex(self):
        assert saturating_matching(euclidean_mst(PointSet([[0, 0]]))) == {}


class TestOrientK1Pairs:
    @pytest.mark.parametrize("phi", [PI, 1.2 * PI, 1.5 * PI])
    def test_valid_and_bounded(self, phi, uniform50):
        res = orient_k1_pairs(uniform50, phi)
        assert res.range_bound == pytest.approx(kone_pair_bound(phi))
        assert int(res.assignment.counts().max()) == 1
        assert_result_valid(res)

    def test_spread_is_phi(self, uniform50):
        res = orient_k1_pairs(uniform50, 1.3 * PI)
        assert res.max_spread_sum() <= 1.3 * PI + 1e-9

    def test_phi_below_pi_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_k1_pairs(uniform50, 0.9 * PI)

    def test_spider_instance(self):
        ps = PointSet(spider_points(3, 2))
        res = orient_k1_pairs(ps, PI)
        assert_result_valid(res)

    def test_range_tightens_with_phi(self, uniform50):
        r1 = orient_k1_pairs(uniform50, PI)
        r2 = orient_k1_pairs(uniform50, 1.5 * PI)
        assert r2.range_bound < r1.range_bound


class TestOrientK1Tour:
    def test_hamiltonian_structure(self, uniform50):
        res = orient_k1_tour(uniform50)
        n = len(uniform50)
        assert res.intended_edges.shape == (n, 2)
        out = np.bincount(res.intended_edges[:, 0], minlength=n)
        inn = np.bincount(res.intended_edges[:, 1], minlength=n)
        assert np.all(out == 1) and np.all(inn == 1)
        assert_result_valid(res)

    def test_zero_spread(self, uniform50):
        res = orient_k1_tour(uniform50)
        assert res.max_spread_sum() == 0.0

    def test_stats_include_lower_bound(self, uniform50):
        res = orient_k1_tour(uniform50)
        assert res.stats["paper_row_bound"] == 2.0
        assert res.stats["approx_ratio"] >= 1.0 - 1e-12

    def test_spider_exceeds_two(self):
        ps = PointSet(spider_points(3, 2))
        res = orient_k1_tour(ps)
        # The optimal bottleneck on the 3-leg spider is > 2 lmax.
        assert res.range_bound > 2.0


class TestOrientK1Dispatch:
    def test_regimes(self, uniform50):
        assert orient_k1(uniform50, 0.5).algorithm == "k1-tour"
        assert orient_k1(uniform50, 1.1 * PI).algorithm == "k1-pairs"
        assert orient_k1(uniform50, 1.7 * PI).algorithm == "theorem2"

    def test_negative_phi_rejected(self, uniform50):
        with pytest.raises(InvalidParameterError):
            orient_k1(uniform50, -0.1)

    def test_all_regimes_valid(self, clustered60):
        for phi in (0.0, PI, 1.3 * PI, 1.7 * PI):
            assert_result_valid(orient_k1(clustered60, phi))
