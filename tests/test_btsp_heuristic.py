"""Unit tests for repro.btsp.heuristic."""

import numpy as np
import pytest

from repro.btsp.exact import held_karp_bottleneck
from repro.btsp.heuristic import (
    best_tour,
    bottleneck_lower_bound,
    nearest_neighbor_tour,
    tour_bottleneck,
    two_opt_bottleneck,
)
from repro.experiments.workloads import spider_points, uniform_points
from repro.geometry.points import PointSet, pairwise_distances


class TestNearestNeighbor:
    def test_valid_permutation(self, rng):
        coords = rng.random((15, 2))
        d = pairwise_distances(coords)
        order = nearest_neighbor_tour(d, 0)
        assert sorted(order) == list(range(15))

    def test_different_starts(self, rng):
        coords = rng.random((10, 2))
        d = pairwise_distances(coords)
        assert nearest_neighbor_tour(d, 3)[0] == 3


class TestTwoOpt:
    def test_never_worse(self, rng):
        for _ in range(10):
            coords = rng.random((12, 2))
            d = pairwise_distances(coords)
            seed_order = nearest_neighbor_tour(d)
            improved = two_opt_bottleneck(d, seed_order)
            assert tour_bottleneck(d, improved) <= tour_bottleneck(d, seed_order) + 1e-12
            assert sorted(improved) == list(range(12))

    def test_small_instances_passthrough(self, rng):
        d = pairwise_distances(rng.random((3, 2)))
        assert two_opt_bottleneck(d, [0, 1, 2]) == [0, 1, 2]


class TestLowerBound:
    def test_at_most_optimum(self, rng):
        for _ in range(8):
            coords = rng.random((8, 2)) * 4
            lb = bottleneck_lower_bound(coords)
            _, opt = held_karp_bottleneck(coords)
            assert lb <= opt + 1e-9

    def test_square_is_tight(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        assert bottleneck_lower_bound(pts) == pytest.approx(1.0)

    def test_trivial(self):
        assert bottleneck_lower_bound(np.array([[0.0, 0.0]])) == 0.0


class TestBestTour:
    def test_exact_on_small(self, rng):
        coords = rng.random((9, 2))
        res = best_tour(coords)
        assert res.method == "held-karp"
        _, opt = held_karp_bottleneck(coords)
        assert res.bottleneck == pytest.approx(opt)

    def test_heuristic_on_large(self, rng):
        coords = uniform_points(50, seed=rng)
        res = best_tour(coords)
        assert res.method == "nn+2opt"
        assert sorted(res.order) == list(range(50))
        assert res.ratio >= 1.0 - 1e-12

    def test_quality_on_uniform(self):
        # Heuristic stays within 3x of the certified lower bound here.
        coords = uniform_points(60, seed=11)
        res = best_tour(coords)
        assert res.ratio <= 3.0

    def test_spider_optimum_exceeds_two_lmax(self):
        ps = PointSet(spider_points(3, 2))
        res = best_tour(ps)
        # lmax = 1 for the spider's unit legs.
        assert res.bottleneck > 2.0
        assert res.lower_bound > 2.0
