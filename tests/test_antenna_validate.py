"""Unit tests for repro.antenna.validate."""

import numpy as np

from repro.antenna.model import AntennaAssignment
from repro.antenna.validate import validate_assignment
from repro.geometry.points import PointSet
from repro.geometry.sectors import Sector, sector_toward


def triangle() -> PointSet:
    return PointSet([[0, 0], [1, 0], [0.5, 1.0]])


def good_cycle(ps: PointSet) -> tuple[AntennaAssignment, np.ndarray]:
    a = AntennaAssignment(3)
    edges = []
    for i in range(3):
        j = (i + 1) % 3
        a.add(i, sector_toward(ps[i], ps[j], radius=2.0))
        edges.append((i, j))
    return a, np.asarray(edges)


class TestValidateAssignment:
    def test_valid_cycle_passes(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        rep = validate_assignment(ps, a, edges, k=1, phi=0.0, range_bound=2.0)
        assert rep.ok
        assert rep.max_antennas == 1
        assert "OK" in rep.summary()

    def test_antenna_count_violation(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        a.add(0, Sector(0.0, 0.0, 1.0))
        rep = validate_assignment(ps, a, edges, k=1)
        assert not rep.ok
        assert any(i.kind == "antenna-count" for i in rep.issues)

    def test_spread_budget_violation(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        a.add(1, Sector(0.0, 1.0, 1.0))
        rep = validate_assignment(ps, a, edges, phi=0.5)
        assert any(i.kind == "spread-budget" for i in rep.issues)

    def test_uncovered_intended_edge(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        bad_edges = np.vstack([edges, [[0, 2]]])  # 0 has no antenna at 2
        rep = validate_assignment(ps, a, bad_edges)
        assert any(i.kind == "uncovered-intended-edge" for i in rep.issues)

    def test_range_bound_violation(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        rep = validate_assignment(ps, a, edges, range_bound=0.5)
        assert any(i.kind == "range-bound" for i in rep.issues)

    def test_intended_not_strongly_connected(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        rep = validate_assignment(ps, a, edges[:2])  # missing the closing edge
        assert any(i.kind == "intended-connectivity" for i in rep.issues)

    def test_transmission_check_can_be_skipped(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        rep = validate_assignment(ps, a, edges, check_transmission=False)
        assert rep.ok

    def test_multiple_issues_collected(self):
        ps = triangle()
        a, edges = good_cycle(ps)
        a.add(0, Sector(0.0, 3.0, 1.0))
        rep = validate_assignment(ps, a, edges, k=1, phi=0.1, range_bound=0.2)
        kinds = {i.kind for i in rep.issues}
        assert {"antenna-count", "spread-budget", "range-bound"} <= kinds
