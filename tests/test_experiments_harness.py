"""Unit tests for the experiment harness and record rendering."""

import numpy as np
import pytest

from repro.experiments.harness import (
    ExperimentRecord,
    aggregate_rows,
    run_config,
    seeded_instances,
)
from repro.experiments.workloads import uniform_points


class TestRunConfig:
    def test_basic_run(self):
        m = run_config(uniform_points(25, seed=0), 2, np.pi)
        assert m.strongly_connected
        assert m.bound_satisfied()

    def test_skip_critical(self):
        m = run_config(uniform_points(25, seed=0), 3, 0.0, compute_critical=False)
        assert np.isnan(m.critical_range)


class TestAggregateRows:
    def test_aggregates(self):
        ms = [run_config(uniform_points(20, seed=s), 2, np.pi) for s in range(3)]
        agg = aggregate_rows(ms)
        assert agg["runs"] == 3
        assert agg["all_connected"]
        assert agg["bound_ok"]
        assert agg["critical_max"] >= agg["critical_mean"] - 1e-12

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_rows([])

    def test_all_nan_critical_reports_none_without_warnings(self):
        """compute_critical=False rows must aggregate to None, not NaN."""
        ms = [
            run_config(uniform_points(20, seed=s), 2, np.pi, compute_critical=False)
            for s in range(2)
        ]
        with np.errstate(all="raise"):  # any RuntimeWarning becomes an error
            agg = aggregate_rows(ms)
        assert agg["critical_max"] is None
        assert agg["critical_mean"] is None
        assert agg["bound_ok"] is None
        assert agg["realized_max"] > 0

    def test_mixed_nan_critical_uses_measured_runs_only(self):
        with_crit = run_config(uniform_points(20, seed=0), 2, np.pi)
        without = run_config(uniform_points(20, seed=1), 2, np.pi,
                             compute_critical=False)
        agg = aggregate_rows([with_crit, without])
        assert agg["critical_max"] == pytest.approx(with_crit.critical_range)
        assert agg["bound_ok"] == with_crit.bound_satisfied()


class TestRunConfigCache:
    def test_cache_shares_tree_across_configs(self):
        from repro.engine import ArtifactCache

        cache = ArtifactCache()
        pts = uniform_points(25, seed=0)
        for k, phi in ((1, np.pi), (2, np.pi), (3, 0.0)):
            run_config(pts, k, phi, cache=cache)
        assert cache.stats.tree_builds == 1

    def test_cached_equals_uncached(self):
        from repro.engine import ArtifactCache

        pts = uniform_points(25, seed=0)
        assert run_config(pts, 2, np.pi, cache=ArtifactCache()) == run_config(
            pts, 2, np.pi
        )


class TestExperimentRecord:
    def make(self) -> ExperimentRecord:
        rec = ExperimentRecord("T9", "demo", ["a", "b"])
        rec.add(1, 2.5)
        rec.add("x", True)
        rec.note("hello")
        return rec

    def test_ascii_contains_title_and_note(self):
        text = self.make().to_ascii()
        assert "[T9] demo" in text
        assert "note: hello" in text

    def test_markdown_structure(self):
        md = self.make().to_markdown()
        assert md.startswith("### T9")
        assert "| a | b |" in md
        assert "> hello" in md


class TestSeededInstances:
    def test_deterministic(self):
        gen = lambda n, seed: uniform_points(n, seed=seed)
        a = list(seeded_instances(gen, 10, 3, "tag"))
        b = list(seeded_instances(gen, 10, 3, "tag"))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        c = list(seeded_instances(gen, 10, 3, "other"))
        assert not np.array_equal(a[0], c[0])
