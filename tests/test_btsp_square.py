"""Unit tests for repro.btsp.square."""

import numpy as np
import pytest

from repro.btsp.square import (
    caterpillar_spine,
    caterpillar_square_tour,
    is_caterpillar,
    tree_square_edges,
)
from repro.errors import InvalidParameterError
from repro.experiments.workloads import caterpillar_points, spider_points
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree, euclidean_mst


def path_tree(n: int) -> SpanningTree:
    ps = PointSet([[float(i), 0.0] for i in range(n)])
    return SpanningTree(ps, np.array([[i, i + 1] for i in range(n - 1)]))


def star_tree(d: int) -> SpanningTree:
    ang = np.linspace(0, 2 * np.pi, d, endpoint=False)
    pts = np.vstack([[0, 0], np.stack([np.cos(ang), np.sin(ang)], axis=1)])
    return SpanningTree(PointSet(pts), np.array([[0, i] for i in range(1, d + 1)]))


class TestTreeSquare:
    def test_path_square(self):
        t = path_tree(5)
        sq = {tuple(e) for e in tree_square_edges(t)}
        assert (0, 1) in sq and (0, 2) in sq
        assert (0, 3) not in sq

    def test_star_square_is_complete(self):
        t = star_tree(4)
        sq = tree_square_edges(t)
        assert sq.shape[0] == 5 * 4 // 2


class TestCaterpillarDetection:
    def test_paths_are_caterpillars(self):
        assert is_caterpillar(path_tree(6))

    def test_stars_are_caterpillars(self):
        assert is_caterpillar(star_tree(5))

    def test_spider_is_not(self):
        tree = euclidean_mst(PointSet(spider_points(3, 2)))
        assert not is_caterpillar(tree)

    def test_generated_caterpillars(self):
        for s in range(5):
            tree = euclidean_mst(PointSet(caterpillar_points(7, seed=s)))
            assert is_caterpillar(tree)

    def test_spine_of_path(self):
        spine = caterpillar_spine(path_tree(6))
        assert spine is not None
        assert len(spine) == 4  # internal vertices only


class TestSquareTour:
    def _assert_square_tour(self, tree: SpanningTree, tour: list[int]) -> None:
        assert sorted(tour) == list(range(tree.n))
        adj = [set(a) for a in tree.adjacency()]
        for i in range(len(tour)):
            a, b = tour[i], tour[(i + 1) % len(tour)]
            assert b in adj[a] or (adj[a] & adj[b]), f"hop ({a},{b}) too long"

    @pytest.mark.parametrize("n", [3, 4, 5, 8, 13])
    def test_path_tours(self, n):
        tree = path_tree(n)
        self._assert_square_tour(tree, caterpillar_square_tour(tree))

    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_star_tours(self, d):
        tree = star_tree(d)
        self._assert_square_tour(tree, caterpillar_square_tour(tree))

    def test_random_caterpillars(self):
        for s in range(8):
            tree = euclidean_mst(PointSet(caterpillar_points(6, seed=100 + s)))
            self._assert_square_tour(tree, caterpillar_square_tour(tree))

    def test_bottleneck_within_two_lmax(self):
        for s in range(5):
            ps = PointSet(caterpillar_points(7, seed=200 + s))
            tree = euclidean_mst(ps)
            tour = caterpillar_square_tour(tree)
            coords = ps.coords
            idx = np.asarray(tour + [tour[0]])
            diffs = coords[idx[:-1]] - coords[idx[1:]]
            bottleneck = float(np.hypot(diffs[:, 0], diffs[:, 1]).max())
            assert bottleneck <= 2 * tree.lmax + 1e-9

    def test_non_caterpillar_rejected(self):
        tree = euclidean_mst(PointSet(spider_points(3, 2)))
        with pytest.raises(InvalidParameterError):
            caterpillar_square_tour(tree)

    def test_tiny(self):
        assert caterpillar_square_tour(path_tree(2)) == [0, 1]
