"""Direct handler-level tests covering EVERY branch of Theorem 3's analysis.

The degree-5 "first case" (real parent outside the covered point's gap) only
arises when a deg-5 vertex is itself the target of a sibling delegation —
vanishingly rare in random instances — so these tests drive the case
handlers directly on hand-built geometry: vertex ``u`` at the origin with
four unit children, a unit parent, and a sibling vertex ``p`` on the zero
ray.  Each recipe pins the angles so exactly one branch can fire.
"""

import numpy as np

from repro.core import theorem3_cases as cases
from repro.core.bounds import thm3_part1_bound, thm3_part2_bound
from repro.core.theorem3 import Theorem3Engine
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree
from repro.spanning.rooted import RootedTree

PI = np.pi


def build_star(child_pos, parent_pos, *, n_children=None, sibling_r=0.9):
    """Vertices: 0=parent, 1=u (origin), 2..=children, last=sibling p.

    ``child_pos`` are ccw offsets from the ray u→p (p sits on angle 0), so
    absolute child angles equal their positions.  All children and the
    parent are at radius 1 from u.
    """
    pts = []
    pts.append((np.cos(parent_pos), np.sin(parent_pos)))  # 0: parent
    pts.append((0.0, 0.0))  # 1: u
    for a in child_pos:
        pts.append((np.cos(a), np.sin(a)))
    pts.append((sibling_r, 0.0))  # sibling p on the zero ray
    ps = PointSet(np.asarray(pts))
    m = len(child_pos)
    edges = [[0, 1], [0, m + 2]] + [[1, 2 + i] for i in range(m)]
    tree = SpanningTree(ps, np.asarray(edges))
    return ps, tree, m + 2  # sibling index


def run_handler(child_pos, parent_pos, phi, part, handler):
    ps, tree, p_idx = build_star(child_pos, parent_pos)
    rooted = RootedTree(tree, 0)
    bound = thm3_part1_bound() if part == 1 else thm3_part2_bound(phi)
    engine = Theorem3Engine(rooted, phi, part, bound * tree.lmax)
    ctx = cases.NodeCtx.build(engine, 1, p_idx)
    handler(ctx)
    engine.check_spread(1)
    # Contract: every child scheduled exactly once; p covered by u.
    pushed = sorted(c for c, _ in ctx.pushes)
    assert pushed == sorted(ctx.children)
    assert (1, p_idx) in engine.intended
    # Every intended edge from u is actually covered by u's sectors.
    coords = ps.coords
    for a, b in engine.intended:
        if a == 1:
            assert any(
                s.covers_point(coords[1], coords[b]) for s in engine.assignment[1]
            ), f"intended edge (1, {b}) uncovered"
    return engine, ctx


def fired(engine) -> str:
    labels = [lbl for lbl in engine.stats["cases"] if lbl != "root"]
    assert len(labels) == 1, labels
    return labels[0]


PHI2 = 2 * PI / 3 + 0.02  # part-2 budget used by most recipes


class TestDeg5Part1FirstCase:
    def test_inner(self):
        # Parent in gap (c3, c4): sweep c4 -> c2 (through p, c1).
        eng, _ = run_handler(
            (0.9, 2.0, 3.1, 5.3), 4.0, PI, 1, cases.handle_deg5_part1
        )
        assert fired(eng) == "deg5.p1.inner"

    def test_inner_mirror(self):
        # Parent in gap (c1, c2): sweep c3 -> c1 (through c4, p).
        eng, _ = run_handler(
            (0.8, 2.2, 4.0, 5.0), 1.5, PI, 1, cases.handle_deg5_part1
        )
        assert fired(eng) == "deg5.p1.inner.mirror"

    def test_second_case_biggap(self):
        eng, _ = run_handler(
            (1.3, 2.5, 3.7, 4.9), 6.1, PI, 1, cases.handle_deg5_part1
        )
        assert fired(eng).startswith("deg5.biggap")


class TestDeg5Part2FirstCase:
    def test_wide(self):
        eng, _ = run_handler(
            (0.4, 1.2, 3.0, 4.6), 3.5, 0.95 * PI, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.first.wide"

    def test_wide_mirror(self):
        eng, _ = run_handler(
            (0.4, 1.5, 4.0, 5.0), 0.9, 0.95 * PI, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.first.wide.mirror"

    def test_delegate(self):
        eng, _ = run_handler(
            (0.5, 2.0, 3.2, 4.8), 3.9, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.first.delegate"

    def test_delegate_mirror(self):
        eng, _ = run_handler(
            (0.5, 2.1, 3.6, 5.1), 1.3, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.first.delegate.mirror"


class TestDeg5Part2SecondCase:
    def test_biggap(self):
        eng, _ = run_handler(
            (0.7, 1.8, 2.9, 5.9), 6.2, 0.95 * PI, 2, cases.handle_deg5_part2
        )
        assert fired(eng).startswith("deg5.biggap")

    def test_c3p(self):
        # sweep(c4 -> c1) > phi but sweep(c3 -> p) <= phi.
        eng, _ = run_handler(
            (1.6, 2.6, 4.3, 5.5), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.c3p"

    def test_pc2(self):
        # sweep(c4 -> c1) and sweep(c3 -> p) > phi; sweep(p -> c2) <= phi.
        eng, _ = run_handler(
            (1.2, 2.0, 3.6, 5.2), 0.05, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.pc2"

    def test_e(self):
        eng, _ = run_handler(
            (1.4, 2.5, 3.6, 5.08), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.e"

    def test_f(self):
        eng, _ = run_handler(
            (1.5, 2.6, 3.5, 5.48), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.f"

    def test_f_mirror(self):
        eng, _ = run_handler(
            (0.8, 2.3, 3.2, 4.78), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.f.mirror"

    def test_g(self):
        eng, _ = run_handler(
            (1.3, 2.2, 3.4, 5.38), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.g"

    def test_g_mirror(self):
        eng, _ = run_handler(
            (0.9, 2.3, 3.5, 4.98), 6.2, PHI2, 2, cases.handle_deg5_part2
        )
        assert fired(eng) == "deg5.p2.second.g.mirror"


class TestDeg4Branches:
    def test_p2_b_zero_to_p(self):
        # Both c3->c1 (through p) > phi and c1->c3 <= phi: antenna over the
        # children, zero-spread antenna at p.
        eng, _ = run_handler(
            (1.2, 2.2, 3.9), 0.0, 0.95 * PI, 2, cases.handle_deg4_part2
        )
        assert fired(eng) == "deg4.p2.b"

    def test_p2_a_through_p(self):
        eng, _ = run_handler(
            (0.5, 2.5, 5.5), 0.0, 0.95 * PI, 2, cases.handle_deg4_part2
        )
        assert fired(eng) == "deg4.p2.a"

    def test_p2_c_delegation(self):
        eng, _ = run_handler(
            (1.3, 2.9, 4.7), 0.0, PHI2, 2, cases.handle_deg4_part2
        )
        assert fired(eng) == "deg4.p2.c"

    def test_p1_both_orientations(self):
        eng, _ = run_handler((0.8, 2.0, 3.5), 0.0, PI, 1, cases.handle_deg4_part1)
        assert fired(eng) == "deg4.p1.forward"
        eng, _ = run_handler((2.5, 4.2, 5.5), 0.0, PI, 1, cases.handle_deg4_part1)
        assert fired(eng) == "deg4.p1.backward"


class TestDelegationContracts:
    """Delegated children are scheduled at their sibling, the rest at u."""

    def test_delegation_targets(self):
        eng, ctx = run_handler(
            (0.5, 2.0, 3.2, 4.8), 3.9, PHI2, 2, cases.handle_deg5_part2
        )
        targets = dict(ctx.pushes)
        # Receiver c3 (index 2 -> vertex 4) is covered by a sibling, so some
        # child is scheduled with target == that receiver.
        receiver = ctx.children[2]
        donors = [c for c, t in ctx.pushes if t == receiver]
        assert len(donors) == 1
        # The receiver itself must point back at u.
        assert targets[receiver] == 1
