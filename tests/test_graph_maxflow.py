"""Unit tests for repro.graph.maxflow (Dinic)."""

import pytest

from repro.graph.maxflow import Dinic


class TestDinic:
    def test_single_edge(self):
        d = Dinic(2)
        d.add_edge(0, 1, 5)
        assert d.max_flow(0, 1) == 5

    def test_series_bottleneck(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5)
        d.add_edge(1, 2, 3)
        assert d.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2)
        d.add_edge(1, 3, 2)
        d.add_edge(0, 2, 3)
        d.add_edge(2, 3, 3)
        assert d.max_flow(0, 3) == 5

    def test_classic_diamond(self):
        d = Dinic(4)
        d.add_edge(0, 1, 10)
        d.add_edge(0, 2, 10)
        d.add_edge(1, 2, 1)
        d.add_edge(1, 3, 10)
        d.add_edge(2, 3, 10)
        assert d.max_flow(0, 3) == 20

    def test_no_path(self):
        d = Dinic(3)
        d.add_edge(0, 1, 4)
        assert d.max_flow(0, 2) == 0

    def test_limit_short_circuits(self):
        d = Dinic(2)
        d.add_edge(0, 1, 100)
        assert d.max_flow(0, 1, limit=7) >= 7

    def test_same_source_sink_raises(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.max_flow(1, 1)

    def test_negative_capacity_raises(self):
        d = Dinic(2)
        with pytest.raises(ValueError):
            d.add_edge(0, 1, -1)

    def test_long_chain(self):
        n = 3000
        d = Dinic(n)
        for i in range(n - 1):
            d.add_edge(i, i + 1, 2)
        assert d.max_flow(0, n - 1) == 2
