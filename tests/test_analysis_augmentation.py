"""Unit tests for the 2-connectivity augmentation (§5 open problem)."""

import numpy as np
import pytest

from repro.analysis.augmentation import augment_to_biconnectivity
from repro.analysis.robustness import strong_connectivity_order
from repro.core.planner import orient_antennae
from repro.experiments.workloads import make_workload, spider_points
from repro.geometry.points import PointSet

PI = np.pi


class TestAugmentation:
    @pytest.mark.parametrize("k,phi", [(2, PI), (3, 0.0), (5, 0.0)])
    def test_achieves_two_connectivity(self, k, phi):
        pts = PointSet(make_workload("uniform", 24, seed=31))
        base = orient_antennae(pts, k, phi)
        augmented, report = augment_to_biconnectivity(base)
        assert report.achieved
        g = augmented.transmission_graph()
        assert strong_connectivity_order(g) >= 2

    def test_reports_extra_cost(self):
        pts = PointSet(make_workload("uniform", 24, seed=31))
        base = orient_antennae(pts, 2, PI)
        augmented, report = augment_to_biconnectivity(base)
        assert report.extra_antennae == len(report.extra_edges)
        assert report.extra_antennae >= 1  # tree-backed nets are 1-connected
        assert report.max_antennas_per_node >= 2
        assert augmented.algorithm.endswith("+2conn")
        assert augmented.stats["augmentation_extra"] == report.extra_antennae

    def test_input_not_mutated(self):
        pts = PointSet(make_workload("uniform", 20, seed=7))
        base = orient_antennae(pts, 3, 0.0)
        before = base.assignment.total_antennae()
        augment_to_biconnectivity(base)
        assert base.assignment.total_antennae() == before

    def test_augmented_still_validates_connectivity(self):
        pts = PointSet(make_workload("clustered", 28, seed=11))
        base = orient_antennae(pts, 2, PI)
        augmented, _ = augment_to_biconnectivity(base)
        rep = augmented.validate()
        assert rep.ok, rep.summary()

    def test_spider_hub_requires_many_bypasses(self):
        # Every leg of a spider hangs off the hub: bypassing it needs
        # leg-to-leg edges, which are long. The report should say so.
        pts = PointSet(spider_points(4, 2))
        base = orient_antennae(pts, 3, 0.0)
        augmented, report = augment_to_biconnectivity(base)
        assert report.achieved
        assert report.max_extra_edge_length > base.lmax  # bypass > tree edges

    def test_tiny_instances(self):
        pts = PointSet([[0.0, 0.0], [1.0, 0.0]])
        base = orient_antennae(pts, 2, PI)
        augmented, report = augment_to_biconnectivity(base)
        assert report.extra_antennae == 0
