"""Backend seam tests: registry, selection precedence, cross-backend parity.

Every registered backend must be *bit-exact* against the reference numpy
kernels — including on degenerate inputs (single-point instances, collinear
layouts, full-circle sectors, more antennae than sensors).  Backends whose
dependencies are absent (numba) are skipped cleanly, never failed.

The batched multi-instance path is validated the repository's usual way:
kernel *work counters* (one packed launch per chunk instead of one launch
per instance), never wall-clock.
"""

import numpy as np
import pytest

from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.engine._spec import FrontierRequest
from repro.errors import InvalidParameterError
from repro.kernels import (
    KNOWN_BACKENDS,
    BackendUnavailable,
    active_backend,
    available_backends,
    pack_instances,
    resolve_backend,
    use_backend,
)
from repro.kernels.coverage import batched_coverage
from repro.kernels.critical import critical_range_search
from repro.kernels.geometry import polar_tables
from repro.kernels.connectivity import strongly_connected_csr
from repro.kernels.instrument import recording
from repro.store import plan_fingerprint, request_to_dict

TWO_PI = 2.0 * np.pi


def backend_or_skip(name):
    try:
        return resolve_backend(name)
    except BackendUnavailable as exc:
        pytest.skip(str(exc))


# -- degenerate + adversarial instances --------------------------------------------


def random_instance(seed, n=None):
    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(2, 24))
    coords = rng.uniform(-5, 5, size=(n, 2))
    # duplicate / coincident points stress the dist > 0 exclusion
    if n >= 4 and rng.random() < 0.5:
        coords[1] = coords[0]
    return coords


def degenerate_instances():
    t = np.linspace(0.0, 3.0, 7)
    return {
        "single-point": np.array([[0.3, 0.7]]),
        "two-points": np.array([[0.0, 0.0], [1.0, 0.0]]),
        "collinear": np.stack([t, 2.0 * t + 0.5], axis=1),
        "random-9": random_instance(91, n=9),
        "random-17": random_instance(17),
    }


def make_sectors(rng, n, per_sensor):
    """Random sectors, ``per_sensor`` antennae each: mixed degenerate cases.

    Includes zero spreads, full-circle (2π) spreads, zero / finite / infinite
    radii — the boundary semantics every backend must reproduce exactly.
    """
    a = n * per_sensor
    idx = np.repeat(np.arange(n, dtype=np.int64), per_sensor)
    start = rng.uniform(0.0, TWO_PI, size=a)
    spread = rng.uniform(0.0, TWO_PI, size=a)
    spread[rng.random(a) < 0.2] = 0.0
    spread[rng.random(a) < 0.2] = TWO_PI  # full circles
    radius = rng.uniform(0.5, 8.0, size=a)
    radius[rng.random(a) < 0.3] = np.inf
    radius[rng.random(a) < 0.1] = 0.0
    return idx, start, spread, radius


def reference_outputs(coords, idx, start, spread, radius):
    """The numpy reference results every backend is judged against."""
    tables = polar_tables(coords)
    n = coords.shape[0]
    cover = batched_coverage(tables, idx, start, spread, radius)
    cover_ang = batched_coverage(
        tables, idx, start, spread, radius, ignore_radius=True
    )
    src, dst = np.nonzero(cover_ang)
    critical = critical_range_search(n, np.stack([src, dst], axis=1),
                                     tables.dist[src, dst])
    indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(src, minlength=n))]
    ).astype(np.int64)
    sc = strongly_connected_csr(n, indptr, dst.astype(np.int64))
    return tables, cover, cover_ang, critical, sc


@pytest.mark.parametrize("backend_name", KNOWN_BACKENDS)
class TestBackendParity:
    """Every backend, bit-exact against the reference kernels."""

    @pytest.mark.parametrize("case", sorted(degenerate_instances()))
    @pytest.mark.parametrize("per_sensor", [1, 3])
    def test_per_instance_kernels_match_reference(
        self, backend_name, case, per_sensor
    ):
        backend = backend_or_skip(backend_name)
        coords = degenerate_instances()[case]
        n = coords.shape[0]
        rng = np.random.default_rng(sum(map(ord, case)) * 31 + per_sensor)
        idx, start, spread, radius = make_sectors(rng, n, per_sensor)
        tables, cover, cover_ang, critical, sc = reference_outputs(
            coords, idx, start, spread, radius
        )

        bt = backend.polar_tables(coords)
        assert np.array_equal(bt.dist, tables.dist)
        assert np.array_equal(bt.ang, tables.ang)
        assert np.array_equal(
            backend.coverage(tables, idx, start, spread, radius), cover
        )
        assert np.array_equal(
            backend.coverage(
                tables, idx, start, spread, radius, ignore_radius=True
            ),
            cover_ang,
        )
        src, dst = np.nonzero(cover_ang)
        got = backend.critical_range(
            n, np.stack([src, dst], axis=1), tables.dist[src, dst]
        )
        assert got == critical or (got != got and critical != critical)
        indptr = np.concatenate(
            [[0], np.cumsum(np.bincount(src, minlength=n))]
        ).astype(np.int64)
        assert backend.strongly_connected(n, indptr, dst.astype(np.int64)) == sc

    @pytest.mark.parametrize("per_sensor", [1, 2])
    def test_packed_kernels_match_per_instance(self, backend_name, per_sensor):
        backend = backend_or_skip(backend_name)
        coords_list = list(degenerate_instances().values())
        batch = pack_instances(coords_list)
        tables = backend.packed_polar(batch)

        inst_parts, idx_parts, st_parts, sp_parts, ra_parts = [], [], [], [], []
        refs = []
        for i, coords in enumerate(coords_list):
            n = coords.shape[0]
            rng = np.random.default_rng(1000 + 7 * i + per_sensor)
            idx, start, spread, radius = make_sectors(rng, n, per_sensor)
            refs.append(reference_outputs(coords, idx, start, spread, radius))
            inst_parts.append(np.full(idx.shape[0], i, dtype=np.int64))
            idx_parts.append(idx)
            st_parts.append(start)
            sp_parts.append(spread)
            ra_parts.append(radius)
        inst_idx = np.concatenate(inst_parts)
        sensor_idx = np.concatenate(idx_parts)
        start = np.concatenate(st_parts)
        spread = np.concatenate(sp_parts)
        radius = np.concatenate(ra_parts)

        cover = backend.packed_coverage(
            tables, inst_idx, sensor_idx, start, spread, radius
        )
        cover_ang = backend.packed_coverage(
            tables, inst_idx, sensor_idx, start, spread, radius,
            ignore_radius=True,
        )
        connected = backend.packed_strongly_connected(cover_ang, batch.counts)
        critical = backend.packed_critical(tables, cover_ang)

        for i, coords in enumerate(coords_list):
            n = coords.shape[0]
            ref_tables, ref_cover, ref_cover_ang, ref_cr, ref_sc = refs[i]
            assert np.array_equal(tables.dist[i, :n, :n], ref_tables.dist)
            assert np.array_equal(tables.ang[i, :n, :n], ref_tables.ang)
            assert np.array_equal(cover[i, :n, :n], ref_cover)
            assert not cover[i, n:, :].any() and not cover[i, :, n:].any()
            assert np.array_equal(cover_ang[i, :n, :n], ref_cover_ang)
            assert bool(connected[i]) == ref_sc
            cr = float(critical[i])
            assert cr == ref_cr or (cr != cr and ref_cr != ref_cr)


# -- registry and selection precedence ---------------------------------------------


class TestBackendSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("numpy") is resolve_backend("numpy")  # cached

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendUnavailable, match="bogus"):
            resolve_backend("bogus")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend(None).name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(BackendUnavailable):
            resolve_backend(None)
        # an explicit name beats a broken environment
        assert resolve_backend("numpy").name == "numpy"

    def test_use_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with use_backend("numpy"):
            assert active_backend().name == "numpy"

    def test_use_backend_nests_and_restores(self):
        outer = active_backend()
        with use_backend("numpy"):
            inner = active_backend()
            assert inner.name == "numpy"
            with use_backend(inner):
                assert active_backend() is inner
        assert active_backend() is outer

    def test_spec_flag_validated(self):
        with pytest.raises(InvalidParameterError):
            PlanRequest.sweep(
                workloads=["uniform"], sizes=[8], seeds=1,
                ks=[1], phis=[np.pi], backend="bogus",
            )
        with pytest.raises(InvalidParameterError):
            FrontierRequest(
                scenarios=(Scenario("uniform", 8, seeds=1),),
                ks=(1,), metric="critical_range", backend="bogus",
            )

    def test_backend_flag_stays_out_of_fingerprint(self):
        plain = PlanRequest.sweep(
            workloads=["uniform"], sizes=[8], seeds=1, ks=[1], phis=[np.pi]
        )
        flagged = PlanRequest.sweep(
            workloads=["uniform"], sizes=[8], seeds=1, ks=[1], phis=[np.pi],
            backend="numpy",
        )
        assert plan_fingerprint(plain) == plan_fingerprint(flagged)
        assert "backend" not in request_to_dict(flagged)


# -- the batched multi-instance path -----------------------------------------------


def many_instance_request(seeds=200):
    return PlanRequest(
        (Scenario("uniform", 10, seeds=seeds, tag="batch-path"),),
        (GridCell(1, np.pi),),
    )


class TestBatchedExecution:
    def test_batched_matches_per_instance_bit_exactly(self):
        request = many_instance_request(seeds=24)
        batched = execute_plan(request)
        loop = execute_plan(request, batch_instances=False)
        assert len(batched.records) == len(loop.records)
        for ra, rb in zip(batched.records, loop.records):
            assert ra.metrics.identical(rb.metrics)
        assert batched.backend == loop.backend == "numpy"
        for rep_a, rep_b in zip(
            batched.instance_reports, loop.instance_reports
        ):
            assert rep_a.lmax == rep_b.lmax
            assert rep_a.diameter == rep_b.diameter
            assert rep_a.mst_weight == rep_b.mst_weight

    def test_batched_path_needs_10x_fewer_kernel_launches(self):
        request = many_instance_request(seeds=200)
        with recording() as rec_batched:
            execute_plan(request)
        with recording() as rec_loop:
            execute_plan(request, batch_instances=False)
        batched_c, loop_c = rec_batched.as_dict(), rec_loop.as_dict()
        assert batched_c["batched_instances"] == 200
        assert batched_c["packed_polar_builds"] >= 1
        # the acceptance bar: >= 10x fewer Python-level kernel launches
        assert loop_c["coverage_calls"] >= 10 * batched_c["coverage_calls"]
        assert loop_c["critical_searches"] >= 10 * batched_c["critical_searches"]

    def test_ledger_rows_carry_backend_tag(self, tmp_path):
        from repro.store import RunStore

        request = many_instance_request(seeds=3)
        store = RunStore(tmp_path)
        execute_plan(request, store=store)
        rows = store.load_rows(plan_fingerprint(request))
        assert rows and all(row.backend == "numpy" for row in rows.values())


# -- the sparse backend and the auto rule ------------------------------------------


class TestSparseBackendSelection:
    def test_sparse_and_auto_always_available(self):
        avail = available_backends()
        assert "sparse" in avail and "auto" in avail

    def test_use_sparse_rules(self):
        assert not resolve_backend("numpy").use_sparse(10**6)
        sparse = resolve_backend("sparse")
        assert not sparse.use_sparse(1)
        assert sparse.use_sparse(2)

    def test_auto_threshold_default_boundary(self, monkeypatch):
        from repro.kernels.backend import (
            DEFAULT_SPARSE_AUTO_N,
            SPARSE_AUTO_ENV_VAR,
            sparse_auto_threshold,
        )

        monkeypatch.delenv(SPARSE_AUTO_ENV_VAR, raising=False)
        auto = resolve_backend("auto")
        assert sparse_auto_threshold() == DEFAULT_SPARSE_AUTO_N
        assert not auto.use_sparse(DEFAULT_SPARSE_AUTO_N - 1)
        assert auto.use_sparse(DEFAULT_SPARSE_AUTO_N)

    def test_auto_threshold_env_override(self, monkeypatch):
        from repro.kernels.backend import SPARSE_AUTO_ENV_VAR

        auto = resolve_backend("auto")
        monkeypatch.setenv(SPARSE_AUTO_ENV_VAR, "10")
        assert auto.use_sparse(10) and not auto.use_sparse(9)
        monkeypatch.setenv(SPARSE_AUTO_ENV_VAR, "garbage")
        from repro.kernels.backend import DEFAULT_SPARSE_AUTO_N

        assert not auto.use_sparse(DEFAULT_SPARSE_AUTO_N - 1)

    def test_explicit_override_beats_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert active_backend().name == "auto"
        with use_backend("sparse"):
            assert active_backend().name == "sparse"

    def test_spec_accepts_sparse_and_auto(self):
        for name in ("sparse", "auto"):
            PlanRequest.sweep(
                workloads=["uniform"], sizes=[8], seeds=1,
                ks=[1], phis=[np.pi], backend=name,
            )


class TestSparseExecution:
    def test_execute_plan_sparse_bit_identical_to_numpy(self, tmp_path):
        from repro.store import RunStore

        request = many_instance_request(seeds=6)
        baseline = execute_plan(request)
        sparse_req = PlanRequest(
            request.scenarios, request.grid, backend="sparse"
        )
        store = RunStore(tmp_path)
        got = execute_plan(sparse_req, store=store)
        assert got.backend == "sparse"
        assert len(got.records) == len(baseline.records)
        for ra, rb in zip(baseline.records, got.records):
            assert ra.metrics.identical(rb.metrics)
        for rep_a, rep_b in zip(
            baseline.instance_reports, got.instance_reports
        ):
            assert rep_a.lmax == rep_b.lmax
            assert rep_a.diameter == rep_b.diameter
            assert rep_a.mst_weight == rep_b.mst_weight
        rows = store.load_rows(plan_fingerprint(sparse_req))
        assert rows and all(row.backend == "sparse" for row in rows.values())

    def test_sparse_skips_dense_table_builds(self):
        request = many_instance_request(seeds=4)
        with recording() as rec:
            execute_plan(PlanRequest(request.scenarios, request.grid,
                                     backend="sparse"))
        assert rec.polar_builds == 0
        assert rec.packed_polar_builds == 0
        assert rec.sparse_polar_builds >= 4

    def test_auto_rule_routes_mixed_sizes_in_one_plan(self, monkeypatch):
        from repro.kernels.backend import SPARSE_AUTO_ENV_VAR

        request = PlanRequest(
            (
                Scenario("uniform", 8, seeds=3, tag="small"),
                Scenario("uniform", 24, seeds=3, tag="large"),
            ),
            (GridCell(1, np.pi),),
        )
        baseline = execute_plan(request)
        monkeypatch.setenv(SPARSE_AUTO_ENV_VAR, "16")
        with recording() as rec:
            got = execute_plan(
                PlanRequest(request.scenarios, request.grid, backend="auto")
            )
        for ra, rb in zip(baseline.records, got.records):
            assert ra.metrics.identical(rb.metrics)
        # both routes ran: packed dense for n=8, sparse for n=24
        assert rec.sparse_polar_builds >= 3
        assert rec.packed_polar_builds + rec.polar_builds >= 1
