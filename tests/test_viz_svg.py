"""Unit tests for the SVG renderer."""

import numpy as np

from repro.core.planner import orient_antennae
from repro.viz.svg import render_orientation_svg, render_tree_svg


class TestRenderTree:
    def test_valid_svg_document(self, uniform50, tree50):
        svg = render_tree_svg(tree50)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") == 50
        assert svg.count("<line") == 49

    def test_custom_size(self, tree50):
        svg = render_tree_svg(tree50, size=320)
        assert 'width="320"' in svg


class TestRenderOrientation:
    def test_document_structure(self, uniform50):
        res = orient_antennae(uniform50, 2, np.pi)
        svg = render_orientation_svg(res)
        assert svg.startswith("<svg")
        assert svg.count("<circle") == 50
        # Sectors appear as paths (wide beams) and/or lines (zero spread).
        assert "<path" in svg or "opacity" in svg
        # Intended edges drawn with arrowheads.
        assert "url(#arrow)" in svg
        assert res.algorithm in svg

    def test_zero_spread_rendered_as_rays(self, uniform50):
        res = orient_antennae(uniform50, 3, 0.0)
        svg = render_orientation_svg(res)
        # All-zero spreads: no wedge paths, only ray + edge lines.
        assert svg.count("<path") <= 1  # only the arrow marker path

    def test_toggles(self, uniform50):
        res = orient_antennae(uniform50, 2, np.pi)
        bare = render_orientation_svg(res, show_sectors=False, show_intended=False)
        full = render_orientation_svg(res)
        assert len(bare) < len(full)

    def test_coordinates_inside_viewport(self, uniform50):
        res = orient_antennae(uniform50, 2, np.pi)
        svg = render_orientation_svg(res, size=500)
        import re

        for m in re.finditer(r'cx="([-\d.]+)" cy="([-\d.]+)"', svg):
            x, y = float(m.group(1)), float(m.group(2))
            assert -1 <= x <= 501 and -1 <= y <= 501

    def test_degenerate_single_point(self):
        from repro.geometry.points import PointSet

        res = orient_antennae(PointSet([[3.0, 4.0]]), 2, np.pi)
        svg = render_orientation_svg(res)
        assert svg.count("<circle") == 1
