"""Tests for the symmetric connectivity mode (the ConnectivityMode seam).

Covers the bounded-angle MST construction on degenerate layouts (stars,
spiders, near-collinear point sets, the φ=2π clamp), bit-identity of the
symmetric objective across backends (dense vs sparse vs reference, numba
when available), serial vs multi-process vs shard/resume determinism, and
the identity rules of the seam itself: ``mode`` participates in the plan
fingerprint while strong-mode specs keep their historical byte form.
"""

import json
import math

import numpy as np
import pytest

from repro.analysis.metrics import orientation_metrics
from repro.api import assemble_rows, request_from_wire
from repro.core.symmetric import (
    SYMMETRIC_ALGORITHM,
    orient_bounded_angle_mst,
    orient_for_mode,
)
from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.engine._spec import FrontierRequest
from repro.ensemble import EnsembleRequest, Perturbation, execute_ensemble
from repro.errors import InvalidParameterError
from repro.frontier import execute_frontier
from repro.graph.digraph import DiGraph
from repro.graph.scc import undirected_component_count
from repro.kernels import BackendUnavailable, resolve_backend
from repro.kernels.connectivity import (
    CONNECTIVITY_MODES,
    mutual_mask,
    symmetric_connected_edges,
    validate_mode,
)
from repro.store import RunStore, StoreError, merge_stores

PI = math.pi
TWO_PI = 2.0 * math.pi


def backend_or_skip(name):
    try:
        return resolve_backend(name)
    except BackendUnavailable as exc:
        pytest.skip(str(exc))


def star(m, radius=1.0):
    """A hub at the origin with ``m`` leaves spread over the circle."""
    angles = np.linspace(0.0, TWO_PI, m, endpoint=False)
    leaves = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    return np.vstack([[0.0, 0.0], leaves])


def spider_one_leg(m):
    """A path ("spider" with a single leg): every vertex has degree <= 2."""
    return np.stack([np.arange(m, dtype=float), np.zeros(m)], axis=1)


def near_collinear(m, wobble=1e-9):
    """Points a hair off one line — the EMST degenerate-geometry fallback."""
    x = np.arange(m, dtype=float)
    y = wobble * np.sin(np.arange(m))
    return np.stack([x, y], axis=1)


# -- bounded-angle construction on degenerate layouts ------------------------------


class TestBoundedAngleConstruction:
    def test_star_with_one_antenna(self):
        """A 1-gon star: the hub needs spread 2π·(m-1)/m-ish, leaves need 0."""
        result = orient_bounded_angle_mst(star(6), k=1, phi=TWO_PI)
        assert result.algorithm == SYMMETRIC_ALGORITHM
        assert result.stats["feasible"]
        assert result.range_bound == 1.0
        report = result.validate()
        assert report.ok, report.summary()
        metrics = orientation_metrics(result, mode="symmetric")
        assert metrics.strongly_connected
        assert metrics.critical_range <= result.lmax * (1 + 1e-9)

    def test_star_infeasible_when_budget_too_small(self):
        """The hub of a 6-star needs more spread than φ=π/2 allows."""
        result = orient_bounded_angle_mst(star(6), k=1, phi=PI / 2)
        assert not result.stats["feasible"]
        assert math.isinf(result.range_bound)
        assert result.stats["vertices_over_budget"] >= 1
        # The fallback still aims rays along tree edges, so coverage stays
        # a subset of the feasible layout's (monotone-in-φ guarantee).
        metrics = orientation_metrics(result, mode="symmetric")
        assert not metrics.strongly_connected

    def test_one_leg_spider_needs_no_budget(self):
        """On a path, k=1 wedges cover both neighbours of every vertex; the
        interior spread requirement is the gap complement, feasible at 2π."""
        result = orient_bounded_angle_mst(spider_one_leg(7), k=1, phi=TWO_PI)
        assert result.stats["feasible"]
        metrics = orientation_metrics(result, mode="symmetric")
        assert metrics.strongly_connected

    def test_one_leg_spider_k2_zero_spread(self):
        """With k=2 a path vertex aims one ray per neighbour: spread 0."""
        result = orient_bounded_angle_mst(spider_one_leg(9), k=2, phi=0.0)
        assert result.stats["feasible"]
        assert result.stats["spread_required"] == pytest.approx(0.0, abs=1e-12)
        metrics = orientation_metrics(result, mode="symmetric")
        assert metrics.strongly_connected
        assert metrics.max_spread_sum == pytest.approx(0.0, abs=1e-12)

    def test_near_collinear_emst_fallback(self):
        """Almost-collinear inputs exercise the EMST degeneracy fallback and
        still produce a symmetric-connected, in-budget orientation."""
        result = orient_bounded_angle_mst(near_collinear(12), k=1, phi=TWO_PI)
        assert result.stats["feasible"]
        assert result.validate().ok
        metrics = orientation_metrics(result, mode="symmetric")
        assert metrics.strongly_connected

    def test_phi_two_pi_clamp(self):
        """Budgets a rounding error above 2π clamp instead of erroring, and
        the clamped orientation is identical to the exact-2π one."""
        a = orient_bounded_angle_mst(star(5), k=1, phi=TWO_PI + 1e-12)
        b = orient_bounded_angle_mst(star(5), k=1, phi=TWO_PI)
        assert a.phi == b.phi == pytest.approx(TWO_PI)
        ma = orientation_metrics(a, mode="symmetric")
        mb = orientation_metrics(b, mode="symmetric")
        assert ma.identical(mb)

    def test_tiny_instances(self):
        for n in (1, 2):
            coords = np.zeros((n, 2)) + np.arange(n)[:, None]
            result = orient_bounded_angle_mst(coords, k=1, phi=TWO_PI)
            assert result.stats["feasible"]
            metrics = orientation_metrics(result, mode="symmetric")
            assert metrics.strongly_connected

    def test_orient_for_mode_dispatch(self):
        coords = star(4)
        assert orient_for_mode(coords, 1, PI, mode="strong").algorithm != (
            SYMMETRIC_ALGORITHM
        )
        assert (
            orient_for_mode(coords, 1, TWO_PI, mode="symmetric").algorithm
            == SYMMETRIC_ALGORITHM
        )
        with pytest.raises(InvalidParameterError, match="mode"):
            orient_for_mode(coords, 1, PI, mode="weak")


# -- symmetric kernels and the undirected-components scaffold ----------------------


class TestSymmetricKernels:
    def test_validate_mode(self):
        assert set(CONNECTIVITY_MODES) == {"strong", "symmetric"}
        for mode in CONNECTIVITY_MODES:
            assert validate_mode(mode) == mode
        with pytest.raises(InvalidParameterError):
            validate_mode("directed")

    def test_mutual_mask_keeps_only_reciprocated_edges(self):
        src = np.array([0, 1, 1, 2, 3], dtype=np.int64)
        dst = np.array([1, 0, 2, 3, 2], dtype=np.int64)
        mask = mutual_mask(4, src, dst)
        kept = set(zip(src[mask].tolist(), dst[mask].tolist()))
        assert kept == {(0, 1), (1, 0), (2, 3), (3, 2)}

    def test_symmetric_connected_ignores_one_way_links(self):
        # 0<->1 mutual, 1->2 one-way: not symmetric-connected.
        src = np.array([0, 1, 1], dtype=np.int64)
        dst = np.array([1, 0, 2], dtype=np.int64)
        assert not symmetric_connected_edges(3, src, dst)
        # Adding the reverse closes the mutual path.
        src = np.append(src, 2)
        dst = np.append(dst, 1)
        assert symmetric_connected_edges(3, src, dst)

    def test_undirected_component_count_matches_bfs_fallback(self, monkeypatch):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(1, 30))
            pairs = rng.integers(0, n, size=(int(rng.integers(0, 3 * n)), 2))
            g = DiGraph(n, [(int(u), int(v)) for u, v in pairs if u != v])
            expected = undirected_component_count(g)
            # Force the pure-numpy two-pass BFS fallback and re-count.
            monkeypatch.setattr(
                "repro.graph.scc.component_count_csr",
                lambda *a, **kw: None,
            )
            assert undirected_component_count(g) == expected
            monkeypatch.undo()

    def test_undirected_component_count_edge_cases(self):
        assert undirected_component_count(DiGraph(0)) == 0
        assert undirected_component_count(DiGraph(1)) == 1
        # A one-way edge still joins components in the undirected view.
        assert undirected_component_count(DiGraph(4, [(0, 1)])) == 3


# -- engine determinism in symmetric mode ------------------------------------------


def symmetric_plan(**overrides):
    base = dict(
        workloads=["uniform"],
        sizes=[16],
        seeds=2,
        ks=[1, 2],
        phis=[PI, TWO_PI],
        tag="sym-test",
        mode="symmetric",
    )
    base.update(overrides)
    return PlanRequest.sweep(**base)


class TestSymmetricEngine:
    def test_dense_vs_sparse_vs_numba_bit_identical(self):
        reference = execute_plan(symmetric_plan(), backend="numpy")
        for name in ("sparse", "auto", "numba"):
            backend_or_skip(name)
            batch = execute_plan(symmetric_plan(), backend=name)
            assert len(batch.records) == len(reference.records)
            for got, want in zip(batch.records, reference.records):
                assert got.metrics.identical(want.metrics), (
                    f"{name} diverged at {want.cell.label} "
                    f"seed {want.instance_index}"
                )

    def test_batched_equals_per_instance(self):
        a = execute_plan(symmetric_plan(), batch_instances=True)
        b = execute_plan(symmetric_plan(), batch_instances=False)
        for x, y in zip(a.records, b.records):
            assert x.metrics.identical(y.metrics)

    def test_serial_vs_jobs_vs_shard_resume(self, tmp_path):
        request = symmetric_plan()
        reference = execute_plan(request).aggregate_by_scenario_cell()
        parallel = execute_plan(request, jobs=2).aggregate_by_scenario_cell()
        assert parallel == reference

        run_dir = tmp_path / "runs"
        store = RunStore(run_dir)
        for i in range(2):
            execute_plan(request, store=store, shard=(i, 2))
        key, loaded, rows = merge_stores([run_dir])
        assert loaded == request and loaded.mode == "symmetric"
        merged = assemble_rows(loaded, rows)
        assert merged.aggregate_by_scenario_cell() == reference

        resumed = execute_plan(request, store=store, resume=True)
        assert resumed.aggregate_by_scenario_cell() == reference
        assert resumed.replayed_instances == request.total_instances
        store.close()

    def test_mode_mismatch_refuses_merge(self, tmp_path):
        for mode in ("strong", "symmetric"):
            store = RunStore(tmp_path / mode)
            execute_plan(symmetric_plan(mode=mode), store=store)
            store.close()
        with pytest.raises(StoreError, match="connectivity modes"):
            merge_stores([tmp_path / "strong", tmp_path / "symmetric"])

    def test_frontier_symmetric_bisection(self):
        request = FrontierRequest(
            scenarios=(Scenario("uniform", 12, seeds=1, tag="sym-test"),),
            ks=(1,),
            metric="range_bound",
            target=1.5,
            phi_lo=0.0,
            phi_hi=TWO_PI,
            tol=1e-2,
            mode="symmetric",
        )
        batch = execute_frontier(request)
        rows = batch.aggregate_rows()
        assert rows and rows[0]["found"] == 1
        # Feasibility flips exactly once, at max_v s*(v): the located φ*
        # must be feasible (bound 1.0 <= 1.5) while φ*-tol is not.
        assert 0.0 < rows[0]["phi_star_mean"] <= TWO_PI

    def test_ensemble_symmetric_shard_merge(self, tmp_path):
        request = EnsembleRequest(
            scenarios=(Scenario("uniform", 14, seeds=2, tag="sym-test"),),
            grid=(GridCell(1, TWO_PI), GridCell(2, PI)),
            trials=6,
            chunk=3,
            perturbation=Perturbation(rotate=True, fade_sigma=0.05),
            mode="symmetric",
        )
        reference = execute_ensemble(request).aggregate_rows()
        run_dir = tmp_path / "runs"
        store = RunStore(run_dir)
        for i in range(2):
            execute_ensemble(request, store=store, shard=(i, 2))
        key, loaded, rows = merge_stores([run_dir])
        assert loaded.mode == "symmetric"
        assert assemble_rows(loaded, rows).aggregate_rows() == reference
        store.close()


# -- identity rules of the seam ----------------------------------------------------


class TestModeIdentity:
    def test_mode_changes_the_fingerprint(self):
        strong = symmetric_plan(mode="strong")
        symmetric = symmetric_plan()
        assert strong.fingerprint() != symmetric.fingerprint()

    def test_strong_spec_keeps_historical_byte_form(self):
        """Strong-mode specs must not grow a "mode" key — every pre-seam
        fingerprint and ledger key depends on the serialized bytes."""
        for request in (
            symmetric_plan(mode="strong"),
            FrontierRequest(
                scenarios=(Scenario("uniform", 8, seeds=1, tag="t"),),
                ks=(1,),
                metric="critical_range",
            ),
            EnsembleRequest(
                scenarios=(Scenario("uniform", 8, seeds=1, tag="t"),),
                grid=(GridCell(1, PI),),
                trials=4,
                chunk=2,
            ),
        ):
            assert "mode" not in request.to_dict()
            assert "mode" not in request._fingerprint_spec()

    def test_symmetric_spec_round_trips_through_wire(self):
        request = symmetric_plan()
        wire = json.loads(json.dumps(request.to_wire()))
        back = request_from_wire(wire)
        assert back == request
        assert back.mode == "symmetric"
        assert back.fingerprint() == request.fingerprint()

    def test_invalid_mode_rejected_at_spec(self):
        with pytest.raises(InvalidParameterError, match="mode"):
            symmetric_plan(mode="undirected")

    def test_ledger_rows_carry_mode(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        request = symmetric_plan(sizes=[10], seeds=1, ks=[1], phis=[TWO_PI])
        execute_plan(request, store=store)
        rows = store.load_rows(request.fingerprint())
        assert rows and all(r.mode == "symmetric" for r in rows.values())
        for row in rows.values():
            for metrics in row.cell_metrics():
                assert metrics.mode == "symmetric"
        store.close()
