"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import numpy as np
import pytest

from repro.__main__ import _parse_phi, main
from repro.experiments.workloads import uniform_points
from repro.geometry.points import PointSet
from repro.io import points_to_csv


@pytest.fixture
def csv_path(tmp_path):
    path = str(tmp_path / "sensors.csv")
    points_to_csv(PointSet(uniform_points(25, seed=9)), path)
    return path


class TestParsePhi:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("pi", np.pi),
            ("2pi/3", 2 * np.pi / 3),
            ("1.2pi", 1.2 * np.pi),
            ("pi/2", np.pi / 2),
            ("3.14", 3.14),
            ("0", 0.0),
        ],
    )
    def test_values(self, text, expected):
        assert _parse_phi(text) == pytest.approx(expected)

    def test_garbage_rejected(self):
        import argparse

        with pytest.raises((argparse.ArgumentTypeError, ValueError)):
            _parse_phi("pie2")


class TestPlanCommand:
    def test_plan_and_save(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "plan.json")
        rc = main(["plan", "--input", csv_path, "--k", "2", "--phi", "pi",
                   "--output", out])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "theorem3.part1" in stdout
        data = json.loads(open(out).read())
        assert data["k"] == 2

    def test_plan_without_output(self, csv_path, capsys):
        rc = main(["plan", "--input", csv_path, "--k", "3", "--phi", "0"])
        assert rc == 0
        assert "theorem5" in capsys.readouterr().out


class TestBoundsCommand:
    def test_table_printed(self, capsys):
        assert main(["bounds"]) == 0
        out = capsys.readouterr().out
        assert "Paper Table 1" in out
        assert "Theorem 3" in out

    def test_with_phi(self, capsys):
        assert main(["bounds", "--phi", "pi"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out and "1.2856" in out


class TestSweepCommand:
    def test_markdown_table(self, capsys):
        rc = main(["sweep", "--workload", "uniform", "--n", "20", "--seeds", "2",
                   "--k", "2", "--phi", "pi", "2pi/3", "--tag", "cli-test"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| algorithm |" in out
        assert "theorem3.part1" in out
        assert "theorem3.part2" in out

    def test_symmetric_mode_flag(self, capsys):
        rc = main(["sweep", "--n", "14", "--seeds", "1", "--k", "1", "--phi",
                   "2pi", "--mode", "symmetric", "--tag", "cli-test"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "bounded-angle-mst" in captured.out
        assert "[symmetric]" in captured.err

    def test_mode_rejects_unknown_value(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--n", "14", "--mode", "undirected"])
        assert "invalid choice" in capsys.readouterr().err

    def test_json_output_and_jobs(self, capsys):
        rc = main(["sweep", "--n", "18", "--seeds", "2", "--k", "1", "--phi",
                   "pi", "--jobs", "2", "--format", "json", "--no-critical"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cache"]["tree_builds"] == 2
        assert data["rows"][0]["runs"] == 2
        assert data["rows"][0]["critical_max"] is None

    def test_scenario_aggregation_and_output_file(self, tmp_path, capsys):
        out = str(tmp_path / "sweep.json")
        rc = main(["sweep", "--workload", "uniform", "grid", "--n", "16",
                   "--seeds", "1", "--k", "2", "--phi", "pi", "--aggregate",
                   "scenario", "--format", "json", "--output", out])
        assert rc == 0
        data = json.loads(open(out).read())
        assert [r["workload"] for r in data["rows"]] == ["uniform", "grid"]

    def test_unknown_workload_fails_cleanly(self, capsys):
        assert main(["sweep", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_output_success_summary_on_stderr(self, tmp_path, capsys):
        """--output must not be silent: one summary line goes to stderr."""
        out = str(tmp_path / "sweep.md")
        rc = main(["sweep", "--n", "16", "--seeds", "2", "--k", "1", "--phi",
                   "pi", "--no-critical", "--output", out])
        assert rc == 0
        err = capsys.readouterr().err
        summary = [ln for ln in err.splitlines() if "wrote" in ln]
        assert len(summary) == 1
        assert "1 rows" in summary[0]
        assert out in summary[0]
        assert "cache hit rate" in summary[0]

    def test_close_phi_values_stay_distinct_in_markdown(self, capsys):
        """Regression: two grid φ closer than 5e-5 used to collapse to the
        same 4-digit label; identity columns now render at repr precision."""
        rc = main(["sweep", "--n", "12", "--seeds", "1", "--k", "2",
                   "--phi", "3.14159", "3.14161", "--no-critical",
                   "--tag", "cli-phi-id"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3.14159" in out and "3.14161" in out
        rows = [ln for ln in out.splitlines() if ln.startswith("|")]
        phi_cells = [ln.split("|")[3].strip() for ln in rows[2:]]
        assert len(set(phi_cells)) == len(phi_cells), phi_cells

    def test_shard_requires_run_dir(self, capsys):
        assert main(["sweep", "--shard", "0/2"]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_bad_shard_spec(self, tmp_path, capsys):
        rc = main(["sweep", "--run-dir", str(tmp_path), "--shard", "2/2"])
        assert rc == 2
        assert "shard" in capsys.readouterr().err


SWEEP_ARGS = ["--workload", "uniform", "--n", "16", "--seeds", "4",
              "--k", "1", "2", "--phi", "pi", "--no-critical",
              "--tag", "cli-store"]


class TestSweepStoreAndMerge:
    def test_sharded_sweeps_merge_to_unsharded_table(self, tmp_path, capsys):
        ref = str(tmp_path / "ref.md")
        merged = str(tmp_path / "merged.md")
        assert main(["sweep", *SWEEP_ARGS, "--output", ref]) == 0
        for i in range(2):
            rc = main(["sweep", *SWEEP_ARGS,
                       "--run-dir", str(tmp_path / f"shard{i}"),
                       "--shard", f"{i}/2",
                       "--output", str(tmp_path / f"s{i}.md")])
            assert rc == 0
        rc = main(["merge", "--run-dir", str(tmp_path / "shard0"),
                   str(tmp_path / "shard1"), "--output", merged])
        assert rc == 0
        assert open(merged).read() == open(ref).read()

    def test_resume_after_interruption_matches(self, tmp_path, capsys):
        run_dir = tmp_path / "runs"
        ref = str(tmp_path / "ref.md")
        resumed = str(tmp_path / "resumed.md")
        assert main(["sweep", *SWEEP_ARGS, "--output", ref]) == 0
        assert main(["sweep", *SWEEP_ARGS, "--run-dir", str(run_dir),
                     "--output", str(tmp_path / "first.md")]) == 0
        # Simulate a kill after two completed instances: truncate the ledger.
        (ledger,) = run_dir.glob("ledger-*.jsonl")
        rows = [ln for ln in open(ledger).read().splitlines(True)
                if '"type": "instance"' in ln]
        open(str(ledger), "w").write("".join(rows[:2]))
        rc = main(["sweep", *SWEEP_ARGS, "--run-dir", str(run_dir),
                   "--resume", "--output", resumed])
        assert rc == 0
        assert "2 instances from ledger" in capsys.readouterr().err
        assert open(resumed).read() == open(ref).read()

    def test_rerun_without_resume_fails_cleanly(self, tmp_path, capsys):
        run_dir = str(tmp_path / "runs")
        assert main(["sweep", *SWEEP_ARGS, "--run-dir", run_dir]) == 0
        capsys.readouterr()
        assert main(["sweep", *SWEEP_ARGS, "--run-dir", run_dir]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_merge_incomplete_needs_allow_partial(self, tmp_path, capsys):
        run_dir = str(tmp_path / "runs")
        assert main(["sweep", *SWEEP_ARGS, "--run-dir", run_dir,
                     "--shard", "0/2"]) == 0
        capsys.readouterr()
        assert main(["merge", "--run-dir", run_dir]) == 2
        assert "2/4 instances" in capsys.readouterr().err
        assert main(["merge", "--run-dir", run_dir, "--allow-partial"]) == 0
        out = capsys.readouterr().out
        assert "| algorithm |" in out

    def test_merge_json_format(self, tmp_path, capsys):
        run_dir = str(tmp_path / "runs")
        assert main(["sweep", *SWEEP_ARGS, "--run-dir", run_dir]) == 0
        capsys.readouterr()
        assert main(["merge", "--run-dir", run_dir, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rows"][0]["runs"] == 4
        assert data["cache"]["tree_builds"] == 4

    def test_merge_empty_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["merge", "--run-dir", str(tmp_path)]) == 2
        assert "no plans" in capsys.readouterr().err

    def test_shard_owning_no_instances_fails_cleanly(self, tmp_path, capsys):
        # 4 seeds, shard 7/8 owns no slot: clean message, not a traceback.
        rc = main(["sweep", *SWEEP_ARGS, "--run-dir", str(tmp_path / "runs"),
                   "--shard", "7/8"])
        assert rc == 2
        assert "no instances to aggregate" in capsys.readouterr().err


class TestRenderAndValidate:
    def test_full_workflow(self, csv_path, tmp_path, capsys):
        plan = str(tmp_path / "plan.json")
        svg = str(tmp_path / "plan.svg")
        assert main(["plan", "--input", csv_path, "--k", "2", "--phi", "pi",
                     "--output", plan]) == 0
        assert main(["render", "--input", plan, "--output", svg]) == 0
        content = open(svg).read()
        assert content.startswith("<svg")
        assert main(["validate", "--input", plan]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
