"""Unit tests for repro.analysis (robustness, interference, capacity, metrics)."""

import math

import numpy as np
import pytest

from repro.analysis.capacity import capacity_gain_yi_pei, transport_capacity_gupta_kumar
from repro.analysis.interference import (
    InterferenceReport,
    compare_interference,
    interference_report,
)
from repro.analysis.metrics import orientation_metrics
from repro.analysis.robustness import failure_sweep, strong_connectivity_order
from repro.baselines.omni import orient_omnidirectional
from repro.core.planner import orient_antennae
from repro.errors import InvalidParameterError
from repro.graph.digraph import DiGraph

PI = np.pi


class TestRobustness:
    def test_cycle_order_one(self):
        g = DiGraph(5, [(i, (i + 1) % 5) for i in range(5)])
        assert strong_connectivity_order(g) == 1

    def test_disconnected_order_zero(self):
        assert strong_connectivity_order(DiGraph(3, [(0, 1)])) == 0

    def test_complete_order(self):
        g = DiGraph(4, [(i, j) for i in range(4) for j in range(4) if i != j])
        assert strong_connectivity_order(g) == 3

    def test_failure_sweep_on_orientation(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        rep = failure_sweep(res, max_failures=2, trials=20, seed=1)
        assert rep.n == 50
        assert rep.connectivity_order >= 1
        assert 0.0 <= rep.survival(1) <= 1.0
        assert math.isnan(rep.survival(9))

    def test_invalid_max_failures(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        with pytest.raises(InvalidParameterError):
            failure_sweep(res, max_failures=-1)

    def test_failure_sweep_draws_are_order_independent(self, uniform50):
        """Trial (f, t) must see the same deletions whatever counts run.

        Regression: the sweep used to thread one sequential generator
        through every (f, trial) pair, so restricting or reordering the
        failure counts silently changed every subsequent draw.
        """
        res = orient_antennae(uniform50, 2, PI)
        full = failure_sweep(res, max_failures=3, trials=25, seed=11)
        only_two = failure_sweep(res, trials=25, seed=11, failures=[2])
        reordered = failure_sweep(res, trials=25, seed=11, failures=[3, 1, 2])
        assert only_two.survival(2) == full.survival(2)
        for f in (1, 2, 3):
            assert reordered.survival(f) == full.survival(f)

    def test_failure_sweep_rejects_bad_failure_count(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        with pytest.raises(InvalidParameterError):
            failure_sweep(res, failures=[0])


class TestInterference:
    def test_directional_less_than_omni(self, uniform50):
        directional = orient_antennae(uniform50, 3, 0.0)
        omni = orient_omnidirectional(uniform50)
        cmp = compare_interference(directional, omni)
        assert cmp["directional_mean"] <= cmp["omni_mean"]
        assert cmp["mean_reduction_factor"] >= 1.0

    def test_report_fields(self, uniform50):
        rep = interference_report(orient_antennae(uniform50, 2, PI))
        assert rep.mean >= 0
        assert rep.max >= rep.p95 - 1e-9
        assert rep.total_covered_pairs >= 49  # at least a spanning structure

    def test_from_matrix_empty(self):
        rep = InterferenceReport.from_matrix(np.zeros((0, 0), dtype=bool))
        assert rep.mean == 0.0 and rep.max == 0


class TestCapacity:
    def test_gupta_kumar_scaling(self):
        assert transport_capacity_gupta_kumar(100) == pytest.approx(10.0)
        assert transport_capacity_gupta_kumar(4, bandwidth_w=9.0) == pytest.approx(6.0)

    def test_gupta_kumar_invalid(self):
        with pytest.raises(InvalidParameterError):
            transport_capacity_gupta_kumar(0)
        with pytest.raises(InvalidParameterError):
            transport_capacity_gupta_kumar(4, bandwidth_w=0.0)

    def test_yi_pei_gain(self):
        assert capacity_gain_yi_pei(2 * PI) == pytest.approx(1.0)
        assert capacity_gain_yi_pei(PI / 2) == pytest.approx(2.0)
        assert capacity_gain_yi_pei(PI / 2, PI / 2) == pytest.approx(4.0)
        assert capacity_gain_yi_pei(PI / 2, eta=2.0) == pytest.approx(1.0)

    def test_yi_pei_invalid(self):
        with pytest.raises(InvalidParameterError):
            capacity_gain_yi_pei(0.0)
        with pytest.raises(InvalidParameterError):
            capacity_gain_yi_pei(PI, 7.0)
        with pytest.raises(InvalidParameterError):
            capacity_gain_yi_pei(PI, eta=0.0)


class TestMetrics:
    def test_fields_consistent(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        m = orientation_metrics(res)
        assert m.strongly_connected
        assert m.bound_satisfied()
        assert m.critical_range <= m.realized_range + 1e-9
        assert m.n == 50 and m.k == 2
        assert m.as_dict()["algorithm"] == res.algorithm

    def test_skip_critical(self, uniform50):
        res = orient_antennae(uniform50, 3, 0.0)
        m = orientation_metrics(res, compute_critical=False)
        assert math.isnan(m.critical_range)
