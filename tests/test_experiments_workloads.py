"""Unit tests for repro.experiments.workloads."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments.workloads import (
    WORKLOADS,
    annulus_points,
    caterpillar_points,
    clustered_points,
    grid_points,
    hexagonal_lattice,
    make_workload,
    perturbed_star,
    regular_polygon_star,
    spider_points,
    uniform_points,
)
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst


class TestGenerators:
    def test_uniform_shape_and_determinism(self):
        a = uniform_points(30, seed=5)
        b = uniform_points(30, seed=5)
        assert a.shape == (30, 2)
        assert np.array_equal(a, b)

    def test_clustered_shape(self):
        pts = clustered_points(40, clusters=3, seed=1)
        assert pts.shape == (40, 2)

    def test_grid_count(self):
        assert grid_points(17, seed=0).shape == (17, 2)

    def test_annulus_radii(self):
        pts = annulus_points(200, r_inner=3.0, r_outer=5.0, seed=2)
        r = np.hypot(pts[:, 0], pts[:, 1])
        assert r.min() >= 3.0 - 1e-9
        assert r.max() <= 5.0 + 1e-9

    def test_regular_polygon_star(self):
        pts = regular_polygon_star(5, radius=2.0)
        assert pts.shape == (6, 2)
        r = np.hypot(pts[1:, 0], pts[1:, 1])
        assert np.allclose(r, 2.0)

    def test_spider_structure(self):
        pts = spider_points(3, 2)
        assert pts.shape == (7, 2)
        tree = euclidean_mst(PointSet(pts))
        assert int(tree.degrees().max()) == 3

    def test_hexagonal_lattice_counts(self):
        pts = hexagonal_lattice(1)
        assert pts.shape == (7, 2)
        pts2 = hexagonal_lattice(2)
        assert pts2.shape == (19, 2)

    def test_perturbed_star_degree(self):
        for s in range(5):
            pts = perturbed_star(5, leg=2, seed=s)
            tree = euclidean_mst(PointSet(pts))
            assert int(tree.degrees().max()) == 5

    def test_caterpillar_spine(self):
        pts = caterpillar_points(6, seed=3)
        assert pts.shape[0] >= 6

    @pytest.mark.parametrize(
        "fn,kwargs",
        [
            (uniform_points, {"n": 0}),
            (clustered_points, {"n": 5, "clusters": 0}),
            (grid_points, {"n": 0}),
            (annulus_points, {"n": 5, "r_inner": 5.0, "r_outer": 3.0}),
            (regular_polygon_star, {"d": 0}),
            (spider_points, {"legs": 0}),
            (hexagonal_lattice, {"rings": 0}),
            (perturbed_star, {"d": 7}),
            (caterpillar_points, {"spine": 1}),
        ],
    )
    def test_invalid_params(self, fn, kwargs):
        with pytest.raises(InvalidParameterError):
            fn(**kwargs)


class TestRegistry:
    def test_all_registered_work(self):
        for name in WORKLOADS:
            pts = make_workload(name, 25, seed=0)
            assert pts.shape == (25, 2)
            PointSet(pts)  # validity (distinct, finite)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_workload("nope", 10)
