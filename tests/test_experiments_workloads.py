"""Unit tests for repro.experiments.workloads."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.experiments.workloads import (
    WORKLOADS,
    annulus_points,
    caterpillar_points,
    clustered_points,
    grid_points,
    hexagonal_lattice,
    make_workload,
    perturbed_star,
    regular_polygon_star,
    spider_points,
    uniform_points,
)
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst


class TestGenerators:
    def test_uniform_shape_and_determinism(self):
        a = uniform_points(30, seed=5)
        b = uniform_points(30, seed=5)
        assert a.shape == (30, 2)
        assert np.array_equal(a, b)

    def test_clustered_shape(self):
        pts = clustered_points(40, clusters=3, seed=1)
        assert pts.shape == (40, 2)

    def test_grid_count(self):
        assert grid_points(17, seed=0).shape == (17, 2)

    def test_annulus_radii(self):
        pts = annulus_points(200, r_inner=3.0, r_outer=5.0, seed=2)
        r = np.hypot(pts[:, 0], pts[:, 1])
        assert r.min() >= 3.0 - 1e-9
        assert r.max() <= 5.0 + 1e-9

    def test_regular_polygon_star(self):
        pts = regular_polygon_star(5, radius=2.0)
        assert pts.shape == (6, 2)
        r = np.hypot(pts[1:, 0], pts[1:, 1])
        assert np.allclose(r, 2.0)

    def test_spider_structure(self):
        pts = spider_points(3, 2)
        assert pts.shape == (7, 2)
        tree = euclidean_mst(PointSet(pts))
        assert int(tree.degrees().max()) == 3

    def test_hexagonal_lattice_counts(self):
        pts = hexagonal_lattice(1)
        assert pts.shape == (7, 2)
        pts2 = hexagonal_lattice(2)
        assert pts2.shape == (19, 2)

    def test_perturbed_star_degree(self):
        for s in range(5):
            pts = perturbed_star(5, leg=2, seed=s)
            tree = euclidean_mst(PointSet(pts))
            assert int(tree.degrees().max()) == 5

    def test_caterpillar_spine(self):
        pts = caterpillar_points(6, seed=3)
        assert pts.shape[0] >= 6

    @pytest.mark.parametrize(
        "fn,kwargs",
        [
            (uniform_points, {"n": 0}),
            (clustered_points, {"n": 5, "clusters": 0}),
            (grid_points, {"n": 0}),
            (annulus_points, {"n": 5, "r_inner": 5.0, "r_outer": 3.0}),
            (regular_polygon_star, {"d": 0}),
            (spider_points, {"legs": 0}),
            (hexagonal_lattice, {"rings": 0}),
            (perturbed_star, {"d": 7}),
            (caterpillar_points, {"spine": 1}),
        ],
    )
    def test_invalid_params(self, fn, kwargs):
        with pytest.raises(InvalidParameterError):
            fn(**kwargs)


class TestRegistry:
    def test_all_registered_work(self):
        for name in WORKLOADS:
            pts = make_workload(name, 25, seed=0)
            assert pts.shape == (25, 2)
            PointSet(pts)  # validity (distinct, finite)

    def test_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_workload("nope", 10)


class TestClusteredClipping:
    """``clustered_points`` Gaussian tails vs the ``scale × scale`` field."""

    def test_default_output_is_bit_identical_to_historical(self):
        """The fix hides behind a flag: existing tags/seeds keep producing
        the exact arrays already fingerprinted in ledgers."""
        a = clustered_points(200, seed=11)
        b = clustered_points(200, clip=False, seed=11)
        assert np.array_equal(a, b)

    def test_unclipped_tails_escape_the_field(self):
        # The motivating skew: with enough draws some coordinate leaves
        # [0, scale] (negative values from blobs centred near the edge).
        pts = np.vstack([
            clustered_points(300, seed=s) for s in range(8)
        ])
        assert ((pts < 0.0) | (pts > 10.0)).any()

    def test_clip_keeps_every_point_in_field(self):
        for s in range(8):
            pts = clustered_points(300, clip=True, seed=s)
            assert pts.shape == (300, 2)
            assert (pts >= 0.0).all() and (pts <= 10.0).all()

    def test_clip_preserves_in_field_points(self):
        raw = clustered_points(200, seed=11)
        clipped = clustered_points(200, clip=True, seed=11)
        inside = ((raw >= 0.0) & (raw <= 10.0)).all(axis=1)
        assert np.array_equal(raw[inside], clipped[inside])

    def test_registry_exposes_clipped_variant(self):
        pts = make_workload("clustered-clip", 300, seed=2)
        assert (pts >= 0.0).all() and (pts <= 10.0).all()
        raw = make_workload("clustered", 300, seed=2)
        assert np.array_equal(pts, np.clip(raw, 0.0, 10.0))


class TestDegenerateEdges:
    """Smallest-parameter corners every generator must survive: finite
    ``(n, 2)`` arrays that ``euclidean_mst`` spans."""

    @pytest.mark.parametrize(
        "pts,expected_n",
        [
            (regular_polygon_star(1), 2),        # hub + a 1-gon "ring"
            (spider_points(legs=1, leg_len=1), 2),
            (spider_points(legs=1), 3),          # one leg, default 2 hops
            (annulus_points(9, r_inner=0.0, r_outer=3.0, seed=4), 9),
        ],
    )
    def test_degenerate_generators_span(self, pts, expected_n):
        assert pts.shape == (expected_n, 2)
        assert np.isfinite(pts).all()
        tree = euclidean_mst(PointSet(pts))
        assert tree.edges.shape[0] == expected_n - 1
        # A spanning tree touches every vertex.
        assert set(tree.edges.ravel().tolist()) == set(range(expected_n))

    def test_annulus_inner_zero_is_a_disc(self):
        pts = annulus_points(500, r_inner=0.0, r_outer=2.0, seed=1)
        r = np.hypot(pts[:, 0], pts[:, 1])
        assert (r <= 2.0 + 1e-12).all()
        assert r.min() < 0.5  # points actually reach the centre region
