"""Tests for the persistent run store: ledger, resume, sharding, merge.

The determinism claims follow the single-core CI convention: resumed and
sharded runs are validated by bit-identical results and by kernel/cache
*work counters* (no re-execution of ledgered chunks), never by wall-clock.
"""

import json

import numpy as np
import pytest

from repro.engine import GridCell, PlanRequest, Scenario, Shard, execute_plan
from repro.errors import InvalidParameterError
from repro.kernels.instrument import recording
from repro.store import (
    RunStore,
    StoreError,
    assemble_batch,
    merge_stores,
    plan_fingerprint,
    request_from_dict,
    request_to_dict,
    rows_equal,
)

GRID = (GridCell(1, np.pi), GridCell(2, 2 * np.pi / 3), GridCell(3, 0.0))


def one_scenario_request(seeds=3, **kwargs) -> PlanRequest:
    return PlanRequest(
        (Scenario("uniform", 20, seeds=seeds, tag="test-store"),), GRID, **kwargs
    )


def two_scenario_request() -> PlanRequest:
    return PlanRequest(
        scenarios=(
            Scenario("uniform", 20, seeds=3, tag="test-store"),
            Scenario("grid", 16, seeds=2, tag="test-store"),
        ),
        grid=GRID,
    )


def assert_batches_identical(a, b) -> None:
    """Bit-identical records and aggregate tables (NaN-tolerant)."""
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.scenario == rb.scenario
        assert ra.instance_index == rb.instance_index
        assert ra.cell == rb.cell
        assert ra.metrics.identical(rb.metrics)
    assert rows_equal(a.aggregate_by_cell(), b.aggregate_by_cell())
    assert rows_equal(
        a.aggregate_by_scenario_cell(), b.aggregate_by_scenario_cell()
    )


def truncate_after_instances(run_dir, keep: int) -> None:
    """Rewrite the single ledger file keeping ``keep`` instance rows, then a
    torn partial line — the on-disk state of a run killed mid-checkpoint."""
    (ledger,) = run_dir.glob("ledger-*.jsonl")
    rows = [
        line
        for line in ledger.read_text(encoding="utf8").splitlines(True)
        if '"type": "instance"' in line
    ]
    assert len(rows) > keep, "test needs more completed instances to truncate"
    ledger.write_text(
        "".join(rows[:keep]) + rows[keep][: len(rows[keep]) // 2],
        encoding="utf8",
    )


class TestPlanFingerprint:
    def test_round_trip(self):
        req = two_scenario_request()
        rebuilt = request_from_dict(json.loads(json.dumps(request_to_dict(req))))
        assert rebuilt == req
        assert plan_fingerprint(rebuilt) == plan_fingerprint(req)

    def test_sensitive_to_every_field(self):
        base = one_scenario_request()
        variants = [
            one_scenario_request(seeds=4),
            one_scenario_request(compute_critical=False),
            PlanRequest(base.scenarios, GRID[:2]),
            PlanRequest(
                (Scenario("uniform", 20, seeds=3, tag="other"),), GRID
            ),
            PlanRequest(
                base.scenarios, (GridCell(1, np.nextafter(np.pi, 4)),) + GRID[1:]
            ),
        ]
        keys = {plan_fingerprint(v) for v in variants}
        assert plan_fingerprint(base) not in keys
        assert len(keys) == len(variants)


class TestShard:
    def test_partition_is_disjoint_and_complete(self):
        shards = [Shard(i, 3) for i in range(3)]
        owned = [{s for s in range(10) if sh.owns(s)} for sh in shards]
        assert set().union(*owned) == set(range(10))
        assert sum(len(o) for o in owned) == 10

    def test_parse(self):
        assert Shard.parse("1/4") == Shard(1, 4)
        for bad in ("1", "a/b", "2/2", "-1/2", "1/0"):
            with pytest.raises(InvalidParameterError):
                Shard.parse(bad)

    def test_of_normalizes(self):
        assert Shard.of(None) == Shard(0, 1)
        assert Shard.of((1, 2)) == Shard(1, 2)
        assert Shard.of(Shard(1, 2)) == Shard(1, 2)


class TestCheckpointAndResume:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        req = two_scenario_request()
        uninterrupted = execute_plan(req)

        run_dir = tmp_path / "runs"
        execute_plan(req, store=RunStore(run_dir))
        truncate_after_instances(run_dir, keep=2)

        resumed = execute_plan(req, store=RunStore(run_dir), resume=True)
        assert resumed.replayed_instances == 2
        assert_batches_identical(uninterrupted, resumed)
        # Cache accounting is also restart-invariant: ledgered deltas plus
        # fresh deltas equal the uninterrupted totals.
        assert (
            resumed.cache_stats.as_dict() == uninterrupted.cache_stats.as_dict()
        )
        # Resuming over a torn tail must not glue the next row onto the
        # fragment: the run directory stays fully readable afterwards.
        _, request, rows = merge_stores([run_dir])
        assert_batches_identical(uninterrupted, assemble_batch(request, rows))
        replay = execute_plan(req, store=RunStore(run_dir), resume=True)
        assert replay.replayed_instances == req.total_instances

    def test_resume_does_not_reexecute_completed_chunks(self, tmp_path):
        """Kernel counters during resume == a fresh run of only the missing
        instances (via seed_offset, which addresses the same ensemble)."""
        req = one_scenario_request(seeds=3)
        run_dir = tmp_path / "runs"
        execute_plan(req, store=RunStore(run_dir))
        truncate_after_instances(run_dir, keep=1)

        remainder = PlanRequest(
            (Scenario("uniform", 20, seeds=2, tag="test-store", seed_offset=1),),
            GRID,
        )
        with recording() as expected:
            execute_plan(remainder)
        with recording() as actual:
            resumed = execute_plan(req, store=RunStore(run_dir), resume=True)
        assert resumed.replayed_instances == 1
        assert actual.as_dict() == expected.as_dict()
        assert actual.coverage_calls > 0  # the fresh instances did run

    def test_full_replay_performs_zero_kernel_work(self, tmp_path):
        req = one_scenario_request()
        store = RunStore(tmp_path / "runs")
        first = execute_plan(req, store=store)
        with recording() as rec:
            replay = execute_plan(req, store=store, resume=True)
        assert replay.replayed_instances == req.total_instances
        assert all(v == 0 for v in rec.as_dict().values()), rec.as_dict()
        assert replay.cache_stats.tree_builds == first.cache_stats.tree_builds
        assert_batches_identical(first, replay)

    def test_rerun_without_resume_is_refused(self, tmp_path):
        req = one_scenario_request()
        execute_plan(req, store=RunStore(tmp_path / "runs"))
        with pytest.raises(StoreError, match="resume"):
            execute_plan(req, store=RunStore(tmp_path / "runs"))

    def test_parallel_execution_checkpoints_too(self, tmp_path):
        req = one_scenario_request(seeds=4, compute_critical=False)
        serial = execute_plan(req)
        batch = execute_plan(req, store=RunStore(tmp_path / "runs"), jobs=2)
        if batch.fallback_reason is None:
            assert batch.jobs_used > 1
        with recording() as rec:
            replay = execute_plan(
                req, store=RunStore(tmp_path / "runs"), resume=True
            )
        assert replay.replayed_instances == 4
        assert all(v == 0 for v in rec.as_dict().values())
        assert_batches_identical(serial, replay)


class TestSharding:
    def test_two_shards_merge_bit_identical_to_unsharded(self, tmp_path):
        req = two_scenario_request()
        unsharded = execute_plan(req)

        run_dir = tmp_path / "runs"
        s0 = execute_plan(req, store=RunStore(run_dir), shard=(0, 2))
        s1 = execute_plan(req, store=RunStore(run_dir), shard=(1, 2))
        assert s0.shard == Shard(0, 2) and s1.shard == Shard(1, 2)
        assert len(s0.instance_reports) + len(s1.instance_reports) == 5

        key, request, rows = merge_stores([run_dir])
        assert request == req
        merged = assemble_batch(request, rows)
        assert_batches_identical(unsharded, merged)
        assert merged.cache_stats.as_dict() == unsharded.cache_stats.as_dict()

    def test_shards_in_separate_dirs_merge(self, tmp_path):
        req = one_scenario_request(seeds=4, compute_critical=False)
        unsharded = execute_plan(req)
        dirs = [tmp_path / "a", tmp_path / "b"]
        for i, d in enumerate(dirs):
            execute_plan(req, store=RunStore(d), shard=Shard(i, 2))
        _, request, rows = merge_stores(dirs)
        assert_batches_identical(unsharded, assemble_batch(request, rows))

    def test_sharded_result_covers_only_its_instances(self):
        req = one_scenario_request(seeds=5, compute_critical=False)
        batch = execute_plan(req, shard=(1, 2))  # shards work without a store
        assert [r.instance_index for r in batch.instance_reports] == [1, 3]
        assert len(batch.records) == 2 * len(GRID)
        rows = batch.aggregate_by_cell()
        assert all(row["runs"] == 2 for row in rows)

    def test_merge_refuses_mismatched_plans(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        execute_plan(one_scenario_request(), store=RunStore(a))
        execute_plan(two_scenario_request(), store=RunStore(b))
        with pytest.raises(StoreError, match="different plans|expected"):
            merge_stores([a, b])

    def test_incomplete_merge_requires_allow_partial(self, tmp_path):
        req = one_scenario_request(seeds=4, compute_critical=False)
        run_dir = tmp_path / "runs"
        execute_plan(req, store=RunStore(run_dir), shard=(0, 2))
        _, request, rows = merge_stores([run_dir])
        with pytest.raises(StoreError, match="2/4"):
            assemble_batch(request, rows)
        partial = assemble_batch(request, rows, allow_partial=True)
        assert [r.instance_index for r in partial.instance_reports] == [0, 2]


class TestLedgerRobustness:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        req = one_scenario_request()
        run_dir = tmp_path / "runs"
        execute_plan(req, store=RunStore(run_dir))
        (ledger,) = run_dir.glob("ledger-*.jsonl")
        with open(ledger, "a", encoding="utf8") as fh:
            fh.write('{"type": "instance", "slot": 9')  # killed mid-write
        rows = RunStore(run_dir).completed_for(req)
        assert sorted(rows) == [0, 1, 2]

    def test_corrupt_middle_row_raises(self, tmp_path):
        req = one_scenario_request()
        run_dir = tmp_path / "runs"
        execute_plan(req, store=RunStore(run_dir))
        (ledger,) = run_dir.glob("ledger-*.jsonl")
        lines = ledger.read_text(encoding="utf8").splitlines(True)
        lines[1] = lines[1][:20] + "\n"
        ledger.write_text("".join(lines), encoding="utf8")
        with pytest.raises(StoreError, match="corrupt"):
            RunStore(run_dir).completed_for(req)

    def test_two_plans_share_a_run_dir(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        req_a = one_scenario_request(compute_critical=False)
        req_b = two_scenario_request()
        execute_plan(req_a, store=store)
        execute_plan(req_b, store=store)
        assert len(store.plan_keys()) == 2
        with pytest.raises(StoreError, match="2 plans"):
            store.load_request()
        key_a = plan_fingerprint(req_a)
        _, loaded = store.load_request(key_a[:12])
        assert loaded == req_a
        assert sorted(store.load_rows(key_a)) == [0, 1, 2]
        with pytest.raises(StoreError, match="ambiguous"):
            store.load_request("")  # prefix matching both plans

    def test_empty_shard_aggregates_to_no_rows(self):
        req = one_scenario_request(seeds=2, compute_critical=False)
        batch = execute_plan(req, shard=(2, 3))  # owns no slot of {0, 1}
        assert batch.records == []
        assert batch.aggregate_by_cell() == []
        assert batch.aggregate_by_scenario_cell() == []

    def test_edited_plan_file_is_detected(self, tmp_path):
        req = one_scenario_request()
        store = RunStore(tmp_path / "runs")
        key = store.write_plan(req)
        path = store.plan_path(key)
        data = json.loads(path.read_text(encoding="utf8"))
        data["request"]["scenarios"][0]["seeds"] = 99
        path.write_text(json.dumps(data), encoding="utf8")
        with pytest.raises(StoreError, match="edited"):
            RunStore(tmp_path / "runs").load_request()

    def test_metrics_round_trip_exactly(self, tmp_path):
        """JSON floats round-trip bit-exactly, including NaN criticals."""
        req = one_scenario_request(seeds=2, compute_critical=False)
        store = RunStore(tmp_path / "runs")
        live = execute_plan(req, store=store)
        loaded = assemble_batch(req, store.completed_for(req))
        for a, b in zip(live.records, loaded.records):
            assert a.metrics.identical(b.metrics)
            for name, value in a.metrics.as_dict().items():
                other = getattr(b.metrics, name)
                if isinstance(value, float) and not np.isnan(value):
                    assert value == other and type(other) is type(value)


class TestPhiBoundaryRoundTrip:
    """Regression: φ = 2π grid cells survive spec → ledger JSON → merge.

    ``GridCell`` accepted ``2π + 1e-12`` but stored it unclamped, so the
    full-circle boundary could reach sector construction (which assumes
    φ ≤ 2π exactly) and fingerprint differently from a clean 2π spec."""

    def test_two_pi_cell_round_trips_through_ledger_and_merge(self, tmp_path):
        two_pi = 2.0 * np.pi
        req = PlanRequest(
            (Scenario("uniform", 12, seeds=2, tag="test-2pi"),),
            (GridCell(1, two_pi), GridCell(2, np.pi)),
            compute_critical=False,
        )
        store = RunStore(tmp_path / "runs")
        live = execute_plan(req, store=store)
        key, loaded, rows = merge_stores([tmp_path / "runs"])
        assert loaded == req
        assert loaded.grid[0].phi == two_pi
        assert key == plan_fingerprint(req)
        merged = assemble_batch(loaded, rows)
        assert_batches_identical(live, merged)

    def test_slop_value_fingerprints_like_exact_two_pi(self):
        """Clamping happens before hashing: a spec built from a float that
        accumulated error above 2π shares the clean spec's ledger."""
        two_pi = 2.0 * np.pi
        exact = PlanRequest(
            (Scenario("uniform", 12, seeds=1, tag="test-2pi"),),
            (GridCell(1, two_pi),),
        )
        sloppy = PlanRequest(
            (Scenario("uniform", 12, seeds=1, tag="test-2pi"),),
            (GridCell(1, two_pi + 1e-13),),
        )
        assert sloppy.grid[0].phi == two_pi
        assert plan_fingerprint(sloppy) == plan_fingerprint(exact)
        again = request_from_dict(
            json.loads(json.dumps(request_to_dict(sloppy)))
        )
        assert again == exact


class TestForwardCompatibility:
    """A ledger written by a newer version must replay here.

    Newer versions may add row keys (like the ``backend`` tag this version
    added), metric fields, cache counters, or scenario fields; readers drop
    what they don't know instead of failing strict-key validation."""

    def inject_unknown_keys(self, run_dir) -> None:
        (ledger,) = run_dir.glob("ledger-*.jsonl")
        out = []
        for line in ledger.read_text(encoding="utf8").splitlines():
            obj = json.loads(line)
            if obj.get("type") == "instance":
                obj["future_row_key"] = {"nested": True}
                obj["cache"]["future_counter"] = 7
                for m in obj["metrics"]:
                    m["future_metric"] = 0.25
            out.append(json.dumps(obj))
        ledger.write_text("\n".join(out) + "\n", encoding="utf8")

    def test_round_trip_with_unknown_keys_everywhere(self, tmp_path):
        req = one_scenario_request(seeds=2)
        store = RunStore(tmp_path / "runs")
        live = execute_plan(req, store=store)
        self.inject_unknown_keys(tmp_path / "runs")

        key, loaded, rows = merge_stores([tmp_path / "runs"])
        assert loaded == req
        merged = assemble_batch(loaded, rows)
        assert_batches_identical(live, merged)

        resumed = execute_plan(req, store=RunStore(tmp_path / "runs"),
                               resume=True)
        assert resumed.replayed_instances == req.total_instances
        assert_batches_identical(live, resumed)

    def test_unknown_scenario_keys_dropped(self):
        data = request_to_dict(one_scenario_request())
        for s in data["scenarios"]:
            s["future_scenario_field"] = "x"
        assert request_from_dict(data) == one_scenario_request()

    def test_unknown_row_types_skipped(self, tmp_path):
        req = one_scenario_request(seeds=2)
        store = RunStore(tmp_path / "runs")
        execute_plan(req, store=store)
        (ledger,) = (tmp_path / "runs").glob("ledger-*.jsonl")
        with open(ledger, "a", encoding="utf8") as fh:
            fh.write(json.dumps({"type": "future_row", "slot": 99}) + "\n")
        rows = RunStore(tmp_path / "runs").load_rows(plan_fingerprint(req))
        assert sorted(rows) == list(range(req.total_instances))

    def test_rows_record_their_backend(self, tmp_path):
        req = one_scenario_request(seeds=2)
        store = RunStore(tmp_path / "runs")
        execute_plan(req, store=store)
        rows = store.load_rows(plan_fingerprint(req))
        assert all(row.backend == "numpy" for row in rows.values())
        # rows written before the tag existed default to numpy
        (ledger,) = (tmp_path / "runs").glob("ledger-*.jsonl")
        out = []
        for line in ledger.read_text(encoding="utf8").splitlines():
            obj = json.loads(line)
            obj.pop("backend", None)
            out.append(json.dumps(obj))
        ledger.write_text("\n".join(out) + "\n", encoding="utf8")
        rows = store.load_rows(plan_fingerprint(req))
        assert all(row.backend == "numpy" for row in rows.values())


class TestLifecycle:
    """``repro store compact`` / ``repro store gc`` semantics."""

    def sharded_run(self, run_dir, req):
        results = []
        for i in range(3):
            results.append(
                execute_plan(req, store=RunStore(run_dir), shard=(i, 3))
            )
        return results

    def test_compact_merges_shards_bit_identically(self, tmp_path):
        from repro.store import compact_plan

        req = two_scenario_request()
        run_dir = tmp_path / "runs"
        self.sharded_run(run_dir, req)
        store = RunStore(run_dir)
        key = plan_fingerprint(req)
        before = store.load_rows(key)
        raw_before = {
            slot: row.to_json() for slot, row in before.items()
        }
        assert len(store.ledger_paths(key)) == 3

        report = compact_plan(store, dry_run=True)
        assert len(store.ledger_paths(key)) == 3  # dry run touches nothing

        report = compact_plan(store)
        assert report.rows == req.total_instances
        assert report.files_before == 3
        paths = store.ledger_paths(key)
        assert len(paths) == 1
        assert paths[0].name.endswith("-s0000of0001.jsonl")
        after = store.load_rows(key)
        assert {s: r.to_json() for s, r in after.items()} == raw_before
        # the archive replays like the original shards
        _, loaded, rows = merge_stores([run_dir])
        assemble_batch(loaded, rows)  # must not raise
        # fingerprint (and plan file) untouched
        assert store.plan_keys() == [key]

    def test_compact_then_resume_reexecutes_nothing(self, tmp_path):
        from repro.store import compact_plan

        req = one_scenario_request()
        run_dir = tmp_path / "runs"
        self.sharded_run(run_dir, req)
        compact_plan(RunStore(run_dir))
        with recording() as rec:
            resumed = execute_plan(req, store=RunStore(run_dir), resume=True)
        assert resumed.replayed_instances == req.total_instances
        assert rec.as_dict()["coverage_calls"] == 0

    def test_gc_removes_tmp_and_rowless_plans(self, tmp_path):
        from repro.store import gc_store

        run_dir = tmp_path / "runs"
        req = one_scenario_request(seeds=2)
        store = RunStore(run_dir)
        execute_plan(req, store=store)
        # a plan that never checkpointed anything, plus a stale tmp file
        empty_req = one_scenario_request(seeds=2, compute_critical=False)
        store.write_plan(empty_req)
        stale = run_dir / "plan-deadbeef.json.tmp"
        stale.write_text("{}", encoding="utf8")

        report = gc_store(store, dry_run=True)
        assert stale.exists()  # dry run touches nothing
        assert {p.name for p in report.removed} == {
            stale.name,
            store.plan_path(plan_fingerprint(empty_req)).name,
        }

        gc_store(store)
        assert not stale.exists()
        assert store.plan_keys() == [plan_fingerprint(req)]
        # the surviving plan still loads and assembles
        key, loaded, rows = merge_stores([run_dir])
        assert loaded == req
        assemble_batch(loaded, rows)

    def test_gc_named_plan_removes_it_entirely(self, tmp_path):
        from repro.store import gc_store

        run_dir = tmp_path / "runs"
        store = RunStore(run_dir)
        req_a = one_scenario_request(seeds=2)
        req_b = one_scenario_request(seeds=2, compute_critical=False)
        execute_plan(req_a, store=store)
        execute_plan(req_b, store=RunStore(run_dir))
        key_a = plan_fingerprint(req_a)
        gc_store(RunStore(run_dir), key_a)
        survivors = RunStore(run_dir).plan_keys()
        assert survivors == [plan_fingerprint(req_b)]
        assert not RunStore(run_dir).ledger_paths(key_a)
