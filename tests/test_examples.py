"""Every example script must run end-to-end (they are living documentation)."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced almost no output"


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the deliverable requires at least three examples"
    names = {p.stem for p in SCRIPTS}
    assert "quickstart" in names
