"""Sparse radius-bounded kernel path: exactness, widening, accounting.

The contract under test (see :mod:`repro.kernels.sparse`): every metric
the sparse path returns — edge count, strong connectivity, critical range
— is *bit-identical* to the dense pipeline, on random and degenerate
instances alike; a result that cannot be certified against the candidate
cutoff triggers a counted geometric widening instead of ever being
returned; and the instrument counters report the actual (reduced) trig
work, which is the satellite accounting fix.
"""

import numpy as np
import pytest

from repro.analysis.metrics import orientation_metrics
from repro.core.planner import orient_antennae
from repro.errors import InvalidParameterError
from repro.experiments.workloads import make_workload, perturbed_star
from repro.geometry.points import PointSet, max_pairwise_distance
from repro.kernels.backend import use_backend
from repro.kernels.connectivity import strongly_connected_csr
from repro.kernels.coverage import batched_coverage
from repro.kernels.critical import critical_range_search
from repro.kernels.geometry import (
    DENSE_LIMIT_ENV_VAR,
    polar_tables,
)
from repro.kernels.instrument import recording
from repro.kernels.sparse import (
    SparsePolarTables,
    bbox_diameter_bound,
    complete_cutoff,
    covered_edge_arrays,
    required_cutoff,
    sparse_covered_edges,
    sparse_metrics,
    sparse_polar_tables,
    strongly_connected_sparse,
)

TWO_PI = 2.0 * np.pi

GRID = [(1, TWO_PI), (1, np.pi), (2, np.pi), (3, 4 * np.pi / 5), (5, 2 * np.pi / 5)]


def dense_reference(coords, idx, start, spread, radius, eps=1e-9):
    """The dense pipeline's (edges, connected, critical) for raw sectors."""
    tables = polar_tables(coords)
    n = coords.shape[0]
    cover = batched_coverage(tables, idx, start, spread, radius, eps=eps)
    src, dst = np.nonzero(cover)
    indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(src, minlength=n))]
    ).astype(np.int64)
    connected = strongly_connected_csr(n, indptr, dst.astype(np.int64))
    cover_ang = batched_coverage(
        tables, idx, start, spread, radius, eps=eps, ignore_radius=True
    )
    asrc, adst = np.nonzero(cover_ang)
    critical = critical_range_search(
        n, np.stack([asrc, adst], axis=1), tables.dist[asrc, adst], eps=eps
    )
    return int(cover.sum()), bool(connected), float(critical)


def make_sectors(rng, n, per_sensor):
    """Adversarial sectors: zero/2π spreads, zero/finite/infinite radii."""
    a = n * per_sensor
    idx = np.repeat(np.arange(n, dtype=np.int64), per_sensor)
    start = rng.uniform(0.0, TWO_PI, size=a)
    spread = rng.uniform(0.0, TWO_PI, size=a)
    spread[rng.random(a) < 0.2] = 0.0
    spread[rng.random(a) < 0.2] = TWO_PI
    radius = rng.uniform(0.5, 8.0, size=a)
    radius[rng.random(a) < 0.3] = np.inf
    radius[rng.random(a) < 0.1] = 0.0
    return idx, start, spread, radius


def instance_catalog():
    t = np.linspace(0.0, 3.0, 9)
    return {
        "uniform-16": make_workload("uniform", 16, seed=5),
        "uniform-60": make_workload("uniform", 60, seed=6),
        "uniform-200": make_workload("uniform", 200, seed=7),
        "collinear": np.stack([t, 2.0 * t + 0.5], axis=1),
        "star-1gon": perturbed_star(1, leg=5, seed=8),
        "star-5gon": perturbed_star(5, leg=3, seed=8),
    }


# -- bit-identity against the dense pipeline ---------------------------------------


@pytest.mark.parametrize("case", sorted(instance_catalog()))
@pytest.mark.parametrize("per_sensor", [1, 3])
def test_sparse_kernels_match_dense_reference(case, per_sensor):
    coords = instance_catalog()[case]
    n = coords.shape[0]
    rng = np.random.default_rng(sum(map(ord, case)) * 17 + per_sensor)
    idx, start, spread, radius = make_sectors(rng, n, per_sensor)
    edges_d, conn_d, crit_d = dense_reference(coords, idx, start, spread, radius)
    edges_s, conn_s, crit_s, _ = sparse_metrics(
        coords, idx, start, spread, radius, range_bound_abs=0.0
    )
    assert edges_s == edges_d
    assert conn_s == conn_d
    assert crit_s == crit_d or (crit_s != crit_s and crit_d != crit_d)


@pytest.mark.parametrize("case", sorted(instance_catalog()))
@pytest.mark.parametrize("k,phi", GRID)
def test_orientation_metrics_identical_across_backends(case, k, phi):
    """The full measurement stack, dense vs sparse, field for field."""
    ps = PointSet(instance_catalog()[case])
    result_d = orient_antennae(ps, k, float(phi))
    result_s = orient_antennae(ps, k, float(phi))
    with use_backend("numpy"):
        dense = orientation_metrics(result_d)
    with use_backend("sparse"):
        sparse = orientation_metrics(result_s)
    assert dense.identical(sparse)
    assert dense.critical_range == sparse.critical_range or (
        dense.critical_range != dense.critical_range
        and sparse.critical_range != sparse.critical_range
    )
    assert result_s.stats["critical_range_kernels"]["sparse"] is True


def test_phi_two_pi_clamp_identical():
    """φ exactly 2π (full-circle clamp) through both paths."""
    ps = PointSet(make_workload("uniform", 40, seed=11))
    with use_backend("numpy"):
        dense = orientation_metrics(orient_antennae(ps, 1, TWO_PI))
    with use_backend("sparse"):
        sparse = orientation_metrics(orient_antennae(ps, 1, TWO_PI))
    assert dense.identical(sparse)


# -- the widening fallback ----------------------------------------------------------


def test_widening_reaches_distant_critical_range():
    """Initial cutoff below the true critical range: widen, never lie.

    Two far-apart clusters with full-circle antennae of small radius: the
    transmission graph is disconnected at radius 0.5, and the critical
    range is the inter-cluster gap — far beyond the radius-derived cutoff,
    so the first probe cannot be certified.
    """
    rng = np.random.default_rng(3)
    a = rng.uniform(0.0, 1.0, size=(6, 2))
    b = rng.uniform(0.0, 1.0, size=(6, 2)) + [100.0, 0.0]
    coords = np.vstack([a, b])
    n = coords.shape[0]
    idx = np.arange(n, dtype=np.int64)
    start = np.zeros(n)
    spread = np.full(n, TWO_PI)
    radius = np.full(n, 0.5)
    edges_d, conn_d, crit_d = dense_reference(coords, idx, start, spread, radius)
    with recording() as rec:
        edges_s, conn_s, crit_s, tables = sparse_metrics(
            coords, idx, start, spread, radius, range_bound_abs=0.6
        )
    assert (edges_s, conn_s, crit_s) == (edges_d, conn_d, crit_d)
    assert np.isfinite(crit_s) and crit_s > 50.0
    assert rec.rcut_widenings >= 1
    assert rec.sparse_polar_builds >= 2


def test_widening_certifies_genuine_infinity():
    """An instance that is *never* strongly connected: inf only at the
    provably-complete cutoff, with the widenings counted."""
    coords = np.stack([np.linspace(0.0, 5.0, 8), np.zeros(8)], axis=1)
    n = coords.shape[0]
    idx = np.arange(n, dtype=np.int64)
    start = np.zeros(n)  # every ray points +x: the last point covers nobody
    spread = np.zeros(n)
    radius = np.full(n, np.inf)
    fin_radius = np.full(n, 0.7)
    edges_d, conn_d, crit_d = dense_reference(coords, idx, start, spread, fin_radius)
    with recording() as rec:
        edges_s, conn_s, crit_s, tables = sparse_metrics(
            coords, idx, start, spread, fin_radius, range_bound_abs=0.0
        )
    assert (edges_s, conn_s, crit_s) == (edges_d, conn_d, crit_d)
    assert not np.isfinite(crit_s)
    assert rec.rcut_widenings >= 1
    assert tables.r_cut >= complete_cutoff(coords)


def test_unbounded_radius_goes_straight_to_complete_cutoff():
    coords = make_workload("uniform", 30, seed=21)
    n = coords.shape[0]
    idx = np.arange(n, dtype=np.int64)
    start = np.zeros(n)
    spread = np.full(n, TWO_PI)
    radius = np.full(n, np.inf)
    with recording() as rec:
        edges_s, conn_s, crit_s, tables = sparse_metrics(
            coords, idx, start, spread, radius, range_bound_abs=0.0
        )
    assert rec.rcut_widenings == 0
    assert tables.r_cut >= complete_cutoff(coords)
    edges_d, conn_d, crit_d = dense_reference(coords, idx, start, spread, radius)
    assert (edges_s, conn_s, crit_s) == (edges_d, conn_d, crit_d)


# -- counter accounting (the satellite fix) ----------------------------------------


def test_sparse_counters_report_actual_pair_work():
    coords = make_workload("uniform", 150, seed=33)
    with recording() as rec:
        tables = sparse_polar_tables(coords, 3.0)
    assert rec.sparse_polar_builds == 1
    assert rec.polar_builds == 0
    assert rec.trig_evals == tables.m  # actual pairs, not n²
    assert rec.trig_evals < 150 * 150


def test_trig_reduction_at_scale_counter_asserted():
    """≥ 20× fewer trig evals than dense on a jittered grid (counters,
    never wall-clock)."""
    rng = np.random.default_rng(44)
    side = 40
    xs, ys = np.meshgrid(np.arange(side, dtype=float), np.arange(side, dtype=float))
    coords = np.stack([xs.ravel(), ys.ravel()], axis=1)
    coords += rng.uniform(-0.2, 0.2, size=coords.shape)
    n = coords.shape[0]
    with recording() as rec:
        sparse_polar_tables(coords, 3.5)
    assert rec.trig_evals * 20 <= n * n


def test_coverage_counts_candidate_evals():
    coords = make_workload("uniform", 50, seed=55)
    tables = sparse_polar_tables(coords, 4.0)
    n = coords.shape[0]
    idx = np.arange(n, dtype=np.int64)
    with recording() as rec:
        sparse_covered_edges(
            tables, idx, np.zeros(n), np.full(n, TWO_PI), np.full(n, 4.0)
        )
    assert rec.coverage_calls == 1
    deg = tables.indptr[1:] - tables.indptr[:-1]
    assert rec.sector_evals == int(deg.sum())


# -- the dense memory guard (satellite) --------------------------------------------


def test_dense_limit_guard_names_sparse_backend(monkeypatch):
    monkeypatch.setenv(DENSE_LIMIT_ENV_VAR, "100")
    coords = np.stack([np.arange(11, dtype=float), np.zeros(11)], axis=1)
    with pytest.raises(InvalidParameterError, match="sparse"):
        polar_tables(coords)
    monkeypatch.setenv(DENSE_LIMIT_ENV_VAR, "121")
    polar_tables(coords)  # exactly at the budget: allowed


def test_dense_limit_guard_ignores_malformed_env(monkeypatch):
    monkeypatch.setenv(DENSE_LIMIT_ENV_VAR, "not-a-number")
    polar_tables(np.array([[0.0, 0.0], [1.0, 0.0]]))


def test_packed_path_honors_dense_limit(monkeypatch):
    """The batched executor path must fail fast too, not allocate (m, n, n)."""
    from repro.kernels.batch import pack_instances, packed_polar_tables

    coords = make_workload("uniform", 11, seed=3)
    batch = pack_instances([coords, coords[:7]])
    monkeypatch.setenv(DENSE_LIMIT_ENV_VAR, "100")
    with pytest.raises(InvalidParameterError, match="sparse"):
        packed_polar_tables(batch)
    monkeypatch.setenv(DENSE_LIMIT_ENV_VAR, "121")
    packed_polar_tables(batch)  # n_max² exactly at the budget: allowed


# -- structural properties ----------------------------------------------------------


def test_tables_are_csr_sorted_readonly_and_bit_compatible():
    coords = make_workload("uniform", 64, seed=9)
    tables = sparse_polar_tables(coords, 5.0)
    assert isinstance(tables, SparsePolarTables)
    # CSR grouping: src non-decreasing, indices sorted within each row
    assert np.all(np.diff(tables.src) >= 0)
    for u in range(tables.n):
        row = tables.indices[tables.indptr[u]:tables.indptr[u + 1]]
        assert np.all(np.diff(row) > 0)
    dense = polar_tables(coords)
    assert np.array_equal(tables.dist, dense.dist[tables.src, tables.indices])
    assert np.array_equal(tables.ang, dense.ang[tables.src, tables.indices])
    assert np.all(tables.dist <= 5.0 * (1 + 1e-12))
    for arr in (tables.indptr, tables.indices, tables.src, tables.dist, tables.ang):
        assert not arr.flags.writeable


def test_covered_edge_arrays_shape_feeds_critical_search():
    coords = make_workload("uniform", 30, seed=10)
    tables = sparse_polar_tables(coords, complete_cutoff(coords))
    n = coords.shape[0]
    idx = np.arange(n, dtype=np.int64)
    mask = sparse_covered_edges(
        tables, idx, np.zeros(n), np.full(n, TWO_PI), np.full(n, np.inf),
        ignore_radius=True,
    )
    pairs, dists = covered_edge_arrays(tables, mask)
    assert pairs.shape == (int(mask.sum()), 2)
    crit = critical_range_search(n, pairs, dists)
    dense = polar_tables(coords)
    src, dst = np.nonzero(dense.dist > 0)
    ref = critical_range_search(
        n, np.stack([src, dst], axis=1), dense.dist[src, dst]
    )
    assert crit == ref
    assert strongly_connected_sparse(tables, mask)


def test_single_point_and_empty_antenna_edge_cases():
    edges, conn, crit, tables = sparse_metrics(
        np.array([[0.5, 0.5]]), np.empty(0, dtype=np.int64),
        np.empty(0), np.empty(0), np.empty(0), range_bound_abs=0.0,
    )
    assert (edges, conn, crit) == (0, True, 0.0)
    # n > 1, zero antennae: inf without any widening churn
    with recording() as rec:
        edges, conn, crit, _ = sparse_metrics(
            np.array([[0.0, 0.0], [1.0, 0.0]]), np.empty(0, dtype=np.int64),
            np.empty(0), np.empty(0), np.empty(0), range_bound_abs=0.0,
        )
    assert (edges, conn) == (0, False)
    assert not np.isfinite(crit)
    assert rec.rcut_widenings == 0


def test_cutoff_policy_bounds():
    coords = make_workload("uniform", 25, seed=2)
    diam = bbox_diameter_bound(coords)
    dense = polar_tables(coords)
    assert diam >= float(dense.dist.max())
    assert complete_cutoff(coords) > diam
    assert required_cutoff(2.0) > 2.0
    assert required_cutoff(0.0) >= 0.0
    assert not np.isfinite(required_cutoff(np.inf))


def test_max_pairwise_distance_matches_dense_tables():
    for seed in (1, 2):
        coords = make_workload("uniform", 120, seed=seed)
        dense = polar_tables(coords)
        assert max_pairwise_distance(coords) == float(dense.dist.max())
    # collinear degenerate hull
    t = np.linspace(0.0, 7.0, 30)
    coords = np.stack([t, 3.0 * t], axis=1)
    dense = polar_tables(coords)
    assert max_pairwise_distance(coords) == float(dense.dist.max())
    assert max_pairwise_distance(np.array([[4.0, 2.0]])) == 0.0
