"""Unit tests for repro.utils (rng, tables, timing)."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs, stable_seed
from repro.utils.tables import format_ascii_table, format_cell, format_markdown_table
from repro.utils.timing import Timer, measure


class TestRng:
    def test_as_rng_from_int_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.allclose(a, b)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent_and_deterministic(self):
        a1, a2 = spawn_rngs(7, 2)
        b1, b2 = spawn_rngs(7, 2)
        assert np.allclose(a1.random(4), b1.random(4))
        assert not np.allclose(a1.random(4), a2.random(4))

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_stable_seed_reproducible(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert 0 <= stable_seed("x") < 2**63


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(1.23456) == "1.2346"
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"

    def test_ascii_alignment(self):
        out = format_ascii_table(["a", "bb"], [[1, 2.0], [333, 4.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_markdown_shape(self):
        out = format_markdown_table(["x"], [[1], [2]])
        assert out.splitlines()[1] == "|---|"
        assert len(out.splitlines()) == 4

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_ascii_table(["a", "b"], [[1]])


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_timer_restart(self):
        t = Timer()
        with t:
            pass
        t.restart()
        assert t.elapsed == 0.0

    def test_measure_returns_result(self):
        secs, result = measure(lambda x: x * 2, 21, repeat=2)
        assert result == 42
        assert secs >= 0.0

    def test_measure_invalid_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)
