"""Unit tests for repro.core.chains."""

import numpy as np
import pytest

from repro.core.chains import ChainPartition, arc_chains, best_chain_partition
from repro.errors import InvalidParameterError
from repro.experiments.fig56_chains import adversarial_gap_star

TWO_PI = 2 * np.pi


def dist_matrix(points: np.ndarray) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


class TestBestChainPartition:
    def test_empty(self):
        part = best_chain_partition(np.zeros((0, 0)), 2)
        assert part.chains == [] and part.max_edge == 0.0

    def test_singletons_when_budget_allows(self):
        d = dist_matrix(np.random.default_rng(0).random((3, 2)))
        part = best_chain_partition(d, 3)
        assert part.max_edge == 0.0
        assert sorted(map(tuple, part.chains)) == [(0,), (1,), (2,)]

    def test_partition_is_exact_minimax(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            pts = rng.random((5, 2))
            d = dist_matrix(pts)
            part = best_chain_partition(d, 2)
            # Brute-force check against all permutations and split points.
            from itertools import permutations

            best = np.inf
            for perm in permutations(range(5)):
                for cut in range(1, 5):
                    cost = 0.0
                    for chain in (perm[:cut], perm[cut:]):
                        for a, b in zip(chain[:-1], chain[1:]):
                            cost = max(cost, d[a, b])
                    best = min(best, cost)
            assert part.max_edge == pytest.approx(best)

    def test_every_child_appears_once(self):
        d = dist_matrix(np.random.default_rng(2).random((5, 2)))
        part = best_chain_partition(d, 2)
        flat = [c for ch in part.chains for c in ch]
        assert sorted(flat) == [0, 1, 2, 3, 4]

    def test_edges_helper(self):
        part = ChainPartition([[0, 1, 2], [3]], 1.0)
        assert part.edges() == [(0, 1), (1, 2)]
        assert part.n_chains == 2

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            best_chain_partition(np.zeros((2, 2)), 0)

    def test_too_many_children(self):
        with pytest.raises(InvalidParameterError):
            best_chain_partition(np.zeros((9, 9)), 2)


class TestArcChains:
    def test_no_big_gap_single_chain(self):
        ang = np.linspace(0, TWO_PI, 6, endpoint=False)
        chains = arc_chains(ang, gap_threshold=TWO_PI)  # nothing is big
        assert len(chains) == 1
        assert sorted(chains[0]) == list(range(6))

    def test_splits_at_big_gaps(self):
        # Two tight clusters separated by two big gaps.
        ang = np.array([0.0, 0.2, 0.4, np.pi, np.pi + 0.2])
        chains = arc_chains(ang, gap_threshold=1.0)
        assert len(chains) == 2
        groups = {frozenset(c) for c in chains}
        assert frozenset({0, 1, 2}) in groups
        assert frozenset({3, 4}) in groups

    def test_runs_are_ccw_consecutive(self):
        ang = np.array([0.0, 0.5, 1.0, 3.0, 3.5])
        chains = arc_chains(ang, gap_threshold=1.5)
        for ch in chains:
            a = ang[ch]
            assert np.all(np.diff(a) > 0)

    def test_empty(self):
        assert arc_chains(np.empty(0), 1.0) == []

    def test_adversarial_star_within_budget_for_k3(self):
        pts = adversarial_gap_star()
        hub, kids = pts[0], pts[1:]
        ang = np.arctan2(kids[:, 1] - hub[1], kids[:, 0] - hub[0])
        chains = arc_chains(ang, 2 * np.pi / 3)
        assert len(chains) <= 2  # the 2+2 split the theorem needs


class TestTheoryGuarantees:
    """The counting arguments from DESIGN.md §4 hold on random MST stars."""

    def test_five_children_two_chains_sqrt3(self, rng):
        for _ in range(60):
            ang = np.sort(rng.uniform(0, TWO_PI, 5))
            gaps = np.diff(np.concatenate([ang, [ang[0] + TWO_PI]]))
            if gaps.min() < np.pi / 3:
                continue  # not MST-feasible
            radii = rng.uniform(0.7, 1.0, 5)
            pts = np.stack([radii * np.cos(ang), radii * np.sin(ang)], axis=1)
            part = best_chain_partition(dist_matrix(pts), 2)
            assert part.max_edge <= np.sqrt(3.0) + 1e-9

    def test_five_children_three_chains_sqrt2(self, rng):
        for _ in range(60):
            ang = np.sort(rng.uniform(0, TWO_PI, 5))
            gaps = np.diff(np.concatenate([ang, [ang[0] + TWO_PI]]))
            if gaps.min() < np.pi / 3:
                continue
            radii = rng.uniform(0.7, 1.0, 5)
            pts = np.stack([radii * np.cos(ang), radii * np.sin(ang)], axis=1)
            part = best_chain_partition(dist_matrix(pts), 3)
            assert part.max_edge <= np.sqrt(2.0) + 1e-9
