"""Invariance property tests: rigid motions and uniform scaling.

The paper's quantities are all similarity-invariant: rotating, translating
or uniformly scaling the sensor set must leave normalized ranges, spread
usage and connectivity unchanged, and must rotate every sector's boresight
by exactly the rotation angle.  Catching violations here flags hidden
coordinate-frame assumptions anywhere in the stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import orient_antennae
from repro.geometry.angles import signed_angle_diff
from repro.geometry.points import PointSet
from repro.experiments.workloads import uniform_points

PI = np.pi

CONFIGS = [(2, PI), (2, 0.8 * PI), (3, 0.0), (1, 1.3 * PI)]


def rotate(coords: np.ndarray, theta: float) -> np.ndarray:
    """Rotate row-vector coordinates ccw by theta."""
    c, s = np.cos(theta), np.sin(theta)
    # [x', y'] = [x cos - y sin, x sin + y cos] for row vectors.
    return coords @ np.array([[c, s], [-s, c]])


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=-2 * PI, max_value=2 * PI, allow_nan=False),
    st.sampled_from(CONFIGS),
)
def test_rotation_invariance(seed, theta, config):
    k, phi = config
    base = uniform_points(18, seed=seed)
    res0 = orient_antennae(PointSet(base), k, phi)
    res1 = orient_antennae(PointSet(rotate(base, theta)), k, phi)
    # Scalar measurements are identical.
    assert res1.realized_range_normalized() == pytest.approx(
        res0.realized_range_normalized(), rel=1e-9, abs=1e-9
    )
    assert res1.max_spread_sum() == pytest.approx(res0.max_spread_sum(), abs=1e-9)
    assert np.array_equal(res0.intended_edges, res1.intended_edges)
    # Every sector's boresight rotates by exactly theta (mod 2pi).
    for (i0, s0), (i1, s1) in zip(res0.assignment, res1.assignment):
        assert i0 == i1
        assert s1.spread == pytest.approx(s0.spread, abs=1e-9)
        delta = float(signed_angle_diff(s1.start, s0.start + theta))
        assert abs(delta) < 1e-7


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.floats(min_value=0.01, max_value=500.0),
    st.sampled_from(CONFIGS),
)
def test_scale_invariance(seed, factor, config):
    k, phi = config
    base = uniform_points(18, seed=seed)
    res0 = orient_antennae(PointSet(base), k, phi)
    res1 = orient_antennae(PointSet(base * factor), k, phi)
    assert res1.realized_range_normalized() == pytest.approx(
        res0.realized_range_normalized(), rel=1e-9
    )
    assert res1.lmax == pytest.approx(res0.lmax * factor, rel=1e-9)
    assert np.array_equal(res0.intended_edges, res1.intended_edges)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**6),
    st.tuples(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
    ),
)
def test_translation_invariance(seed, offset):
    base = uniform_points(18, seed=seed)
    res0 = orient_antennae(PointSet(base), 2, PI)
    res1 = orient_antennae(PointSet(base + np.asarray(offset)), 2, PI)
    assert res1.realized_range() == pytest.approx(res0.realized_range(), rel=1e-6)
    assert np.array_equal(res0.intended_edges, res1.intended_edges)
    sectors0 = [(i, round(s.start, 7), round(s.spread, 7)) for i, s in res0.assignment]
    sectors1 = [(i, round(s.start, 7), round(s.spread, 7)) for i, s in res1.assignment]
    assert sectors0 == sectors1
