"""Unit tests for repro.core.planner (Table-1 dispatch)."""

import numpy as np
import pytest

from repro.core.bounds import paper_range_bound
from repro.core.planner import choose_algorithm, orient_antennae
from repro.errors import InvalidParameterError
from tests.conftest import assert_result_valid

PI = np.pi


class TestChooseAlgorithm:
    @pytest.mark.parametrize(
        "k,phi,expected",
        [
            (1, 0.0, "k1-tour"),
            (1, PI, "k1-pairs"),
            (1, 8 * PI / 5, "theorem2"),
            (2, 0.0, "k2-zero-spread"),
            (2, 2 * PI / 3, "theorem3.part2"),
            (2, PI, "theorem3.part1"),
            (2, 6 * PI / 5, "theorem2"),
            (3, 0.0, "theorem5"),
            (3, 4 * PI / 5, "theorem2"),
            (4, 0.0, "theorem6"),
            (4, 2 * PI / 5, "theorem2"),
            (5, 0.0, "theorem2"),
            (9, 0.0, "theorem2"),
            # Smart dispatch: fewer antennae when Table 1 is non-monotone
            # (phi in [2pi/3, 4pi/5): two antennae beat the sqrt(3) row).
            (3, 2.4, "theorem3.part2"),
            (3, PI, "theorem2"),
            (4, 1.3, "theorem2"),
        ],
    )
    def test_dispatch_table(self, k, phi, expected):
        assert choose_algorithm(k, phi) == expected

    def test_k_used_recorded(self, uniform50):
        res = orient_antennae(uniform50, 3, 2.4)
        assert res.stats["k_used"] == 2
        assert res.k == 3

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            choose_algorithm(0, 0.0)
        with pytest.raises(InvalidParameterError):
            choose_algorithm(2, -1.0)


class TestOrientAntennae:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_bound_matches_table1(self, k, uniform50):
        for phi in (0.0, 0.8 * PI, 1.25 * PI):
            res = orient_antennae(uniform50, k, phi)
            expected, _ = paper_range_bound(k, phi)
            if not (k == 1 and phi < PI):  # BTSP row reports measured range
                assert res.range_bound <= expected + 1e-9
            assert_result_valid(res)

    def test_stats_carry_table1_reference(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        assert res.stats["table1_bound"] == pytest.approx(
            paper_range_bound(2, PI)[0]
        )
        assert "Theorem 3" in res.stats["table1_source"]

    def test_tree_reuse(self, uniform50, tree50):
        res1 = orient_antennae(uniform50, 2, PI, tree=tree50)
        res2 = orient_antennae(uniform50, 2, PI, tree=tree50)
        assert np.array_equal(res1.intended_edges, res2.intended_edges)

    def test_raw_array_input(self, rng):
        res = orient_antennae(rng.random((20, 2)), 3, 0.0)
        assert_result_valid(res)

    def test_result_summary_is_string(self, uniform50):
        res = orient_antennae(uniform50, 2, PI)
        text = res.summary()
        assert "theorem3.part1" in text and "k=2" in text


class TestPhiBoundaryClamp:
    """The 2π clamp holds on the direct planner entrance too, not only in
    the spec layer: values inside the 1e-12 acceptance slop above 2π must
    never reach a construction (sectors assume φ ≤ 2π exactly)."""

    def test_orient_antennae_clamps_slop_above_two_pi(self, uniform50):
        two_pi = 2.0 * np.pi
        result = orient_antennae(uniform50, 1, two_pi + 1e-12)
        assert result.phi == two_pi
        clean = orient_antennae(uniform50, 1, two_pi)
        assert result.phi == clean.phi
        assert result.algorithm == clean.algorithm

    def test_choose_dispatch_accepts_slop_rejects_beyond(self):
        from repro.core.planner import choose_dispatch

        two_pi = 2.0 * np.pi
        assert choose_dispatch(1, two_pi + 1e-12) == choose_dispatch(1, two_pi)
        with pytest.raises(InvalidParameterError):
            choose_dispatch(1, two_pi + 1e-9)
