"""Targeted geometry tests for individual Theorem-3 case handlers.

Each test builds a specific point configuration known to route the root's
child through a particular branch of the case analysis and asserts the
resulting orientation is valid and the expected case label was recorded.
"""

import numpy as np

from repro.core.theorem3 import orient_theorem3
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree, euclidean_mst
from tests.conftest import assert_result_valid

PI = np.pi


def hub_with_spokes(spoke_angles, spoke_r=1.0, leg2=()):
    """Hub at origin; unit spokes at given angles; optional 2nd-hop points.

    Returns points with the hub at index 1 and a guaranteed leaf at index 0
    (the root anchor placed far along the first spoke's opposite side).
    """
    pts = [(2.0 * np.cos(spoke_angles[0] + PI), 2.0 * np.sin(spoke_angles[0] + PI))]
    # ^ anchor leaf at distance 2 opposite the first spoke — wait: we instead
    # anchor through a dedicated angle passed by callers as spoke_angles[0].
    pts = []
    pts.append((0.0, 0.0))  # hub
    for a in spoke_angles:
        pts.append((spoke_r * np.cos(a), spoke_r * np.sin(a)))
    for (a, r) in leg2:
        pts.append((r * np.cos(a), r * np.sin(a)))
    return np.asarray(pts)


class TestDegreeCases:
    def test_deg3_all_gap_choices(self):
        # Hub (deg 3 incl. parent): parent at angle 0; children placed so the
        # smallest gap rotates through the three possibilities.
        for child_angles, expect in [
            ((0.7, 2.8), "deg3.gap0"),   # smallest gap parent->c1
            ((1.5, 2.2), "deg3.gap1"),   # smallest gap c1->c2
            ((2.0, 5.6), "deg3.gap2"),   # smallest gap c2->parent
        ]:
            pts = hub_with_spokes((0.0, *child_angles))
            ps = PointSet(pts)
            tree = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3]]))
            res = orient_theorem3(ps, PI, tree=tree, root=1)
            assert expect in res.stats["cases"], res.stats["cases"]
            assert_result_valid(res)

    def test_deg4_part1_forward_and_backward(self):
        # Children packed ccw close after the parent ray -> forward sweep.
        pts = hub_with_spokes((0.0, 1.2, 2.3, 3.4))
        ps = PointSet(pts)
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]))
        res = orient_theorem3(ps, PI, tree=tree, root=1)
        assert any(c.startswith("deg4.p1") for c in res.stats["cases"])
        assert_result_valid(res)

    def test_deg4_part2_direct_cases(self):
        # Children clustered tightly: one phi-sector reaches all three.
        pts = hub_with_spokes((0.0, 2.2, 3.3, 4.4))
        ps = PointSet(pts)
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]))
        res = orient_theorem3(ps, 0.8 * PI, tree=tree, root=1)
        cases = res.stats["cases"]
        assert any(c.startswith("deg4.p2") for c in cases)
        assert_result_valid(res)

    def test_deg4_part2_delegation(self):
        # Spread children so both outer sweeps exceed phi = 2pi/3 + 0.01:
        # angles chosen so c3->c1 (through p) and c1->c3 both > phi.
        phi = 2 * PI / 3 + 0.01
        pts = hub_with_spokes((0.0, 1.25, 2.85, 4.6))
        ps = PointSet(pts)
        tree = SpanningTree(ps, np.array([[0, 1], [0, 2], [0, 3], [0, 4]]))
        res = orient_theorem3(ps, phi, tree=tree, root=1)
        assert_result_valid(res)

    def test_deg5_part1_second_case(self):
        # Parent in the p-gap (normal rooting): big-gap construction fires.
        angles = (0.0, 1.3, 2.5, 3.7, 4.9)
        pts = hub_with_spokes(angles)
        ps = PointSet(pts)
        tree = SpanningTree(ps, np.array([[0, i] for i in range(1, 6)]))
        res = orient_theorem3(ps, PI, tree=tree, root=1)
        assert any(c.startswith("deg5.biggap") for c in res.stats["cases"])
        assert_result_valid(res)

    def test_deg5_part2_paths(self):
        for phi in (2 * PI / 3 + 0.02, 0.75 * PI, 0.95 * PI):
            angles = (0.0, 1.1, 2.4, 3.6, 5.0)
            pts = hub_with_spokes(angles)
            ps = PointSet(pts)
            tree = SpanningTree(ps, np.array([[0, i] for i in range(1, 6)]))
            res = orient_theorem3(ps, phi, tree=tree, root=1)
            assert_result_valid(res)

    def test_range_bound_honored_on_many_stars(self):
        # Sweep dozens of random 5-spoke hubs; realized range stays in bound.
        rng = np.random.default_rng(99)
        for _ in range(40):
            base = np.sort(rng.uniform(0, 2 * PI, 5))
            gaps = np.diff(np.concatenate([base, [base[0] + 2 * PI]]))
            if gaps.min() < PI / 3 + 0.02:
                continue
            pts = hub_with_spokes(tuple(base))
            ps = PointSet(pts)
            tree = SpanningTree(ps, np.array([[0, i] for i in range(1, 6)]))
            for phi, part in ((PI, 1), (0.8 * PI, 2)):
                res = orient_theorem3(ps, phi, tree=tree, root=1)
                assert res.realized_range() <= res.range_bound_absolute * (1 + 1e-7)


class TestSiblingDelegationDepth:
    """Delegation chains recurse: a delegated child may itself be deg-5."""

    def test_two_level_star(self):
        # Level-1 hub with 5 spokes; one spoke continues into its own hub.
        rng = np.random.default_rng(5)
        base = np.array([0.0, 1.26, 2.51, 3.77, 5.03])
        pts = [(0.0, 0.0)]
        for a in base:
            pts.append((np.cos(a), np.sin(a)))
        # extend spoke 2 with a secondary 4-spoke hub
        hub2 = np.array(pts[2])
        for da in (0.6, 1.9, 3.2, 4.5):
            pts.append(tuple(hub2 + 0.95 * np.array([np.cos(da), np.sin(da)])))
        ps = PointSet(np.asarray(pts))
        tree = euclidean_mst(ps)
        res = orient_theorem3(ps, PI)
        assert_result_valid(res)
