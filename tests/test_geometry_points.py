"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.errors import InvalidPointSetError
from repro.geometry.points import PointSet, chord_length, pairwise_distances


class TestPointSetValidation:
    def test_basic_construction(self):
        ps = PointSet([[0.0, 0.0], [1.0, 1.0]])
        assert len(ps) == 2
        assert ps.n == 2

    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidPointSetError):
            PointSet([[0.0, 0.0, 0.0]])

    def test_rejects_empty(self):
        with pytest.raises(InvalidPointSetError):
            PointSet(np.empty((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(InvalidPointSetError):
            PointSet([[0.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(InvalidPointSetError):
            PointSet([[np.inf, 0.0]])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidPointSetError) as ei:
            PointSet([[1.0, 2.0], [0.0, 0.0], [1.0, 2.0]])
        assert "coincide" in str(ei.value)

    def test_coords_read_only(self):
        ps = PointSet([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            ps.coords[0, 0] = 5.0

    def test_input_not_aliased(self):
        arr = np.array([[0.0, 0.0], [1.0, 0.0]])
        ps = PointSet(arr)
        arr[0, 0] = 99.0
        assert ps[0][0] == 0.0


class TestPointSetKernels:
    def test_distance(self):
        ps = PointSet([[0.0, 0.0], [3.0, 4.0]])
        assert ps.distance(0, 1) == pytest.approx(5.0)

    def test_distances_from(self):
        ps = PointSet([[0.0, 0.0], [3.0, 4.0], [1.0, 0.0]])
        d = ps.distances_from(0)
        assert d[0] == 0.0
        assert d[1] == pytest.approx(5.0)
        assert d[2] == pytest.approx(1.0)

    def test_distance_matrix_symmetric(self, rng):
        ps = PointSet(rng.random((20, 2)))
        m = ps.distance_matrix()
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)

    def test_distance_matrix_matches_pairwise(self, rng):
        coords = rng.random((15, 2)) * 5
        brute = np.sqrt(
            ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(-1)
        )
        assert np.allclose(pairwise_distances(coords), brute)

    def test_angles_from(self):
        ps = PointSet([[0.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        ang = ps.angles_from(0, [1, 2])
        assert ang[0] == pytest.approx(0.0)
        assert ang[1] == pytest.approx(np.pi / 2)

    def test_bounding_box(self):
        ps = PointSet([[0.0, -1.0], [2.0, 3.0], [1.0, 1.0]])
        lo, hi = ps.bounding_box()
        assert list(lo) == [0.0, -1.0]
        assert list(hi) == [2.0, 3.0]

    def test_translated_and_scaled(self):
        ps = PointSet([[0.0, 0.0], [1.0, 0.0]])
        moved = ps.translated([2.0, 2.0])
        assert moved[0][0] == pytest.approx(2.0)
        scaled = ps.scaled(3.0)
        assert scaled.distance(0, 1) == pytest.approx(3.0)
        with pytest.raises(InvalidPointSetError):
            ps.scaled(0.0)

    def test_iteration(self):
        ps = PointSet([[0.0, 0.0], [1.0, 0.0]])
        assert len(list(ps)) == 2


class TestChordLength:
    def test_diameter(self):
        assert chord_length(np.pi, radius=1.0) == pytest.approx(2.0)

    def test_sixty_degrees_unit(self):
        assert chord_length(np.pi / 3, radius=1.0) == pytest.approx(1.0)

    def test_scales_with_radius(self):
        assert chord_length(np.pi / 2, radius=2.0) == pytest.approx(
            2 * chord_length(np.pi / 2, radius=1.0)
        )
