"""Unit tests for repro.geometry.angles."""

import numpy as np
import pytest

from repro.geometry.angles import (
    TWO_PI,
    angle_of,
    angle_uvw,
    bisector,
    ccw_angle,
    ccw_gaps,
    circular_windows_sum,
    in_ccw_interval,
    normalize_angle,
    signed_angle_diff,
)


class TestNormalizeAngle:
    def test_identity_in_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_negative_wraps(self):
        assert normalize_angle(-np.pi / 2) == pytest.approx(3 * np.pi / 2)

    def test_large_wraps(self):
        assert normalize_angle(5 * np.pi) == pytest.approx(np.pi)

    def test_vectorized(self):
        out = normalize_angle(np.array([-0.1, 0.0, TWO_PI + 0.1]))
        assert out.shape == (3,)
        assert np.all((out >= 0) & (out < TWO_PI))

    def test_near_two_pi_rounding(self):
        # -1e-17 mod 2pi can round to 2pi itself; must stay inside [0, 2pi).
        assert 0.0 <= float(normalize_angle(-1e-17)) < TWO_PI


class TestCcwAngle:
    def test_zero(self):
        assert ccw_angle(1.2, 1.2) == pytest.approx(0.0)

    def test_quarter(self):
        assert ccw_angle(0.0, np.pi / 2) == pytest.approx(np.pi / 2)

    def test_wrapping(self):
        assert ccw_angle(3 * np.pi / 2, 0.0) == pytest.approx(np.pi / 2)

    def test_asymmetry(self):
        a, b = 0.3, 2.1
        total = ccw_angle(a, b) + ccw_angle(b, a)
        assert total == pytest.approx(TWO_PI)


class TestSignedAngleDiff:
    def test_small_positive(self):
        assert signed_angle_diff(0.2, 0.1) == pytest.approx(0.1)

    def test_wraps_to_negative(self):
        assert signed_angle_diff(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    def test_pi_maps_to_pi(self):
        assert signed_angle_diff(np.pi, 0.0) == pytest.approx(np.pi)


class TestAngleOf:
    def test_cardinal_directions(self):
        assert angle_of(np.array([1.0, 0.0])) == pytest.approx(0.0)
        assert angle_of(np.array([0.0, 1.0])) == pytest.approx(np.pi / 2)
        assert angle_of(np.array([-1.0, 0.0])) == pytest.approx(np.pi)

    def test_batch(self):
        vecs = np.array([[1.0, 0.0], [0.0, -1.0]])
        out = angle_of(vecs)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(3 * np.pi / 2)


class TestAngleUvw:
    def test_right_angle(self):
        v = np.array([0.0, 0.0])
        u = np.array([1.0, 0.0])
        w = np.array([0.0, 1.0])
        assert angle_uvw(u, v, w) == pytest.approx(np.pi / 2)

    def test_directional(self):
        v = np.array([0.0, 0.0])
        u = np.array([1.0, 0.0])
        w = np.array([0.0, 1.0])
        assert angle_uvw(w, v, u) == pytest.approx(3 * np.pi / 2)


class TestInCcwInterval:
    def test_inside(self):
        assert in_ccw_interval(0.5, 0.0, 1.0)

    def test_boundary_inclusive(self):
        assert in_ccw_interval(1.0, 0.0, 1.0)
        assert in_ccw_interval(0.0, 0.0, 1.0)

    def test_outside(self):
        assert not in_ccw_interval(1.5, 0.0, 1.0)

    def test_epsilon_before_start(self):
        assert in_ccw_interval(-1e-12, 0.0, 1.0)

    def test_wrapping_interval(self):
        # interval [3pi/2, 3pi/2 + pi] wraps through 0
        assert in_ccw_interval(0.1, 3 * np.pi / 2, np.pi)
        assert not in_ccw_interval(np.pi, 3 * np.pi / 2, np.pi - 0.2)

    def test_full_circle(self):
        assert in_ccw_interval(2.0, 0.7, TWO_PI)

    def test_zero_spread_is_ray(self):
        assert in_ccw_interval(0.7, 0.7, 0.0)
        assert not in_ccw_interval(0.71, 0.7, 0.0)

    def test_invalid_sweep_raises(self):
        with pytest.raises(ValueError):
            in_ccw_interval(0.0, 0.0, -0.5)

    def test_vectorized(self):
        out = in_ccw_interval(np.array([0.1, 2.0]), 0.0, 1.0)
        assert list(out) == [True, False]


class TestCcwGaps:
    def test_gaps_sum_to_two_pi(self):
        angles = np.array([0.1, 1.0, 2.5, 4.0])
        _, gaps = ccw_gaps(angles)
        assert gaps.sum() == pytest.approx(TWO_PI)

    def test_single_angle(self):
        _, gaps = ccw_gaps(np.array([1.0]))
        assert gaps[0] == pytest.approx(TWO_PI)

    def test_order_is_sorted(self):
        angles = np.array([3.0, 1.0, 2.0])
        order, _ = ccw_gaps(angles)
        assert list(angles[order]) == sorted(angles)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ccw_gaps(np.array([]))

    def test_regular_polygon(self):
        d = 5
        angles = np.linspace(0, TWO_PI, d, endpoint=False)
        _, gaps = ccw_gaps(angles)
        assert np.allclose(gaps, TWO_PI / d)


class TestCircularWindowsSum:
    def test_window_of_one_is_identity(self):
        g = np.array([0.5, 1.0, 2.0])
        assert np.allclose(circular_windows_sum(g, 1), g)

    def test_window_of_all_is_total(self):
        g = np.array([0.5, 1.0, 2.0])
        assert np.allclose(circular_windows_sum(g, 3), g.sum())

    def test_wraparound_window(self):
        g = np.array([1.0, 2.0, 3.0, 4.0])
        out = circular_windows_sum(g, 2)
        assert out[3] == pytest.approx(4.0 + 1.0)

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            circular_windows_sum(np.array([1.0]), 2)

    def test_max_window_at_least_average(self):
        rng = np.random.default_rng(3)
        g = rng.random(7)
        g = g / g.sum() * TWO_PI
        for k in range(1, 8):
            assert circular_windows_sum(g, k).max() >= TWO_PI * k / 7 - 1e-12


class TestBisector:
    def test_simple(self):
        assert bisector(0.0, np.pi) == pytest.approx(np.pi / 2)

    def test_wraps(self):
        assert bisector(3 * np.pi / 2, np.pi) == pytest.approx(0.0, abs=1e-12)
