"""Unit tests for repro.geometry.sectors."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI
from repro.geometry.sectors import Sector, sector_between, sector_toward


class TestSectorConstruction:
    def test_normalizes_start(self):
        s = Sector(-np.pi / 2, 1.0)
        assert s.start == pytest.approx(3 * np.pi / 2)

    def test_rejects_negative_spread(self):
        with pytest.raises(InvalidParameterError):
            Sector(0.0, -0.1)

    def test_rejects_excess_spread(self):
        with pytest.raises(InvalidParameterError):
            Sector(0.0, TWO_PI + 0.1)

    def test_rejects_negative_radius(self):
        with pytest.raises(InvalidParameterError):
            Sector(0.0, 1.0, -1.0)

    def test_end_and_orientation(self):
        s = Sector(0.0, np.pi)
        assert s.end == pytest.approx(np.pi)
        assert s.orientation == pytest.approx(np.pi / 2)

    def test_frozen(self):
        s = Sector(0.0, 1.0)
        with pytest.raises(AttributeError):
            s.start = 2.0  # type: ignore[misc]


class TestContainsDirection:
    def test_inside(self):
        s = Sector(0.0, np.pi / 2)
        assert s.contains_direction(np.pi / 4)

    def test_boundaries(self):
        s = Sector(0.1, 1.0)
        assert s.contains_direction(0.1)
        assert s.contains_direction(1.1)

    def test_outside(self):
        s = Sector(0.0, np.pi / 2)
        assert not s.contains_direction(np.pi)


class TestCoversOffsets:
    def test_within_range_and_angle(self):
        s = Sector(0.0, np.pi / 2, radius=2.0)
        offsets = np.array([[1.0, 0.5], [3.0, 0.0], [-1.0, 0.0], [0.0, 0.0]])
        out = s.covers_offsets(offsets)
        assert list(out) == [True, False, False, False]

    def test_apex_never_covered(self):
        s = Sector(0.0, TWO_PI, radius=10.0)
        assert not s.covers_offsets(np.array([[0.0, 0.0]]))[0]

    def test_zero_spread_ray(self):
        s = Sector(0.0, 0.0, radius=5.0)
        assert s.covers_offsets(np.array([[3.0, 0.0]]))[0]
        assert not s.covers_offsets(np.array([[3.0, 0.3]]))[0]

    def test_radius_boundary_inclusive(self):
        s = Sector(0.0, 1.0, radius=1.0)
        assert s.covers_point((0.0, 0.0), (1.0, 0.0))

    def test_infinite_radius(self):
        s = Sector(0.0, np.pi)
        assert s.covers_point((0.0, 0.0), (1e9, 1e3))


class TestTransforms:
    def test_with_radius(self):
        s = Sector(1.0, 2.0, 3.0).with_radius(7.0)
        assert s.radius == 7.0
        assert s.start == pytest.approx(1.0)

    def test_rotated(self):
        s = Sector(0.0, 1.0).rotated(np.pi)
        assert s.start == pytest.approx(np.pi)


class TestSectorBetween:
    def test_covers_both_endpoints(self):
        apex = np.array([0.0, 0.0])
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        s = sector_between(apex, a, b, radius=2.0)
        assert s.spread == pytest.approx(np.pi / 2)
        assert s.covers_point(apex, a)
        assert s.covers_point(apex, b)

    def test_ccw_not_cw(self):
        apex = np.array([0.0, 0.0])
        a = np.array([0.0, 1.0])
        b = np.array([1.0, 0.0])
        s = sector_between(apex, a, b)
        assert s.spread == pytest.approx(3 * np.pi / 2)

    def test_pad_widens(self):
        apex = np.array([0.0, 0.0])
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        s = sector_between(apex, a, b, pad=0.2)
        assert s.spread == pytest.approx(np.pi / 2 + 0.2)


class TestSectorToward:
    def test_zero_spread_hits_target(self):
        s = sector_toward((0.0, 0.0), (2.0, 2.0), radius=5.0)
        assert s.spread == 0.0
        assert s.covers_point((0.0, 0.0), (2.0, 2.0))

    def test_with_spread_centred(self):
        s = sector_toward((0.0, 0.0), (1.0, 0.0), spread=np.pi / 2)
        assert s.orientation == pytest.approx(0.0, abs=1e-12)
        assert s.covers_point((0.0, 0.0), (1.0, 0.9))
        assert not s.covers_point((0.0, 0.0), (-1.0, 0.1))
