"""Hypothesis property tests for the graph substrate (vs networkx oracle)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.connectivity import is_strongly_connected
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation, strongly_connected_components


@st.composite
def digraphs(draw, max_n: int = 20, max_m: int = 60):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return n, edges


@settings(max_examples=80, deadline=None)
@given(digraphs())
def test_scc_matches_networkx(graph):
    n, edges = graph
    g = DiGraph(n, np.asarray(edges, dtype=np.int64) if edges else [])
    comp = strongly_connected_components(g)
    ours = {}
    for v, c in enumerate(comp):
        ours.setdefault(int(c), set()).add(v)
    ours_sets = {frozenset(s) for s in ours.values()}
    theirs = {frozenset(c) for c in nx.strongly_connected_components(g.to_networkx())}
    assert ours_sets == theirs


@settings(max_examples=80, deadline=None)
@given(digraphs())
def test_strong_connectivity_matches_networkx(graph):
    n, edges = graph
    g = DiGraph(n, np.asarray(edges, dtype=np.int64) if edges else [])
    assert is_strongly_connected(g) == nx.is_strongly_connected(g.to_networkx())


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_condensation_is_acyclic(graph):
    n, edges = graph
    g = DiGraph(n, np.asarray(edges, dtype=np.int64) if edges else [])
    dag, comp = condensation(g)
    assert nx.is_directed_acyclic_graph(dag.to_networkx())
    # Component count consistency.
    assert dag.n == len(set(comp.tolist()))


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_reachability_closed_under_edges(graph):
    n, edges = graph
    g = DiGraph(n, np.asarray(edges, dtype=np.int64) if edges else [])
    reach = g.reachable_from(0)
    for u, v in g.edges():
        if reach[u]:
            assert reach[v]
