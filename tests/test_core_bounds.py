"""Unit tests for repro.core.bounds (Table 1 formulas)."""

import math

import pytest

from repro.core.bounds import (
    BTSP_RANGE,
    THM3_PART1_RANGE,
    THM5_RANGE,
    THM6_RANGE,
    kone_pair_bound,
    paper_range_bound,
    table1_rows,
    thm2_phi_threshold,
    thm3_part1_bound,
    thm3_part2_bound,
)
from repro.errors import InvalidParameterError

PI = math.pi


class TestThresholds:
    @pytest.mark.parametrize(
        "k,expected",
        [(1, 8 * PI / 5), (2, 6 * PI / 5), (3, 4 * PI / 5), (4, 2 * PI / 5), (5, 0.0), (7, 0.0)],
    )
    def test_thm2_threshold(self, k, expected):
        assert thm2_phi_threshold(k) == pytest.approx(expected)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            thm2_phi_threshold(0)


class TestFormulas:
    def test_part1_constant(self):
        assert thm3_part1_bound() == pytest.approx(2 * math.sin(2 * PI / 9))
        assert THM3_PART1_RANGE == pytest.approx(1.2855752194, rel=1e-9)

    def test_part2_endpoints(self):
        assert thm3_part2_bound(2 * PI / 3) == pytest.approx(math.sqrt(3.0))
        assert thm3_part2_bound(PI) == pytest.approx(math.sqrt(2.0))

    def test_part2_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            thm3_part2_bound(0.5)

    def test_kone_pair_endpoints(self):
        assert kone_pair_bound(PI) == pytest.approx(2.0)
        assert kone_pair_bound(8 * PI / 5) == pytest.approx(
            max(1.0, 2 * math.sin(PI / 5))
        )

    def test_kone_pair_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            kone_pair_bound(0.5)

    def test_constants(self):
        assert THM5_RANGE == pytest.approx(math.sqrt(3))
        assert THM6_RANGE == pytest.approx(math.sqrt(2))
        assert BTSP_RANGE == 2.0


class TestTable1Rows:
    def test_twelve_rows(self):
        assert len(table1_rows()) == 12

    def test_every_k_has_base_row(self):
        rows = table1_rows()
        for k in range(1, 6):
            assert any(r.k == k and r.phi_lo == 0.0 for r in rows)

    def test_row_evaluation(self):
        rows = {(r.k, r.phi_description): r for r in table1_rows()}
        assert rows[(2, "phi >= pi")].bound_at(PI) == pytest.approx(THM3_PART1_RANGE)
        assert rows[(3, "phi >= 0")].bound_at(0.0) == pytest.approx(THM5_RANGE)


class TestPaperRangeBound:
    @pytest.mark.parametrize(
        "k,phi,expected",
        [
            (1, 0.0, 2.0),
            (1, PI, 2.0),  # 2 sin(pi - pi/2) = 2
            (1, 1.4 * PI, 2 * math.sin(PI - 0.7 * PI)),
            (1, 8 * PI / 5, 1.0),
            (2, 0.0, 2.0),
            (2, 2 * PI / 3, math.sqrt(3.0)),
            (2, PI, THM3_PART1_RANGE),
            (2, 6 * PI / 5, 1.0),
            (3, 0.0, THM5_RANGE),
            (3, 4 * PI / 5, 1.0),
            (4, 0.0, THM6_RANGE),
            (4, 2 * PI / 5, 1.0),
            (5, 0.0, 1.0),
        ],
    )
    def test_values(self, k, phi, expected):
        bound, _ = paper_range_bound(k, phi)
        assert bound == pytest.approx(expected)

    def test_k_above_five_clamped(self):
        assert paper_range_bound(9, 0.0)[0] == 1.0

    def test_monotone_in_phi(self):
        for k in range(1, 6):
            prev = math.inf
            for i in range(60):
                phi = 2 * PI * i / 59
                bound, _ = paper_range_bound(k, phi)
                assert bound <= prev + 1e-12
                prev = bound

    def test_table1_not_monotone_in_k(self):
        # Table 1 literally is NOT monotone in k: at phi = 2.4 the k = 2
        # Theorem-3 row beats the k = 3 sqrt(3) row.
        assert paper_range_bound(2, 2.4)[0] < paper_range_bound(3, 2.4)[0]

    def test_best_achievable_monotone_in_k(self):
        from repro.core.bounds import best_achievable_bound

        for i in range(30):
            phi = 2 * PI * i / 29
            bounds = [best_achievable_bound(k, phi)[0] for k in range(1, 6)]
            assert all(b1 >= b2 - 1e-12 for b1, b2 in zip(bounds, bounds[1:]))

    def test_best_achievable_uses_fewer_antennae(self):
        from repro.core.bounds import best_achievable_bound

        bound, k_used, _ = best_achievable_bound(3, 2.4)
        assert k_used == 2
        assert bound == pytest.approx(paper_range_bound(2, 2.4)[0])

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            paper_range_bound(0, 1.0)
        with pytest.raises(InvalidParameterError):
            paper_range_bound(2, -0.5)
        with pytest.raises(InvalidParameterError):
            paper_range_bound(2, 7.0)

    def test_source_attribution(self):
        _, src = paper_range_bound(2, PI)
        assert "Theorem 3" in src
        _, src = paper_range_bound(5, 0.0)
        assert "folklore" in src
