"""Unit tests for repro.core.lemma1."""

import numpy as np
import pytest

from repro.core.lemma1 import (
    lemma1_orientation,
    lemma1_required_spread,
    optimal_star_cover,
    optimal_star_spread,
)
from repro.errors import InvalidParameterError
from repro.experiments.workloads import regular_polygon_star

TWO_PI = 2 * np.pi


def ring_points(angles: np.ndarray, radius: float = 1.0) -> np.ndarray:
    return np.stack([radius * np.cos(angles), radius * np.sin(angles)], axis=1)


def total_spread(sectors) -> float:
    return sum(s.spread for s in sectors)


def all_covered(sectors, apex, neighbors) -> bool:
    return all(any(s.covers_point(apex, p) for s in sectors) for p in neighbors)


class TestRequiredSpread:
    @pytest.mark.parametrize("d,k,expected", [
        (5, 1, TWO_PI * 4 / 5), (5, 2, TWO_PI * 3 / 5), (5, 5, 0.0),
        (3, 2, TWO_PI / 3), (4, 2, np.pi), (2, 1, np.pi),
    ])
    def test_formula(self, d, k, expected):
        assert lemma1_required_spread(d, k) == pytest.approx(expected)

    def test_k_at_least_d_is_zero(self):
        assert lemma1_required_spread(3, 7) == 0.0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            lemma1_required_spread(3, 0)


class TestOptimalStarSpread:
    def test_regular_polygon_is_tight(self):
        for d in range(2, 7):
            ang = np.linspace(0, TWO_PI, d, endpoint=False)
            for k in range(1, d):
                assert optimal_star_spread(ang, k) == pytest.approx(
                    lemma1_required_spread(d, k)
                )

    def test_k_ge_d_zero(self):
        assert optimal_star_spread(np.array([0.0, 1.0]), 2) == 0.0

    def test_irregular_less_than_bound(self, rng):
        ang = np.sort(rng.uniform(0, TWO_PI, 5))
        for k in range(1, 5):
            assert optimal_star_spread(ang, k) <= lemma1_required_spread(5, k) + 1e-9


class TestLemma1Orientation:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_covers_all_within_budget(self, d, k, rng):
        for _ in range(30):
            ang = np.sort(rng.uniform(0, TWO_PI, d))
            nbrs = ring_points(ang, radius=rng.uniform(0.5, 1.0))
            sectors = lemma1_orientation((0.0, 0.0), nbrs, k)
            assert len(sectors) <= k
            assert all_covered(sectors, (0.0, 0.0), nbrs)
            assert total_spread(sectors) <= lemma1_required_spread(d, k) + 1e-9

    def test_k_ge_d_uses_rays(self):
        nbrs = ring_points(np.array([0.0, 2.0, 4.0]))
        sectors = lemma1_orientation((0.0, 0.0), nbrs, 5)
        assert len(sectors) == 3
        assert all(s.spread == 0.0 for s in sectors)

    def test_zero_neighbors(self):
        assert lemma1_orientation((0.0, 0.0), np.empty((0, 2)), 2) == []

    def test_neighbor_at_apex_rejected(self):
        with pytest.raises(InvalidParameterError):
            lemma1_orientation((0.0, 0.0), np.array([[0.0, 0.0]]), 1)

    def test_radius_applied(self):
        nbrs = ring_points(np.array([0.0, 3.0]))
        sectors = lemma1_orientation((0.0, 0.0), nbrs, 1, radius=2.5)
        assert all(s.radius == 2.5 for s in sectors)


class TestOptimalStarCover:
    @pytest.mark.parametrize("d,k", [(3, 1), (4, 2), (5, 2), (5, 3), (5, 4)])
    def test_covers_all_with_optimal_spread(self, d, k, rng):
        for _ in range(30):
            ang = np.sort(rng.uniform(0, TWO_PI, d))
            nbrs = ring_points(ang)
            sectors = optimal_star_cover((0.0, 0.0), nbrs, k)
            assert len(sectors) <= k
            assert all_covered(sectors, (0.0, 0.0), nbrs)
            assert total_spread(sectors) == pytest.approx(
                optimal_star_spread(ang, k), abs=1e-9
            )

    def test_never_worse_than_lemma1(self, rng):
        for _ in range(40):
            d = int(rng.integers(2, 6))
            k = int(rng.integers(1, d + 1))
            ang = np.sort(rng.uniform(0, TWO_PI, d))
            nbrs = ring_points(ang)
            opt = total_spread(optimal_star_cover((0.0, 0.0), nbrs, k))
            lem = total_spread(lemma1_orientation((0.0, 0.0), nbrs, k))
            assert opt <= lem + 1e-9

    def test_regular_polygon_star_workload(self):
        pts = regular_polygon_star(5)
        hub, ring = pts[0], pts[1:]
        sectors = optimal_star_cover(hub, ring, 2)
        assert all_covered(sectors, hub, ring)
        assert total_spread(sectors) == pytest.approx(TWO_PI * 3 / 5)
