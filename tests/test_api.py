"""Tests for the ``repro.api`` façade and the RequestBase refactor.

The load-bearing claim is identity stability: moving PlanRequest and
FrontierRequest onto a shared ``RequestBase`` must not change a single
plan fingerprint, or every existing run directory silently orphans its
ledgers.  The checked-in fixture ``tests/fixtures/plan_fingerprints.json``
pins the pre-refactor hashes; these tests reconstruct the exact requests
and require byte-equality.
"""

import json
import math
from pathlib import Path

import pytest

from repro.api import (
    FrontierRequest,
    PlanRequest,
    RequestBase,
    Shard,
    assemble,
    request_from_wire,
    submit,
)
from repro.engine import GridCell, Scenario
from repro.errors import InvalidParameterError
from repro.store import RunStore

FIXTURES = Path(__file__).parent / "fixtures" / "plan_fingerprints.json"


def fixture_requests() -> dict[str, RequestBase]:
    """The exact requests whose fingerprints are pinned in the fixture."""
    return {
        "ci-smoke sweep": PlanRequest.sweep(
            workloads=["uniform"], sizes=[32], seeds=4, ks=[1, 2],
            phis=[math.pi], tag="ci-smoke", compute_critical=False,
        ),
        "two-scenario sweep": PlanRequest(
            scenarios=(
                Scenario("uniform", 64, seeds=3, tag="sweep"),
                Scenario("clustered", 48, seeds=2, tag="x", seed_offset=5),
            ),
            grid=(
                GridCell(1, math.pi),
                GridCell(3, 2 * math.pi),
                GridCell(2, 2.0943951023931953),
            ),
        ),
        "ci-frontier threshold": FrontierRequest(
            scenarios=(Scenario("uniform", 24, seeds=3, tag="ci-frontier"),),
            ks=(2,),
            metric="range_bound",
            target=1.41421356,
            phi_lo=2.8,
            phi_hi=3.3,
            tol=1e-3,
        ),
        "staircase frontier": FrontierRequest(
            scenarios=(Scenario("annulus", 40, seeds=2, tag="stair"),),
            ks=(1, 2, 4),
            metric="critical_range",
            target=None,
            phi_lo=0.0,
            phi_hi=2 * math.pi + 1e-13,
            tol=5e-3,
        ),
    }


class TestFingerprintStability:
    def test_fixture_fingerprints_unchanged(self):
        """Every pinned pre-refactor fingerprint reproduces byte-for-byte."""
        pinned = {
            e["label"]: e for e in json.loads(FIXTURES.read_text("utf8"))
        }
        requests = fixture_requests()
        assert set(pinned) == set(requests)
        for label, request in requests.items():
            assert request.fingerprint() == pinned[label]["fingerprint"], label
            assert request.KIND == pinned[label]["kind"], label

    def test_backend_field_outside_identity(self):
        a = fixture_requests()["ci-smoke sweep"]
        b = PlanRequest(
            scenarios=a.scenarios, grid=a.grid,
            compute_critical=a.compute_critical, backend="numpy",
        )
        assert a.fingerprint() == b.fingerprint()

    def test_sweep_and_frontier_fingerprints_disjoint(self):
        """The frontier kind tag keeps the two hash spaces separate."""
        requests = fixture_requests()
        prints = {r.fingerprint() for r in requests.values()}
        assert len(prints) == len(requests)


class TestWireFormat:
    @pytest.mark.parametrize("label", sorted(fixture_requests()))
    def test_round_trip_preserves_identity(self, label):
        request = fixture_requests()[label]
        clone = request_from_wire(
            json.loads(json.dumps(request.to_wire()))
        )
        assert type(clone) is type(request)
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    def test_missing_kind_defaults_to_sweep(self):
        request = fixture_requests()["ci-smoke sweep"]
        wire = request.to_wire()
        del wire["kind"]
        assert request_from_wire(wire) == request

    def test_unknown_kind_rejected(self):
        wire = fixture_requests()["ci-smoke sweep"].to_wire()
        wire["kind"] = "mystery"
        with pytest.raises(InvalidParameterError, match="mystery"):
            request_from_wire(wire)


class TestSubmitFacade:
    def test_dispatches_sweep(self, tmp_path):
        request = PlanRequest.sweep(
            workloads=["uniform"], sizes=[16], seeds=2, ks=[1],
            phis=[math.pi], tag="facade", compute_critical=False,
        )
        store = RunStore(tmp_path)
        result = submit(request, store=store)
        assert len(result.records) == 2
        assert len(assemble(request, store).records) == 2

    def test_dispatches_frontier(self, tmp_path):
        request = FrontierRequest(
            scenarios=(Scenario("uniform", 16, seeds=2, tag="facade"),),
            ks=(1,), metric="critical_range", target=None,
            phi_lo=math.pi, phi_hi=2 * math.pi, tol=0.1,
        )
        store = RunStore(tmp_path)
        result = submit(request, store=store)
        assert len(result.outcomes) == 2
        assert len(assemble(request, store).outcomes) == 2

    def test_shard_and_resume_pass_through(self, tmp_path):
        request = PlanRequest.sweep(
            workloads=["uniform"], sizes=[16], seeds=4, ks=[1],
            phis=[math.pi], tag="facade-shard", compute_critical=False,
        )
        store = RunStore(tmp_path)
        submit(request, store=store, shard=Shard(0, 2))
        submit(request, store=store, shard=Shard(1, 2))
        merged = assemble(request, store)
        reference = submit(request)
        assert [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in merged.records
        ] == [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in reference.records
        ]

    def test_rejects_foreign_types(self):
        with pytest.raises(InvalidParameterError, match="PlanRequest"):
            submit("not a request")  # type: ignore[arg-type]
        with pytest.raises(InvalidParameterError, match="FrontierRequest"):
            assemble(42, None)  # type: ignore[arg-type]


class TestOldImportsKeepWorking:
    def test_store_serialization_reexports(self):
        from repro.store import (
            frontier_from_dict,
            frontier_to_dict,
            plan_fingerprint,
            plan_kind,
            request_from_dict,
            request_to_dict,
        )

        requests = fixture_requests()
        sweep = requests["ci-smoke sweep"]
        frontier = requests["ci-frontier threshold"]
        assert request_from_dict(request_to_dict(sweep)) == sweep
        assert frontier_from_dict(frontier_to_dict(frontier)) == frontier
        assert plan_fingerprint(sweep) == sweep.fingerprint()
        assert plan_kind(sweep) == "sweep"
        assert plan_kind(frontier) == "frontier"

    def test_top_level_exports(self):
        import repro

        assert repro.submit is submit
        assert issubclass(repro.PlanRequest, repro.RequestBase)
        assert issubclass(repro.FrontierRequest, repro.RequestBase)
