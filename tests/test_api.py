"""Tests for the ``repro.api`` façade and the RequestBase refactor.

The load-bearing claim is identity stability: moving PlanRequest and
FrontierRequest onto a shared ``RequestBase`` must not change a single
plan fingerprint, or every existing run directory silently orphans its
ledgers.  The checked-in fixture ``tests/fixtures/plan_fingerprints.json``
pins the pre-refactor hashes; these tests reconstruct the exact requests
and require byte-equality.
"""

import json
import math
import warnings
from pathlib import Path

import pytest

from repro.api import (
    WIRE_VERSION,
    EnsembleRequest,
    FrontierRequest,
    Perturbation,
    PlanRequest,
    RequestBase,
    Shard,
    UnknownRequestKind,
    UnsupportedWireVersion,
    WireFormatError,
    assemble,
    request_from_wire,
    submit,
)
from repro.engine import GridCell, Scenario
from repro.errors import InvalidParameterError
from repro.store import RunStore

FIXTURES = Path(__file__).parent / "fixtures" / "plan_fingerprints.json"


def fixture_requests() -> dict[str, RequestBase]:
    """The exact requests whose fingerprints are pinned in the fixture."""
    return {
        "ci-smoke sweep": PlanRequest.sweep(
            workloads=["uniform"], sizes=[32], seeds=4, ks=[1, 2],
            phis=[math.pi], tag="ci-smoke", compute_critical=False,
        ),
        "two-scenario sweep": PlanRequest(
            scenarios=(
                Scenario("uniform", 64, seeds=3, tag="sweep"),
                Scenario("clustered", 48, seeds=2, tag="x", seed_offset=5),
            ),
            grid=(
                GridCell(1, math.pi),
                GridCell(3, 2 * math.pi),
                GridCell(2, 2.0943951023931953),
            ),
        ),
        "ci-frontier threshold": FrontierRequest(
            scenarios=(Scenario("uniform", 24, seeds=3, tag="ci-frontier"),),
            ks=(2,),
            metric="range_bound",
            target=1.41421356,
            phi_lo=2.8,
            phi_hi=3.3,
            tol=1e-3,
        ),
        "staircase frontier": FrontierRequest(
            scenarios=(Scenario("annulus", 40, seeds=2, tag="stair"),),
            ks=(1, 2, 4),
            metric="critical_range",
            target=None,
            phi_lo=0.0,
            phi_hi=2 * math.pi + 1e-13,
            tol=5e-3,
        ),
        "ci-ensemble curve": EnsembleRequest(
            scenarios=(Scenario("uniform", 24, seeds=2, tag="ci-ensemble"),),
            grid=(GridCell(1, math.pi), GridCell(2, math.pi)),
            trials=8,
            chunk=4,
            perturbation=Perturbation(rotate=True, edge_fail=0.1),
        ),
        "ci-ensemble threshold": EnsembleRequest(
            scenarios=(Scenario("uniform", 24, seeds=2, tag="ci-ensemble"),),
            ks=(1, 2),
            metric="critical_range",
            quantile=0.5,
            target=1.25,
            phi_lo=2.0,
            phi_hi=2 * math.pi,
            tol=1e-2,
            trials=12,
            chunk=6,
            perturbation=Perturbation(fade_sigma=0.05),
        ),
    }


class TestFingerprintStability:
    def test_fixture_fingerprints_unchanged(self):
        """Every pinned pre-refactor fingerprint reproduces byte-for-byte."""
        pinned = {
            e["label"]: e for e in json.loads(FIXTURES.read_text("utf8"))
        }
        requests = fixture_requests()
        assert set(pinned) == set(requests)
        for label, request in requests.items():
            assert request.fingerprint() == pinned[label]["fingerprint"], label
            assert request.KIND == pinned[label]["kind"], label

    def test_backend_field_outside_identity(self):
        a = fixture_requests()["ci-smoke sweep"]
        b = PlanRequest(
            scenarios=a.scenarios, grid=a.grid,
            compute_critical=a.compute_critical, backend="numpy",
        )
        assert a.fingerprint() == b.fingerprint()

    def test_sweep_and_frontier_fingerprints_disjoint(self):
        """The frontier kind tag keeps the two hash spaces separate."""
        requests = fixture_requests()
        prints = {r.fingerprint() for r in requests.values()}
        assert len(prints) == len(requests)


class TestWireFormat:
    @pytest.mark.parametrize("label", sorted(fixture_requests()))
    def test_round_trip_preserves_identity(self, label):
        request = fixture_requests()[label]
        clone = request_from_wire(
            json.loads(json.dumps(request.to_wire()))
        )
        assert type(clone) is type(request)
        assert clone == request
        assert clone.fingerprint() == request.fingerprint()

    def test_missing_kind_defaults_to_sweep(self):
        request = fixture_requests()["ci-smoke sweep"]
        wire = request.to_wire()
        del wire["kind"]
        assert request_from_wire(wire) == request

    def test_unknown_kind_rejected(self):
        wire = fixture_requests()["ci-smoke sweep"].to_wire()
        wire["kind"] = "mystery"
        with pytest.raises(UnknownRequestKind, match="mystery"):
            request_from_wire(wire)

    def test_envelope_is_versioned(self):
        for request in fixture_requests().values():
            assert request.to_wire()["wire_version"] == WIRE_VERSION == 1

    def test_missing_wire_version_reads_as_v1(self):
        request = fixture_requests()["ci-frontier threshold"]
        wire = request.to_wire()
        del wire["wire_version"]
        assert request_from_wire(wire) == request

    def test_future_wire_version_rejected(self):
        wire = fixture_requests()["ci-smoke sweep"].to_wire()
        wire["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(UnsupportedWireVersion, match="newer"):
            request_from_wire(wire)

    def test_malformed_wire_version_rejected(self):
        wire = fixture_requests()["ci-smoke sweep"].to_wire()
        for bad in (0, -1, "1", True, None):
            wire["wire_version"] = bad
            with pytest.raises(WireFormatError):
                request_from_wire(wire)

    def test_typed_errors_map_to_invalid_parameter(self):
        """Service 400s and CLI exit code 2 hinge on this hierarchy."""
        assert issubclass(UnknownRequestKind, WireFormatError)
        assert issubclass(UnsupportedWireVersion, WireFormatError)
        assert issubclass(WireFormatError, InvalidParameterError)

    def test_ensemble_kind_loads_lazily(self):
        """A plain-engine reader meets an "ensemble" envelope: the kind
        registers itself through the lazy import inside request_from_wire."""
        wire = fixture_requests()["ci-ensemble curve"].to_wire()
        clone = request_from_wire(json.loads(json.dumps(wire)))
        assert isinstance(clone, EnsembleRequest)
        assert clone.fingerprint() == (
            fixture_requests()["ci-ensemble curve"].fingerprint()
        )


class TestSubmitFacade:
    def test_dispatches_sweep(self, tmp_path):
        request = PlanRequest.sweep(
            workloads=["uniform"], sizes=[16], seeds=2, ks=[1],
            phis=[math.pi], tag="facade", compute_critical=False,
        )
        store = RunStore(tmp_path)
        result = submit(request, store=store)
        assert len(result.records) == 2
        assert len(assemble(request, store).records) == 2

    def test_dispatches_frontier(self, tmp_path):
        request = FrontierRequest(
            scenarios=(Scenario("uniform", 16, seeds=2, tag="facade"),),
            ks=(1,), metric="critical_range", target=None,
            phi_lo=math.pi, phi_hi=2 * math.pi, tol=0.1,
        )
        store = RunStore(tmp_path)
        result = submit(request, store=store)
        assert len(result.outcomes) == 2
        assert len(assemble(request, store).outcomes) == 2

    def test_shard_and_resume_pass_through(self, tmp_path):
        request = PlanRequest.sweep(
            workloads=["uniform"], sizes=[16], seeds=4, ks=[1],
            phis=[math.pi], tag="facade-shard", compute_critical=False,
        )
        store = RunStore(tmp_path)
        submit(request, store=store, shard=Shard(0, 2))
        submit(request, store=store, shard=Shard(1, 2))
        merged = assemble(request, store)
        reference = submit(request)
        assert [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in merged.records
        ] == [
            json.dumps(r.metrics.as_dict(), sort_keys=True)
            for r in reference.records
        ]

    def test_dispatches_ensemble(self, tmp_path):
        request = EnsembleRequest(
            scenarios=(Scenario("uniform", 16, seeds=1, tag="facade"),),
            grid=(GridCell(1, math.pi),),
            trials=4, chunk=2,
            perturbation=Perturbation(edge_fail=0.1),
            compute_critical=False,
        )
        store = RunStore(tmp_path)
        result = submit(request, store=store)
        assert len(result.outcomes) == request.total_slots == 2
        assert assemble(request, store).aggregate_rows() == (
            result.aggregate_rows()
        )

    def test_rejects_foreign_types(self):
        with pytest.raises(InvalidParameterError, match="no executor"):
            submit("not a request")  # type: ignore[arg-type]
        with pytest.raises(InvalidParameterError, match="no executor"):
            assemble(42, None)  # type: ignore[arg-type]


class TestDeprecatedDeepImports:
    """The pre-redesign deep modules survive as warning shims."""

    @pytest.mark.parametrize("module, name", [
        ("repro.engine.spec", "PlanRequest"),
        ("repro.engine.spec", "FrontierRequest"),
        ("repro.frontier.solver", "solve_instance_frontier"),
        ("repro.service.wire", "parse_submit"),
    ])
    def test_shim_warns_and_resolves(self, module, name):
        import importlib

        shim = importlib.import_module(module)
        impl = importlib.import_module(
            module.rsplit(".", 1)[0] + "._" + module.rsplit(".", 1)[1]
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            value = getattr(shim, name)
        assert value is getattr(impl, name)

    def test_shim_does_not_warn_on_dunders(self):
        """Import machinery probes __path__ etc. — those must stay silent."""
        import repro.engine.spec as shim

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AttributeError):
                shim.__path__

    def test_public_surface_matches_all(self):
        import repro.api as api

        for name in api.__all__:
            assert hasattr(api, name), name


class TestOldImportsKeepWorking:
    def test_store_serialization_reexports(self):
        from repro.store import (
            frontier_from_dict,
            frontier_to_dict,
            plan_fingerprint,
            plan_kind,
            request_from_dict,
            request_to_dict,
        )

        requests = fixture_requests()
        sweep = requests["ci-smoke sweep"]
        frontier = requests["ci-frontier threshold"]
        assert request_from_dict(request_to_dict(sweep)) == sweep
        assert frontier_from_dict(frontier_to_dict(frontier)) == frontier
        assert plan_fingerprint(sweep) == sweep.fingerprint()
        assert plan_kind(sweep) == "sweep"
        assert plan_kind(frontier) == "frontier"

    def test_top_level_exports(self):
        import repro

        assert repro.submit is submit
        assert issubclass(repro.PlanRequest, repro.RequestBase)
        assert issubclass(repro.FrontierRequest, repro.RequestBase)
