"""Tests for the Monte-Carlo ensemble layer (spec, trials, solver, executor).

Determinism conventions match the store/service tests: resume and
idempotency claims are validated with the process-wide kernel counters
(zero re-execution means zero coverage calls AND zero ``ensemble_trials``),
shard and worker-count invariance by bit-identical aggregate tables
against a serial reference — never by wall-clock.
"""

import json
import math

import numpy as np
import pytest

from repro.api import assemble, assemble_rows, submit
from repro.engine import GridCell, Scenario
from repro.ensemble import (
    EnsembleRequest,
    Perturbation,
    execute_ensemble,
    wilson_interval,
)
from repro.ensemble.trials import draw_trials
from repro.errors import InvalidParameterError, PlanCancelled
from repro.kernels.instrument import recording
from repro.store import RunStore, StoreError, merge_stores

PI = math.pi


def curve_request(**overrides) -> EnsembleRequest:
    base = dict(
        scenarios=(Scenario("uniform", 20, seeds=2, tag="ens-test"),),
        grid=(GridCell(1, 1.2 * PI), GridCell(2, 0.7 * PI)),
        trials=8,
        chunk=4,
        perturbation=Perturbation(rotate=True, edge_fail=0.1),
    )
    base.update(overrides)
    return EnsembleRequest(**base)


def threshold_request(**overrides) -> EnsembleRequest:
    base = dict(
        scenarios=(Scenario("uniform", 20, seeds=2, tag="ens-test"),),
        ks=(1,),
        metric="critical_range",
        quantile=0.5,
        target=1.25,
        phi_lo=2.0,
        phi_hi=2 * PI,
        tol=0.05,
        trials=12,
        chunk=6,
        perturbation=Perturbation(fade_sigma=0.05),
    )
    base.update(overrides)
    return EnsembleRequest(**base)


class TestEnsembleRequest:
    def test_exactly_one_mode(self):
        with pytest.raises(InvalidParameterError, match="exactly one"):
            curve_request(ks=(1,))
        with pytest.raises(InvalidParameterError, match="exactly one"):
            curve_request(grid=())

    def test_threshold_needs_one_predicate(self):
        with pytest.raises(InvalidParameterError):
            threshold_request(p_target=0.9)  # both targets set
        with pytest.raises(InvalidParameterError):
            threshold_request(target=None)  # neither set

    def test_curve_mode_forbids_predicates(self):
        with pytest.raises(InvalidParameterError):
            curve_request(p_target=0.9)

    def test_perturbation_validation(self):
        with pytest.raises(InvalidParameterError, match="edge_fail"):
            Perturbation(edge_fail=1.0)
        with pytest.raises(InvalidParameterError, match="fade_sigma"):
            Perturbation(fade_sigma=-0.1)
        assert Perturbation().is_identity
        assert not Perturbation(rotate=True).is_identity

    def test_round_trips_through_wire(self):
        for request in (curve_request(), threshold_request()):
            clone = EnsembleRequest.from_dict(
                json.loads(json.dumps(request.to_dict()))
            )
            assert clone == request
            assert clone.fingerprint() == request.fingerprint()

    def test_identity_includes_trial_machinery(self):
        """trials/chunk/perturbation/early_stop all shape ledger rows."""
        base = curve_request()
        assert base.fingerprint() != curve_request(trials=16).fingerprint()
        assert base.fingerprint() != curve_request(chunk=2).fingerprint()
        assert base.fingerprint() != curve_request(
            perturbation=Perturbation(rotate=True, edge_fail=0.2)
        ).fingerprint()
        t = threshold_request()
        assert t.fingerprint() != threshold_request(
            early_stop=False
        ).fingerprint()
        # backend stays outside identity, like every other kind
        assert base.fingerprint() == curve_request(
            backend="numpy"
        ).fingerprint()

    def test_curve_slots_are_per_trial_chunk(self):
        request = curve_request()  # 2 instances x ceil(8/4)=2 chunks
        assert request.n_chunks == 2
        assert request.total_instances == 2
        assert request.total_slots == 4
        assert list(request.chunk_trials(1)) == [4, 5, 6, 7]

    def test_threshold_slots_are_per_instance(self):
        request = threshold_request()
        assert request.total_slots == request.total_instances == 2


class TestTrialDeterminism:
    def test_draws_depend_only_on_key_slot_trial(self):
        pert = Perturbation(rotate=True, node_fail=0.2, fade_sigma=0.1)
        a = draw_trials("key", 3, range(4, 8), 10, pert)
        b = draw_trials("key", 3, [6, 7], 10, pert)
        assert np.array_equal(a.rotation[2:], b.rotation)
        assert np.array_equal(a.alive[2:], b.alive)
        assert np.array_equal(a.fade[2:], b.fade)
        assert np.array_equal(a.edge_seeds[2:], b.edge_seeds)

    def test_dense_and_sparse_backends_agree(self):
        """Edge draws go through the indexed virtual-uniform table, so the
        dense n^2 path and the sparse candidate-only path see identical
        per-pair coin flips."""
        request = curve_request(
            perturbation=Perturbation(
                rotate=True, edge_fail=0.1, node_fail=0.1, fade_sigma=0.1
            )
        )
        dense = execute_ensemble(request, backend="numpy")
        sparse = execute_ensemble(request, backend="sparse")
        assert dense.aggregate_rows() == sparse.aggregate_rows()
        for a, b in zip(dense.outcomes, sparse.outcomes):
            assert a.results == b.results

    def test_identity_perturbation_reproduces_deterministic_network(self):
        request = curve_request(
            grid=(GridCell(2, 2 * PI),), perturbation=Perturbation()
        )
        batch = execute_ensemble(request)
        [row] = batch.aggregate_rows()
        # Full-circle antennae at the construction radius: every trial is
        # the deterministic (connected) network.
        assert row["p_connected"] == 1.0
        assert row["trials"] == request.trials * request.total_instances

    def test_trial_counters_account_for_work(self):
        request = curve_request()
        with recording() as rec:
            execute_ensemble(request)
        # Curve mode measures every grid cell on every trial, so the
        # counter ticks per (instance, trial, cell).
        assert rec.ensemble_trials == (
            request.trials * request.total_instances * len(request.grid)
        )


class TestExecutor:
    def test_parallel_matches_serial(self):
        request = curve_request()
        serial = execute_ensemble(request)
        parallel = execute_ensemble(request, jobs=2)
        assert parallel.jobs_used == 2
        assert serial.aggregate_rows() == parallel.aggregate_rows()
        assert [o.results for o in serial.outcomes] == [
            o.results for o in parallel.outcomes
        ]

    def test_threshold_solver_through_executor(self):
        batch = execute_ensemble(threshold_request())
        for _, frontiers in batch.frontiers():
            for f in frontiers:
                assert f.status in ("located", "below_lo", "unattained")
                assert f.trials_used + f.trials_saved == (
                    f.evaluated_count * 12
                )

    def test_curve_aggregate_row_shape(self):
        request = curve_request()
        rows = execute_ensemble(request).aggregate_rows()
        assert len(rows) == len(request.grid)
        for row in rows:
            lo, hi = row["p_lo"], row["p_hi"]
            assert 0.0 <= lo <= row["p_connected"] <= hi <= 1.0
            assert (lo, hi) == wilson_interval(
                round(row["p_connected"] * row["trials"]),
                row["trials"],
                request.confidence,
            )


class TestDurability:
    def test_kill_mid_chunk_resume_bit_identical(self, tmp_path):
        """Acceptance: losing a trial-chunk row mid-run costs exactly that
        chunk on resume, and a completed ledger replays with zero kernel
        work AND zero trials."""
        request = curve_request()
        store = RunStore(tmp_path / "runs")
        cold = execute_ensemble(request, store=store)
        reference = cold.aggregate_rows()

        [ledger_path] = (tmp_path / "runs").glob("ledger-*.jsonl")
        lines = ledger_path.read_text("utf8").splitlines(keepends=True)
        rows = [ln for ln in lines if '"type": "ensemble"' in ln]
        assert len(rows) == request.total_slots == 4
        ledger_path.write_text("".join(rows[:3]), "utf8")

        with recording() as rec_partial:
            partial = execute_ensemble(request, store=store, resume=True)
        assert partial.replayed_instances == 3
        # Exactly the lost chunk re-runs: chunk trials x each grid cell.
        assert rec_partial.ensemble_trials == (
            request.chunk * len(request.grid)
        )
        assert partial.aggregate_rows() == reference

        with recording() as rec_full:
            full = execute_ensemble(request, store=store, resume=True)
        assert full.replayed_instances == 4
        assert rec_full.coverage_calls == 0
        assert rec_full.graph_builds == 0
        assert rec_full.polar_builds == 0
        assert rec_full.ensemble_trials == 0
        assert full.aggregate_rows() == reference
        assert assemble(request, store).aggregate_rows() == reference

    def test_rerun_without_resume_is_refused(self, tmp_path):
        request = curve_request()
        store = RunStore(tmp_path / "runs")
        execute_ensemble(request, store=store)
        with pytest.raises(StoreError, match="resume"):
            execute_ensemble(request, store=store)

    def test_two_shard_merge_equals_unsharded(self, tmp_path):
        for request in (curve_request(), threshold_request()):
            reference = execute_ensemble(request).aggregate_rows()
            run_dir = tmp_path / f"runs-{request.objective}"
            store = RunStore(run_dir)
            for i in range(2):
                execute_ensemble(request, store=store, shard=(i, 2))
            key, loaded, rows = merge_stores([run_dir])
            assert isinstance(loaded, EnsembleRequest) and loaded == request
            merged = assemble_rows(loaded, rows)
            assert merged.aggregate_rows() == reference

    def test_cancellation_tombstone_stops_the_run(self, tmp_path):
        request = curve_request()
        store = RunStore(tmp_path / "runs")
        store.cancel(request.fingerprint())
        with pytest.raises(PlanCancelled):
            execute_ensemble(request, store=store)

    def test_threshold_resume_zero_kernels(self, tmp_path):
        request = threshold_request()
        store = RunStore(tmp_path / "runs")
        cold = execute_ensemble(request, store=store)
        with recording() as rec:
            warm = execute_ensemble(request, store=store, resume=True)
        assert rec.coverage_calls == 0 and rec.ensemble_trials == 0
        assert warm.aggregate_rows() == cold.aggregate_rows()


class TestService:
    def test_double_submit_attaches_idempotently(self, tmp_path):
        """An EnsembleRequest rides the unchanged service: same job id,
        attached=True, zero kernel work and zero trials the second time."""
        from repro.service import ServiceClient, create_app, submit_payload

        store = RunStore(tmp_path / "run")
        try:
            client = ServiceClient(create_app(store))
            request = curve_request()
            payload = submit_payload(request)
            first = client.post("/plans", json_body=payload).raise_for_status()
            assert first.json["id"] == request.fingerprint()
            assert first.json["kind"] == "ensemble"
            assert first.json["attached"] is False
            client.app.manager.join(first.json["id"], timeout=120.0)

            with recording() as counters:
                second = client.post(
                    "/plans", json_body=payload
                ).raise_for_status()
                client.app.manager.join(second.json["id"], timeout=120.0)
                result = client.get(
                    f"/plans/{second.json['id']}/result"
                ).raise_for_status()
            assert second.json["id"] == first.json["id"]
            assert second.json["attached"] is True
            assert counters.coverage_calls == 0
            assert counters.ensemble_trials == 0
            assert len(result.json["rows"]) == len(request.grid)
        finally:
            store.close()


class TestEarlyStopping:
    def test_saves_at_least_3x_trials(self):
        """Acceptance: the Wilson stopper runs >= 3x fewer trials (and
        hence proportionally fewer coverage kernel calls; the full
        counter-level comparison lives in benchmarks/bench_ensemble.py)."""
        request = threshold_request(trials=60, chunk=6)
        batch = execute_ensemble(request)
        used, saved = batch.trial_totals()
        fixed_budget = used + saved
        assert saved > 0
        assert fixed_budget >= 3 * used, (used, saved)

    def test_early_stop_off_runs_full_budget(self):
        batch = execute_ensemble(
            threshold_request(trials=12, chunk=6, early_stop=False)
        )
        used, saved = batch.trial_totals()
        assert saved == 0
        for _, frontiers in batch.frontiers():
            for f in frontiers:
                assert f.trials_used == f.evaluated_count * 12


class TestX8:
    def test_p_to_1_limit_recovers_table1_thresholds(self):
        """The probabilistic frontier with the identity perturbation must
        land on the deterministic Table-1 thresholds 8pi/5, pi, 4pi/5."""
        from repro.experiments.ensemble_experiment import run_ensemble

        rec = run_ensemble(n=16, seeds=1, trials=24, tol=0.02)
        limit_rows = [r for r in rec.rows if r[0] == "p->1"]
        expected = {1: 1.6, 2: 1.0, 3: 0.8}
        assert len(limit_rows) == 3
        for row in limit_rows:
            k, phi_star_over_pi = row[1], row[4]
            assert abs(phi_star_over_pi - expected[k]) <= 0.01, row
            assert row[6] >= 3 * row[5], row  # saved >= 3x used

    def test_facade_submits_ensembles(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        request = curve_request()
        batch = submit(request, store=store)
        assert batch.aggregate_rows() == (
            assemble(request, store).aggregate_rows()
        )
