"""Unit tests for repro.graph.connectivity (vertex connectivity vs networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.connectivity import (
    directed_vertex_connectivity,
    is_strongly_c_connected,
    is_strongly_connected,
    strong_connectivity_certificate,
)
from repro.graph.digraph import DiGraph


def cycle(n: int) -> DiGraph:
    return DiGraph(n, [(i, (i + 1) % n) for i in range(n)])


def complete(n: int) -> DiGraph:
    return DiGraph(n, [(i, j) for i in range(n) for j in range(n) if i != j])


class TestIsStronglyConnected:
    def test_cycle(self):
        assert is_strongly_connected(cycle(6))

    def test_path_is_not(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        assert not is_strongly_connected(g)

    def test_trivial(self):
        assert is_strongly_connected(DiGraph(1))
        assert is_strongly_connected(DiGraph(0))

    def test_two_cycles_joined_one_way(self):
        g = DiGraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
        assert not is_strongly_connected(g)

    def test_isolated_vertex(self):
        g = DiGraph(3, [(0, 1), (1, 0)])
        assert not is_strongly_connected(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = 25
        edges = rng.integers(0, n, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = DiGraph(n, edges)
        assert is_strongly_connected(g) == nx.is_strongly_connected(g.to_networkx())


class TestCertificate:
    def test_connected_certificate(self):
        cert = strong_connectivity_certificate(cycle(4))
        assert cert.strongly_connected
        assert cert.n_components == 1
        assert not cert.unreachable_from_0

    def test_diagnoses_unreachable(self):
        g = DiGraph(3, [(0, 1)])
        cert = strong_connectivity_certificate(g)
        assert not cert
        assert 2 in cert.unreachable_from_0
        assert set(cert.not_reaching_0) == {1, 2}


class TestVertexConnectivity:
    def test_cycle_is_one(self):
        assert directed_vertex_connectivity(cycle(5)) == 1

    def test_complete_is_n_minus_one(self):
        assert directed_vertex_connectivity(complete(4)) == 3

    def test_not_strong_is_zero(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        assert directed_vertex_connectivity(g) == 0

    def test_bidirected_cycle_is_two(self):
        n = 6
        edges = [(i, (i + 1) % n) for i in range(n)] + [((i + 1) % n, i) for i in range(n)]
        assert directed_vertex_connectivity(DiGraph(n, edges)) == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(900 + seed)
        n = 12
        # Dense-ish random strongly connected graphs.
        edges = [(i, (i + 1) % n) for i in range(n)]
        extra = rng.integers(0, n, size=(40, 2))
        edges += [tuple(e) for e in extra[extra[:, 0] != extra[:, 1]]]
        g = DiGraph(n, np.asarray(edges))
        expected = nx.algorithms.connectivity.node_connectivity(g.to_networkx())
        assert directed_vertex_connectivity(g) == expected


class TestCConnectivity:
    def test_c1_is_strong_connectivity(self):
        assert is_strongly_c_connected(cycle(5), 1)

    def test_cycle_not_2connected(self):
        assert not is_strongly_c_connected(cycle(5), 2)

    def test_bidirected_cycle_2connected(self):
        n = 6
        edges = [(i, (i + 1) % n) for i in range(n)] + [((i + 1) % n, i) for i in range(n)]
        g = DiGraph(n, edges)
        assert is_strongly_c_connected(g, 2)
        assert not is_strongly_c_connected(g, 3)

    def test_exhaustive_and_flow_agree(self):
        rng = np.random.default_rng(5)
        n = 10
        edges = [(i, (i + 1) % n) for i in range(n)]
        extra = rng.integers(0, n, size=(30, 2))
        edges += [tuple(e) for e in extra[extra[:, 0] != extra[:, 1]]]
        g = DiGraph(n, np.asarray(edges))
        for c in (1, 2, 3):
            exhaustive = is_strongly_c_connected(g, c, exhaustive_limit=10**6)
            flow = is_strongly_c_connected(g, c, exhaustive_limit=0)
            assert exhaustive == flow

    def test_invalid_c(self):
        with pytest.raises(InvalidParameterError):
            is_strongly_c_connected(cycle(3), 0)
