"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.workloads import (
    clustered_points,
    perturbed_star,
    uniform_points,
)
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260610)


@pytest.fixture
def uniform50(rng) -> PointSet:
    """50 uniform points in a 10x10 square (generic position)."""
    return PointSet(uniform_points(50, seed=rng))


@pytest.fixture
def clustered60(rng) -> PointSet:
    """Clustered deployment producing high MST degrees."""
    return PointSet(clustered_points(60, clusters=5, cluster_std=0.45, seed=rng))


@pytest.fixture
def star5(rng) -> PointSet:
    """Degree-5 hub instance (Theorem 3 / Fact 2 territory)."""
    return PointSet(perturbed_star(5, leg=2, seed=rng))


@pytest.fixture
def tree50(uniform50):
    return euclidean_mst(uniform50)


def assert_result_valid(result, *, check_transmission: bool = True) -> None:
    """Shared assertion: the full orientation certificate holds."""
    report = result.validate(check_transmission=check_transmission)
    assert report.ok, report.summary()
