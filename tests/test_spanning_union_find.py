"""Unit tests for repro.spanning.union_find."""

import pytest

from repro.spanning.union_find import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert uf.components == 4
        assert all(uf.find(i) == i for i in range(4))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.components == 3

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.components == 3

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 4)

    def test_component_sizes(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        sizes = sorted(uf.component_sizes().values())
        assert sizes == [1, 2, 2]

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_large_chain(self):
        n = 2000
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.components == 1
        assert uf.connected(0, n - 1)
