"""Unit tests for repro.btsp.exact (Held–Karp bottleneck DP)."""

import itertools

import numpy as np
import pytest

from repro.btsp.exact import held_karp_bottleneck
from repro.errors import InvalidParameterError
from repro.geometry.points import PointSet, pairwise_distances


def brute_force_bottleneck(coords: np.ndarray) -> float:
    n = coords.shape[0]
    d = pairwise_distances(coords)
    best = np.inf
    for perm in itertools.permutations(range(1, n)):
        tour = (0, *perm, 0)
        bn = max(d[a, b] for a, b in zip(tour[:-1], tour[1:]))
        best = min(best, bn)
    return best


class TestHeldKarp:
    def test_trivial_sizes(self):
        assert held_karp_bottleneck(np.array([[0.0, 0.0]]))[1] == 0.0
        order, bn = held_karp_bottleneck(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert bn == pytest.approx(5.0)
        assert sorted(order) == [0, 1]

    def test_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        order, bn = held_karp_bottleneck(pts)
        assert bn == pytest.approx(1.0)
        assert sorted(order) == [0, 1, 2, 3]

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_matches_brute_force(self, n, rng):
        coords = rng.random((n, 2)) * 5
        _, bn = held_karp_bottleneck(coords)
        assert bn == pytest.approx(brute_force_bottleneck(coords))

    def test_order_is_valid_tour(self, rng):
        coords = rng.random((8, 2))
        order, bn = held_karp_bottleneck(coords)
        assert sorted(order) == list(range(8))
        d = pairwise_distances(coords)
        idx = np.asarray(order + [order[0]])
        assert d[idx[:-1], idx[1:]].max() == pytest.approx(bn)

    def test_accepts_pointset(self, rng):
        ps = PointSet(rng.random((6, 2)))
        order, bn = held_karp_bottleneck(ps)
        assert len(order) == 6

    def test_size_guard(self, rng):
        with pytest.raises(InvalidParameterError):
            held_karp_bottleneck(rng.random((20, 2)))
