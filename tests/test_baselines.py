"""Unit tests for repro.baselines (omni + exact tiny-instance search)."""

import numpy as np
import pytest

from repro.baselines.exact_orientation import (
    exact_min_range_single_antenna,
    exact_min_spread_star,
)
from repro.baselines.omni import omnidirectional_critical_range, orient_omnidirectional
from repro.core.kone import orient_k1_pairs
from repro.core.lemma1 import optimal_star_spread
from repro.errors import InvalidParameterError
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from tests.conftest import assert_result_valid

PI = np.pi


class TestOmni:
    def test_critical_range_is_lmax(self, uniform50):
        tree = euclidean_mst(uniform50, max_degree=None)
        assert omnidirectional_critical_range(uniform50) == pytest.approx(tree.lmax)

    def test_single_point(self):
        assert omnidirectional_critical_range(PointSet([[0.0, 0.0]])) == 0.0

    def test_orientation_valid(self, uniform50):
        res = orient_omnidirectional(uniform50)
        assert res.algorithm == "omnidirectional"
        assert res.range_bound == 1.0
        assert_result_valid(res)

    def test_full_circle_sectors(self, uniform50):
        res = orient_omnidirectional(uniform50)
        assert all(s.spread == pytest.approx(2 * PI) for _, s in res.assignment)


class TestExactMinSpreadStar:
    def test_matches_closed_form(self, rng):
        for _ in range(25):
            d = int(rng.integers(2, 7))
            k = int(rng.integers(1, d + 1))
            ang = rng.uniform(0, 2 * PI, d)
            assert exact_min_spread_star(ang, k) == pytest.approx(
                optimal_star_spread(ang, k), abs=1e-9
            )

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            exact_min_spread_star(np.array([0.0]), 0)


class TestExactMinRangeSingleAntenna:
    def test_triangle_full_spread(self):
        ps = PointSet([[0, 0], [1, 0], [0.5, 0.9]])
        # With spread 2pi the optimum equals the omnidirectional lmax.
        r = exact_min_range_single_antenna(ps, 2 * PI - 1e-9)
        tree = euclidean_mst(ps)
        assert r == pytest.approx(tree.lmax)

    def test_collinear_zero_spread(self):
        # Three collinear points, spread 0: optimum is the middle-jump tour.
        ps = PointSet([[0, 0], [1, 0], [2, 0]])
        r = exact_min_range_single_antenna(ps, 0.0)
        assert r == pytest.approx(2.0)

    def test_upper_bounds_constructions(self, rng):
        # The pair construction's range is never better than the optimum.
        for seed in range(3):
            pts = PointSet(np.random.default_rng(seed).random((6, 2)) * 3)
            opt = exact_min_range_single_antenna(pts, PI)
            res = orient_k1_pairs(pts, PI)
            assert opt <= res.realized_range() + 1e-9

    def test_size_guard(self, rng):
        with pytest.raises(InvalidParameterError):
            exact_min_range_single_antenna(PointSet(rng.random((10, 2))), PI)

    def test_single_point(self):
        assert exact_min_range_single_antenna(PointSet([[0.0, 0.0]]), PI) == 0.0
