"""Tests for the adaptive φ-frontier solver, executor, store and CLI.

Determinism claims follow the single-core CI convention: resumed, sharded
and parallel runs are validated by bit-identical results and kernel/cache
work counters, never wall-clock.
"""

import json
import math

import pytest

from repro.__main__ import main
from repro.analysis.metrics import orientation_metrics
from repro.core.planner import choose_algorithm, orient_antennae
from repro.engine import FrontierRequest, GridCell, PlanRequest, Scenario
from repro.errors import InvalidParameterError
from repro.frontier import (
    PHI_FREE_ALGORITHMS,
    assemble_frontier,
    dispatch_regime,
    execute_frontier,
    solve_instance_frontier,
)
from repro.frontier._solver import ProbeEngine
from repro.kernels.instrument import recording
from repro.store import (
    RunStore,
    StoreError,
    frontier_from_dict,
    frontier_to_dict,
    merge_stores,
    plan_fingerprint,
    plan_kind,
)

TWO_PI = 2.0 * math.pi


def k2_request(**kwargs) -> FrontierRequest:
    base = dict(
        scenarios=(Scenario("uniform", 20, seeds=3, tag="test-frontier"),),
        ks=(2,),
        metric="range_bound",
        target=math.sqrt(2.0),
        phi_lo=2.8,
        phi_hi=3.3,
        tol=1e-3,
    )
    base.update(kwargs)
    return FrontierRequest(**base)


class TestFrontierRequest:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            k2_request(ks=())
        with pytest.raises(InvalidParameterError):
            k2_request(ks=(0,))
        with pytest.raises(InvalidParameterError):
            k2_request(metric="edges")
        with pytest.raises(InvalidParameterError):
            k2_request(phi_lo=3.3, phi_hi=2.8)
        with pytest.raises(InvalidParameterError):
            k2_request(tol=0.0)
        with pytest.raises(InvalidParameterError):
            k2_request(tol=1.0)  # >= interval width
        with pytest.raises(InvalidParameterError):
            k2_request(phi_hi=TWO_PI + 1e-6)
        with pytest.raises(InvalidParameterError):
            FrontierRequest(scenarios=(), ks=(1,))

    def test_phi_hi_clamped_to_two_pi(self):
        req = k2_request(phi_hi=TWO_PI + 1e-13)
        assert req.phi_hi == TWO_PI

    def test_non_finite_target_rejected(self):
        """A NaN target would skip both bisection guards (every comparison
        is False) and fabricate a 'located' result at phi_hi."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(InvalidParameterError, match="finite"):
                k2_request(target=bad)

    def test_modes(self):
        assert k2_request().search_mode == "threshold"
        assert k2_request(target=None).search_mode == "staircase"
        assert k2_request(metric="critical_range").compute_critical
        assert not k2_request().compute_critical

    def test_round_trips_through_dict(self):
        for req in (k2_request(), k2_request(target=None, metric="realized_range")):
            again = frontier_from_dict(
                json.loads(json.dumps(frontier_to_dict(req)))
            )
            assert again == req
            assert plan_fingerprint(again) == plan_fingerprint(req)

    def test_fingerprint_separates_kinds_and_specs(self):
        req = k2_request()
        assert plan_kind(req) == "frontier"
        plan = PlanRequest(req.scenarios, (GridCell(2, 3.0),))
        assert plan_fingerprint(req) != plan_fingerprint(plan)
        assert plan_fingerprint(req) != plan_fingerprint(k2_request(tol=2e-3))
        assert plan_fingerprint(req) != plan_fingerprint(
            k2_request(target=1.4142)
        )


class TestWarmStart:
    def test_phi_free_regimes_are_truly_phi_independent(self, uniform50):
        """The memo's soundness condition: within a φ-free dispatch regime
        every metric field except the recorded φ itself is unchanged."""
        probes = {  # (k, phi_a, phi_b) landing in one φ-free regime
            (2, 3.2, 3.5): "theorem3.part1",
            (2, 4.0, 6.0): "theorem2",
            (2, 0.1, 1.9): "k2-zero-spread",
            (3, 0.3, 2.0): "theorem5",
            (4, 0.2, 1.0): "theorem6",
        }
        for (k, a, b), algo in probes.items():
            assert choose_algorithm(k, a) == choose_algorithm(k, b) == algo
            assert algo in PHI_FREE_ALGORITHMS
            assert dispatch_regime(k, a) == dispatch_regime(k, b)
            ma = orientation_metrics(orient_antennae(uniform50, k, a)).as_dict()
            mb = orientation_metrics(orient_antennae(uniform50, k, b)).as_dict()
            diff = [f for f in ma if f != "phi" and ma[f] != mb[f]]
            assert not diff, f"{algo} depends on phi via {diff}"

    def test_phi_dependent_regimes_are_not_reused(self, uniform50):
        # theorem3.part2 widens its sectors with φ: distinct φ, distinct work.
        assert dispatch_regime(2, 2.2) == dispatch_regime(2, 2.6)
        assert dispatch_regime(2, 2.2)[0] not in PHI_FREE_ALGORITHMS

    def test_probe_engine_memoizes(self, uniform50):
        from repro.kernels.geometry import polar_tables
        from repro.spanning.emst import euclidean_mst

        tree = euclidean_mst(uniform50)
        tables = polar_tables(uniform50.coords)
        engine = ProbeEngine(uniform50, tree, tables, 3, "range_bound", False)
        with recording() as rec1:
            first = engine(2.6)  # theorem2 regime (phi >= 4pi/5)
        assert not first.reused and rec1.coverage_calls > 0
        with recording() as rec2:
            same_regime = engine(2.9)
            exact_repeat = engine(2.6)
        assert same_regime.reused and exact_repeat.reused
        assert rec2.coverage_calls == 0, "warm-started probes ran kernels"
        assert same_regime.value == first.value
        # A different regime still pays.
        with recording() as rec3:
            other = engine(2.45)  # theorem3.part2 via k'=2
        assert not other.reused and rec3.coverage_calls > 0

    def test_regime_memo_is_shared_across_ks(self):
        """k budgets clamping to the same dispatch (k > 5 behaves like 5)
        share the instance's regime memo: the second k evaluates nothing."""
        req = FrontierRequest(
            scenarios=(Scenario("uniform", 20, seeds=1, tag="test-frontier"),),
            ks=(5, 7),  # both dispatch to Theorem 2 with 5 antennae
            metric="range_bound",
            target=1.0,
            phi_lo=1.0,
            phi_hi=2.0,
            tol=1e-2,
        )
        [outcome] = execute_frontier(req).outcomes
        k5, k7 = outcome.frontiers
        assert dispatch_regime(5, 1.5) == dispatch_regime(7, 1.5)
        assert k5.evaluated_count == 1  # one regime, measured once
        assert k7.evaluated_count == 0, "second k re-ran a shared regime"
        assert k7.reused_count == k7.probe_count
        assert [p.value for p in k7.probes] == [p.value for p in k5.probes]


class TestSolver:
    def test_locates_the_k2_crossover(self):
        req = k2_request()
        batch = execute_frontier(req)
        assert len(batch.outcomes) == 3
        for outcome in batch.outcomes:
            [f] = outcome.frontiers
            assert f.status == "located"
            # The k=2 bound reaches sqrt(2) exactly at phi = pi.
            assert math.pi < f.phi_star <= math.pi + req.tol
            assert f.value_lo > req.target >= f.value_hi
            assert f.probe_count <= 2 + math.ceil(
                math.log2((req.phi_hi - req.phi_lo) / req.tol)
            )

    def test_below_lo_and_unattained(self):
        below = execute_frontier(k2_request(target=10.0)).outcomes[0].frontiers[0]
        assert below.status == "below_lo" and below.phi_star == 2.8
        unatt = execute_frontier(k2_request(target=0.5)).outcomes[0].frontiers[0]
        assert unatt.status == "unattained" and unatt.phi_star is None

    def test_staircase_maps_plateaus(self):
        # k=3 bound over [2.0, 3.0]: theorem5/part2 territory then the flat
        # range-1 plateau from 4pi/5; the transition must be bracketed to tol.
        req = FrontierRequest(
            scenarios=(Scenario("uniform", 20, seeds=1, tag="test-frontier"),),
            ks=(3,),
            metric="range_bound",
            phi_lo=2.5,
            phi_hi=3.0,
            tol=1e-2,
        )
        [outcome] = execute_frontier(req).outcomes
        [f] = outcome.frontiers
        assert f.status == "mapped" and f.phi_star is None
        assert f.steps[0]["phi_lo"] == 2.5 and f.steps[-1]["phi_hi"] == 3.0
        values = [s["value"] for s in f.steps]
        assert values == sorted(values, reverse=True), "bound not monotone"
        assert values[-1] == 1.0
        # The flat Theorem-2 plateau starts within tol of 4pi/5.
        assert abs(f.steps[-1]["phi_lo"] - 4 * math.pi / 5) <= 2e-2
        assert f.reused_count > 0

    def test_solve_instance_matches_executor(self):
        req = k2_request()
        frontiers, facts = solve_instance_frontier(
            req.scenarios[0].instance(0), req
        )
        batch = execute_frontier(req)
        assert [f.as_dict() for f in frontiers] == [
            f.as_dict() for f in batch.outcomes[0].frontiers
        ]
        assert facts["n"] == 20.0


class TestExecutor:
    def test_parallel_matches_serial(self):
        req = k2_request()
        serial = execute_frontier(req, jobs=1)
        parallel = execute_frontier(req, jobs=2)
        assert serial.aggregate_rows() == parallel.aggregate_rows()
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert [f.as_dict() for f in a.frontiers] == [
                f.as_dict() for f in b.frontiers
            ]

    def test_shards_partition_the_plan(self):
        req = k2_request()
        whole = execute_frontier(req)
        shards = [execute_frontier(req, shard=(i, 2)) for i in range(2)]
        assert sum(len(s.outcomes) for s in shards) == len(whole.outcomes)
        merged = {
            (o.scenario_index, o.instance_index): o
            for s in shards
            for o in s.outcomes
        }
        for o in whole.outcomes:
            twin = merged[(o.scenario_index, o.instance_index)]
            assert [f.as_dict() for f in o.frontiers] == [
                f.as_dict() for f in twin.frontiers
            ]

    def test_aggregate_rows_shape(self):
        req = FrontierRequest(
            scenarios=(
                Scenario("uniform", 20, seeds=2, tag="test-frontier"),
                Scenario("grid", 16, seeds=2, tag="test-frontier"),
            ),
            ks=(2, 3),
            metric="range_bound",
            target=1.5,
            phi_lo=2.0,
            phi_hi=3.5,
            tol=1e-2,
        )
        rows = execute_frontier(req).aggregate_rows()
        assert [(r["workload"], r["k"]) for r in rows] == [
            ("uniform", 2), ("uniform", 3), ("grid", 2), ("grid", 3)
        ]
        for r in rows:
            assert r["runs"] == 2
            assert r["probes"] == r["evaluated"] + r["reused"]
            assert r["found"] == 2 and r["phi_star_mean"] is not None


class TestStore:
    def test_resume_replays_with_zero_kernels(self, tmp_path):
        req = k2_request()
        store = RunStore(tmp_path / "runs")
        cold = execute_frontier(req, store=store)
        with recording() as rec:
            warm = execute_frontier(req, store=store, resume=True)
        assert warm.replayed_instances == 3
        assert rec.coverage_calls == 0 and rec.graph_builds == 0
        assert rec.polar_builds == 0
        assert warm.aggregate_rows() == cold.aggregate_rows()
        assert warm.cache_stats.as_dict() == cold.cache_stats.as_dict()

    def test_rerun_without_resume_is_refused(self, tmp_path):
        req = k2_request()
        store = RunStore(tmp_path / "runs")
        execute_frontier(req, store=store)
        with pytest.raises(StoreError, match="resume"):
            execute_frontier(req, store=store)

    def test_merge_shards_equals_unsharded(self, tmp_path):
        req = k2_request()
        reference = execute_frontier(req)
        store = RunStore(tmp_path / "runs")
        for i in range(2):
            execute_frontier(req, store=store, shard=(i, 2))
        key, loaded, rows = merge_stores([tmp_path / "runs"])
        assert isinstance(loaded, FrontierRequest) and loaded == req
        assembled = assemble_frontier(loaded, rows)
        assert assembled.aggregate_rows() == reference.aggregate_rows()
        for a, b in zip(assembled.outcomes, reference.outcomes):
            assert [f.as_dict() for f in a.frontiers] == [
                f.as_dict() for f in b.frontiers
            ]

    def test_assemble_partial_requires_flag(self, tmp_path):
        req = k2_request()
        store = RunStore(tmp_path / "runs")
        execute_frontier(req, store=store, shard=(0, 2))
        key, loaded, rows = merge_stores([tmp_path / "runs"])
        with pytest.raises(StoreError, match="run the remaining"):
            assemble_frontier(loaded, rows)
        partial = assemble_frontier(loaded, rows, allow_partial=True)
        assert len(partial.outcomes) == 2  # slots 0 and 2 of 3

    def test_sweep_and_frontier_share_a_run_dir(self, tmp_path):
        """Distinct kinds get distinct plan files and ledgers."""
        store = RunStore(tmp_path / "runs")
        freq = k2_request()
        plan = PlanRequest(freq.scenarios, (GridCell(2, 3.0),))
        execute_frontier(freq, store=store)
        from repro.engine import execute_plan

        execute_plan(plan, store=store)
        assert len(store.plan_keys()) == 2
        # Loading by key prefix retrieves the right kind.
        key_f = plan_fingerprint(freq)
        _, loaded = store.load_request(key_f[:12])
        assert isinstance(loaded, FrontierRequest)


class TestFrontierCLI:
    ARGS = ["frontier", "--workload", "uniform", "--n", "18", "--seeds", "2",
            "--k", "2", "--metric", "range_bound", "--target", "1.4142",
            "--phi-lo", "2.8", "--phi-hi", "3.3", "--tol", "1e-2",
            "--tag", "cli-frontier"]

    def test_markdown_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "| workload |" in out and "phi_star_mean" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["rows"][0]["found"] == 2
        assert data["rows"][0]["k"] == 2

    def test_resume_requires_run_dir(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--run-dir" in capsys.readouterr().err

    def test_run_dir_resume_and_merge_round_trip(self, tmp_path, capsys):
        run_dir = str(tmp_path / "rd")
        out_a = str(tmp_path / "a.md")
        out_b = str(tmp_path / "b.md")
        out_m = str(tmp_path / "m.md")
        assert main(self.ARGS + ["--run-dir", run_dir, "--output", out_a]) == 0
        assert main(
            self.ARGS + ["--run-dir", run_dir, "--resume", "--output", out_b]
        ) == 0
        assert main(["merge", "--run-dir", run_dir, "--output", out_m]) == 0
        a = open(out_a).read()
        assert a == open(out_b).read() == open(out_m).read()

    def test_bad_interval_is_a_clean_error(self, capsys):
        rc = main(["frontier", "--phi-lo", "3.0", "--phi-hi", "2.0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_metric_choices_track_the_spec(self):
        """The parser's literal --metric choices (kept literal so --help
        stays import-light) must match the spec's FRONTIER_METRICS exactly:
        a metric added to the spec must be added to the CLI mirror too."""
        from repro.__main__ import _FRONTIER_METRIC_CHOICES, build_parser
        from repro.engine._spec import FRONTIER_METRICS

        assert _FRONTIER_METRIC_CHOICES == FRONTIER_METRICS
        parser = build_parser()
        for metric in FRONTIER_METRICS:
            args = parser.parse_args(["frontier", "--metric", metric])
            assert args.metric == metric


class TestRegistry:
    def test_x7_runs_and_supports_engine_features(self):
        from repro.experiments.registry import (
            run_experiment,
            supports_jobs,
            supports_store,
        )

        assert supports_jobs("X7") and supports_store("X7")
        rec = run_experiment("X7")
        assert rec.experiment_id == "X7"
        assert len(rec.rows) == 3
        # k=2 row: the located phi* sits at the analytic crossover pi.
        k2 = next(r for r in rec.rows if r[0] == 2)
        assert abs(float(k2[3]) - round(math.pi, 4)) <= 2e-3

    def test_x7_resume_is_identical(self, tmp_path):
        from repro.experiments.registry import run_experiment

        store = RunStore(tmp_path / "runs")
        first = run_experiment("X7", store=store)
        with recording() as rec:
            again = run_experiment("X7", store=store, resume=True)
        assert rec.coverage_calls == 0
        assert first.rows == again.rows
