"""Unit tests for repro.graph.scc (with networkx as oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation, strongly_connected_components


def comps_as_sets(comp: np.ndarray) -> set[frozenset[int]]:
    out: dict[int, set[int]] = {}
    for v, c in enumerate(comp):
        out.setdefault(int(c), set()).add(v)
    return {frozenset(s) for s in out.values()}


class TestTarjan:
    def test_single_cycle(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        comp = strongly_connected_components(g)
        assert len(set(comp)) == 1

    def test_dag_all_singletons(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        comp = strongly_connected_components(g)
        assert len(set(comp)) == 4

    def test_two_components(self):
        g = DiGraph(5, [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (1, 2)])
        comp = strongly_connected_components(g)
        assert comps_as_sets(comp) == {frozenset({0, 1}), frozenset({2, 3, 4})}

    def test_reverse_topological_ids(self):
        # Tarjan assigns ids in reverse topological order: sinks first.
        g = DiGraph(3, [(0, 1), (1, 2)])
        comp = strongly_connected_components(g)
        assert comp[2] < comp[1] < comp[0]

    def test_empty_graph(self):
        comp = strongly_connected_components(DiGraph(0))
        assert comp.size == 0

    def test_deep_path_no_recursion(self):
        n = 30000
        edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
        comp = strongly_connected_components(DiGraph(n, edges))
        assert len(set(comp.tolist())) == n

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        m = 120
        edges = rng.integers(0, n, size=(m, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = DiGraph(n, edges)
        ours = comps_as_sets(strongly_connected_components(g))
        theirs = {frozenset(c) for c in nx.strongly_connected_components(g.to_networkx())}
        assert ours == theirs


class TestCondensation:
    def test_dag_property(self):
        rng = np.random.default_rng(7)
        edges = rng.integers(0, 30, size=(90, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = DiGraph(30, edges)
        dag, comp = condensation(g)
        # A DAG has no nontrivial SCCs.
        inner = strongly_connected_components(dag)
        assert len(set(inner.tolist())) == dag.n

    def test_no_self_edges(self):
        g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
        dag, comp = condensation(g)
        assert dag.n == 2
        e = dag.edges()
        assert np.all(e[:, 0] != e[:, 1])

    def test_empty(self):
        dag, comp = condensation(DiGraph(0))
        assert dag.n == 0
