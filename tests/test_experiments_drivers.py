"""Smoke tests: every experiment driver runs and reports sane rows.

Full-size runs live in benchmarks/; here we use reduced parameters so the
whole suite stays fast while still executing every driver end to end.
"""

import numpy as np
import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.btsp_experiment import run_btsp
from repro.experiments.fig1_lemma1 import run_fig1
from repro.experiments.fig2_facts import run_fig2
from repro.experiments.fig34_theorem3 import run_fig4, theorem3_case_census
from repro.experiments.fig56_chains import adversarial_gap_star, run_fig5, run_fig6
from repro.experiments.interference_experiment import run_interference
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.robustness_experiment import run_robustness
from repro.experiments.scaling import run_scaling
from repro.experiments.table1 import representative_phis, run_table1
from repro.experiments.tradeoff import crossover_phi, k2_bound_curve, run_tradeoff
from repro.core.bounds import table1_rows


class TestTable1Driver:
    def test_reduced_run_all_rows_pass(self):
        rec = run_table1(sizes=(16,), seeds=1, workloads=("uniform",))
        assert len(rec.rows) >= 12
        # Columns: ..., connected, bound_ok
        for row in rec.rows:
            assert row[-2] is True or row[-2] == "yes" or row[-2] == True  # noqa: E712
            assert row[-1] is True or row[-1] == True  # noqa: E712

    def test_representative_phis_inside_rows(self):
        for row in table1_rows():
            for phi in representative_phis(row):
                assert phi >= row.phi_lo - 1e-12
                if np.isfinite(row.phi_hi):
                    assert phi <= row.phi_hi + 1e-12


class TestFigureDrivers:
    def test_fig1(self):
        rec = run_fig1(random_trials=20)
        assert all(row[4] for row in rec.rows)  # necessity tight
        assert all(row[6] for row in rec.rows)  # sufficiency ok

    def test_fig2(self):
        rec = run_fig2(sizes=(24,), seeds=1, workloads=("uniform",))
        assert all(row[4] for row in rec.rows)  # pi/3 holds everywhere

    def test_fig3_census(self):
        cases, worst, ok = theorem3_case_census(np.pi, 1, trials=6)
        assert ok
        assert worst <= 2 * np.sin(2 * np.pi / 9) + 1e-9
        assert cases["root"] == 6

    def test_fig4(self):
        rec = run_fig4(phis=(0.75 * np.pi,), trials=6)
        assert all(row[3] for row in rec.rows)

    def test_fig5_and_6(self):
        rec5 = run_fig5()
        rec6 = run_fig6()
        assert rec5.rows and rec6.rows
        assert any("adversarial" in n for n in rec5.notes)

    def test_adversarial_star_valid_pointset(self):
        pts = adversarial_gap_star()
        assert pts.shape == (5, 2)


class TestExtensionDrivers:
    def test_tradeoff(self):
        rec = run_tradeoff(n=24, seeds=1, phis=(0.0, np.pi))
        assert len(rec.rows) == 2

    def test_crossovers(self):
        assert crossover_phi(2.0) == 0.0
        assert crossover_phi(np.sqrt(3)) == pytest.approx(2 * np.pi / 3)
        assert crossover_phi(np.sqrt(2)) == pytest.approx(np.pi)
        assert crossover_phi(1.0) == pytest.approx(6 * np.pi / 5)
        assert crossover_phi(0.5) == np.inf

    def test_bound_curve_monotone(self):
        phis = np.linspace(0, 1.9 * np.pi, 40)
        curve = k2_bound_curve(phis)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_btsp(self):
        rec = run_btsp(seeds=1)
        spider = [r for r in rec.rows if "spider" in r[0]]
        assert spider and spider[0][-1] is False  # exceeds 2 lmax

    def test_robustness(self):
        rec = run_robustness(n=16, trials=5)
        assert all(row[1] >= 1 for row in rec.rows)

    def test_interference(self):
        rec = run_interference(n=32, seeds=1)
        # Zero-spread configurations always reduce mean interference vs omni;
        # wide-spread long-range rows (k=1) may legitimately increase it.
        zero_spread = [row for row in rec.rows if "phi=0" in row[0]]
        assert zero_spread
        for row in zero_spread:
            assert row[4] >= 1.0

    def test_scaling(self):
        rec = run_scaling(sizes=(32, 64))
        assert len(rec.rows) == 2

    def test_ablations(self):
        rec = run_ablations()
        variants = {row[0] for row in rec.rows}
        assert "theorem3 at phi=pi" in variants
        assert "degree repair (hex lattice)" in variants


class TestRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "T1", "F1", "F2", "F3", "F4", "F5", "F6",
            "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8",
        }

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("Z9")
