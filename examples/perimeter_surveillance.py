"""Perimeter surveillance: a ring of sensors with zero-spread beams.

An annulus deployment (fence monitoring) where sensors carry 3 fixed
pencil-beams (Theorem 5).  Shows planning, per-sensor beam tables, and what
happens to connectivity as sensors fail — the operational questions behind
the paper's section-5 open problem.

Run:  python examples/perimeter_surveillance.py
"""

import numpy as np

from repro import PointSet, euclidean_mst, orient_antennae
from repro.analysis.robustness import failure_sweep, strong_connectivity_order
from repro.experiments.workloads import annulus_points
from repro.graph.connectivity import strong_connectivity_certificate


def main() -> None:
    sensors = PointSet(annulus_points(90, r_inner=180.0, r_outer=220.0, seed=17))
    tree = euclidean_mst(sensors)
    print(f"perimeter ring: {len(sensors)} sensors, lmax = {tree.lmax:.1f} m")

    res = orient_antennae(sensors, k=3, phi=0.0, tree=tree)
    print(f"plan: {res.algorithm}, range {res.range_bound_absolute:.1f} m "
          f"(= sqrt(3) * lmax), all beams zero-spread")

    g = res.transmission_graph()
    cert = strong_connectivity_certificate(g)
    print(f"connectivity: strongly connected = {cert.strongly_connected} "
          f"({g.m} directed links)")

    # Beam table for the first few sensors (what a field tech would upload).
    print("\nbeam table (first 5 sensors):")
    for u in range(5):
        beams = ", ".join(
            f"{np.degrees(s.orientation):6.1f} deg" for s in res.assignment[u]
        )
        print(f"  sensor {u:2d}: boresights [{beams}]")

    # Failure analysis.
    order = strong_connectivity_order(g)
    rep = failure_sweep(res, max_failures=3, trials=60, seed=5)
    print(f"\nconnectivity order c = {order} "
          f"(network survives any {order - 1} deletions)")
    for f in sorted(rep.survival_by_failures):
        print(f"  random failures f={f}: survives {100 * rep.survival(f):5.1f} % "
              f"of trials")
    print("\ntakeaway: tree-backed orientations are 1-connected; guaranteeing")
    print("c >= 2 with bounded spread is exactly the paper's open problem.")


if __name__ == "__main__":
    main()
