"""Planning service demo: submit -> poll -> fetch, all in-process.

Drives the exact HTTP surface of ``repro serve`` — the same ASGI app,
the same wire format — without opening a socket, using the in-process
``ServiceClient`` test double.  Shows the full job lifecycle:

1. submit a sweep plan (``POST /plans``) and get its content-addressed id,
2. poll cheap progress (``GET /plans/{id}/progress``),
3. fetch the merged result tables (``GET /plans/{id}/result``),
4. resubmit the identical plan and observe the idempotency contract:
   the service attaches to the finished ledger and runs zero kernel work,
5. submit a Monte-Carlo ensemble request through the *same* endpoint —
   the versioned wire envelope carries the request kind, so the service
   needed zero changes to learn the new job type.

Run:  python examples/service_demo.py
"""

import math
import tempfile

from repro.api import EnsembleRequest, GridCell, Perturbation, PlanRequest, Scenario
from repro.kernels.instrument import recording
from repro.service import ServiceClient, create_app, submit_payload
from repro.store import RunStore


def main() -> None:
    request = PlanRequest.sweep(
        workloads=["uniform", "clustered"], sizes=[32], seeds=3,
        ks=[1, 2], phis=[math.pi, 2 * math.pi], tag="service-demo",
        compute_critical=False,
    )

    with tempfile.TemporaryDirectory() as run_dir:
        store = RunStore(run_dir)
        client = ServiceClient(create_app(store))

        # 1. Submit.  The job id IS the plan fingerprint: resubmitting the
        # same spec anywhere always lands on the same ledger files.
        response = client.post("/plans", json_body=submit_payload(request))
        job = response.raise_for_status().json["id"]
        print(f"submitted {request.total_instances}-instance sweep")
        print(f"  job id (plan fingerprint): {job[:12]}...")
        print(f"  state: {response.json['state']}, "
              f"attached to existing ledger: {response.json['attached']}")

        # 2. Poll.  Progress counts ledger rows — no tables are assembled,
        # so polling stays cheap even for huge plans.
        client.app.manager.join(job)
        progress = client.get(f"/plans/{job}/progress").raise_for_status().json
        print(f"\nprogress: {progress['done_instances']}/"
              f"{progress['total_instances']} instances, "
              f"state={progress['state']}")
        for shard in progress["shards"]:
            print(f"  shard {shard['shard']}: {shard['done']}/{shard['expected']}")

        # 3. Fetch the merged per-cell tables.
        result = client.get(
            f"/plans/{job}/result?aggregate=cell"
        ).raise_for_status().json
        print(f"\nresult: {result['instances']} instances, "
              f"{len(result['rows'])} aggregate rows")
        print(f"  {'k':>2} {'phi':>7} {'max range':>10} {'connected':>9} {'runs':>5}")
        for row in result["rows"]:
            print(f"  {row['k']:>2} {row['phi']:>7.4f} "
                  f"{row['realized_max']:>10.4f} "
                  f"{str(row['all_connected']):>9} {row['runs']:>5}")

        # 4. Resubmit: the idempotency contract.  Same id, attaches to the
        # complete ledger, and the kernel counters prove nothing re-ran.
        with recording() as counters:
            again = client.post(
                "/plans", json_body=submit_payload(request)
            ).raise_for_status()
            client.app.manager.join(again.json["id"])
        print(f"\nresubmitted: same id={again.json['id'] == job}, "
              f"attached={again.json['attached']}, "
              f"state={again.json['state']}")
        print(f"  kernel calls during resubmit: "
              f"coverage={counters.coverage_calls}, "
              f"graph builds={counters.graph_builds}, "
              f"critical searches={counters.critical_searches}")

        # 5. Ensembles ride the same endpoint.  submit_payload() wraps any
        # request in the versioned wire envelope; the kind field routes it
        # to the ensemble executor on the service side.
        ensemble = EnsembleRequest(
            scenarios=(Scenario("uniform", 24, seeds=2, tag="service-demo"),),
            grid=(GridCell(1, 1.2 * math.pi), GridCell(1, 1.4 * math.pi)),
            trials=16, chunk=8,
            perturbation=Perturbation(rotate=True, edge_fail=0.05),
            compute_critical=False,
        )
        response = client.post("/plans", json_body=submit_payload(ensemble))
        ens_job = response.raise_for_status().json["id"]
        client.app.manager.join(ens_job)
        result = client.get(f"/plans/{ens_job}/result").raise_for_status().json
        print(f"\nensemble job {ens_job[:12]}... "
              f"({ensemble.trials} trials/instance, random rotation + 5% edge failure)")
        print(f"  {'k':>2} {'phi':>7} {'P(conn)':>8} {'wilson 95%':>16}")
        for row in result["rows"]:
            print(f"  {row['k']:>2} {row['phi']:>7.4f} "
                  f"{row['p_connected']:>8.3f} "
                  f"[{row['p_lo']:.3f}, {row['p_hi']:.3f}]")

        store.close()


if __name__ == "__main__":
    main()
