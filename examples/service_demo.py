"""Planning service demo: submit -> poll -> fetch, all in-process.

Drives the exact HTTP surface of ``repro serve`` — the same ASGI app,
the same wire format — without opening a socket, using the in-process
``ServiceClient`` test double.  Shows the full job lifecycle:

1. submit a sweep plan (``POST /plans``) and get its content-addressed id,
2. poll cheap progress (``GET /plans/{id}/progress``),
3. fetch the merged result tables (``GET /plans/{id}/result``),
4. resubmit the identical plan and observe the idempotency contract:
   the service attaches to the finished ledger and runs zero kernel work.

Run:  python examples/service_demo.py
"""

import math
import tempfile

from repro.api import PlanRequest
from repro.kernels.instrument import recording
from repro.service import ServiceClient, create_app, submit_payload
from repro.store import RunStore


def main() -> None:
    request = PlanRequest.sweep(
        workloads=["uniform", "clustered"], sizes=[32], seeds=3,
        ks=[1, 2], phis=[math.pi, 2 * math.pi], tag="service-demo",
        compute_critical=False,
    )

    with tempfile.TemporaryDirectory() as run_dir:
        store = RunStore(run_dir)
        client = ServiceClient(create_app(store))

        # 1. Submit.  The job id IS the plan fingerprint: resubmitting the
        # same spec anywhere always lands on the same ledger files.
        response = client.post("/plans", json_body=submit_payload(request))
        job = response.raise_for_status().json["id"]
        print(f"submitted {request.total_instances}-instance sweep")
        print(f"  job id (plan fingerprint): {job[:12]}...")
        print(f"  state: {response.json['state']}, "
              f"attached to existing ledger: {response.json['attached']}")

        # 2. Poll.  Progress counts ledger rows — no tables are assembled,
        # so polling stays cheap even for huge plans.
        client.app.manager.join(job)
        progress = client.get(f"/plans/{job}/progress").raise_for_status().json
        print(f"\nprogress: {progress['done_instances']}/"
              f"{progress['total_instances']} instances, "
              f"state={progress['state']}")
        for shard in progress["shards"]:
            print(f"  shard {shard['shard']}: {shard['done']}/{shard['expected']}")

        # 3. Fetch the merged per-cell tables.
        result = client.get(
            f"/plans/{job}/result?aggregate=cell"
        ).raise_for_status().json
        print(f"\nresult: {result['instances']} instances, "
              f"{len(result['rows'])} aggregate rows")
        print(f"  {'k':>2} {'phi':>7} {'max range':>10} {'connected':>9} {'runs':>5}")
        for row in result["rows"]:
            print(f"  {row['k']:>2} {row['phi']:>7.4f} "
                  f"{row['realized_max']:>10.4f} "
                  f"{str(row['all_connected']):>9} {row['runs']:>5}")

        # 4. Resubmit: the idempotency contract.  Same id, attaches to the
        # complete ledger, and the kernel counters prove nothing re-ran.
        with recording() as counters:
            again = client.post(
                "/plans", json_body=submit_payload(request)
            ).raise_for_status()
            client.app.manager.join(again.json["id"])
        print(f"\nresubmitted: same id={again.json['id'] == job}, "
              f"attached={again.json['attached']}, "
              f"state={again.json['state']}")
        print(f"  kernel calls during resubmit: "
              f"coverage={counters.coverage_calls}, "
              f"graph builds={counters.graph_builds}, "
              f"critical searches={counters.critical_searches}")

        store.close()


if __name__ == "__main__":
    main()
