"""Gallery of the paper's adversarial geometries and how the algorithms cope.

* the regular d-gon (Figure 1) — Lemma 1's spread lower bound is tight;
* the 3-leg spider — the k=1 "range 2" row is provably loose;
* the hexagonal lattice — exact distance ties force degree-6 MSTs until the
  tie repair kicks in;
* the adversarial gap star — the paper's "two adjacent small angles" claim
  for Theorem 5 fails, the exact 2+2 chain split succeeds.

Run:  python examples/worst_case_gallery.py
"""

import numpy as np

from repro import PointSet, euclidean_mst, orient_antennae, optimal_star_spread
from repro.btsp.exact import held_karp_bottleneck
from repro.core.chains import best_chain_partition
from repro.core.lemma1 import lemma1_required_spread
from repro.experiments.fig56_chains import adversarial_gap_star
from repro.experiments.workloads import (
    hexagonal_lattice,
    regular_polygon_star,
    spider_points,
)

PI = np.pi


def regular_polygon_demo() -> None:
    print("=" * 72)
    print("1. Regular d-gon (Figure 1): Lemma 1's bound is exactly necessary")
    for d in (3, 4, 5):
        pts = regular_polygon_star(d)
        hub, ring = pts[0], pts[1:]
        ang = np.arctan2(ring[:, 1], ring[:, 0])
        for k in (1, 2):
            if k > d:
                continue
            need = optimal_star_spread(ang, k)
            bound = lemma1_required_spread(d, k)
            print(f"   d={d}, k={k}: optimal spread {np.degrees(need):6.1f} deg "
                  f"== 2pi(d-k)/d = {np.degrees(bound):6.1f} deg")


def spider_demo() -> None:
    print("=" * 72)
    print("2. 3-leg spider: one antenna cannot reach range 2*lmax")
    ps = PointSet(spider_points(3, 2))
    tree = euclidean_mst(ps)
    _, opt = held_karp_bottleneck(ps)
    print(f"   lmax = {tree.lmax:.4f}; optimal k=1 tour bottleneck = "
          f"{opt / tree.lmax:.4f} * lmax  (> 2: each leg tip fights for the hub)")
    res2 = orient_antennae(ps, 2, 0.0, tree=tree)
    print(f"   with k=2 zero-spread beams: realized range "
          f"{res2.realized_range_normalized():.4f} * lmax  (within the proven 2)")


def hexagon_demo() -> None:
    print("=" * 72)
    print("3. Hexagonal lattice: distance ties and the degree-5 repair")
    ps = PointSet(hexagonal_lattice(2))
    raw = euclidean_mst(ps, max_degree=None)
    fixed = euclidean_mst(ps)
    print(f"   naive MST max degree: {raw.max_degree()}  ->  after tie repair: "
          f"{fixed.max_degree()} (weight unchanged: "
          f"{fixed.total_weight / raw.total_weight:.6f}x)")
    res = orient_antennae(ps, 2, PI, tree=fixed)
    print(f"   Theorem 3 on the repaired tree: realized range "
          f"{res.realized_range_normalized():.4f} * lmax, "
          f"bound {res.range_bound:.4f}")


def gap_star_demo() -> None:
    print("=" * 72)
    print("4. Adversarial gap star (DESIGN.md 4): 2+2 chains rescue Theorem 5")
    pts = adversarial_gap_star()
    ps = PointSet(pts)
    hub, kids = ps.coords[0], ps.coords[1:]
    diff = kids[:, None, :] - kids[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    part = best_chain_partition(dist, max_chains=2)
    print(f"   gaps ~ (120+e, 60-e, 120+e, 60-e) deg: no two ADJACENT small "
          f"angles exist,")
    print(f"   yet the exact search finds {part.n_chains} chains with max edge "
          f"{part.max_edge:.4f} <= sqrt(3)")
    res = orient_antennae(ps, 3, 0.0)
    print(f"   full Theorem-5 run: realized range "
          f"{res.realized_range_normalized():.4f} * lmax (bound 1.7321)")


def main() -> None:
    regular_polygon_demo()
    spider_demo()
    hexagon_demo()
    gap_star_demo()


if __name__ == "__main__":
    main()
