"""Campus scenario: clustered buildings, ESPAR-style two-beam sensors.

Models the deployment the paper's introduction motivates: sensors
concentrated around buildings (clusters), each fitted with two steerable
beams whose spreads must sum to at most pi.  Compares the directional plan
against the omnidirectional baseline on range, interference, and failure
robustness.

Run:  python examples/campus_deployment.py
"""

import numpy as np

from repro import PointSet, euclidean_mst, orient_antennae
from repro.analysis.interference import compare_interference
from repro.analysis.robustness import failure_sweep
from repro.baselines.omni import orient_omnidirectional
from repro.experiments.workloads import clustered_points
from repro.utils.tables import format_ascii_table


def main() -> None:
    sensors = PointSet(
        clustered_points(120, clusters=7, cluster_std=18.0, scale=400.0, seed=11)
    )
    tree = euclidean_mst(sensors)
    print(f"campus: {len(sensors)} sensors in 7 clusters, lmax = {tree.lmax:.1f} m")

    directional = orient_antennae(sensors, k=2, phi=np.pi, tree=tree)
    omni = orient_omnidirectional(sensors, tree=tree)

    # --- range ---------------------------------------------------------------
    rows = [
        ["omnidirectional", "2pi", f"{omni.range_bound_absolute:.1f} m", "baseline"],
        [
            "2 beams, sum pi",
            "pi",
            f"{directional.range_bound_absolute:.1f} m",
            f"{directional.algorithm}",
        ],
    ]
    print()
    print(format_ascii_table(
        ["antennae", "angular sum", "required range", "algorithm"], rows,
        title="Range needed for a strongly connected network",
    ))
    overhead = directional.range_bound_absolute / omni.range_bound_absolute
    print(f"-> two beams of total spread 180 deg cost only {overhead:.3f}x the "
          f"omnidirectional range (paper bound 2 sin(2pi/9) ~ 1.286).")

    # --- interference -------------------------------------------------------------
    cmp = compare_interference(directional, omni)
    print(f"\ninterference (mean receivers covered per transmitter):")
    print(f"  omni        : {cmp['omni_mean']:.2f}")
    print(f"  directional : {cmp['directional_mean']:.2f} "
          f"({cmp['mean_reduction_factor']:.2f}x reduction)")

    # --- robustness -----------------------------------------------------------
    rep = failure_sweep(directional, max_failures=3, trials=60, seed=0)
    print(f"\nrandom-failure survival (strongly connected after f failures):")
    for f in sorted(rep.survival_by_failures):
        print(f"  f={f}: {100 * rep.survival(f):5.1f} %")
    print(f"worst-case connectivity order c = {rep.connectivity_order} "
          f"(the paper's section-5 open problem asks to guarantee c > 1)")


if __name__ == "__main__":
    main()
