"""Quickstart: orient antennae on a random deployment and verify the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    euclidean_mst,
    is_strongly_connected,
    orient_antennae,
    paper_range_bound,
    PointSet,
    transmission_graph,
)


def main() -> None:
    # 1. A deployment: 60 sensors dropped uniformly over a 1 km square.
    rng = np.random.default_rng(7)
    sensors = PointSet(rng.random((60, 2)) * 1000.0)

    # 2. The substrate the paper builds on: a max-degree-5 Euclidean MST.
    tree = euclidean_mst(sensors)
    print(f"deployment: n={len(sensors)}, longest MST edge lmax={tree.lmax:.1f} m, "
          f"max degree={tree.max_degree()}")

    # 3. Orient k=2 antennae per sensor with angular sum <= pi (Theorem 3).
    k, phi = 2, np.pi
    result = orient_antennae(sensors, k, phi, tree=tree)
    bound, source = paper_range_bound(k, phi)
    print(f"\nalgorithm: {result.algorithm}   (Table 1 source: {source})")
    print(f"guaranteed range: {bound:.4f} x lmax = {result.range_bound_absolute:.1f} m")
    print(f"realized range:   {result.realized_range_normalized():.4f} x lmax "
          f"= {result.realized_range():.1f} m")
    print(f"max per-sensor angular sum used: "
          f"{np.degrees(result.max_spread_sum()):.1f} deg (budget {np.degrees(phi):.0f} deg)")

    # 4. Check the induced transmission graph is strongly connected.
    g = transmission_graph(sensors, result.assignment)
    print(f"\ntransmission graph: {g.n} nodes, {g.m} directed edges")
    print(f"strongly connected: {is_strongly_connected(g)}")

    # 5. Validate the full certificate (coverage, budgets, bound).
    report = result.validate()
    print(f"certificate: {report.summary()}")

    # 6. Each sensor's sectors are plain data you can feed to a controller.
    sensor0 = result.assignment[0]
    for i, s in enumerate(sensor0):
        print(f"sensor 0, antenna {i}: boresight={np.degrees(s.orientation):6.1f} deg, "
              f"spread={np.degrees(s.spread):6.1f} deg, range={s.radius:7.1f} m")

    # 7. Persist the plan and render it (JSON for controllers, SVG for eyes).
    import tempfile
    from pathlib import Path

    from repro.io import save_result
    from repro.viz.svg import render_orientation_svg

    out_dir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    save_result(result, str(out_dir / "orientation.json"))
    (out_dir / "orientation.svg").write_text(render_orientation_svg(result))
    print(f"\nwrote {out_dir}/orientation.json and orientation.svg")


if __name__ == "__main__":
    main()
