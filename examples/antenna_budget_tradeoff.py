"""Planning study: how many antennae, how much total spread?

Sweeps every (k, phi) configuration of Table 1 on one deployment and prints
the range each would require — the table an engineer would consult to pick
hardware (number of beams) against transmit power (range).

Run:  python examples/antenna_budget_tradeoff.py
"""

import numpy as np

from repro import PointSet, euclidean_mst, orient_antennae
from repro.experiments.workloads import grid_points
from repro.utils.tables import format_ascii_table

PI = np.pi


def main() -> None:
    sensors = PointSet(grid_points(100, spacing=50.0, jitter=0.2, seed=3))
    tree = euclidean_mst(sensors)
    print(f"planned grid: {len(sensors)} sensors, lmax = {tree.lmax:.1f} m\n")

    configs = [
        (1, 0.0), (1, PI), (1, 1.3 * PI), (1, 1.6 * PI),
        (2, 0.0), (2, 2 * PI / 3), (2, 0.9 * PI), (2, PI), (2, 1.2 * PI),
        (3, 0.0), (3, 0.8 * PI),
        (4, 0.0), (4, 0.4 * PI),
        (5, 0.0),
    ]
    rows = []
    for k, phi in configs:
        res = orient_antennae(sensors, k, phi, tree=tree)
        rows.append([
            k,
            f"{np.degrees(phi):5.0f}",
            res.algorithm,
            f"{res.range_bound:.3f}",
            f"{res.range_bound_absolute:.0f} m",
            f"{res.realized_range():.0f} m",
        ])
    print(format_ascii_table(
        ["k", "spread sum (deg)", "algorithm", "bound (lmax)", "range bound", "realized"],
        rows,
        title="Table-1 planner on this deployment",
    ))

    print("\nreading the table:")
    print(" * beams cost spread OR range: 5 zero-width beams reach lmax;")
    print("   1 beam needs 8pi/5 ~ 288 deg of spread for the same range;")
    print(" * the sweet spots the paper proves: k=2 @ 180 deg -> 1.286x,")
    print("   k=3 @ 0 deg -> 1.732x, k=4 @ 0 deg -> 1.414x.")


if __name__ == "__main__":
    main()
