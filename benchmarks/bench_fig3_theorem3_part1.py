"""Benchmark F3 — Figure 3 / Theorem 3 part 1 (k=2, φ=π) case census."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig34_theorem3 import run_fig3, theorem3_case_census


def test_fig3_case_census(benchmark):
    rec = run_once(benchmark, run_fig3, trials=30)
    print()
    print(rec.to_ascii())
    labels = {row[0] for row in rec.rows}
    # The census must exercise beyond-trivial degrees.
    assert any(lbl.startswith("deg4") for lbl in labels)
    assert any(lbl.startswith("deg5") for lbl in labels)
    assert "all validations passed: True" in rec.notes[-1]


def test_fig3_range_bound():
    _, worst, ok = theorem3_case_census(np.pi, 1, trials=12)
    assert ok
    assert worst <= 2 * np.sin(2 * np.pi / 9) + 1e-9
