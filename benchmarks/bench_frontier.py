"""Benchmark FR — adaptive φ-frontier vs a dense grid, and ledger replay.

FR1: the acceptance workload for the frontier solver.  Locating the φ at
which the k = 2 range bound drops to √2 (the Table-1 crossover at φ = π)
to tolerance 1e-3 takes the bisection O(log((hi-lo)/tol)) probes per
instance; a dense ``repro sweep`` grid achieving the same resolution
evaluates every tol-spaced cell.  Per the single-core CI convention the
claim is stated in *work* counters (orientation/coverage kernel calls),
not wall-clock — both paths route through the same engine cache and
kernels, so the counter ratio is the probe ratio.

FR2: a frontier run killed mid-flight (simulated by truncating the shard
ledger) resumes from the store: only the lost instances re-execute, a
second resume replays everything with **zero** kernel calls, and the
aggregate tables are bit-identical throughout.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine import (
    FrontierRequest,
    GridCell,
    PlanRequest,
    Scenario,
    execute_plan,
)
from repro.frontier import execute_frontier
from repro.kernels.instrument import recording
from repro.store import RunStore
from repro.utils.tables import format_ascii_table
from repro.utils.timing import measure

PHI_LO, PHI_HI, TOL = 2.8, 3.3, 1e-3
TARGET = math.sqrt(2.0)  # k=2 bound reaches sqrt(2) exactly at phi = pi
SCENARIO = Scenario("uniform", 32, seeds=2, tag="bench-frontier")


def _frontier_request(metric: str = "range_bound") -> FrontierRequest:
    return FrontierRequest(
        scenarios=(SCENARIO,),
        ks=(2,),
        metric=metric,
        target=TARGET,
        phi_lo=PHI_LO,
        phi_hi=PHI_HI,
        tol=TOL,
    )


def test_adaptive_frontier_beats_dense_grid(capsys):
    """FR1 — same threshold, same tolerance, strictly fewer kernel calls."""
    request = _frontier_request()
    with recording() as rec_adaptive:
        t_adaptive, batch = measure(lambda: execute_frontier(request))

    # The dense grid achieving the same phi resolution: every tol-spaced
    # cell of the interval, swept through the engine (shared artifacts, the
    # same kernels the frontier probes use).
    n_cells = int(round((PHI_HI - PHI_LO) / TOL)) + 1
    grid = tuple(GridCell(2, PHI_LO + i * TOL) for i in range(n_cells))
    plan = PlanRequest((SCENARIO,), grid, compute_critical=False)
    with recording() as rec_dense:
        t_dense, dense = measure(lambda: execute_plan(plan))

    # Both paths locate the same threshold to the same tolerance.
    dense_by_cell = dense.aggregate_by_cell()
    dense_star = next(
        cell.phi
        for cell, row in zip(grid, dense_by_cell)
        if row["bound"] <= TARGET
    )
    for outcome in batch.outcomes:
        f = outcome.frontiers[0]
        assert f.status == "located"
        assert abs(f.phi_star - math.pi) <= TOL
        assert abs(f.phi_star - dense_star) <= TOL
    assert abs(dense_star - math.pi) <= TOL

    total, reused = batch.probe_totals()
    for name in ("coverage_calls", "graph_builds", "sector_evals"):
        a, d = getattr(rec_adaptive, name), getattr(rec_dense, name)
        assert a < d, (
            f"adaptive frontier should do strictly less kernel work: "
            f"{name} {a} (adaptive) vs {d} (dense)"
        )
    # Conservative ratio floor: the bisection needs O(log((hi-lo)/tol))
    # probes per instance (~11 here) against (hi-lo)/tol dense cells
    # (~500), so anything under 10x means the adaptivity regressed.
    assert rec_dense.coverage_calls >= 10 * rec_adaptive.coverage_calls, (
        f"kernel-call reduction collapsed: {rec_dense.coverage_calls} dense "
        f"vs {rec_adaptive.coverage_calls} adaptive (< 10x)"
    )

    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "probes/runs", "coverage kernel calls", "graph builds",
             "phi* found", "seconds"],
            [
                ["adaptive bisection", f"{total} ({reused} warm-start)",
                 rec_adaptive.coverage_calls, rec_adaptive.graph_builds,
                 round(batch.outcomes[0].frontiers[0].phi_star, 4),
                 round(t_adaptive, 3)],
                ["dense tol-grid sweep", len(dense.records),
                 rec_dense.coverage_calls, rec_dense.graph_builds,
                 round(dense_star, 4), round(t_dense, 3)],
                ["ratio", "", round(rec_dense.coverage_calls /
                                    max(1, rec_adaptive.coverage_calls), 1),
                 round(rec_dense.graph_builds /
                       max(1, rec_adaptive.graph_builds), 1), "", ""],
            ],
            title=f"[FR1] locate k=2 bound<={TARGET:.4f} to tol {TOL:g} "
                  f"(analytic threshold: pi)",
        ))


def _rows_of(batch):
    return batch.aggregate_rows()


def test_killed_frontier_resumes_bit_identical(tmp_path, capsys):
    """FR2 — kill-and-resume replays ledgered frontiers with zero kernels."""
    request = FrontierRequest(
        scenarios=(Scenario("uniform", 28, seeds=4, tag="bench-frontier-r"),),
        ks=(1, 2),
        metric="critical_range",
        target=1.3,
        phi_lo=2.0,
        phi_hi=2.0 * math.pi,
        tol=1e-3,
    )
    store = RunStore(tmp_path / "runs")
    cold = execute_frontier(request, store=store)
    reference = _rows_of(cold)

    # Simulate a kill after the first two instances: drop the ledger's tail.
    [ledger_path] = (tmp_path / "runs").glob("ledger-*.jsonl")
    lines = ledger_path.read_text(encoding="utf8").splitlines(keepends=True)
    instance_lines = [ln for ln in lines if '"type": "frontier"' in ln]
    ledger_path.write_text("".join(instance_lines[:2]), encoding="utf8")

    with recording() as rec_partial:
        partial = execute_frontier(request, store=store, resume=True)
    assert partial.replayed_instances == 2
    assert _rows_of(partial) == reference, "partial resume changed the table"
    assert rec_partial.coverage_calls > 0  # the lost instances re-ran

    with recording() as rec_full:
        full = execute_frontier(request, store=store, resume=True)
    assert full.replayed_instances == 4
    assert rec_full.coverage_calls == 0, "full replay ran the coverage kernel"
    assert rec_full.graph_builds == 0, "full replay built transmission graphs"
    assert rec_full.critical_searches == 0, "full replay ran critical searches"
    assert rec_full.polar_builds == 0, "full replay recomputed polar tables"
    assert _rows_of(full) == reference, "full replay changed the table"
    for a, b in zip(cold.outcomes, full.outcomes):
        assert [f.as_dict() for f in a.frontiers] == [
            f.as_dict() for f in b.frontiers
        ]

    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "instances replayed", "coverage kernel calls",
             "critical searches"],
            [
                ["cold run (ledgered)", 0, "-", "-"],
                ["resume after kill (2/4 ledgered)", 2,
                 rec_partial.coverage_calls, rec_partial.critical_searches],
                ["resume complete ledger", 4, rec_full.coverage_calls,
                 rec_full.critical_searches],
            ],
            title="[FR2] killed-and-resumed frontier: bit-identical tables, "
                  "zero kernel re-execution",
        ))


def test_warm_start_reuses_phi_free_regimes():
    """Probes landing in φ-independent dispatch regimes cost no kernels."""
    request = FrontierRequest(
        scenarios=(Scenario("uniform", 24, seeds=1, tag="bench-frontier-w"),),
        ks=(3,),
        metric="range_bound",
        target=1.0,
        phi_lo=2.4,
        phi_hi=np.pi,
        tol=1e-4,
    )
    batch = execute_frontier(request)
    f = batch.outcomes[0].frontiers[0]
    # Past 4pi/5 every probe dispatches to the φ-free Theorem 2 regime; the
    # first one pays, the rest reuse its measured value.
    assert f.status == "located"
    assert abs(f.phi_star - 4 * np.pi / 5) <= 1e-4
    assert f.reused_count > 0
    assert f.evaluated_count < f.probe_count
