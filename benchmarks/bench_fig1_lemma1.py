"""Benchmark F1 — Figure 1 / Lemma 1 (regular-polygon tightness)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig1_lemma1 import run_fig1


def test_fig1_lemma1(benchmark):
    rec = run_once(benchmark, run_fig1, random_trials=100)
    print()
    print(rec.to_ascii())
    assert all(row[4] for row in rec.rows), "regular d-gon necessity not tight"
    assert all(row[6] for row in rec.rows), "Lemma-1 sufficiency violated"
