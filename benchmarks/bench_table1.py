"""Benchmark T1 — regenerate Table 1 (the paper's headline artifact).

For every (k, φ) row: run the planner over uniform and clustered workloads,
verify strong connectivity, and check the measured critical range against
the row's bound.  Printed with ``-s``.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1


def test_table1_reproduction(benchmark):
    rec = run_once(
        benchmark, run_table1, sizes=(24, 64), seeds=2, workloads=("uniform", "clustered")
    )
    print()
    print(rec.to_ascii())
    # Every row must be strongly connected and within its bound (the k=1
    # BTSP rows are annotated rather than failed; see driver).
    connected_col = [row[-2] for row in rec.rows]
    bound_col = [row[-1] for row in rec.rows]
    assert all(connected_col), "some Table-1 row lost strong connectivity"
    assert all(bound_col), "some Table-1 row exceeded its range bound"
