"""Benchmark X1 — spread/range trade-off curve and k crossovers (Section 3)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.tradeoff import crossover_phi, k2_bound_curve, run_tradeoff


def test_tradeoff_curve(benchmark):
    rec = run_once(benchmark, run_tradeoff, n=48, seeds=2)
    print()
    print(rec.to_ascii())
    # Measured never exceeds the paper bound along the whole sweep.
    for row in rec.rows:
        assert row[4] <= row[2] * (1 + 1e-7), f"phi={row[0]}: measured above bound"
    # Paper bound is non-increasing along the sweep.
    bounds = [row[2] for row in rec.rows]
    assert bounds == sorted(bounds, reverse=True)


def test_crossover_positions():
    # Where must k=2 spread reach the zero-spread rows of k=3 / k=4 / k=5?
    assert crossover_phi(np.sqrt(3.0)) == 2 * np.pi / 3
    assert crossover_phi(np.sqrt(2.0)) == np.pi
    assert crossover_phi(1.0) == 6 * np.pi / 5
    phis = np.linspace(0.0, 1.9 * np.pi, 50)
    curve = k2_bound_curve(phis)
    assert np.all(np.diff(curve) <= 1e-12)
