"""Benchmark X6 — ablations of the design choices (DESIGN.md §4)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_ablations


def test_ablations(benchmark):
    rec = run_once(benchmark, run_ablations)
    print()
    print(rec.to_ascii())
    rows = {(row[0], row[1]): row for row in rec.rows}
    # The exact star cover never uses more spread than the paper's window.
    opt = rows[("theorem2 star cover", "optimal")][3]
    lem = rows[("theorem2 star cover", "lemma1")][3]
    assert opt <= lem + 1e-9
    # Part 1 exists because it beats part 2 at phi = pi.
    p1 = rows[("theorem3 at phi=pi", "part 1 (2sin(2pi/9))")][3]
    p2 = rows[("theorem3 at phi=pi", "part 2 forced (sqrt 2)")][3]
    assert p1 < p2
    # Degree repair actually fires on the hexagonal lattice.
    assert rows[("degree repair (hex lattice)", "off")][3] >= 6
    assert rows[("degree repair (hex lattice)", "on")][3] <= 5
