"""Benchmark F6 — Figure 6 / Theorem 6 (k=4 star chains, range √2)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig56_chains import chain_census, run_fig6


def test_fig6_chain_gadgets(benchmark):
    rec = run_once(benchmark, run_fig6)
    print()
    print(rec.to_ascii())
    assert any("<= 1.4142: True" in n for n in rec.notes)
    assert any("all validations passed: True" in n for n in rec.notes)


def test_fig6_out_degree_budget():
    hist, worst, ok = chain_census(4, trials=12)
    assert ok
    assert max(hist) <= 3, "a vertex needed more than 3 chains (out-degree cap)"
    assert worst <= np.sqrt(2.0) + 1e-9
