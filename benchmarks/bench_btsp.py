"""Benchmark X2 — the φ = 0 ([14]) rows and the loose k=1 "range 2" entry."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.btsp_experiment import run_btsp


def test_btsp_rows(benchmark):
    rec = run_once(benchmark, run_btsp, seeds=2)
    print()
    print(rec.to_ascii())
    rows = {row[0]: row for row in rec.rows}
    # k=2 LCRS stays within 2 lmax everywhere.
    for name, row in rows.items():
        if "k2 LCRS" in name:
            assert row[-1] is True
    # The spider's optimal k=1 bottleneck exceeds 2 lmax (loose table row).
    spider = [row for row in rec.rows if "spider" in row[0]][0]
    assert spider[-1] is False
    assert spider[4] > 2.0
    # Caterpillars carry a certified <= 2 lmax square tour.
    cat = [row for row in rec.rows if "caterpillar" in row[0]]
    assert cat and cat[0][-1] is True
