"""Benchmark X3 — strong c-connectivity of the constructions (§5 question)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.robustness_experiment import run_robustness


def test_robustness(benchmark):
    rec = run_once(benchmark, run_robustness, n=36, trials=30)
    print()
    print(rec.to_ascii())
    # All constructions are strongly connected (c >= 1)...
    assert all(row[1] >= 1 for row in rec.rows)
    # ...and tree-backed ones are exactly 1-connected (the open problem).
    tree_backed = [row for row in rec.rows if row[0] != "omni r=lmax"]
    assert any(row[1] == 1 for row in tree_backed)
