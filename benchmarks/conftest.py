"""Benchmark-suite configuration.

Every benchmark both times its driver (pytest-benchmark) and asserts the
paper-reproduction claims, so `pytest benchmarks/ --benchmark-only` is a
correctness gate as well as a performance report.  Run with ``-s`` to see
the reproduced tables.

``--backend <name>`` runs the backend-aware benchmarks (bench_kernels)
under that kernel backend; unavailable backends skip instead of failing,
so CI can probe optional backends without gating on them.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default="numpy",
        help="kernel backend for backend-aware benchmarks "
             "(numpy, numba, sparse, auto)",
    )


@pytest.fixture(scope="session")
def kernel_backend(request):
    """The selected kernel backend, active for the using test's duration."""
    from repro.kernels import BackendUnavailable, resolve_backend, use_backend

    name = request.config.getoption("--backend")
    try:
        backend = resolve_backend(name)
    except BackendUnavailable as exc:
        pytest.skip(str(exc))
    with use_backend(backend):
        yield backend


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
