"""Benchmark-suite configuration.

Every benchmark both times its driver (pytest-benchmark) and asserts the
paper-reproduction claims, so `pytest benchmarks/ --benchmark-only` is a
correctness gate as well as a performance report.  Run with ``-s`` to see
the reproduced tables.
"""

from __future__ import annotations


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
