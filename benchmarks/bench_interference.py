"""Benchmark X4 — interference degrees: directional vs omnidirectional."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.interference_experiment import run_interference


def test_interference(benchmark):
    rec = run_once(benchmark, run_interference, n=96, seeds=2)
    print()
    print(rec.to_ascii())
    zero_spread = [row for row in rec.rows if "phi=0" in row[0]]
    assert zero_spread
    for row in zero_spread:
        assert row[4] >= 1.0, "zero-spread beams must not out-interfere omni"
