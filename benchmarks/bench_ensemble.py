"""Benchmark EN — Wilson-interval early stopping vs the fixed-M ensemble.

EN1: the acceptance workload for the ensemble solver's sequential early
stopping.  Bisecting φ on ``quantile_0.5(critical_range) ≤ target`` under
a tight log-normal fade concentrates each probe's trial outcomes near 0
or 1, so the Wilson interval clears the bound after one or two chunks at
every decisive probe — only probes whose critical-range distribution
straddles the target pay the full M = 240 budget.  Per the single-core CI
convention the claim is stated in *work* counters (coverage kernel calls
and the ``ensemble_trials`` / ``ensemble_trials_saved`` counters), not
wall-clock: both paths run the same kernels through the same cache, so
the counter ratio is exactly the chunk ratio.

The two requests differ only in ``early_stop`` (a fingerprinted field —
they are distinct plans with distinct ledgers), and both draw each trial
from the counter stream keyed by (fingerprint-independent) instance slot
and trial index, so the fixed-M run replays the exact trial outcomes the
early stopper saw before it stopped.
"""

from __future__ import annotations

import math

from repro.engine import Scenario
from repro.ensemble import EnsembleRequest, Perturbation, execute_ensemble
from repro.kernels.instrument import recording
from repro.utils.tables import format_ascii_table
from repro.utils.timing import measure

TRIALS, CHUNK = 240, 10


def _request(early_stop: bool) -> EnsembleRequest:
    return EnsembleRequest(
        scenarios=(Scenario("uniform", 32, seeds=2, tag="bench-ensemble"),),
        ks=(1,),
        metric="critical_range",
        quantile=0.5,
        target=1.2,
        phi_lo=2.0,
        phi_hi=2.0 * math.pi,
        tol=1e-2,
        trials=TRIALS,
        chunk=CHUNK,
        perturbation=Perturbation(fade_sigma=0.03),
        early_stop=early_stop,
    )


def test_early_stopping_beats_fixed_budget(capsys):
    """EN1 — same predicate, same trial streams, >= 3x fewer kernel calls."""
    with recording() as rec_early:
        t_early, early = measure(lambda: execute_ensemble(_request(True)))
    with recording() as rec_fixed:
        t_fixed, fixed = measure(lambda: execute_ensemble(_request(False)))

    used_early, saved_early = early.trial_totals()
    used_fixed, saved_fixed = fixed.trial_totals()
    assert saved_fixed == 0 and saved_early > 0

    # Counter-level accounting: the recorded ensemble_trials counters are
    # the batches' own totals, and every evaluated probe of the early run
    # either spent or saved each of its M budgeted trials.
    assert rec_early.ensemble_trials == used_early
    assert rec_early.ensemble_trials_saved == saved_early
    assert rec_fixed.ensemble_trials == used_fixed
    for _, frontiers in early.frontiers():
        for f in frontiers:
            assert f.trials_used + f.trials_saved == f.evaluated_count * TRIALS

    # The acceptance bar: >= 3x fewer coverage kernel launches.  The
    # decisive probes stop after 1-2 chunks of the 24, so the observed
    # ratio is ~6x; 3x is the regression floor.
    assert rec_fixed.coverage_calls >= 3 * rec_early.coverage_calls, (
        f"early stopping regressed: {rec_fixed.coverage_calls} fixed-M "
        f"coverage calls vs {rec_early.coverage_calls} early-stopped (< 3x)"
    )

    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "coverage kernel calls", "trials run", "trials saved",
             "seconds"],
            [
                ["sequential (Wilson)", rec_early.coverage_calls,
                 used_early, saved_early, round(t_early, 3)],
                [f"fixed M={TRIALS}", rec_fixed.coverage_calls,
                 used_fixed, saved_fixed, round(t_fixed, 3)],
                ["ratio", round(rec_fixed.coverage_calls /
                                max(1, rec_early.coverage_calls), 1),
                 round(used_fixed / max(1, used_early), 1), "", ""],
            ],
            title="[EN1] quantile_0.5(critical_range) <= 1.2 under "
                  "fade_sigma=0.03, k=1",
        ))
