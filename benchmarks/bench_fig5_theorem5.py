"""Benchmark F5 — Figure 5 / Theorem 5 (k=3 star chains, range √3)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig56_chains import chain_census, run_fig5


def test_fig5_chain_gadgets(benchmark):
    rec = run_once(benchmark, run_fig5)
    print()
    print(rec.to_ascii())
    assert any("<= 1.7321: True" in n for n in rec.notes)
    assert any("all validations passed: True" in n for n in rec.notes)


def test_fig5_out_degree_budget():
    hist, worst, ok = chain_census(3, trials=12)
    assert ok
    assert max(hist) <= 2, "a vertex needed more than 2 chains (out-degree cap)"
    assert worst <= np.sqrt(3.0) + 1e-9
