"""Benchmark F2 — Figure 2 / Facts 1-2 (MST angular invariants)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig2_facts import run_fig2


def test_fig2_facts(benchmark):
    rec = run_once(
        benchmark, run_fig2, sizes=(32, 96), seeds=3,
        workloads=("uniform", "clustered", "grid", "annulus"),
    )
    print()
    print(rec.to_ascii())
    assert all(row[4] for row in rec.rows), "Fact 1.1 (pi/3) violated"
    assert all(row[8] for row in rec.rows), "Fact 2 violated at a degree-5 vertex"
    # The adversarial star family must actually produce degree-5 vertices.
    star_row = [row for row in rec.rows if row[0] == "star-d5"][0]
    assert star_row[7] > 0
