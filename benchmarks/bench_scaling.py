"""Benchmark X5 — kernel microbenchmarks and planner scaling.

Classic pytest-benchmark timings of the hot kernels (EMST, orientation,
coverage), parameterized over n so `--benchmark-only` output exposes the
asymptotics directly (per the HPC guide: measure, don't guess).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.metrics import orientation_metrics
from repro.antenna.coverage import transmission_graph
from repro.core.planner import orient_antennae
from repro.core.theorem3 import orient_theorem3
from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.geometry.points import PointSet
from repro.kernels import sparse_polar_tables, use_backend
from repro.kernels.sparse import default_instance_cutoff
from repro.spanning.emst import euclidean_mst

SIZES = (128, 512, 2048)

#: Sparse-axis sizes: 10⁴ everywhere, 10⁵ opt-in (REPRO_BENCH_LARGE=1 —
#: the size the dense ``(n, n)`` tables cannot represent in 4 GB).
SPARSE_SIZES = (
    (10_000, 100_000) if os.environ.get("REPRO_BENCH_LARGE") else (10_000,)
)


def _instance(n: int) -> PointSet:
    return PointSet(Scenario("uniform", n, tag="bench-scaling").instance(0))


@pytest.mark.parametrize("n", SIZES)
def test_emst_scaling(benchmark, n):
    ps = _instance(n)
    tree = benchmark(euclidean_mst, ps)
    assert tree.max_degree() <= 5


@pytest.mark.parametrize("n", SIZES)
def test_theorem3_scaling(benchmark, n):
    ps = _instance(n)
    tree = euclidean_mst(ps)
    res = benchmark(orient_theorem3, ps, np.pi, tree=tree)
    assert res.range_bound == pytest.approx(2 * np.sin(2 * np.pi / 9))


@pytest.mark.parametrize("n", SIZES)
def test_planner_scaling(benchmark, n):
    ps = _instance(n)
    tree = euclidean_mst(ps)
    res = benchmark(orient_antennae, ps, 3, 0.0, tree=tree)
    assert res.algorithm == "theorem5"


@pytest.mark.parametrize("n", (128, 512))
def test_coverage_scaling(benchmark, n):
    ps = _instance(n)
    res = orient_antennae(ps, 2, np.pi)
    g = benchmark(transmission_graph, ps, res.assignment)
    assert g.n == n


@pytest.mark.parametrize("n", SPARSE_SIZES)
def test_sparse_tables_scaling(benchmark, n):
    """Radius-bounded candidate-table builds at large n (kd-tree + trig)."""
    ps = _instance(n)
    tree = euclidean_mst(ps)
    tables = benchmark(
        sparse_polar_tables, ps.coords, default_instance_cutoff(tree.lmax)
    )
    assert tables.n == n
    assert tables.m < n * n // 20  # the radius bound must actually prune


@pytest.mark.parametrize("n", SPARSE_SIZES)
def test_sparse_metrics_scaling(benchmark, n):
    """Full sparse measurement (coverage + SC + certified critical range)."""
    ps = _instance(n)
    tree = euclidean_mst(ps)
    result = orient_antennae(ps, 2, np.pi, tree=tree)
    with use_backend("sparse"):
        metrics = benchmark(orientation_metrics, result)
    assert metrics.strongly_connected
    assert np.isfinite(metrics.critical_range)


@pytest.mark.parametrize("jobs", (1, 4))
def test_engine_batch_scaling(benchmark, jobs):
    """Throughput of the batch engine over a 24-instance × 4-cell plan."""
    request = PlanRequest(
        (Scenario("uniform", 96, seeds=24, tag="bench-engine-batch"),),
        (GridCell(1, np.pi), GridCell(2, np.pi), GridCell(3, 0.0),
         GridCell(2, 2 * np.pi / 3)),
        compute_critical=False,
    )
    batch = benchmark(execute_plan, request, jobs=jobs)
    assert len(batch.records) == request.total_runs
    assert all(m.metrics.strongly_connected for m in batch.records)
