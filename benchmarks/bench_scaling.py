"""Benchmark X5 — kernel microbenchmarks and planner scaling.

Classic pytest-benchmark timings of the hot kernels (EMST, orientation,
coverage), parameterized over n so `--benchmark-only` output exposes the
asymptotics directly (per the HPC guide: measure, don't guess).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.antenna.coverage import transmission_graph
from repro.core.planner import orient_antennae
from repro.core.theorem3 import orient_theorem3
from repro.experiments.workloads import make_workload
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

SIZES = (128, 512, 2048)


def _instance(n: int) -> PointSet:
    return PointSet(make_workload("uniform", n, stable_seed("bench-scaling", n)))


@pytest.mark.parametrize("n", SIZES)
def test_emst_scaling(benchmark, n):
    ps = _instance(n)
    tree = benchmark(euclidean_mst, ps)
    assert tree.max_degree() <= 5


@pytest.mark.parametrize("n", SIZES)
def test_theorem3_scaling(benchmark, n):
    ps = _instance(n)
    tree = euclidean_mst(ps)
    res = benchmark(orient_theorem3, ps, np.pi, tree=tree)
    assert res.range_bound == pytest.approx(2 * np.sin(2 * np.pi / 9))


@pytest.mark.parametrize("n", SIZES)
def test_planner_scaling(benchmark, n):
    ps = _instance(n)
    tree = euclidean_mst(ps)
    res = benchmark(orient_antennae, ps, 3, 0.0, tree=tree)
    assert res.algorithm == "theorem5"


@pytest.mark.parametrize("n", (128, 512))
def test_coverage_scaling(benchmark, n):
    ps = _instance(n)
    res = orient_antennae(ps, 2, np.pi)
    g = benchmark(transmission_graph, ps, res.assignment)
    assert g.n == n
