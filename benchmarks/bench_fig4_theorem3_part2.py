"""Benchmark F4 — Figure 4 / Theorem 3 part 2 (2π/3 ≤ φ < π) sweep."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig34_theorem3 import run_fig4


def test_fig4_phi_sweep(benchmark):
    rec = run_once(
        benchmark, run_fig4,
        phis=(2 * np.pi / 3, 0.75 * np.pi, 0.85 * np.pi, 0.95 * np.pi),
        trials=20,
    )
    print()
    print(rec.to_ascii())
    assert all(row[3] for row in rec.rows), "a part-2 configuration failed"
    # The bound decreases as phi grows (more spread, less range).
    bounds = [row[1] for row in rec.rows]
    assert bounds == sorted(bounds, reverse=True)
