"""Benchmark K1 — the vectorized kernel layer vs the original loop kernels.

Times the three measurement kernels on n ∈ {200, 1000, 5000} (uniform
instances, Theorem-3 orientations at k=2, φ=π):

* batched coverage (:func:`repro.antenna.coverage.coverage_matrix`) vs the
  per-antenna Python loop (:func:`repro.kernels.reference.coverage_matrix_loop`);
* the rebuild-free critical-range search vs the per-probe ``DiGraph``
  rebuild (:func:`repro.kernels.reference.critical_range_rebuild`).

Everything is single-core: the wins are vectorization wins, verified by
the instrumentation counters (zero per-probe graph builds, one trig pass),
not parallelism.  The loop critical-range search is only timed up to
n = 1000 — at n = 5000 its per-probe pure-Python BFS over millions of edges
takes minutes, which is precisely the point; the counters tell the same
story at every size.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.antenna.coverage import coverage_matrix, critical_range
from repro.core.planner import orient_antennae
from repro.engine import Scenario
from repro.geometry.points import PointSet
from repro.kernels import kernel_counters, polar_tables, recording, use_backend
from repro.kernels.reference import coverage_matrix_loop, critical_range_rebuild
from repro.spanning.emst import euclidean_mst
from repro.utils.tables import format_ascii_table
from repro.utils.timing import measure

SIZES = (200, 1000, 5000)
#: Largest size at which the reference kernels are run for comparison.
REFERENCE_LIMIT = 1000

#: The sparse radius-bounded axis.  n = 10⁴ runs everywhere (CI smoke
#: included); the n = 10⁵ point — the instance the dense path provably
#: cannot build tables for — is opt-in via REPRO_BENCH_LARGE=1.
SPARSE_SIZES = (
    (10_000, 100_000) if os.environ.get("REPRO_BENCH_LARGE") else (10_000,)
)


@pytest.fixture(scope="module")
def instances():
    """One oriented instance per size (orientation cost excluded from timing)."""
    out = {}
    for n in SIZES:
        coords = Scenario("uniform", n, seeds=1, tag="bench-kernels").instance(0)
        ps = PointSet(coords)
        tree = euclidean_mst(ps)
        result = orient_antennae(ps, 2, np.pi, tree=tree)
        out[n] = (ps, result.assignment)
    return out


@pytest.mark.parametrize("n", SIZES)
def test_batched_coverage_beats_loop(instances, n, capsys):
    ps, assignment = instances[n]
    tables = polar_tables(ps.coords)  # shared geometry, as the engine caches it
    with recording() as rec:
        t_new, cover_new = measure(
            lambda: coverage_matrix(ps, assignment, tables=tables)
        )
    t_old, cover_old = measure(lambda: coverage_matrix_loop(ps, assignment))
    assert np.array_equal(cover_new, cover_old), "kernels disagree"
    assert rec.trig_evals == 0, "shared tables must not recompute trig"
    assert rec.coverage_calls == 1
    loop_trig = assignment.total_antennae() * n  # one n-entry trig row per antenna
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["kernel", "seconds", "trig evals"],
            [
                ["per-antenna loop", round(t_old, 4), loop_trig],
                ["batched (shared tables)", round(t_new, 4), rec.trig_evals],
                ["speedup", round(t_old / max(t_new, 1e-9), 1), "×"],
            ],
            title=f"[K1] coverage matrix, n={n} (single core)",
        ))
    if n >= 1000:
        # Vectorization must win clearly once the per-antenna loop dominates.
        assert t_new < t_old, f"batched kernel slower at n={n}"


@pytest.mark.parametrize("n", SIZES)
def test_rebuild_free_critical_range(instances, n, capsys):
    ps, assignment = instances[n]
    tables = polar_tables(ps.coords)
    with recording() as rec:
        t_new, cr_new = measure(lambda: critical_range(ps, assignment, tables=tables))
    assert rec.graph_builds == 0, "critical_range must not build DiGraphs"
    assert rec.coverage_calls == 1
    rows = [
        ["rebuild-free (CSR prefix)", round(t_new, 4), 0, rec.connectivity_probes],
    ]
    if n <= REFERENCE_LIMIT:
        with recording() as rec_old:
            t_old, cr_old = measure(lambda: critical_range_rebuild(ps, assignment))
        assert cr_new == cr_old, "kernels disagree on the critical range"
        # graph_builds exceeds the probe count: each passing probe also
        # constructs the reversed DiGraph for the backward BFS pass.
        rows.insert(0, [
            "per-probe DiGraph rebuild", round(t_old, 4),
            rec_old.graph_builds, rec_old.connectivity_probes,
        ])
        rows.append(["speedup", round(t_old / max(t_new, 1e-9), 1), "", "×"])
        assert t_new < t_old, f"rebuild-free search slower at n={n}"
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["search", "seconds", "graph builds", "probes"],
            rows,
            title=f"[K1] critical range, n={n} (single core)",
        ))


def test_backend_axis_emits_machine_readable_report(
    instances, kernel_backend, capsys
):
    """Time the hot kernels under ``--backend`` and write BENCH_kernels.json.

    The JSON document pairs wall-clock with the instrumentation counters
    per size, plus one packed multi-instance sweep (the one-launch batch
    path vs the per-instance loop), so CI jobs can diff backend runs
    mechanically.  Counters are the comparable quantity across machines;
    wall-clock is informational.
    """
    import json

    from repro.engine import GridCell, PlanRequest, execute_plan

    per_size = []
    for n in SIZES:
        ps, assignment = instances[n]
        tables = kernel_backend.polar_tables(ps.coords)
        with recording() as rec:
            t_cov, _ = measure(
                lambda: coverage_matrix(ps, assignment, tables=tables)
            )
            t_cr, _ = measure(
                lambda: critical_range(ps, assignment, tables=tables)
            )
        per_size.append({
            "n": n,
            "coverage_s": round(t_cov, 6),
            "critical_s": round(t_cr, 6),
            "counters": rec.as_dict(),
        })

    batch_req = PlanRequest(
        (Scenario("uniform", 24, seeds=64, tag="bench-batch"),),
        (GridCell(2, np.pi),),
    )
    with recording() as rec_batched:
        t_batched, _ = measure(
            lambda: execute_plan(batch_req, backend=kernel_backend.name)
        )
    with recording() as rec_loop:
        t_loop, _ = measure(
            lambda: execute_plan(
                batch_req, backend=kernel_backend.name, batch_instances=False
            )
        )
    report = {
        "backend": kernel_backend.name,
        "sizes": per_size,
        "batch_sweep": {
            "instances": batch_req.total_instances,
            "batched_s": round(t_batched, 6),
            "per_instance_s": round(t_loop, 6),
            "batched_counters": rec_batched.as_dict(),
            "per_instance_counters": rec_loop.as_dict(),
        },
    }
    out = "BENCH_kernels.json"
    with open(out, "w", encoding="utf8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    launches = rec_batched.coverage_calls
    assert rec_loop.coverage_calls >= 10 * launches, (
        "batch path lost its one-launch-per-chunk property"
    )
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "seconds", "coverage launches", "critical searches"],
            [
                ["per-instance loop", round(t_loop, 4),
                 rec_loop.coverage_calls, rec_loop.critical_searches],
                [f"batched ({kernel_backend.name})", round(t_batched, 4),
                 rec_batched.coverage_calls, rec_batched.critical_searches],
            ],
            title=f"[K1] {batch_req.total_instances}-instance sweep, "
                  f"backend={kernel_backend.name} -> {out}",
        ))


@pytest.mark.parametrize("n", SPARSE_SIZES)
def test_sparse_large_n_axis(n, capsys):
    """The sparse radius-bounded path at n ∈ {10⁴, 10⁵}: counters + RSS.

    Measures the full measurement stack (orientation excluded) under the
    sparse backend — coverage, strong connectivity, and the certified
    critical range — and merges a ``sparse_large_n`` section into
    BENCH_kernels.json.  Asserted quantities are counters and peak RSS,
    never wall-clock: trig work must be ≥ 20× below the dense ``n²``
    (the ISSUE-8 acceptance bar) and the whole run must fit in 4 GB.
    """
    import json
    import resource

    from repro.analysis.metrics import orientation_metrics

    coords = Scenario("uniform", n, seeds=1, tag="bench-sparse").instance(0)
    ps = PointSet(coords)
    tree = euclidean_mst(ps)
    result = orient_antennae(ps, 2, np.pi, tree=tree)
    with use_backend("sparse"):
        with recording() as rec:
            t_metrics, metrics = measure(lambda: orientation_metrics(result))
    peak_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)

    assert metrics.strongly_connected
    assert np.isfinite(metrics.critical_range)
    assert rec.polar_builds == 0, "sparse axis must not build dense tables"
    assert rec.sparse_polar_builds >= 1
    assert rec.trig_evals * 20 <= n * n, (
        f"trig reduction below 20x at n={n}: {rec.trig_evals} vs {n * n}"
    )
    # ru_maxrss is KB on Linux; 4 GB is the ISSUE-8 acceptance budget.
    assert peak_rss_kb < 4 * 1024 * 1024, f"peak RSS {peak_rss_kb} KB over 4 GB"

    out = "BENCH_kernels.json"
    report = {}
    if os.path.exists(out):
        with open(out, encoding="utf8") as fh:
            try:
                report = json.load(fh)
            except ValueError:
                report = {}
    section = report.setdefault("sparse_large_n", {})
    section[str(n)] = {
        "n": n,
        "metrics_s": round(t_metrics, 6),
        "critical_range": metrics.critical_range,
        "peak_rss_kb": peak_rss_kb,
        "counters": rec.as_dict(),
        "dense_trig_equivalent": n * n,
    }
    with open(out, "w", encoding="utf8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["quantity", "value"],
            [
                ["n", n],
                ["metrics wall (s)", round(t_metrics, 4)],
                ["critical range (lmax)", round(metrics.critical_range, 6)],
                ["trig evals (sparse)", rec.trig_evals],
                ["trig evals (dense would be)", n * n],
                ["reduction", f"{n * n / max(rec.trig_evals, 1):.0f}×"],
                ["rcut widenings", rec.rcut_widenings],
                ["peak RSS (MB)", peak_rss_kb // 1024],
            ],
            title=f"[K1] sparse radius-bounded axis, n={n} -> {out}",
        ))


@pytest.mark.parametrize("n", (200, 1000))
def test_symmetric_mode_axis(n, capsys):
    """The symmetric connectivity objective vs strong, counter-for-counter.

    Measures the full metrics stack under both modes on the same instance
    (strong: Table-1 orientation; symmetric: bounded-angle MST at φ=2π,
    always feasible) and merges a ``symmetric_mode`` section into
    BENCH_kernels.json.  The asserted quantities are counters: the
    symmetric path must reuse the shared polar tables (zero extra trig)
    and the prefix-mask bisection (zero per-probe graph builds) exactly
    like strong mode — the mode seam adds a mutual mask, not a new
    kernel shape.
    """
    import json

    from repro.analysis.metrics import orientation_metrics
    from repro.core.symmetric import orient_bounded_angle_mst

    coords = Scenario("uniform", n, seeds=1, tag="bench-symmetric").instance(0)
    ps = PointSet(coords)
    tree = euclidean_mst(ps)
    tables = polar_tables(ps.coords)

    strong_result = orient_antennae(ps, 2, np.pi, tree=tree)
    with recording() as rec_strong:
        t_strong, m_strong = measure(
            lambda: orientation_metrics(strong_result, tables=tables)
        )
    sym_result = orient_bounded_angle_mst(ps, 2, 2 * np.pi, tree=tree)
    with recording() as rec_sym:
        t_sym, m_sym = measure(
            lambda: orientation_metrics(sym_result, tables=tables, mode="symmetric")
        )

    assert m_sym.mode == "symmetric" and m_sym.strongly_connected
    assert np.isfinite(m_sym.critical_range)
    for rec in (rec_strong, rec_sym):
        assert rec.trig_evals == 0, "shared tables must not recompute trig"
        # One DiGraph per mode: the top-level connectivity check.  The
        # critical bisection itself is prefix-mask, zero builds per probe.
        assert rec.graph_builds == 1, rec.graph_builds
    assert rec_sym.critical_searches == 1

    out = "BENCH_kernels.json"
    report = {}
    if os.path.exists(out):
        with open(out, encoding="utf8") as fh:
            try:
                report = json.load(fh)
            except ValueError:
                report = {}
    section = report.setdefault("symmetric_mode", {})
    section[str(n)] = {
        "n": n,
        "strong": {
            "metrics_s": round(t_strong, 6),
            "critical_range": m_strong.critical_range,
            "counters": rec_strong.as_dict(),
        },
        "symmetric": {
            "metrics_s": round(t_sym, 6),
            "critical_range": m_sym.critical_range,
            "counters": rec_sym.as_dict(),
        },
    }
    with open(out, "w", encoding="utf8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["mode", "seconds", "probes", "scipy calls", "critical searches"],
            [
                ["strong", round(t_strong, 4), rec_strong.connectivity_probes,
                 rec_strong.scipy_scc_calls, rec_strong.critical_searches],
                ["symmetric", round(t_sym, 4), rec_sym.connectivity_probes,
                 rec_sym.scipy_scc_calls, rec_sym.critical_searches],
            ],
            title=f"[K1] connectivity-mode axis, n={n} -> {out}",
        ))


def test_counters_report(capsys):
    """Not a benchmark: show the cumulative kernel counters for this run."""
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["counter", "value"],
            [[k, v] for k, v in kernel_counters().as_dict().items()],
            title="[K1] process-wide kernel counters",
        ))
