"""Benchmark E1 — the engine's artifact cache vs per-config recomputation.

The acceptance workload for the batch engine: a 200-instance sweep over a
``(k, φ)`` grid.  The *naive* path is what the harness did before the
engine existed — rebuild the point set and its EMST for every grid cell —
while the *cached* path routes through :func:`repro.engine.execute_plan`
and builds each instance's artifacts exactly once.  The test asserts the
cached batch is measurably faster and produces identical metrics.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import orientation_metrics
from repro.core.planner import orient_antennae
from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.geometry.points import PointSet
from repro.kernels.instrument import recording
from repro.spanning.emst import euclidean_mst
from repro.store import RunStore
from repro.utils.tables import format_ascii_table
from repro.utils.timing import measure

GRID = (
    GridCell(1, np.pi),
    GridCell(2, 2 * np.pi / 3),
    GridCell(2, np.pi),
    GridCell(3, 0.0),
    GridCell(4, 0.0),
    GridCell(5, 0.0),
)
SCENARIO = Scenario("uniform", 48, seeds=200, tag="bench-engine")


def _naive_sweep():
    """Pre-engine behaviour: every (instance, cell) pays full preprocessing."""
    out = []
    for coords in SCENARIO.instances():
        for cell in GRID:
            ps = PointSet(coords)
            tree = euclidean_mst(ps)
            res = orient_antennae(ps, cell.k, cell.phi, tree=tree)
            out.append(orientation_metrics(res, compute_critical=False))
    return out


def _cached_sweep():
    request = PlanRequest((SCENARIO,), GRID, compute_critical=False)
    return execute_plan(request, jobs=1)


def test_cached_batch_beats_per_config_recomputation(capsys):
    t_naive, naive_metrics = measure(_naive_sweep)
    t_cached, batch = measure(_cached_sweep)
    cached_metrics = [rec.metrics for rec in batch.records]

    assert len(cached_metrics) == len(naive_metrics)
    assert all(
        a.identical(b) for a, b in zip(cached_metrics, naive_metrics)
    ), "cache changed the results"
    assert batch.cache_stats.tree_builds == SCENARIO.seeds
    assert t_cached < t_naive, (
        f"cached batch ({t_cached:.2f}s) should beat naive recomputation "
        f"({t_naive:.2f}s) on a {SCENARIO.seeds}-instance sweep"
    )
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "seconds", "EMST builds"],
            [
                ["naive per-config", round(t_naive, 3),
                 SCENARIO.seeds * len(GRID)],
                ["engine cached batch", round(t_cached, 3),
                 batch.cache_stats.tree_builds],
                ["speedup", round(t_naive / t_cached, 2), "×"],
            ],
            title="[E1] 200-instance sweep: cached batch vs recomputation",
        ))


def test_parallel_matches_serial_on_sweep():
    """jobs=4 returns bit-identical metrics in the same order as jobs=1."""
    request = PlanRequest(
        (Scenario("uniform", 48, seeds=40, tag="bench-engine-par"),),
        GRID,
        compute_critical=False,
    )
    serial = execute_plan(request, jobs=1)
    parallel = execute_plan(request, jobs=4)
    assert len(serial.records) == len(parallel.records)
    assert all(
        a.metrics.identical(b.metrics)
        for a, b in zip(serial.records, parallel.records)
    )


def test_batched_launches_beat_per_instance_loop(capsys):
    """Benchmark E3 — the one-launch multi-instance batch path.

    The acceptance workload for the backend seam: a 200-instance sweep
    evaluated through the packed kernels (one coverage launch and one
    critical search per chunk per cell) vs the per-instance Python loop.
    Per the single-core CI convention the claim is a *work counter* ratio —
    ≥10× fewer Python-level kernel launches — with bit-identical metrics;
    wall-clock is reported for context only.
    """
    request = PlanRequest((SCENARIO,), GRID, compute_critical=False)
    with recording() as rec_batched:
        t_batched, batched = measure(lambda: execute_plan(request))
    with recording() as rec_loop:
        t_loop, loop = measure(
            lambda: execute_plan(request, batch_instances=False)
        )
    assert all(
        a.metrics.identical(b.metrics)
        for a, b in zip(batched.records, loop.records)
    ), "batching changed the results"
    assert rec_batched.batched_instances == SCENARIO.seeds
    assert rec_loop.coverage_calls >= 10 * rec_batched.coverage_calls
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "seconds", "coverage launches", "instances/launch"],
            [
                ["per-instance loop", round(t_loop, 3),
                 rec_loop.coverage_calls, 1],
                ["packed batch", round(t_batched, 3),
                 rec_batched.coverage_calls,
                 round(SCENARIO.seeds * len(GRID)
                       / max(rec_batched.coverage_calls, 1), 1)],
            ],
            title=f"[E3] {SCENARIO.seeds}-instance sweep: "
                  "one-launch batch path vs per-instance loop",
        ))


def test_store_replay_skips_all_work(tmp_path, capsys):
    """Benchmark E2 — resuming a fully-ledgered sweep re-executes nothing.

    The acceptance workload routed through the run store: the 200-instance
    sweep is checkpointed instance by instance, then resumed from a complete
    ledger.  Per the single-core CI convention the claim is stated in *work*
    counters, not wall-clock: the replay performs zero planner kernel
    invocations and zero EMST builds, yet returns a bit-identical batch.
    """
    request = PlanRequest((SCENARIO,), GRID, compute_critical=False)
    store = RunStore(tmp_path / "runs")
    t_cold, cold = measure(lambda: execute_plan(request, store=store))
    with recording() as rec:
        t_warm, warm = measure(
            lambda: execute_plan(request, store=store, resume=True)
        )
    assert warm.replayed_instances == SCENARIO.seeds
    assert rec.coverage_calls == 0, "replay ran the coverage kernel"
    assert rec.graph_builds == 0, "replay built transmission graphs"
    assert rec.polar_builds == 0, "replay recomputed polar tables"
    assert warm.cache_stats.as_dict() == cold.cache_stats.as_dict()
    assert all(
        a.metrics.identical(b.metrics)
        for a, b in zip(cold.records, warm.records)
    )
    ledger_bytes = sum(
        p.stat().st_size for p in (tmp_path / "runs").glob("ledger-*.jsonl")
    )
    with capsys.disabled():
        print()
        print(format_ascii_table(
            ["path", "seconds", "kernel coverage calls", "EMST builds"],
            [
                ["cold run (ledgered)", round(t_cold, 3),
                 "-", cold.cache_stats.tree_builds],
                ["resume (full replay)", round(t_warm, 3),
                 rec.coverage_calls, 0],
                ["ledger size", f"{ledger_bytes / 1024:.0f} KiB", "", ""],
            ],
            title=f"[E2] {SCENARIO.seeds}-instance sweep replayed from the run store",
        ))
