"""Certificate validation for orientation results.

Every orientation algorithm returns, besides the sectors, the *intended
edges* its correctness argument relies on.  :func:`validate_assignment`
checks the full contract:

* at most ``k`` antennae per sensor;
* per-sensor spread sum ≤ φ (+ε);
* every intended edge is actually realized by some sector (angularly and
  within its radius);
* the intended edge set alone forms a strongly connected digraph;
* every intended edge is no longer than ``range_bound`` (absolute units);
* (optionally) the full transmission graph is strongly connected — implied
  by the intended subgraph being so, but checked independently.

Violations are collected, not raised, so tests and benchmarks can report
all problems at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.antenna.coverage import coverage_matrix, graph_from_cover
from repro.antenna.model import AntennaAssignment
from repro.geometry.points import PointSet
from repro.graph.connectivity import is_strongly_connected
from repro.graph.digraph import DiGraph
from repro.kernels.geometry import PolarTables

__all__ = ["OrientationIssue", "ValidationReport", "validate_assignment"]

_REL_TOL = 1e-9


@dataclass
class OrientationIssue:
    """One violated contract clause."""

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.detail}"


@dataclass
class ValidationReport:
    """Aggregate validation outcome."""

    ok: bool
    issues: list[OrientationIssue] = field(default_factory=list)
    max_spread_sum: float = 0.0
    max_antennas: int = 0
    max_intended_length: float = 0.0

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK (max antennas {self.max_antennas}, "
                f"max spread sum {self.max_spread_sum:.6f}, "
                f"max intended edge {self.max_intended_length:.6f})"
            )
        return "; ".join(str(i) for i in self.issues)


def validate_assignment(
    points: PointSet,
    assignment: AntennaAssignment,
    intended_edges: np.ndarray,
    *,
    k: int | None = None,
    phi: float | None = None,
    range_bound: float | None = None,
    check_transmission: bool = True,
    eps: float = 1e-9,
    tables: PolarTables | None = None,
) -> ValidationReport:
    """Check the full orientation contract; see module docstring.

    One batched coverage matrix answers both the per-intended-edge
    realization check and the full transmission-connectivity check (the old
    code looped over edges × sectors in Python and then built a second
    coverage matrix).
    """
    issues: list[OrientationIssue] = []
    n = len(points)
    coords = points.coords
    edges = np.asarray(intended_edges, dtype=np.int64).reshape(-1, 2)
    cover: np.ndarray | None = None

    counts = assignment.counts()
    max_ant = int(counts.max()) if n else 0
    if k is not None and max_ant > k:
        offenders = np.flatnonzero(counts > k)[:5].tolist()
        issues.append(
            OrientationIssue("antenna-count", f"sensors {offenders} exceed k={k}")
        )

    sums = assignment.spread_sums()
    max_sum = float(sums.max()) if n else 0.0
    if phi is not None and n:
        bad = np.flatnonzero(sums > phi + max(eps, phi * _REL_TOL) + 1e-12)
        if bad.size:
            issues.append(
                OrientationIssue(
                    "spread-budget",
                    f"sensors {bad[:5].tolist()} exceed phi={phi:.6f} "
                    f"(worst {float(sums[bad].max()):.6f})",
                )
            )

    # Intended edges realized by the sectors?
    max_len = 0.0
    if edges.shape[0]:
        diff = coords[edges[:, 1]] - coords[edges[:, 0]]
        max_len = float(np.hypot(diff[:, 0], diff[:, 1]).max())
        cover = coverage_matrix(points, assignment, eps=eps, tables=tables)
        for i in np.flatnonzero(~cover[edges[:, 0], edges[:, 1]]):
            u, v = int(edges[i, 0]), int(edges[i, 1])
            issues.append(
                OrientationIssue(
                    "uncovered-intended-edge", f"edge ({u}, {v}) not covered by any sector of {u}"
                )
            )

    if range_bound is not None and max_len > range_bound * (1.0 + 1e-7) + 1e-12:
        issues.append(
            OrientationIssue(
                "range-bound",
                f"max intended edge {max_len:.6f} exceeds bound {range_bound:.6f}",
            )
        )

    if n > 1:
        intended = DiGraph(n, edges)
        if not is_strongly_connected(intended):
            issues.append(
                OrientationIssue("intended-connectivity", "intended edge set not strongly connected")
            )
        if check_transmission:
            if cover is None:
                cover = coverage_matrix(points, assignment, eps=eps, tables=tables)
            if not is_strongly_connected(graph_from_cover(cover)):
                issues.append(
                    OrientationIssue(
                        "transmission-connectivity", "full transmission graph not strongly connected"
                    )
                )

    return ValidationReport(
        ok=not issues,
        issues=issues,
        max_spread_sum=max_sum,
        max_antennas=max_ant,
        max_intended_length=max_len,
    )
