"""Antenna assignment model and induced transmission digraph."""

from repro.antenna.model import AntennaAssignment
from repro.antenna.coverage import (
    transmission_graph,
    coverage_matrix,
    critical_range,
    covered_pairs,
)
from repro.antenna.validate import OrientationIssue, validate_assignment

__all__ = [
    "AntennaAssignment",
    "transmission_graph",
    "coverage_matrix",
    "critical_range",
    "covered_pairs",
    "OrientationIssue",
    "validate_assignment",
]
