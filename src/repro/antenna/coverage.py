"""Induced transmission digraph of an antenna assignment.

The paper's model: a directed edge ``(u, v)`` exists iff ``v`` lies within
the spread and range of some antenna at ``u``.  All heavy lifting happens
in :mod:`repro.kernels`: the batched coverage kernel evaluates every
``k·n`` sector against the shared :class:`~repro.kernels.geometry.PolarTables`
in pure array ops, and the critical-range search bisects a once-sorted edge
list with zero per-probe graph rebuilds.  Pass ``tables=`` (e.g. from the
engine's :class:`~repro.engine.cache.ArtifactCache`) to share the polar
geometry across calls on the same point set.

Kernel calls dispatch through :func:`repro.kernels.backend.active_backend`,
so the same code path runs on the numpy or numba backend unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.antenna.model import AntennaAssignment
from repro.geometry.points import PointSet
from repro.graph.digraph import DiGraph
from repro.kernels.backend import active_backend
from repro.kernels.geometry import PolarTables

__all__ = [
    "coverage_matrix",
    "graph_from_cover",
    "transmission_graph",
    "covered_pairs",
    "critical_range",
]


def _points_arr(points) -> np.ndarray:
    return points.coords if isinstance(points, PointSet) else np.asarray(points, float)


def _tables_for(coords: np.ndarray, tables: PolarTables | None) -> PolarTables:
    if tables is None:
        return active_backend().polar_tables(coords)
    if tables.n != coords.shape[0]:
        raise ValueError(
            f"polar tables are for n={tables.n}, point set has n={coords.shape[0]}"
        )
    return tables


def coverage_matrix(
    points,
    assignment: AntennaAssignment,
    *,
    eps: float = 1e-9,
    ignore_radius: bool = False,
    tables: PolarTables | None = None,
) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``M[u, v]`` iff some antenna of u covers v.

    ``ignore_radius=True`` tests angular containment only (used by
    :func:`critical_range` to enumerate candidate edges).  ``tables`` is the
    optional precomputed polar geometry; without it the tables are built
    once for this call.
    """
    coords = _points_arr(points)
    n = coords.shape[0]
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    idx, start, spread, radius = assignment.flattened()
    if idx.size == 0:
        return np.zeros((n, n), dtype=bool)
    return active_backend().coverage(
        _tables_for(coords, tables),
        idx,
        start,
        spread,
        radius,
        eps=eps,
        ignore_radius=ignore_radius,
    )


def graph_from_cover(cover: np.ndarray) -> DiGraph:
    """The :class:`DiGraph` whose edges are the True entries of ``cover``.

    The one place a coverage matrix becomes a graph — the validator and
    :func:`transmission_graph` must agree on this derivation.
    """
    src, dst = np.nonzero(cover)
    edges = np.stack([src, dst], axis=1) if src.size else np.empty((0, 2), dtype=np.int64)
    return DiGraph(cover.shape[0], edges)


def transmission_graph(
    points,
    assignment: AntennaAssignment,
    *,
    eps: float = 1e-9,
    tables: PolarTables | None = None,
) -> DiGraph:
    """The directed transmission graph induced by ``assignment``."""
    return graph_from_cover(coverage_matrix(points, assignment, eps=eps, tables=tables))


def covered_pairs(
    points,
    assignment: AntennaAssignment,
    *,
    eps: float = 1e-9,
    tables: PolarTables | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Angularly-covered ordered pairs and their distances (radius ignored).

    Returns ``(pairs, dists)`` where ``pairs`` is ``(m, 2)``; distances are
    read from the polar tables rather than recomputed per pair.
    """
    coords = _points_arr(points)
    tables = _tables_for(coords, tables)
    cover = coverage_matrix(
        points, assignment, eps=eps, ignore_radius=True, tables=tables
    )
    src, dst = np.nonzero(cover)
    if src.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=float)
    return np.stack([src, dst], axis=1), tables.dist[src, dst]


def critical_range(
    points,
    assignment: AntennaAssignment,
    *,
    eps: float = 1e-9,
    tables: PolarTables | None = None,
    mode: str = "strong",
) -> float:
    """Smallest uniform antenna radius making the network connected.

    Keeps every sector's orientation and spread, ignores its stored radius,
    and bisects over the candidate distances (those of angularly covered
    pairs) via :func:`~repro.kernels.critical.critical_range_search`: one
    covered-pairs computation, one sort, O(log m) CSR connectivity probes,
    and zero per-probe graph constructions (see the kernel counters).
    ``mode`` selects the objective: strong connectivity of the directed
    graph (the paper's model) or, for ``"symmetric"``, undirected
    connectivity of the mutual-coverage graph
    (:func:`~repro.kernels.critical.symmetric_critical_range_search`).
    Returns ``inf`` if no radius achieves connectivity (the orientations
    themselves are deficient).

    This is the honest "measured range" metric reported by the benchmarks:
    for an orientation produced by an algorithm with bound ``r_bound``, the
    paper's claim corresponds to ``critical_range ≤ r_bound · lmax``.
    """
    coords = _points_arr(points)
    n = coords.shape[0]
    if n <= 1:
        return 0.0
    pairs, dists = covered_pairs(points, assignment, eps=eps, tables=tables)
    backend = active_backend()
    if mode == "symmetric":
        return backend.symmetric_critical_range(n, pairs, dists, eps=eps)
    return backend.critical_range(n, pairs, dists, eps=eps)
