"""Induced transmission digraph of an antenna assignment.

The paper's model: a directed edge ``(u, v)`` exists iff ``v`` lies within
the spread and range of some antenna at ``u``.  The kernels here are
vectorized per antenna (each antenna is tested against all ``n`` points at
once); for the instance sizes of the experiments (n ≤ a few thousand, ≤ 5
antennae per node) this is the sweet spot between clarity and speed.
"""

from __future__ import annotations

import numpy as np

from repro.antenna.model import AntennaAssignment
from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, angle_of, ccw_angle
from repro.geometry.points import PointSet
from repro.graph.connectivity import is_strongly_connected
from repro.graph.digraph import DiGraph

__all__ = ["coverage_matrix", "transmission_graph", "covered_pairs", "critical_range"]


def _points_arr(points) -> np.ndarray:
    return points.coords if isinstance(points, PointSet) else np.asarray(points, float)


def coverage_matrix(
    points,
    assignment: AntennaAssignment,
    *,
    eps: float = 1e-9,
    ignore_radius: bool = False,
) -> np.ndarray:
    """Boolean ``(n, n)`` matrix: ``M[u, v]`` iff some antenna of u covers v.

    ``ignore_radius=True`` tests angular containment only (used by
    :func:`critical_range` to enumerate candidate edges).
    """
    coords = _points_arr(points)
    n = coords.shape[0]
    cover = np.zeros((n, n), dtype=bool)
    if n == 0:
        return cover
    for u, sector in assignment:
        off = coords - coords[u]
        dist = np.hypot(off[:, 0], off[:, 1])
        ang = angle_of(off)
        rel = np.asarray(ccw_angle(sector.start, ang), dtype=float)
        ang_ok = (rel <= sector.spread + eps) | (rel >= TWO_PI - eps)
        if sector.spread >= TWO_PI - eps:
            ang_ok = np.full(n, True)
        if ignore_radius or not np.isfinite(sector.radius):
            rad_ok = np.full(n, True)
        else:
            tol = eps * max(1.0, sector.radius)
            rad_ok = dist <= sector.radius + tol
        hit = ang_ok & rad_ok & (dist > 0.0)
        cover[u] |= hit
    np.fill_diagonal(cover, False)
    return cover


def transmission_graph(
    points, assignment: AntennaAssignment, *, eps: float = 1e-9
) -> DiGraph:
    """The directed transmission graph induced by ``assignment``."""
    cover = coverage_matrix(points, assignment, eps=eps)
    src, dst = np.nonzero(cover)
    edges = np.stack([src, dst], axis=1) if src.size else np.empty((0, 2), dtype=np.int64)
    return DiGraph(cover.shape[0], edges)


def covered_pairs(
    points, assignment: AntennaAssignment, *, eps: float = 1e-9
) -> tuple[np.ndarray, np.ndarray]:
    """Angularly-covered ordered pairs and their distances (radius ignored).

    Returns ``(pairs, dists)`` where ``pairs`` is ``(m, 2)``.
    """
    coords = _points_arr(points)
    cover = coverage_matrix(points, assignment, eps=eps, ignore_radius=True)
    src, dst = np.nonzero(cover)
    if src.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=float)
    diff = coords[src] - coords[dst]
    dists = np.hypot(diff[:, 0], diff[:, 1])
    return np.stack([src, dst], axis=1), dists


def critical_range(
    points, assignment: AntennaAssignment, *, eps: float = 1e-9
) -> float:
    """Smallest uniform antenna radius making the network strongly connected.

    Keeps every sector's orientation and spread, ignores its stored radius,
    and binary-searches over the candidate distances (those of angularly
    covered pairs).  Returns ``inf`` if no radius achieves strong
    connectivity (the orientations themselves are deficient).

    This is the honest "measured range" metric reported by the benchmarks:
    for an orientation produced by an algorithm with bound ``r_bound``, the
    paper's claim corresponds to ``critical_range ≤ r_bound · lmax``.
    """
    coords = _points_arr(points)
    n = coords.shape[0]
    if n <= 1:
        return 0.0
    pairs, dists = covered_pairs(points, assignment, eps=eps)
    if pairs.size == 0:
        return float("inf")
    candidates = np.unique(dists)

    def connected_at(r: float) -> bool:
        tol = eps * max(1.0, r)
        mask = dists <= r + tol
        g = DiGraph(n, pairs[mask])
        return is_strongly_connected(g)

    if not connected_at(float(candidates[-1])):
        return float("inf")
    lo, hi = 0, candidates.size - 1  # invariant: connected_at(candidates[hi])
    while lo < hi:
        mid = (lo + hi) // 2
        if connected_at(float(candidates[mid])):
            hi = mid
        else:
            lo = mid + 1
    return float(candidates[hi])
