"""Per-sensor antenna assignments.

An :class:`AntennaAssignment` maps each sensor index to the list of
:class:`~repro.geometry.sectors.Sector` beams mounted on it.  It is the
common output format of every orientation algorithm in :mod:`repro.core`,
and the input to :func:`repro.antenna.coverage.transmission_graph`.

The class is a thin builder around list-of-lists plus flattened numpy views
for the vectorized coverage kernels.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.sectors import Sector

__all__ = ["AntennaAssignment"]


class AntennaAssignment:
    """Sectors per sensor, for ``n`` sensors indexed ``0..n-1``."""

    def __init__(self, n: int, sectors: Sequence[Sequence[Sector]] | None = None):
        if n < 0:
            raise InvalidParameterError(f"sensor count must be >= 0, got {n}")
        self.n = int(n)
        self._sectors: list[list[Sector]] = [[] for _ in range(self.n)]
        if sectors is not None:
            if len(sectors) != self.n:
                raise InvalidParameterError(
                    f"expected {self.n} sector lists, got {len(sectors)}"
                )
            for i, lst in enumerate(sectors):
                for s in lst:
                    self.add(i, s)

    # -- construction --------------------------------------------------------------
    def add(self, sensor: int, sector: Sector) -> None:
        """Mount ``sector`` on ``sensor``."""
        if not 0 <= sensor < self.n:
            raise InvalidParameterError(f"sensor {sensor} out of range (n={self.n})")
        if not isinstance(sector, Sector):
            raise InvalidParameterError(f"expected a Sector, got {type(sector).__name__}")
        self._sectors[sensor].append(sector)

    def extend(self, sensor: int, sectors: Iterable[Sector]) -> None:
        for s in sectors:
            self.add(sensor, s)

    # -- access -----------------------------------------------------------------
    def __getitem__(self, sensor: int) -> list[Sector]:
        return list(self._sectors[sensor])

    def __iter__(self) -> Iterator[tuple[int, Sector]]:
        for i, lst in enumerate(self._sectors):
            for s in lst:
                yield i, s

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"AntennaAssignment(n={self.n}, antennae={self.total_antennae()}, "
            f"max_per_node={int(self.counts().max()) if self.n else 0})"
        )

    def counts(self) -> np.ndarray:
        """Number of antennae per sensor."""
        return np.asarray([len(lst) for lst in self._sectors], dtype=np.int64)

    def total_antennae(self) -> int:
        return int(self.counts().sum())

    def spread_sums(self) -> np.ndarray:
        """Sum of sector spreads per sensor (the paper's per-node angle sum)."""
        return np.asarray(
            [sum(s.spread for s in lst) for lst in self._sectors], dtype=float
        )

    def max_spread_sum(self) -> float:
        sums = self.spread_sums()
        return float(sums.max()) if sums.size else 0.0

    def max_radius(self) -> float:
        radii = [s.radius for _, s in self]
        return float(max(radii)) if radii else 0.0

    # -- transforms -----------------------------------------------------------------
    def with_uniform_radius(self, radius: float) -> "AntennaAssignment":
        """Copy with every sector's radius replaced by ``radius``."""
        out = AntennaAssignment(self.n)
        for i, s in self:
            out.add(i, s.with_radius(radius))
        return out

    def flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(sensor_idx, start, spread, radius)`` flat arrays over all antennae."""
        idx, start, spread, radius = [], [], [], []
        for i, s in self:
            idx.append(i)
            start.append(s.start)
            spread.append(s.spread)
            radius.append(s.radius)
        return (
            np.asarray(idx, dtype=np.int64),
            np.asarray(start, dtype=float),
            np.asarray(spread, dtype=float),
            np.asarray(radius, dtype=float),
        )
