"""Serialization of orientation results (JSON) and point sets (CSV).

An orientation is field-deployable data — per-sensor beam boresights,
spreads and ranges — so round-tripping it to JSON is a first-class feature,
not an afterthought.  The schema is versioned and validated on load.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.antenna.model import AntennaAssignment
from repro.core.result import OrientationResult
from repro.errors import ValidationError
from repro.geometry.points import PointSet
from repro.geometry.sectors import Sector

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "points_to_csv",
    "points_from_csv",
]

SCHEMA_VERSION = 1


def result_to_dict(result: OrientationResult) -> dict[str, Any]:
    """JSON-serializable representation of an orientation result."""
    return {
        "schema_version": SCHEMA_VERSION,
        "algorithm": result.algorithm,
        "k": int(result.k),
        "phi": float(result.phi),
        "range_bound": float(result.range_bound),
        "lmax": float(result.lmax),
        "points": result.points.coords.tolist(),
        "sectors": [
            {
                "sensor": int(i),
                "start": float(s.start),
                "spread": float(s.spread),
                "radius": None if not np.isfinite(s.radius) else float(s.radius),
            }
            for i, s in result.assignment
        ],
        "intended_edges": result.intended_edges.tolist(),
        "stats": _jsonable(result.stats),
    }


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return obj


def result_from_dict(data: dict[str, Any]) -> OrientationResult:
    """Inverse of :func:`result_to_dict`, with schema validation."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported orientation schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    for key in ("points", "sectors", "intended_edges", "k", "phi",
                "range_bound", "lmax", "algorithm"):
        if key not in data:
            raise ValidationError(f"orientation JSON missing field {key!r}")
    points = PointSet(np.asarray(data["points"], dtype=float))
    assignment = AntennaAssignment(len(points))
    for rec in data["sectors"]:
        radius = rec.get("radius")
        assignment.add(
            int(rec["sensor"]),
            Sector(float(rec["start"]), float(rec["spread"]),
                   np.inf if radius is None else float(radius)),
        )
    edges = np.asarray(data["intended_edges"], dtype=np.int64).reshape(-1, 2)
    return OrientationResult(
        points=points,
        assignment=assignment,
        intended_edges=edges,
        k=int(data["k"]),
        phi=float(data["phi"]),
        range_bound=float(data["range_bound"]),
        lmax=float(data["lmax"]),
        algorithm=str(data["algorithm"]),
        stats=dict(data.get("stats", {})),
    )


def save_result(result: OrientationResult, path: str) -> None:
    """Write an orientation result to ``path`` as JSON."""
    with open(path, "w", encoding="utf8") as fh:
        json.dump(result_to_dict(result), fh, indent=1)


def load_result(path: str) -> OrientationResult:
    """Read an orientation result written by :func:`save_result`."""
    with open(path, "r", encoding="utf8") as fh:
        return result_from_dict(json.load(fh))


def points_to_csv(points: PointSet, path: str) -> None:
    """Write sensor coordinates as ``x,y`` lines (with a header)."""
    with open(path, "w", encoding="utf8") as fh:
        fh.write("x,y\n")
        for x, y in points.coords:
            fh.write(f"{float(x)!r},{float(y)!r}\n")


def points_from_csv(path: str) -> PointSet:
    """Read sensor coordinates from a CSV written by :func:`points_to_csv`
    (or any two-column x,y file with an optional header)."""
    rows: list[tuple[float, float]] = []
    with open(path, "r", encoding="utf8") as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if line_no == 0 and not _is_number(parts[0]):
                continue  # header
            rows.append((float(parts[0]), float(parts[1])))
    return PointSet(np.asarray(rows, dtype=float))


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
