"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidPointSetError",
    "InvalidParameterError",
    "DegreeBoundError",
    "AlgorithmInvariantError",
    "InfeasibleInstanceError",
    "ValidationError",
    "PlanCancelled",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidPointSetError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaN, duplicates...)."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm parameter (``k``, ``phi``, budgets...) is out of range."""


class DegreeBoundError(ReproError, RuntimeError):
    """A spanning tree could not be brought to the required max degree."""


class AlgorithmInvariantError(ReproError, RuntimeError):
    """An invariant guaranteed by the paper's proof failed at runtime.

    Raised defensively: if the geometry of an instance violates a case
    condition that the proof shows must hold, this indicates either a bug or
    an input that is not a valid Euclidean MST configuration.  The message
    records the vertex and the failed condition for debugging.
    """


class InfeasibleInstanceError(ReproError, ValueError):
    """The requested orientation problem has no solution under the model.

    Example: ``k = 1`` with spread 0 requires a Hamiltonian-cycle orientation,
    which the caller may have constrained to an impossible range.
    """


class ValidationError(ReproError, AssertionError):
    """An orientation result failed post-hoc certificate validation."""


class PlanCancelled(ReproError, RuntimeError):
    """A durable plan execution stopped at its cancellation tombstone.

    Raised by :func:`repro.engine.execute_plan` /
    :func:`repro.frontier.execute_frontier` when the plan's run store
    carries a cancel marker (see :func:`repro.store.cancel_plan`).  Every
    chunk completed before the stop is already checkpointed in the ledger;
    clearing the tombstone and resuming continues from there.
    """
