"""Lightweight wall-clock timing helpers.

Following the HPC guide's "no optimization without measuring" rule, the
experiment harness reports timings; :class:`Timer` is a tiny context manager
so drivers do not depend on pytest-benchmark when run standalone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "measure"]


@dataclass
class Timer:
    """Context manager recording elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start time (for reuse across loop iterations)."""
        self._start = time.perf_counter()
        self.elapsed = 0.0


def measure(fn, *args, repeat: int = 1, **kwargs):
    """Call ``fn`` ``repeat`` times; return ``(best_seconds, last_result)``.

    A minimal stand-in for ``timeit`` usable inside experiment drivers.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result
