"""Small shared utilities (RNG discipline, tables, timing, logging)."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.tables import format_markdown_table, format_ascii_table
from repro.utils.timing import Timer

__all__ = [
    "as_rng",
    "spawn_rngs",
    "format_markdown_table",
    "format_ascii_table",
    "Timer",
]
