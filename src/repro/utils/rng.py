"""Deterministic random-number-generator helpers.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an ``int`` or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: the same seed always yields the same instance, and
independent sub-streams are derived with :func:`spawn_rngs` rather than by
ad-hoc integer arithmetic on seeds.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["RngLike", "as_rng", "spawn_rngs", "stable_seed"]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` or
    ``SeedSequence`` yields a deterministic one; a ``Generator`` is returned
    unchanged (shared mutable state, which is what callers passing a
    generator want).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way to
    get parallel streams (see the NumPy parallel-random docs).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_seed(*parts: Union[int, str, float]) -> int:
    """Hash heterogeneous experiment parameters into a stable 63-bit seed.

    Unlike ``hash()``, this is stable across processes (no PYTHONHASHSEED
    dependence), so experiment grids keyed by ``(name, n, k, phi)`` always
    map to the same instances.
    """
    import hashlib

    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)
