"""Deterministic random-number-generator helpers.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an ``int`` or an already-constructed
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: the same seed always yields the same instance, and
independent sub-streams are derived with :func:`spawn_rngs` rather than by
ad-hoc integer arithmetic on seeds.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = [
    "RngLike",
    "as_rng",
    "spawn_rngs",
    "stable_seed",
    "counter_rng",
    "indexed_uniforms",
    "indexed_normals",
]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` or
    ``SeedSequence`` yields a deterministic one; a ``Generator`` is returned
    unchanged (shared mutable state, which is what callers passing a
    generator want).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, the supported way to
    get parallel streams (see the NumPy parallel-random docs).
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_seed(*parts: Union[int, str, float]) -> int:
    """Hash heterogeneous experiment parameters into a stable 63-bit seed.

    Unlike ``hash()``, this is stable across processes (no PYTHONHASHSEED
    dependence), so experiment grids keyed by ``(name, n, k, phi)`` always
    map to the same instances.
    """
    import hashlib

    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def counter_rng(*parts: Union[int, str, float]) -> np.random.Generator:
    """A counter-based generator keyed by a path of parameters.

    Philox is a counter-mode bit generator: the stream is a pure function
    of its key, so two ``counter_rng`` calls with the same path yield
    bit-identical draws in any process, in any order, regardless of what
    other streams were consumed in between.  This is the primitive behind
    the ensemble layer's per-trial determinism contract and the
    order-independent failure sampling in :mod:`repro.analysis.robustness`:
    key a stream by *what it is for* — ``(seed, f, trial)`` — never by
    position in a shared sequential stream.
    """
    return np.random.Generator(np.random.Philox(key=stable_seed(*parts)))


_U64 = np.uint64
_MIX_1 = _U64(0x9E3779B97F4A7C15)
_MIX_2 = _U64(0xBF58476D1CE4E5B9)
_MIX_3 = _U64(0x94D049BB133111EB)
#: 2⁻⁵³ — maps the top 53 bits of a mixed word onto [0, 1).
_INV_2_53 = float(2.0 ** -53)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over a uint64 array."""
    x = (x + _MIX_1) & ~_U64(0)
    x = (x ^ (x >> _U64(30))) * _MIX_2
    x = (x ^ (x >> _U64(27))) * _MIX_3
    return x ^ (x >> _U64(31))


def indexed_uniforms(seed: int, index) -> np.ndarray:
    """Uniform [0, 1) draws addressed by *index*, not by stream position.

    ``indexed_uniforms(seed, i)`` is a pure function of ``(seed, i)`` —
    random access into a virtual table of uniforms.  Unlike a sequential
    generator, evaluating any subset of indices, in any order, in any
    process yields the same values: this is what makes Monte-Carlo edge
    failures identical between the dense path (which evaluates all ``n²``
    pair indices) and the sparse path (which evaluates only the candidate
    pairs), and between a serial run and any shard/resume split.

    The generator is the splitmix64 finalizer keyed by ``seed`` — a full
    avalanche mix whose output passes the usual empirical batteries; for
    failure masks and fading draws its quality is far beyond need.
    """
    idx = np.asarray(index, dtype=np.uint64)
    with np.errstate(over="ignore"):
        base = _splitmix64(np.asarray(_U64(np.uint64(seed)), dtype=np.uint64))
        z = _splitmix64(idx ^ base)
    return (z >> _U64(11)).astype(np.float64) * _INV_2_53


def indexed_normals(seed: int, index) -> np.ndarray:
    """Standard-normal draws addressed by index (Box–Muller on
    :func:`indexed_uniforms` at counters ``2·index`` and ``2·index + 1``).

    Same random-access determinism contract as :func:`indexed_uniforms`.
    """
    idx = np.asarray(index, dtype=np.uint64)
    u1 = indexed_uniforms(seed, idx * _U64(2))
    u2 = indexed_uniforms(seed, idx * _U64(2) + _U64(1))
    # 1 - u1 lies in (0, 1]: log never sees zero.
    return np.sqrt(-2.0 * np.log1p(-u1)) * np.cos(2.0 * np.pi * u2)
