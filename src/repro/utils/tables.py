"""Plain-text table rendering for benchmark and experiment reports.

The benchmark harness prints paper-style rows; keeping the formatting here
avoids every experiment re-implementing column alignment.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_ascii_table", "format_markdown_table", "format_cell"]


def format_cell(value: Any, float_fmt: str = "{:.4f}") -> str:
    """Render one cell: floats through ``float_fmt``, others via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def _normalize(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], float_fmt: str
) -> tuple[list[str], list[list[str]]]:
    head = [str(h) for h in headers]
    body = [[format_cell(c, float_fmt) for c in row] for row in rows]
    for row in body:
        if len(row) != len(head):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(head)} headers: {row!r}"
            )
    return head, body


def format_ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_fmt: str = "{:.4f}",
    title: str | None = None,
) -> str:
    """Render an aligned, boxed ASCII table suitable for terminal output."""
    head, body = _normalize(headers, rows, float_fmt)
    widths = [len(h) for h in head]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.extend([sep, fmt_row(head), sep])
    lines.extend(fmt_row(r) for r in body)
    lines.append(sep)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render a GitHub-flavoured markdown table (used for EXPERIMENTS.md)."""
    head, body = _normalize(headers, rows, float_fmt)
    lines = ["| " + " | ".join(head) + " |", "|" + "|".join("---" for _ in head) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in body)
    return "\n".join(lines)
