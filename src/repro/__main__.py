"""Command-line interface: ``python -m repro <command>``.

Commands
--------
plan       orient antennae for a CSV of sensor coordinates
bounds     print the paper's Table 1 (optionally evaluated at a phi)
render     write an SVG picture of a saved orientation
validate   re-check a saved orientation's certificate
sweep      run a (workload × n) × (k × phi) batch through the engine
frontier   adaptively bisect phi to a metric threshold (or map its staircase)
ensemble   Monte-Carlo trials over a perturbation model: connection-
           probability curves, or probabilistic phi frontiers
merge      aggregate the shard ledgers of one or more run directories
store      maintain a run directory (compact shard ledgers, gc leftovers)
serve      run the planning service HTTP API over a run directory
worker     claim and execute queued plans' shards from a run directory

``sweep``, ``frontier``, ``ensemble`` and ``worker`` share one
durable-execution option group
(``--run-dir/--resume/--shard/--backend/--jobs``); ``--backend`` is
also selectable via the ``REPRO_BACKEND`` environment variable, and
results are bit-identical across backends.  The table-emitting commands
(``sweep``/``frontier``/``ensemble``/``merge``) share one output option
group (``--output``/``--format``).
"""

from __future__ import annotations

import argparse
import math
import sys

#: The exit-code contract shared by every subcommand (also in README.md).
_EXIT_CODES = """\
exit codes:
  0  success
  1  a validation/certificate check failed (plan, validate)
  2  usage, store, or backend error (bad parameters, refused ledger,
     unavailable backend, missing --run-dir)
  3  execution stopped at a cancellation tombstone (repro sweep/frontier/
     ensemble --resume after clearing it continues from the ledgered chunks)
"""


#: Mirror of :data:`repro.engine.spec.FRONTIER_METRICS`, kept literal so
#: ``repro --help`` does not pay the numpy/workloads import; the lockstep
#: is asserted by ``test_metric_choices_track_the_spec``.
_FRONTIER_METRIC_CHOICES = ("critical_range", "realized_range", "range_bound")


def _parse_phi(text: str) -> float:
    """Accept plain radians or pi-expressions like 'pi', '2pi/3', '1.2pi'."""
    t = text.strip().lower().replace(" ", "")
    if "pi" in t:
        coeff, _, rest = t.partition("pi")
        num = float(coeff) if coeff not in ("", "+") else 1.0
        if rest.startswith("/"):
            num /= float(rest[1:])
        elif rest:
            raise argparse.ArgumentTypeError(f"cannot parse angle {text!r}")
        return num * math.pi
    return float(t)


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import orient_antennae
    from repro.io import points_from_csv, save_result

    points = points_from_csv(args.input)
    result = orient_antennae(points, args.k, args.phi)
    print(result.summary())
    report = result.validate()
    print(f"certificate: {report.summary()}")
    if args.output:
        save_result(result, args.output)
        print(f"wrote {args.output}")
    return 0 if report.ok else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import paper_range_bound, table1_rows
    from repro.utils.tables import format_ascii_table

    rows = [
        [r.k, r.phi_description, r.range_formula, r.source] for r in table1_rows()
    ]
    print(format_ascii_table(["k", "phi", "range", "source"], rows,
                             title="Paper Table 1"))
    if args.phi is not None:
        print()
        for k in range(1, 6):
            bound, source = paper_range_bound(k, args.phi)
            print(f"  k={k}, phi={args.phi:.4f}: range <= {bound:.4f} lmax ({source})")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.io import load_result
    from repro.viz.svg import render_orientation_svg

    result = load_result(args.input)
    svg = render_orientation_svg(result, size=args.size)
    with open(args.output, "w", encoding="utf8") as fh:
        fh.write(svg)
    print(f"wrote {args.output} ({len(svg)} bytes)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.io import load_result

    result = load_result(args.input)
    report = result.validate()
    print(result.summary())
    print(report.summary())
    return 0 if report.ok else 1


def _batch_rows(batch, aggregate: str) -> list[dict]:
    return (
        batch.aggregate_by_cell()
        if aggregate == "cell"
        else batch.aggregate_by_scenario_cell()
    )


def _require_rows(tag: str, rows: list[dict]) -> bool:
    """False (with a clean stderr message) when there is nothing to tabulate
    — a shard owning none of a small plan's instances, or an empty ledger."""
    if rows:
        return True
    print(
        f"error: no instances to aggregate (the {tag} covers no completed "
        "plan instances)",
        file=sys.stderr,
    )
    return False


#: Columns whose value identifies a configuration (a grid cell's φ, a
#: frontier target).  They render at full ``repr`` precision — two distinct
#: φ values closer than 5e-5 must not collapse to one label in the table —
#: while measurement columns keep the short 4-digit display form.
_IDENTITY_COLUMNS = frozenset({"phi", "target"})


def _render_rows(batch, rows: list[dict], fmt: str) -> str:
    """Render aggregate rows as a markdown table or a JSON document."""
    import json

    from repro.utils.tables import format_markdown_table

    if fmt == "json":
        return json.dumps(
            {
                "request": batch.request.describe(),
                "jobs": batch.jobs_used,
                "elapsed_s": round(batch.elapsed, 4),
                "cache": batch.cache_stats.as_dict(),
                "rows": rows,
            },
            indent=2,
        )

    def cell(h, v):
        if isinstance(v, float):
            return repr(v) if h in _IDENTITY_COLUMNS else round(v, 4)
        return v

    headers = list(rows[0])
    cells = [[cell(h, row[h]) for h in headers] for row in rows]
    return format_markdown_table(headers, cells)


def _emit_table(
    tag: str, batch, rows: list[dict], body: str, output: str | None, run_dir
) -> None:
    """Write/print the table, then a one-line success summary to stderr."""
    from repro.store import hit_rate

    if output:
        with open(output, "w", encoding="utf8") as fh:
            fh.write(body + "\n")
        destination = output
    else:
        print(body)
        destination = "stdout"
    where = f", run dir {run_dir}" if run_dir else ""
    if hasattr(batch, "records"):  # sweep: one run per (instance, cell)
        runs = len(batch.records)
    elif hasattr(batch, "trial_totals"):  # ensemble: one run per slot
        runs = len(batch.outcomes)
    else:  # frontier: one solved frontier per (instance, k)
        runs = sum(len(o.frontiers) for o in batch.outcomes)
    print(
        f"[{tag}] wrote {len(rows)} rows x {len(rows[0])} cols to {destination} "
        f"({runs} runs, cache hit rate "
        f"{hit_rate(batch.cache_stats):.0%}{where})",
        file=sys.stderr, flush=True,
    )


def _run_batch_command(
    tag: str,
    args: argparse.Namespace,
    build_request,
    execute,
    unit: str,
    unit_count,
    rows_of,
) -> int:
    """Shared scaffolding of the ``sweep`` and ``frontier`` subcommands:
    request/shard validation, the run-dir guard, progress reporting,
    StoreError handling, and table emission.  The subcommands differ only
    in how the request is built (``build_request``), which executor runs it
    (``execute(request, **engine_kwargs)``), the per-instance work unit
    (``unit_count(request)`` × ``unit``, e.g. grid "cells" or per-k
    "frontiers"), and how aggregate rows come out of the batch
    (``rows_of``)."""
    from repro.engine import Shard
    from repro.kernels import BackendUnavailable
    from repro.store import RunStore, StoreError

    try:
        request = build_request()
        shard = Shard.parse(args.shard) if args.shard else Shard()
    except Exception as exc:  # invalid workload/k/phi/shard/backend combos
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = RunStore(args.run_dir) if args.run_dir else None
    if store is None and (args.resume or not shard.is_whole):
        print("error: --resume and --shard require --run-dir", file=sys.stderr)
        return 2
    if store is not None and args.resume:
        # An explicit resume is the "run this after all" signal: a leftover
        # cancellation tombstone must not immediately re-stop the run.
        store.clear_cancel(request.fingerprint())
    print(f"[{tag}] {request.describe()}", file=sys.stderr, flush=True)

    def progress(report) -> None:
        scenario = request.scenarios[report.scenario_index]
        print(
            f"[{tag}] {scenario.label} seed {report.instance_index}: "
            f"{unit_count(request)} {unit} in {report.elapsed:.2f}s",
            file=sys.stderr, flush=True,
        )

    from repro.errors import PlanCancelled

    try:
        batch = execute(
            request, jobs=args.jobs, on_instance=progress,
            store=store, shard=shard, resume=args.resume,
        )
    except PlanCancelled as exc:
        print(f"[{tag}] {exc}", file=sys.stderr)
        return 3
    except (StoreError, BackendUnavailable) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if batch.fallback_reason:
        print(f"[{tag}] {batch.fallback_reason}", file=sys.stderr)
    print(f"[{tag}] {batch.summary()}", file=sys.stderr, flush=True)

    rows = rows_of(batch)
    if not _require_rows("shard", rows):
        return 2
    body = _render_rows(batch, rows, args.format)
    _emit_table(tag, batch, rows, body, args.output, args.run_dir)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine import PlanRequest, execute_plan

    def build_request():
        return PlanRequest.sweep(
            workloads=args.workload,
            sizes=args.n,
            seeds=args.seeds,
            ks=args.k,
            phis=args.phi,
            tag=args.tag,
            compute_critical=not args.no_critical,
            mode=args.mode,
            backend=args.backend,
        )

    def execute(request, **kw):
        return execute_plan(
            request, batch_instances=not args.per_instance, **kw
        )

    return _run_batch_command(
        "sweep", args, build_request, execute,
        unit="cells", unit_count=lambda req: len(req.grid),
        rows_of=lambda b: _batch_rows(b, args.aggregate),
    )


def cmd_frontier(args: argparse.Namespace) -> int:
    from repro.engine import FrontierRequest, Scenario
    from repro.frontier import execute_frontier

    def build_request():
        return FrontierRequest(
            scenarios=tuple(
                Scenario(w, int(n), seeds=args.seeds, tag=args.tag)
                for w in args.workload
                for n in args.n
            ),
            ks=tuple(args.k),
            metric=args.metric,
            target=args.target,
            phi_lo=args.phi_lo,
            phi_hi=args.phi_hi,
            tol=args.tol,
            mode=args.mode,
            backend=args.backend,
        )

    return _run_batch_command(
        "frontier", args, build_request, execute_frontier,
        unit="frontiers", unit_count=lambda req: len(req.ks),
        rows_of=lambda b: b.aggregate_rows(),
    )


def cmd_ensemble(args: argparse.Namespace) -> int:
    from repro.engine import GridCell, Scenario
    from repro.ensemble import EnsembleRequest, Perturbation, execute_ensemble

    def build_request():
        scenarios = tuple(
            Scenario(w, int(n), seeds=args.seeds, tag=args.tag)
            for w in args.workload
            for n in args.n
        )
        perturbation = Perturbation(
            rotate=args.rotate,
            edge_fail=args.edge_fail,
            node_fail=args.node_fail,
            fade_sigma=args.fade_sigma,
        )
        common = dict(
            scenarios=scenarios,
            trials=args.trials,
            chunk=args.chunk,
            perturbation=perturbation,
            confidence=args.confidence,
            early_stop=not args.no_early_stop,
            compute_critical=not args.no_critical,
            mode=args.mode,
            backend=args.backend,
        )
        if args.phi is not None:
            # Curve mode; the request itself rejects a simultaneous
            # --p-target/--target with a precise message.
            if args.p_target is not None or args.target is not None:
                raise ValueError(
                    "--phi (curve mode) and --p-target/--target "
                    "(threshold mode) are mutually exclusive"
                )
            grid = tuple(
                GridCell(k, phi) for k in args.k for phi in args.phi
            )
            return EnsembleRequest(
                grid=grid, quantile=args.quantile, **common
            )
        return EnsembleRequest(
            ks=tuple(args.k),
            metric=args.metric,
            p_target=args.p_target,
            quantile=args.quantile,
            target=args.target,
            phi_lo=args.phi_lo,
            phi_hi=args.phi_hi,
            tol=args.tol,
            **common,
        )

    return _run_batch_command(
        "ensemble", args, build_request, execute_ensemble,
        unit="results",
        unit_count=lambda req: len(req.grid) or len(req.ks),
        rows_of=lambda b: b.aggregate_rows(),
    )


def cmd_merge(args: argparse.Namespace) -> int:
    from repro.api import assemble_rows
    from repro.store import StoreError, merge_stores

    try:
        key, request, ledger_rows = merge_stores(args.run_dir, args.plan)
        batch = assemble_rows(
            request, ledger_rows, allow_partial=args.allow_partial
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"[merge] plan {key[:12]} "
        f"({getattr(request, 'mode', 'strong')} connectivity): "
        f"{request.describe()}",
        file=sys.stderr, flush=True,
    )
    print(f"[merge] {batch.summary()}", file=sys.stderr, flush=True)

    if hasattr(batch, "aggregate_rows"):  # frontier/ensemble
        if args.aggregate != "cell":
            print(
                "[merge] note: --aggregate is ignored for frontier and "
                "ensemble plans (their row layout is fixed by the request)",
                file=sys.stderr,
            )
        rows = batch.aggregate_rows()
    else:
        rows = _batch_rows(batch, args.aggregate)
    if not _require_rows("ledger", rows):
        return 2
    body = _render_rows(batch, rows, args.format)
    _emit_table("merge", batch, rows, body, args.output,
                " + ".join(str(d) for d in args.run_dir))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import create_app
    from repro.service.http import serve

    app = create_app(
        args.run_dir,
        backend=args.backend,
        jobs=args.jobs,
        execute=not args.no_execute,
    )
    mode = "queue-only (drain with 'repro worker')" if args.no_execute else \
        "executing submissions in-process"
    print(
        f"[serve] http://{args.host}:{args.port} over run dir {args.run_dir} "
        f"({mode})",
        file=sys.stderr, flush=True,
    )
    try:
        asyncio.run(serve(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.engine import Shard
    from repro.service.worker import run_workers
    from repro.store import StoreError

    if not args.run_dir:
        print("error: worker requires --run-dir", file=sys.stderr)
        return 2
    try:
        shard = Shard.parse(args.shard) if args.shard else None
        if args.workers < 1:
            raise StoreError(f"--workers must be >= 1, got {args.workers}")
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pin = f", claims restricted to shard {shard.label}" if shard else ""
    print(
        f"[worker] draining {args.run_dir} with {args.workers} worker "
        f"process(es){pin}",
        file=sys.stderr, flush=True,
    )
    try:
        run_workers(
            args.run_dir,
            args.workers,
            backend=args.backend,
            jobs=args.jobs,
            once=not args.forever,
            poll=args.poll,
            shard=None if shard is None else (shard.index, shard.count),
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    from repro.store import RunStore, StoreError, compact_plan, gc_store

    store = RunStore(args.run_dir)
    try:
        if args.action == "compact":
            report = compact_plan(store, args.plan, dry_run=args.dry_run)
        else:
            report = gc_store(store, args.plan, dry_run=args.dry_run)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    prefix = "[store] (dry run) " if args.dry_run else "[store] "
    print(prefix + report.summary())
    return 0


def _durable_options() -> argparse.ArgumentParser:
    """The parent option group shared by ``sweep``/``frontier``/``worker``.

    One definition keeps the durable-execution surface identical across
    every command that touches a run directory; subcommands inherit it via
    ``parents=[...]``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group(
        "durable execution options",
        "shared by 'sweep', 'frontier' and 'worker'",
    )
    g.add_argument("--run-dir", default=None,
                   help="run directory: persist/claim per-instance ledgers "
                        "here (required for worker)")
    g.add_argument("--resume", action="store_true",
                   help="replay already-ledgered instances from --run-dir "
                        "and clear any cancellation tombstone (worker always "
                        "resumes)")
    g.add_argument("--shard", default=None, metavar="I/M",
                   help="execute (sweep/frontier) or claim (worker) only "
                        "shard I of M disjoint plan partitions (e.g. 0/2)")
    g.add_argument("--backend", default=None,
                   help="kernel backend: numpy, numba, sparse, or auto "
                        "(default: the REPRO_BACKEND environment variable, "
                        "else numpy); results are bit-identical across "
                        "backends — sparse/auto route large instances "
                        "through radius-bounded candidate geometry")
    g.add_argument("--jobs", type=int, default=1,
                   help="worker processes per execution (default: 1 = serial)")
    return parent


def _mode_options() -> argparse.ArgumentParser:
    """The connectivity-mode option shared by every plan-building command.

    ``sweep``/``frontier``/``ensemble`` all evaluate their objective under
    one :data:`repro.kernels.connectivity.CONNECTIVITY_MODES` member;
    defining the flag once keeps the spelling (and the help text's
    identity caveat) identical across them.
    """
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group(
        "connectivity mode",
        "shared by 'sweep', 'frontier' and 'ensemble'",
    )
    g.add_argument("--mode", choices=("strong", "symmetric"),
                   default="strong",
                   help="connectivity objective: 'strong' (directed strong "
                        "connectivity, the paper's default) or 'symmetric' "
                        "(links count only when both endpoints cover each "
                        "other; bounded-angle tree construction).  Part of "
                        "the plan's identity, so the two modes never share "
                        "a run-directory ledger (default: strong)")
    return parent


def _output_options() -> argparse.ArgumentParser:
    """The output option group shared by every table-emitting command.

    ``sweep``/``frontier``/``ensemble``/``merge`` all spell table emission
    the same way; defining the group once makes that a structural
    guarantee instead of a convention.  ``--out`` survives as a deprecated
    alias of ``--output`` from the pre-1.8 per-command spellings.
    """
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group(
        "output options",
        "shared by 'sweep', 'frontier', 'ensemble' and 'merge'",
    )
    g.add_argument("--format", choices=("markdown", "json"),
                   default="markdown",
                   help="table format (default: markdown)")
    g.add_argument("--output", default=None,
                   help="write the table/JSON here instead of stdout")
    g.add_argument("--out", dest="output", default=None,
                   metavar="OUTPUT",
                   help="deprecated alias for --output")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    durable = _durable_options()
    output = _output_options()
    mode = _mode_options()

    p = sub.add_parser("plan", help="orient antennae for a CSV deployment")
    p.add_argument("--input", required=True, help="CSV of x,y sensor coordinates")
    p.add_argument("--k", type=int, required=True, help="antennae per sensor")
    p.add_argument("--phi", type=_parse_phi, required=True,
                   help="angular-sum budget (radians; accepts 'pi', '2pi/3')")
    p.add_argument("--output", help="write the orientation JSON here")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("bounds", help="print the paper's Table 1")
    p.add_argument("--phi", type=_parse_phi, default=None,
                   help="also evaluate every k at this phi")
    p.set_defaults(fn=cmd_bounds)

    p = sub.add_parser("render", help="render a saved orientation as SVG")
    p.add_argument("--input", required=True, help="orientation JSON")
    p.add_argument("--output", required=True, help="SVG path")
    p.add_argument("--size", type=int, default=640)
    p.set_defaults(fn=cmd_render)

    p = sub.add_parser("validate", help="re-check a saved orientation")
    p.add_argument("--input", required=True, help="orientation JSON")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "sweep",
        help="run a (workload × n) × (k × phi) batch through the engine",
        parents=[durable, output, mode], epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--workload", nargs="+", default=["uniform"],
                   help="workload generator names (default: uniform)")
    p.add_argument("--n", nargs="+", type=int, default=[64],
                   help="instance sizes (default: 64)")
    p.add_argument("--seeds", type=int, default=3,
                   help="instances per (workload, n) (default: 3)")
    p.add_argument("--k", nargs="+", type=int, default=[1, 2],
                   help="antennae-per-sensor values (default: 1 2)")
    p.add_argument("--phi", nargs="+", type=_parse_phi, default=[math.pi],
                   help="angular budgets (radians; accepts 'pi', '2pi/3')")
    p.add_argument("--tag", default="sweep",
                   help="seed namespace for the scenario instances")
    p.add_argument("--no-critical", action="store_true",
                   help="skip the (expensive) critical-range measurement")
    p.add_argument("--per-instance", action="store_true",
                   help="evaluate instances one at a time instead of the "
                        "packed multi-instance batch path (bit-identical)")
    p.add_argument("--aggregate", choices=("cell", "scenario"), default="cell",
                   help="one row per grid cell, or per (scenario, cell)")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "frontier",
        help="adaptively bisect phi to a metric threshold or map its staircase",
        parents=[durable, output, mode], epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--workload", nargs="+", default=["uniform"],
                   help="workload generator names (default: uniform)")
    p.add_argument("--n", nargs="+", type=int, default=[64],
                   help="instance sizes (default: 64)")
    p.add_argument("--seeds", type=int, default=3,
                   help="instances per (workload, n) (default: 3)")
    p.add_argument("--k", nargs="+", type=int, default=[1, 2],
                   help="antennae-per-sensor values (default: 1 2)")
    p.add_argument("--metric", choices=_FRONTIER_METRIC_CHOICES,
                   default="critical_range",
                   help="metric to bisect on (default: critical_range)")
    p.add_argument("--target", type=float, default=None,
                   help="find the smallest phi with metric <= TARGET; "
                        "omit to map the metric-vs-phi staircase instead")
    p.add_argument("--phi-lo", type=_parse_phi, default=0.0,
                   help="lower end of the phi search interval (default: 0)")
    p.add_argument("--phi-hi", type=_parse_phi, default=2 * math.pi,
                   help="upper end of the phi search interval (default: 2pi)")
    p.add_argument("--tol", type=float, default=1e-3,
                   help="phi resolution of the search (default: 1e-3)")
    p.add_argument("--tag", default="frontier",
                   help="seed namespace for the scenario instances")
    p.set_defaults(fn=cmd_frontier)

    p = sub.add_parser(
        "ensemble",
        help="Monte-Carlo trials over a perturbation model: connection-"
             "probability curves or probabilistic phi frontiers",
        parents=[durable, output, mode], epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description="Runs M perturbed trials (random rotations, edge/node "
                    "failures, range fading) per instance.  With --phi the "
                    "command estimates P(connected under --mode) and critical-"
                    "range quantiles at every (k, phi) grid cell (curve "
                    "mode); with --p-target or --target it bisects phi for "
                    "the smallest budget meeting the probabilistic predicate "
                    "(threshold mode), early-stopping each probe on its "
                    "Wilson interval.  Trials are counter-seeded from the "
                    "plan fingerprint, so shards, resumes and worker counts "
                    "are bit-identical.",
    )
    p.add_argument("--workload", nargs="+", default=["uniform"],
                   help="workload generator names (default: uniform)")
    p.add_argument("--n", nargs="+", type=int, default=[64],
                   help="instance sizes (default: 64)")
    p.add_argument("--seeds", type=int, default=3,
                   help="instances per (workload, n) (default: 3)")
    p.add_argument("--k", nargs="+", type=int, default=[1, 2],
                   help="antennae-per-sensor values (default: 1 2)")
    p.add_argument("--phi", nargs="+", type=_parse_phi, default=None,
                   help="curve mode: estimate connection probability at "
                        "each (k, phi) cell; omit to bisect a threshold")
    p.add_argument("--trials", type=int, default=100,
                   help="Monte-Carlo trials per instance/probe (default: 100)")
    p.add_argument("--chunk", type=int, default=25,
                   help="trials per checkpoint/early-stop chunk (default: 25)")
    p.add_argument("--rotate", action="store_true",
                   help="rotate each sensor's antenna fan by U[0, 2pi)")
    p.add_argument("--edge-fail", type=float, default=0.0,
                   help="independent failure probability per directed link")
    p.add_argument("--node-fail", type=float, default=0.0,
                   help="independent knockout probability per sensor")
    p.add_argument("--fade-sigma", type=float, default=0.0,
                   help="sigma of the per-sensor log-normal range fade")
    p.add_argument("--p-target", type=float, default=None,
                   help="threshold mode: smallest phi with "
                        "P(connected under --mode) >= P_TARGET")
    p.add_argument("--metric", choices=_FRONTIER_METRIC_CHOICES,
                   default="critical_range",
                   help="metric for the quantile predicate "
                        "(default: critical_range)")
    p.add_argument("--quantile", type=float, default=0.9,
                   help="quantile order q for --target, and the reported "
                        "critical-range quantile in curve mode (default: 0.9)")
    p.add_argument("--target", type=float, default=None,
                   help="threshold mode: smallest phi with "
                        "quantile_q(metric) <= TARGET (lmax units)")
    p.add_argument("--phi-lo", type=_parse_phi, default=0.0,
                   help="lower end of the phi search interval (default: 0)")
    p.add_argument("--phi-hi", type=_parse_phi, default=2 * math.pi,
                   help="upper end of the phi search interval (default: 2pi)")
    p.add_argument("--tol", type=float, default=1e-3,
                   help="phi resolution of the search (default: 1e-3)")
    p.add_argument("--confidence", type=float, default=0.95,
                   help="Wilson-interval confidence for early stopping and "
                        "reported intervals (default: 0.95)")
    p.add_argument("--no-early-stop", action="store_true",
                   help="always run the full trial budget per probe")
    p.add_argument("--no-critical", action="store_true",
                   help="curve mode: skip per-trial critical-range "
                        "measurement (connectivity only)")
    p.add_argument("--tag", default="ensemble",
                   help="seed namespace for the scenario instances")
    p.set_defaults(fn=cmd_ensemble)

    p = sub.add_parser(
        "merge",
        help="aggregate the shard ledgers of one or more run directories",
        parents=[output],
    )
    p.add_argument("--run-dir", nargs="+", required=True,
                   help="run directories holding shard ledgers of one plan")
    p.add_argument("--plan", default=None,
                   help="plan key (prefix) when a directory records several")
    p.add_argument("--allow-partial", action="store_true",
                   help="aggregate even if some plan instances are missing")
    p.add_argument("--aggregate", choices=("cell", "scenario"), default="cell",
                   help="one row per grid cell, or per (scenario, cell)")
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser(
        "serve",
        help="run the planning service HTTP API over a run directory",
        epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--run-dir", required=True,
                   help="run directory all jobs live in")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (default: 8321)")
    p.add_argument("--backend", default=None,
                   help="kernel backend for in-process execution")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per executed plan (default: 1)")
    p.add_argument("--no-execute", action="store_true",
                   help="queue submissions without executing them; drain the "
                        "run directory with 'repro worker' instead")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="claim and execute queued plans' shards from a run directory",
        parents=[durable], epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description="Each worker process claims unowned shards of queued "
                    "plans via atomic claim files and executes them through "
                    "the standard resume path, so N workers sharing one run "
                    "directory produce output bit-identical to a serial run. "
                    "--resume is implied; --shard restricts which partition "
                    "this invocation may claim.",
    )
    p.add_argument("--workers", type=int, default=1,
                   help="number of worker processes to run (default: 1)")
    p.add_argument("--forever", action="store_true",
                   help="keep polling for new queued plans instead of "
                        "exiting when the queue drains")
    p.add_argument("--poll", type=float, default=0.5,
                   help="seconds between queue polls (default: 0.5)")
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser(
        "store",
        help="maintain a run directory (compact shard ledgers, gc leftovers)",
    )
    p.add_argument("action", choices=("compact", "gc"),
                   help="compact: archive a plan's shard ledgers into one "
                        "file; gc: drop tmp leftovers and row-less plans")
    p.add_argument("--run-dir", required=True,
                   help="run directory to maintain")
    p.add_argument("--plan", default=None,
                   help="plan key (prefix); compact: required when several "
                        "plans share the directory; gc: remove this plan "
                        "entirely")
    p.add_argument("--dry-run", action="store_true",
                   help="report what would change without touching files")
    p.set_defaults(fn=cmd_store)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
