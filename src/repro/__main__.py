"""Command-line interface: ``python -m repro <command>``.

Commands
--------
plan       orient antennae for a CSV of sensor coordinates
bounds     print the paper's Table 1 (optionally evaluated at a phi)
render     write an SVG picture of a saved orientation
validate   re-check a saved orientation's certificate
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np


def _parse_phi(text: str) -> float:
    """Accept plain radians or pi-expressions like 'pi', '2pi/3', '1.2pi'."""
    t = text.strip().lower().replace(" ", "")
    if "pi" in t:
        coeff, _, rest = t.partition("pi")
        num = float(coeff) if coeff not in ("", "+") else 1.0
        if rest.startswith("/"):
            num /= float(rest[1:])
        elif rest:
            raise argparse.ArgumentTypeError(f"cannot parse angle {text!r}")
        return num * math.pi
    return float(t)


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planner import orient_antennae
    from repro.io import points_from_csv, save_result

    points = points_from_csv(args.input)
    result = orient_antennae(points, args.k, args.phi)
    print(result.summary())
    report = result.validate()
    print(f"certificate: {report.summary()}")
    if args.output:
        save_result(result, args.output)
        print(f"wrote {args.output}")
    return 0 if report.ok else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import paper_range_bound, table1_rows
    from repro.utils.tables import format_ascii_table

    rows = [
        [r.k, r.phi_description, r.range_formula, r.source] for r in table1_rows()
    ]
    print(format_ascii_table(["k", "phi", "range", "source"], rows,
                             title="Paper Table 1"))
    if args.phi is not None:
        print()
        for k in range(1, 6):
            bound, source = paper_range_bound(k, args.phi)
            print(f"  k={k}, phi={args.phi:.4f}: range <= {bound:.4f} lmax ({source})")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.io import load_result
    from repro.viz.svg import render_orientation_svg

    result = load_result(args.input)
    svg = render_orientation_svg(result, size=args.size)
    with open(args.output, "w", encoding="utf8") as fh:
        fh.write(svg)
    print(f"wrote {args.output} ({len(svg)} bytes)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.io import load_result

    result = load_result(args.input)
    report = result.validate()
    print(result.summary())
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="orient antennae for a CSV deployment")
    p.add_argument("--input", required=True, help="CSV of x,y sensor coordinates")
    p.add_argument("--k", type=int, required=True, help="antennae per sensor")
    p.add_argument("--phi", type=_parse_phi, required=True,
                   help="angular-sum budget (radians; accepts 'pi', '2pi/3')")
    p.add_argument("--output", help="write the orientation JSON here")
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("bounds", help="print the paper's Table 1")
    p.add_argument("--phi", type=_parse_phi, default=None,
                   help="also evaluate every k at this phi")
    p.set_defaults(fn=cmd_bounds)

    p = sub.add_parser("render", help="render a saved orientation as SVG")
    p.add_argument("--input", required=True, help="orientation JSON")
    p.add_argument("--output", required=True, help="SVG path")
    p.add_argument("--size", type=int, default=640)
    p.set_defaults(fn=cmd_render)

    p = sub.add_parser("validate", help="re-check a saved orientation")
    p.add_argument("--input", required=True, help="orientation JSON")
    p.set_defaults(fn=cmd_validate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
