"""Probabilistic φ-frontier solver: bisection over Monte-Carlo predicates.

The deterministic :mod:`repro.frontier._solver` bisects on
``metric(φ) ≤ target``; this module bisects on an *estimated probability*:

* ``connectivity`` predicate — smallest φ with
  ``P(strongly connected) ≥ p_target``;
* ``quantile`` predicate — smallest φ with
  ``quantile_q(metric) ≤ target``, which is exactly
  ``P(metric ≤ target) ≥ q`` — both predicates reduce to a Bernoulli
  success rate against one probability bound.

A probe runs trials in chunks and stops early once the Wilson score
interval clears the bound from either side (``lo > p`` → met, ``hi < p``
→ not met); at budget exhaustion the point estimate decides.  Saved
trials are accounted in the ``ensemble_trials_saved`` kernel counter —
the number CI asserts the sequential win on, instead of wall-clock.

Probes at different φ share *common random numbers* (trial seeds exclude
φ, see :mod:`repro.ensemble.trials`), so the empirical success curve
inherits the true curve's monotonicity in φ far below the noise floor of
independent sampling.  The :func:`monotonicity_audit` still checks it:
any probe pair whose Wilson intervals order the wrong way (lower φ's lo
above higher φ's hi) is reported as a violation — a bisection-soundness
alarm, not a silent assumption.

Like the deterministic solver, exact-φ re-probes and φ-free dispatch
regimes (:data:`repro.frontier._solver.PHI_FREE_ALGORITHMS`) are
memoised: a φ-free regime yields the identical orientation, hence the
identical trial outcomes, at zero kernel and zero trial cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.symmetric import SYMMETRIC_ALGORITHM, orient_for_mode
from repro.engine.cache import ArtifactCache
from repro.engine.executor import instance_artifacts
from repro.frontier._solver import PHI_FREE_ALGORITHMS, dispatch_regime
from repro.kernels.instrument import COUNTERS
from repro.ensemble.trials import measure_trials

__all__ = [
    "z_value",
    "wilson_interval",
    "EnsembleProbe",
    "KEnsembleFrontier",
    "EnsembleProbeEngine",
    "monotonicity_audit",
    "solve_instance_ensemble",
]


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for ``confidence``."""
    q = 0.5 * (1.0 + float(confidence))
    try:
        from scipy.special import ndtri

        return float(ndtri(q))
    except ImportError:  # pragma: no cover - scipy is normally present
        return _ndtri_acklam(q)


def _ndtri_acklam(q: float) -> float:  # pragma: no cover - scipy fallback
    """Acklam's rational approximation of the normal quantile (|err| < 1e-9)."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {q}")
    if q < p_low:
        t = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4]) * t + c[5]) / \
               ((((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0)
    if q > p_high:
        return -_ndtri_acklam(1.0 - q)
    t = q - 0.5
    r = t * t
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * t / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def wilson_interval(
    successes: int, trials: int, confidence: float
) -> tuple[float, float]:
    """Wilson score interval for a Bernoulli rate (robust near 0 and 1)."""
    if trials <= 0:
        return 0.0, 1.0
    z = z_value(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials)) / denom
    return max(0.0, center - half), min(1.0, center + half)


@dataclass(frozen=True)
class EnsembleProbe:
    """One sequential Bernoulli estimate at ``(k, φ)``.

    ``met`` is the probe's decision against the request's probability
    bound; ``trials_used < budget`` iff the Wilson interval decided early
    (``reused`` probes inherit their numbers from a memo at zero cost).
    """

    phi: float
    successes: int
    trials_used: int
    budget: int
    met: bool
    algorithm: str
    reused: bool

    @property
    def p_hat(self) -> float:
        return self.successes / self.trials_used if self.trials_used else 0.0

    def interval(self, confidence: float) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials_used, confidence)

    def as_list(self) -> list:
        """Compact JSON form (ledger rows hold many probes)."""
        return [
            self.phi, self.successes, self.trials_used, self.budget,
            self.met, self.algorithm, self.reused,
        ]

    @classmethod
    def from_list(cls, data: list) -> "EnsembleProbe":
        return cls(
            float(data[0]), int(data[1]), int(data[2]), int(data[3]),
            bool(data[4]), str(data[5]), bool(data[6]),
        )


@dataclass
class KEnsembleFrontier:
    """The solved probabilistic frontier of one ``(instance, k)``.

    ``status`` follows the deterministic solver: ``"located"`` (φ*
    bracketed to tol), ``"below_lo"`` (bound already met at ``phi_lo``),
    ``"unattained"`` (not met at ``phi_hi``).  ``audit`` lists Wilson
    monotonicity violations across the probes (see
    :func:`monotonicity_audit`); ``trials_saved`` counts budgeted trials
    the sequential early stopping never ran.
    """

    k: int
    status: str
    phi_star: float | None
    p_lo: float
    p_hi: float
    probes: list[EnsembleProbe] = field(default_factory=list)
    audit: list[dict[str, float]] = field(default_factory=list)
    trials_used: int = 0
    trials_saved: int = 0

    @property
    def probe_count(self) -> int:
        return len(self.probes)

    @property
    def reused_count(self) -> int:
        return sum(1 for p in self.probes if p.reused)

    @property
    def evaluated_count(self) -> int:
        return self.probe_count - self.reused_count

    def as_dict(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "status": self.status,
            "phi_star": self.phi_star,
            "p_lo": self.p_lo,
            "p_hi": self.p_hi,
            "probes": [p.as_list() for p in self.probes],
            "audit": self.audit,
            "trials_used": self.trials_used,
            "trials_saved": self.trials_saved,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KEnsembleFrontier":
        return cls(
            k=int(data["k"]),
            status=str(data["status"]),
            phi_star=None if data["phi_star"] is None else float(data["phi_star"]),
            p_lo=float(data["p_lo"]),
            p_hi=float(data["p_hi"]),
            probes=[EnsembleProbe.from_list(p) for p in data["probes"]],
            audit=[dict(v) for v in data["audit"]],
            trials_used=int(data["trials_used"]),
            trials_saved=int(data["trials_saved"]),
        )


class EnsembleProbeEngine:
    """Sequential Bernoulli prober for one ``(instance, k)``.

    Mirrors :class:`repro.frontier._solver.ProbeEngine`: an exact-φ memo
    plus a regime memo shared across the instance's ks.  The regime memo
    is sound for trial outcomes, not just metric values: a φ-free regime
    produces the identical orientation, and trial draws never depend on
    φ, so the whole success sequence — and with it the sequential
    decision — is identical.
    """

    def __init__(self, ps, tree, tables, k: int, request, key: str,
                 instance_slot: int, cache: ArtifactCache,
                 regime_memo: "dict[tuple[str, int], EnsembleProbe] | None" = None):
        self._ps = ps
        self._tree = tree
        self._tables = tables
        self._cache = cache
        self.k = int(k)
        self.request = request
        self.key = key
        self.instance_slot = int(instance_slot)
        self._by_phi: dict[float, EnsembleProbe] = {}
        self._by_regime: dict[tuple[str, int], EnsembleProbe] = (
            regime_memo if regime_memo is not None else {}
        )
        self.probes: list[EnsembleProbe] = []
        self.trials_used = 0
        self.trials_saved = 0

    def _successes(self, result, trial_indices) -> np.ndarray:
        """Per-trial success indicators for the request's predicate."""
        request = self.request
        if request.predicate == "connectivity":
            m = measure_trials(
                self._ps, self._tables, result, request.perturbation,
                self.key, self.instance_slot, trial_indices,
                cache=self._cache, want_connectivity=True,
                mode=request.mode,
            )
            return m.connected
        metric = request.metric
        m = measure_trials(
            self._ps, self._tables, result, request.perturbation,
            self.key, self.instance_slot, trial_indices,
            cache=self._cache,
            want_connectivity=False,
            want_critical=metric == "critical_range",
            want_realized=metric == "realized_range",
            mode=request.mode,
        )
        if metric == "critical_range":
            values = m.critical
        elif metric == "realized_range":
            values = m.realized
        else:  # range_bound: analytic, identical for every trial
            values = np.full(len(list(trial_indices)), float(result.range_bound))
        return values <= request.target

    def _sequential(self, result) -> tuple[int, int, bool]:
        """Run trials in chunks until the Wilson interval decides.

        Returns ``(successes, trials_used, met)``.
        """
        request = self.request
        bound = request.threshold_probability
        budget = request.trials
        successes = used = 0
        while used < budget:
            take = min(request.chunk, budget - used)
            s = self._successes(result, range(used, used + take))
            successes += int(np.count_nonzero(s))
            used += take
            if request.early_stop and used < budget:
                lo, hi = wilson_interval(successes, used, request.confidence)
                if lo > bound:
                    return successes, used, True
                if hi < bound:
                    return successes, used, False
        return successes, used, successes / used >= bound

    def __call__(self, phi: float) -> EnsembleProbe:
        phi = float(phi)
        hit = self._by_phi.get(phi)
        if hit is not None:
            probe = EnsembleProbe(
                phi, hit.successes, hit.trials_used, hit.budget, hit.met,
                hit.algorithm, True,
            )
        else:
            if self.request.mode == "strong":
                algo, k_used = dispatch_regime(self.k, phi)
                regime = (algo, k_used)
                phi_free = algo in PHI_FREE_ALGORITHMS
            else:
                # Symmetric mode: feasibility of the bounded-angle MST flips
                # at max_v s*(v), so its trial outcomes are NOT φ-free and
                # the regime memo must never fire (the exact-φ memo above
                # still applies).
                algo, regime, phi_free = SYMMETRIC_ALGORITHM, None, False
            memo = self._by_regime.get(regime) if phi_free else None
            if memo is not None:
                probe = EnsembleProbe(
                    phi, memo.successes, memo.trials_used, memo.budget,
                    memo.met, algo, True,
                )
            else:
                result = orient_for_mode(
                    self._ps, self.k, phi, mode=self.request.mode,
                    tree=self._tree,
                )
                successes, used, met = self._sequential(result)
                saved = self.request.trials - used
                self.trials_used += used
                self.trials_saved += saved
                COUNTERS.ensemble_trials_saved += saved
                probe = EnsembleProbe(
                    phi, successes, used, self.request.trials, met, algo, False
                )
                if phi_free:
                    self._by_regime[regime] = probe
            self._by_phi[phi] = probe
        self.probes.append(probe)
        return probe


def _solve_prob_threshold(
    probe: Callable[[float], EnsembleProbe],
    lo: float,
    hi: float,
    tol: float,
) -> tuple[str, float | None, EnsembleProbe, EnsembleProbe]:
    """Bisect for the smallest φ whose probe meets the probability bound.

    The exact shape of the deterministic ``_solve_threshold``, with the
    Bernoulli decision in place of the metric comparison.  Invariant:
    ``lo`` fails, ``hi`` meets.
    """
    p_lo = probe(lo)
    if p_lo.met:
        return "below_lo", lo, p_lo, p_lo
    p_hi = probe(hi)
    if not p_hi.met:
        return "unattained", None, p_lo, p_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if not lo < mid < hi:  # tol below float resolution of the interval
            break
        if probe(mid).met:
            hi = mid
        else:
            lo = mid
    return "located", hi, p_lo, p_hi


def monotonicity_audit(
    probes: list[EnsembleProbe], confidence: float
) -> list[dict[str, float]]:
    """Wilson-overlap check of ``P(success)`` being nondecreasing in φ.

    A violation is a probe pair ``φ_i < φ_j`` whose intervals are
    disjoint the wrong way around: the *lower* φ's Wilson lower bound
    exceeds the *higher* φ's upper bound.  With common random numbers
    across probes this should essentially never fire; when it does, the
    bisection's bracketing invariant is unsound for this instance and the
    ledgered frontier carries the evidence.
    """
    unique: dict[float, EnsembleProbe] = {}
    for p in probes:
        unique.setdefault(p.phi, p)
    ordered = [unique[phi] for phi in sorted(unique)]
    violations: list[dict[str, float]] = []
    for i, low in enumerate(ordered):
        lo_i, _ = low.interval(confidence)
        for high in ordered[i + 1:]:
            _, hi_j = high.interval(confidence)
            if lo_i > hi_j:
                violations.append(
                    {
                        "phi_low": low.phi,
                        "phi_high": high.phi,
                        "lower_bound_low_phi": lo_i,
                        "upper_bound_high_phi": hi_j,
                    }
                )
    return violations


def solve_instance_ensemble(
    coords: np.ndarray,
    request,
    key: str,
    instance_slot: int,
    *,
    cache: ArtifactCache | None = None,
) -> tuple[list[KEnsembleFrontier], dict[str, float]]:
    """Solve the probabilistic frontier of one instance at every ``k``.

    Returns one :class:`KEnsembleFrontier` per ``k`` (in request order)
    and the instance facts — the ensemble twin of
    :func:`repro.frontier._solver.solve_instance_frontier`.
    """
    cache = cache if cache is not None else ArtifactCache()
    ps, tree, tables, facts = instance_artifacts(cache, coords)
    frontiers: list[KEnsembleFrontier] = []
    regime_memo: dict[tuple[str, int], EnsembleProbe] = {}  # shared across ks
    for k in request.ks:
        engine = EnsembleProbeEngine(
            ps, tree, tables, k, request, key, instance_slot, cache,
            regime_memo=regime_memo,
        )
        status, phi_star, p_lo, p_hi = _solve_prob_threshold(
            engine, request.phi_lo, request.phi_hi, request.tol
        )
        frontiers.append(
            KEnsembleFrontier(
                k=int(k),
                status=status,
                phi_star=phi_star,
                p_lo=p_lo.p_hat,
                p_hi=p_hi.p_hat,
                probes=engine.probes,
                audit=monotonicity_audit(engine.probes, request.confidence),
                trials_used=engine.trials_used,
                trials_saved=engine.trials_saved,
            )
        )
    return frontiers, facts
