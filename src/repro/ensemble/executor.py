"""Durable, shardable executor for :class:`~repro.ensemble.spec.EnsembleRequest`.

Runs on the same durable skeleton as the sweep and frontier executors
(:func:`repro.engine.executor._execute_durable`), with the ensemble's own
slot layout:

* **curve mode** — one slot per ``(instance, trial chunk)``
  (``slot = instance_slot · n_chunks + chunk_index``), so a kill lands
  between trial chunks and a resume replays completed chunks with zero
  kernel re-execution.  A slot's unit of work measures *every* grid cell
  over its chunk of trials — one packed coverage launch per cell.
* **threshold mode** — one slot per instance; a slot solves the
  probabilistic φ-frontier at every requested ``k``
  (:func:`repro.ensemble.solver.solve_instance_ensemble`).

Trial randomness is keyed by ``(plan fingerprint, instance slot, trial
index)``, so serial, parallel, sharded-and-merged and resumed runs are
all bit-identical — the same guarantee the deterministic executors make,
extended to Monte-Carlo draws.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.symmetric import orient_for_mode
from repro.engine.cache import ArtifactCache, CacheStats
from repro.engine.executor import (
    InstanceReport,
    _execute_durable,
    _report,
    _tombstone_check,
    instance_artifacts,
)
from repro.engine._spec import Shard
from repro.ensemble.solver import (
    KEnsembleFrontier,
    solve_instance_ensemble,
    wilson_interval,
)
from repro.ensemble.spec import EnsembleRequest
from repro.ensemble.trials import measure_trials
from repro.kernels.backend import resolve_backend, use_backend

__all__ = [
    "EnsembleOutcome",
    "EnsembleBatch",
    "execute_ensemble",
    "assemble_ensemble",
]


@dataclass(frozen=True)
class EnsembleOutcome:
    """One ledgered slot's results.

    ``results`` holds one dict per grid cell (curve mode — the slot is one
    trial chunk) or one :meth:`KEnsembleFrontier.as_dict` per ``k``
    (threshold mode — the slot is one whole instance).
    """

    slot: int
    scenario_index: int
    instance_index: int
    results: list[dict[str, Any]]


#: One unit of work: (slot, scenario_index, instance_index, coords).
_Task = tuple[int, int, int, Any]

#: One completed unit: (per-cell or per-k result dicts, facts, elapsed,
#: cache delta, backend name).
_Payload = tuple[list[dict], dict[str, float], float, dict[str, int], str]


def _run_task(
    slot: int,
    coords,
    request: EnsembleRequest,
    key: str,
    cache: ArtifactCache,
    backend_name: str,
    orient_memo: dict,
) -> _Payload:
    before = cache.stats.as_dict()
    t0 = time.perf_counter()
    if request.objective == "threshold":
        frontiers, facts = solve_instance_ensemble(
            coords, request, key, slot, cache=cache
        )
        results = [f.as_dict() for f in frontiers]
    else:
        instance_slot, chunk_index = divmod(slot, request.n_chunks)
        ps, tree, tables, facts = instance_artifacts(cache, coords)
        trial_indices = request.chunk_trials(chunk_index)
        results = []
        for ci, cell in enumerate(request.grid):
            memo_key = (instance_slot, ci)
            result = orient_memo.get(memo_key)
            if result is None:
                result = orient_for_mode(
                    ps, cell.k, cell.phi, mode=request.mode, tree=tree
                )
                orient_memo[memo_key] = result
            m = measure_trials(
                ps, tables, result, request.perturbation, key, instance_slot,
                trial_indices, cache=cache, want_connectivity=True,
                want_critical=request.compute_critical, mode=request.mode,
            )
            results.append(
                {
                    "successes": int(m.connected.sum()),
                    "trials": len(trial_indices),
                    "critical": (
                        None
                        if m.critical is None
                        else [float(x) for x in m.critical]
                    ),
                }
            )
    dt = time.perf_counter() - t0
    after = cache.stats.as_dict()
    delta = {k: after[k] - before[k] for k in after}
    return results, facts, dt, delta, backend_name


def _run_chunk(
    chunk: list[_Task],
    request: EnsembleRequest,
    key: str,
    backend_name: str,
    cache: ArtifactCache | None = None,
) -> list[tuple[int, _Payload]]:
    """Worker entry point: run a chunk of slots with a local cache.

    The orientation memo is chunk-scoped: consecutive slots of the same
    instance (its trial chunks are adjacent in slot space) reuse the
    deterministic orientation instead of re-running the planner.
    """
    cache = cache if cache is not None else ArtifactCache()
    orient_memo: dict = {}
    with use_backend(backend_name):
        return [
            (slot, _run_task(slot, coords, request, key, cache, backend_name,
                             orient_memo))
            for slot, _si, _ii, coords in chunk
        ]


def _iter_chunk_serial(
    chunk: list[_Task],
    request: EnsembleRequest,
    key: str,
    backend_name: str,
    cache: ArtifactCache,
):
    """Serial twin of :func:`_run_chunk`, yielding per slot so the durable
    skeleton checkpoints every trial chunk as it completes."""
    orient_memo: dict = {}
    with use_backend(backend_name):
        for slot, _si, _ii, coords in chunk:
            yield slot, _run_task(
                slot, coords, request, key, cache, backend_name, orient_memo
            )


def _chunk_quantile(values: list[float], q: float) -> float:
    """Deterministic order statistic: smallest value with CDF ≥ q."""
    ordered = sorted(values)
    idx = max(0, math.ceil(q * len(ordered)) - 1)
    return float(ordered[idx])


@dataclass
class EnsembleBatch:
    """All ledgered slots of an ensemble request, in deterministic order."""

    request: EnsembleRequest
    outcomes: list[EnsembleOutcome]
    instance_reports: list[InstanceReport]
    cache_stats: CacheStats
    jobs_used: int
    elapsed: float
    fallback_reason: str | None = None
    replayed_instances: int = 0
    shard: Shard = field(default_factory=Shard)
    backend: str | None = None

    def frontiers(self) -> "list[tuple[EnsembleOutcome, list[KEnsembleFrontier]]]":
        """Threshold-mode outcomes with their parsed per-k frontiers."""
        return [
            (o, [KEnsembleFrontier.from_dict(d) for d in o.results])
            for o in self.outcomes
        ]

    def trial_totals(self) -> tuple[int, int]:
        """``(trials evaluated, trials saved by early stopping)``."""
        used = saved = 0
        if self.request.objective == "curve":
            for o in self.outcomes:
                used += sum(r["trials"] for r in o.results)
        else:
            for o in self.outcomes:
                for d in o.results:
                    used += int(d["trials_used"])
                    saved += int(d["trials_saved"])
        return used, saved

    def aggregate_rows(self) -> list[dict[str, Any]]:
        """Curve mode: one row per (scenario, grid cell) — the connection
        probability with its Wilson interval and the critical-range
        quantile pooled over every instance and trial chunk present.
        Threshold mode: one row per (scenario, k) — where φ* landed, with
        trial and audit accounting."""
        if self.request.objective == "curve":
            return self._aggregate_curve()
        return self._aggregate_threshold()

    def _aggregate_curve(self) -> list[dict[str, Any]]:
        request = self.request
        buckets: dict[tuple[int, int], dict[str, Any]] = {}
        for o in self.outcomes:  # plan order: pooled lists are deterministic
            islot = o.slot // request.n_chunks
            for ci, res in enumerate(o.results):
                b = buckets.setdefault(
                    (o.scenario_index, ci),
                    {"successes": 0, "trials": 0, "critical": [], "slots": set()},
                )
                b["successes"] += int(res["successes"])
                b["trials"] += int(res["trials"])
                if res["critical"] is not None:
                    b["critical"].extend(float(x) for x in res["critical"])
                b["slots"].add(islot)
        rows: list[dict[str, Any]] = []
        for si, ci in sorted(buckets):
            scenario = request.scenarios[si]
            cell = request.grid[ci]
            b = buckets[(si, ci)]
            lo, hi = wilson_interval(
                b["successes"], b["trials"], request.confidence
            )
            row: dict[str, Any] = {
                "workload": scenario.workload,
                "n": scenario.n,
                "k": cell.k,
                "phi": cell.phi,
                "runs": len(b["slots"]),
                "trials": b["trials"],
                "p_connected": (
                    b["successes"] / b["trials"] if b["trials"] else None
                ),
                "p_lo": lo,
                "p_hi": hi,
            }
            if b["critical"]:
                row[f"critical_q{request.quantile:g}"] = _chunk_quantile(
                    b["critical"], request.quantile
                )
            rows.append(row)
        return rows

    def _aggregate_threshold(self) -> list[dict[str, Any]]:
        request = self.request
        buckets: dict[tuple[int, int], list[KEnsembleFrontier]] = {}
        for o, frontiers in self.frontiers():
            for ki, f in enumerate(frontiers):
                buckets.setdefault((o.scenario_index, ki), []).append(f)
        rows: list[dict[str, Any]] = []
        for si, ki in sorted(buckets):
            scenario = request.scenarios[si]
            fs = buckets[(si, ki)]
            stars = [f.phi_star for f in fs if f.phi_star is not None]
            row: dict[str, Any] = {
                "workload": scenario.workload,
                "n": scenario.n,
                "k": request.ks[ki],
                "predicate": request.predicate,
                "bound": request.threshold_probability,
                "runs": len(fs),
                "found": len(stars),
                "phi_star_mean": sum(stars) / len(stars) if stars else None,
                "phi_star_min": min(stars) if stars else None,
                "phi_star_max": max(stars) if stars else None,
                "probes": sum(f.probe_count for f in fs),
                "evaluated": sum(f.evaluated_count for f in fs),
                "reused": sum(f.reused_count for f in fs),
                "trials": sum(f.trials_used for f in fs),
                "trials_saved": sum(f.trials_saved for f in fs),
                "audit_violations": sum(len(f.audit) for f in fs),
            }
            if request.predicate == "quantile":
                row["metric"] = request.metric
                row["target"] = request.target
            rows.append(row)
        return rows

    def summary(self) -> str:
        mode = f"{self.jobs_used} workers" if self.jobs_used > 1 else "serial"
        used, saved = self.trial_totals()
        if self.request.objective == "curve":
            head = (
                f"{len(self.outcomes)} trial chunks × "
                f"{len(self.request.grid)} cells: {used} trials "
                f"({self.request.perturbation.label()})"
            )
        else:
            head = (
                f"{len(self.outcomes)} instances × "
                f"k∈{list(self.request.ks)}: {used} trials "
                f"({saved} saved by early stopping)"
            )
        parts = [head]
        if not self.shard.is_whole:
            parts.append(f"shard {self.shard.label}")
        if self.replayed_instances:
            parts.append(f"{self.replayed_instances} slots from ledger")
        return f"{'; '.join(parts)} ({mode}, {self.elapsed:.2f}s)"


def _expected_payload(request: EnsembleRequest) -> int:
    return len(request.grid) if request.objective == "curve" else len(request.ks)


def execute_ensemble(
    request: EnsembleRequest,
    *,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    on_instance: Callable[[InstanceReport], None] | None = None,
    store: Any = None,
    shard: "Shard | tuple[int, int] | None" = None,
    resume: bool = False,
    backend: str | None = None,
) -> EnsembleBatch:
    """Run every slot of ``request`` (curve chunks or threshold instances).

    The parameters mirror :func:`repro.engine.execute_plan` /
    :func:`repro.frontier.execute_frontier`: ``jobs`` for process-pool
    fan-out (serial fallback recorded in ``fallback_reason``),
    ``store``/``shard``/``resume`` for durable, partitioned, replayable
    execution, ``backend`` for kernel selection.  Results reassemble in
    slot order, so serial, parallel, sharded-and-merged and resumed runs
    are all bit-identical — including every Monte-Carlo draw.
    """
    t_start = time.perf_counter()
    backend_name = resolve_backend(backend or request.backend).name
    shard = Shard.of(shard)
    key = request.fingerprint()
    if request.objective == "curve":
        n_chunks = request.n_chunks
        all_tasks: list[_Task] = [
            (islot * n_chunks + c, si, ii, coords)
            for islot, (si, ii, coords) in enumerate(request.instances())
            for c in range(n_chunks)
        ]
    else:
        all_tasks = [
            (islot, si, ii, coords)
            for islot, (si, ii, coords) in enumerate(request.instances())
        ]
    expected = _expected_payload(request)

    def payload_of_row(slot: int, row: Any) -> _Payload:
        from repro.store.ledger import StoreError  # lazy: avoids cycle

        if len(row.results) != expected:
            raise StoreError(
                f"ledger row for slot {slot} has {len(row.results)} result "
                f"payloads, request expects {expected}"
            )
        return (
            list(row.results),
            dict(row.facts),
            row.elapsed,
            row.cache,
            getattr(row, "backend", "numpy"),
        )

    def row_of_payload(slot: int, si: int, ii: int, payload: _Payload) -> Any:
        from repro.store.ledger import EnsembleRow  # lazy: avoids cycle

        results, facts, dt, delta, row_backend = payload
        return EnsembleRow(
            slot=slot,
            scenario_index=si,
            instance_index=ii,
            elapsed=dt,
            facts=facts,
            results=results,
            cache=delta,
            backend=row_backend,
            mode=request.mode,
        )

    payloads, replayed, jobs_used, fallback_reason, ledger = _execute_durable(
        request, all_tasks, shard,
        jobs=jobs, cache=cache, on_instance=on_instance,
        store=store, resume=resume,
        run_chunk_serial=lambda chunk, c: _iter_chunk_serial(
            chunk, request, key, backend_name, c
        ),
        submit_chunk=lambda pool, chunk: pool.submit(
            _run_chunk, chunk, request, key, backend_name
        ),
        rows_for_resume=lambda s, k: s.load_ensemble_rows(k),
        payload_of_row=payload_of_row,
        row_of_payload=row_of_payload,
        should_stop=_tombstone_check(store, request),
    )

    outcomes: list[EnsembleOutcome] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    for slot, si, ii, _coords in all_tasks:
        if not shard.owns(slot):
            continue
        payload = payloads.get(slot)
        assert payload is not None, f"missing result for task slot {slot}"
        results, facts, dt, delta, _row_backend = payload
        outcomes.append(EnsembleOutcome(slot, si, ii, results))
        reports.append(_report(si, ii, facts, dt))
        stats.merge(CacheStats.from_dict(delta))
    elapsed = time.perf_counter() - t_start
    if ledger is not None:
        ledger.finish(stats, elapsed)
        ledger.close()
    return EnsembleBatch(
        request=request,
        outcomes=outcomes,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=jobs_used,
        elapsed=elapsed,
        fallback_reason=fallback_reason,
        replayed_instances=replayed,
        shard=shard,
        backend=backend_name,
    )


def assemble_ensemble(
    request: EnsembleRequest,
    rows: dict[int, Any],
    *,
    allow_partial: bool = False,
) -> EnsembleBatch:
    """Reconstruct an :class:`EnsembleBatch` purely from ledger rows.

    The ensemble twin of :func:`repro.store.assemble_batch` /
    :func:`repro.frontier.assemble_frontier`: outcomes come back in slot
    order, so aggregate tables are bit-identical to an in-process
    :func:`execute_ensemble` of the same request.
    """
    from repro.store.ledger import StoreError  # lazy: avoids cycle

    expected_slots = request.total_slots
    expected = _expected_payload(request)
    missing = [slot for slot in range(expected_slots) if slot not in rows]
    if missing and not allow_partial:
        raise StoreError(
            f"ledger covers {expected_slots - len(missing)}/{expected_slots} "
            f"slots (first missing plan slot: {missing[0]}); run the "
            "remaining shards or pass allow_partial"
        )
    outcomes: list[EnsembleOutcome] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    elapsed = 0.0
    for slot in sorted(rows):
        row = rows[slot]
        if not 0 <= row.slot < expected_slots:
            raise StoreError(f"ledger row slot {row.slot} outside the plan")
        if len(row.results) != expected:
            raise StoreError(
                f"ledger row for slot {row.slot} has {len(row.results)} "
                f"result payloads, request expects {expected}"
            )
        outcomes.append(
            EnsembleOutcome(
                row.slot, row.scenario_index, row.instance_index,
                list(row.results),
            )
        )
        reports.append(row.report())
        stats.merge(CacheStats.from_dict(row.cache))
        elapsed += row.elapsed
    return EnsembleBatch(
        request=request,
        outcomes=outcomes,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=1,
        elapsed=elapsed,
        replayed_instances=len(rows),
    )
