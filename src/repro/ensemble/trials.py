"""Batched Monte-Carlo trial measurement over cached geometry.

A trial never rebuilds geometry: it is a *mask and rescale* of the
instance's cached polar tables.

* **Dense path** — the instance's ``(n, n)`` :class:`PolarTables` are
  broadcast (zero-copy) into a trials-as-instances
  :class:`~repro.kernels.batch.PackedPolarTables`, so a whole chunk of
  trials costs ONE :func:`~repro.kernels.batch.packed_coverage` launch
  (plus one ``ignore_radius`` launch when the critical range is wanted),
  one :func:`~repro.kernels.batch.packed_strongly_connected` launch and
  one :func:`~repro.kernels.batch.packed_critical` launch — no extra trig,
  no per-trial Python coverage loops.
* **Sparse path** — the cached radius-bounded
  :class:`~repro.kernels.sparse.SparsePolarTables` serve every trial
  through :func:`~repro.kernels.sparse.sparse_trial_coverage` (again one
  coverage launch per chunk); per-trial connectivity/critical run on the
  masked candidate arrays.  Fading can push the needed candidate radius
  past the cached ``r_cut``; the chunk then widens the cutoff through the
  shared :class:`~repro.engine.cache.ArtifactCache` and re-derives itself
  — results are *certified*, never silently truncated, mirroring
  :func:`repro.kernels.sparse.sparse_metrics`.

Randomness is drawn from counter-based streams keyed by
``(run key, instance slot, trial index)`` — see :func:`draw_trials` — and
edge failures from the random-access table
:func:`repro.utils.rng.indexed_uniforms` keyed by the directed pair id
``u·n + v``.  The dense path evaluates all ``n²`` pair ids and the sparse
path only the candidate ids, yet both see identical draws, so backend
routing, sharding, resume order and cutoff widening never change a trial's
outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.backend import active_backend
from repro.kernels.batch import PackedPolarTables
from repro.kernels.connectivity import (
    strongly_connected_edges,
    symmetric_connected_edges,
)
from repro.kernels.critical import (
    critical_range_search,
    symmetric_critical_range_search,
)
from repro.kernels.instrument import COUNTERS
from repro.kernels.sparse import (
    SparsePolarTables,
    complete_cutoff,
    required_cutoff,
    sparse_trial_coverage,
)
from repro.utils.rng import counter_rng, indexed_uniforms, stable_seed

__all__ = ["TrialDraws", "TrialMeasurements", "draw_trials", "measure_trials"]

_TWO_PI = 2.0 * np.pi


@dataclass
class TrialDraws:
    """The random state of a chunk of trials (``None`` = perturbation off).

    Shapes are ``(T, n)`` over trials × sensors.  ``edge_seeds`` holds one
    :func:`~repro.utils.rng.indexed_uniforms` seed per trial; the failure
    draw of directed pair ``(u, v)`` lives at index ``u·n + v`` of that
    trial's virtual table, independent of which pairs ever get evaluated.
    """

    rotation: np.ndarray | None
    fade: np.ndarray | None
    alive: np.ndarray | None
    edge_seeds: np.ndarray


def draw_trials(key: str, instance_slot: int, trial_indices, n: int, pert) -> TrialDraws:
    """Materialize the perturbation draws of the given global trial indices.

    Per trial, the draw order within the stream
    ``counter_rng(key, slot, trial)`` is fixed: rotation uniforms (n), fade
    normals (n), knockout uniforms (n) — each drawn only when its
    perturbation is active, which is deterministic because the
    perturbation is part of the fingerprinted request identity.
    """
    trial_indices = [int(t) for t in trial_indices]
    count = len(trial_indices)
    rotation = np.zeros((count, n)) if pert.rotate else None
    fade = np.ones((count, n)) if pert.fade_sigma > 0.0 else None
    alive = np.ones((count, n), dtype=bool) if pert.node_fail > 0.0 else None
    edge_seeds = np.zeros(count, dtype=np.uint64)
    for j, t in enumerate(trial_indices):
        rng = counter_rng(key, int(instance_slot), t)
        if rotation is not None:
            rotation[j] = rng.uniform(0.0, _TWO_PI, n)
        if fade is not None:
            fade[j] = np.exp(pert.fade_sigma * rng.standard_normal(n))
        if alive is not None:
            alive[j] = rng.uniform(size=n) >= pert.node_fail
        edge_seeds[j] = np.uint64(stable_seed(key, int(instance_slot), t, "edges"))
    return TrialDraws(rotation, fade, alive, edge_seeds)


@dataclass
class TrialMeasurements:
    """Per-trial observables of one chunk (``None`` = not requested).

    ``critical`` and ``realized`` are in lmax units — the same
    normalization :class:`~repro.analysis.metrics.OrientationMetrics`
    reports and :class:`~repro.engine._spec.FrontierRequest` targets use,
    so ensemble quantile targets are directly comparable to deterministic
    frontier targets.  ``critical`` is ``inf`` when a trial's surviving
    network is deficient at every radius.
    """

    connected: np.ndarray | None
    critical: np.ndarray | None
    realized: np.ndarray | None


def _edge_fail_keep(seed: np.uint64, ids: np.ndarray, edge_fail: float) -> np.ndarray:
    """Survival mask of the directed pair ids for one trial."""
    return indexed_uniforms(seed, ids) >= edge_fail


def _alive_permutation(alive: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(perm, counts)`` compacting each trial's alive sensors to the front.

    A stable argsort of ``~alive`` keeps alive sensors in index order, so
    the compacted block is a relabeling the packed connectivity/critical
    kernels (which assume vertices ``0..counts-1``) can consume directly.
    """
    perm = np.argsort(~alive, axis=1, kind="stable")
    counts = alive.sum(axis=1).astype(np.int64)
    return perm, counts


def _realized_ranges(result, draws: TrialDraws, count: int) -> np.ndarray:
    """Per-trial realized range (lmax units): the nominal uniform radius at
    which every intended edge works despite the fading — knockouts and edge
    failures do not change what the construction *intended* to build."""
    edges = result.intended_edges
    if edges.size == 0 or count == 0:
        return np.zeros(count)
    c = result.points.coords
    diff = c[edges[:, 0]] - c[edges[:, 1]]
    d = np.hypot(diff[:, 0], diff[:, 1])
    if draws.fade is not None:
        required = (d[None, :] / draws.fade[:, edges[:, 0]]).max(axis=1)
    else:
        required = np.full(count, float(d.max()))
    if result.lmax > 0:
        required = required / result.lmax
    return required


def measure_trials(
    ps,
    tables,
    result,
    pert,
    key: str,
    instance_slot: int,
    trial_indices,
    *,
    cache=None,
    want_connectivity: bool = True,
    want_critical: bool = False,
    want_realized: bool = False,
    eps: float = 1e-9,
    mode: str = "strong",
) -> TrialMeasurements:
    """Measure one chunk of trials of one oriented instance.

    ``tables`` is the instance's cached dense :class:`PolarTables` or
    sparse :class:`SparsePolarTables` (whichever
    :func:`~repro.engine.executor.instance_artifacts` returned); ``result``
    is the deterministic :class:`~repro.core.result.OrientationResult` the
    perturbation is applied to.  ``cache`` is required on the sparse path
    when fading may widen the candidate cutoff.  ``mode`` selects the
    per-trial connectivity objective; under ``"symmetric"`` a link works
    only when both directions survive the perturbation, so fading (which
    skews the two directions' effective distances apart) is judged at the
    pair's *worse* direction.
    """
    trial_list = [int(t) for t in trial_indices]
    count = len(trial_list)
    n = len(ps)
    COUNTERS.ensemble_trials += count
    draws = draw_trials(key, instance_slot, trial_list, n, pert)
    realized = _realized_ranges(result, draws, count) if want_realized else None
    if count == 0 or not (want_connectivity or want_critical):
        empty = np.zeros(count, dtype=bool) if want_connectivity else None
        crit = np.zeros(count) if want_critical else None
        return TrialMeasurements(empty, crit, realized)

    sensor_idx, start, spread, radius = result.assignment.flattened()
    if draws.rotation is not None:
        start_t = np.mod(start[None, :] + draws.rotation[:, sensor_idx], _TWO_PI)
    else:
        start_t = np.broadcast_to(start, (count, start.shape[0]))
    if draws.fade is not None:
        radius_t = radius[None, :] * draws.fade[:, sensor_idx]
    else:
        radius_t = np.broadcast_to(radius, (count, radius.shape[0]))

    if isinstance(tables, SparsePolarTables):
        connected, critical = _measure_sparse(
            ps, tables, pert, draws, sensor_idx, start_t, spread, radius_t,
            cache=cache, want_connectivity=want_connectivity,
            want_critical=want_critical, eps=eps, mode=mode,
        )
    else:
        connected, critical = _measure_dense(
            tables, pert, draws, sensor_idx, start_t, spread, radius_t,
            want_connectivity=want_connectivity, want_critical=want_critical,
            eps=eps, mode=mode,
        )
    if critical is not None and result.lmax > 0:
        critical = critical / result.lmax
    return TrialMeasurements(connected, critical, realized)


# -- dense path ------------------------------------------------------------


def _measure_dense(
    tables, pert, draws, sensor_idx, start_t, spread, radius_t,
    *, want_connectivity, want_critical, eps, mode="strong",
):
    count, n = start_t.shape[0], tables.dist.shape[0]
    antennae = sensor_idx.shape[0]
    backend = active_backend()
    # Zero-copy trials-as-instances packing: every "instance" of the packed
    # chunk is a broadcast view of the same cached tables.
    packed = PackedPolarTables(
        np.broadcast_to(tables.dist, (count, n, n)),
        np.broadcast_to(tables.ang, (count, n, n)),
        np.full(count, n, dtype=np.int64),
    )
    inst_idx = np.repeat(np.arange(count, dtype=np.int64), antennae)
    sensor_f = np.tile(sensor_idx, count)
    spread_f = np.tile(spread, count)
    start_f = np.ascontiguousarray(start_t).ravel()
    radius_f = np.ascontiguousarray(radius_t).ravel()

    cover = backend.packed_coverage(
        packed, inst_idx, sensor_f, start_f, spread_f, radius_f, eps=eps
    )
    cover_ang = None
    if want_critical:
        cover_ang = backend.packed_coverage(
            packed, inst_idx, sensor_f, start_f, spread_f, radius_f,
            eps=eps, ignore_radius=True,
        )
    if pert.edge_fail > 0.0:
        ids = np.arange(n, dtype=np.uint64)[:, None] * np.uint64(n) + np.arange(
            n, dtype=np.uint64
        )
        for j in range(count):
            keep = _edge_fail_keep(draws.edge_seeds[j], ids, pert.edge_fail)
            cover[j] &= keep
            if cover_ang is not None:
                cover_ang[j] &= keep
    if draws.alive is not None:
        pair_alive = draws.alive[:, :, None] & draws.alive[:, None, :]
        cover &= pair_alive
        if cover_ang is not None:
            cover_ang &= pair_alive

    if draws.alive is not None:
        perm, counts = _alive_permutation(draws.alive)
        ti = np.arange(count)[:, None, None]
        rows = perm[:, :, None]
        cols = perm[:, None, :]
        cover = cover[ti, rows, cols]
        if cover_ang is not None:
            cover_ang = cover_ang[ti, rows, cols]
    else:
        counts = packed.counts

    if not want_connectivity:
        connected = None
    elif mode == "symmetric":
        connected = backend.packed_symmetric_connected(cover, counts)
    else:
        connected = backend.packed_strongly_connected(cover, counts)
    critical = None
    if want_critical:
        if draws.fade is not None:
            dist_eff = tables.dist[None, :, :] / draws.fade[:, :, None]
            if mode == "symmetric":
                # A symmetric link needs BOTH directions under the radius;
                # fading makes the two effective distances differ, so the
                # pair is judged at the worse one.  Without fading the
                # matrix is already symmetric and this branch never runs.
                dist_eff = np.maximum(dist_eff, dist_eff.swapaxes(1, 2))
        else:
            dist_eff = np.broadcast_to(tables.dist, (count, n, n))
        if draws.alive is not None:
            dist_eff = dist_eff[
                np.arange(count)[:, None, None], perm[:, :, None], perm[:, None, :]
            ]
        eff = PackedPolarTables(dist_eff, dist_eff, counts)
        if mode == "symmetric":
            critical = backend.packed_symmetric_critical(eff, cover_ang, eps=eps)
        else:
            critical = backend.packed_critical(eff, cover_ang, eps=eps)
    return connected, critical


# -- sparse path -----------------------------------------------------------


def _pair_max_dists(n: int, src, dst, dists) -> np.ndarray:
    """Per-directed-edge max of its own and its reverse edge's distance.

    Edges whose reverse is absent keep their own distance (they are dropped
    by the mutual filter downstream anyway).  Same packed-key pairing as
    :func:`~repro.kernels.connectivity.mutual_mask`.
    """
    if src.shape[0] == 0:
        return np.asarray(dists, dtype=float)
    key = src.astype(np.int64) * np.int64(n) + dst.astype(np.int64)
    rkey = dst.astype(np.int64) * np.int64(n) + src.astype(np.int64)
    order = np.argsort(key, kind="stable")
    skey = key[order]
    pos = np.searchsorted(skey, rkey)
    pos[pos == skey.shape[0]] = 0  # any in-range slot; equality check decides
    has = skey[pos] == rkey
    out = np.asarray(dists, dtype=float).copy()
    out[has] = np.maximum(out[has], out[order[pos[has]]])
    return out


def _measure_sparse(
    ps, tables, pert, draws, sensor_idx, start_t, spread, radius_t,
    *, cache, want_connectivity, want_critical, eps, mode="strong",
):
    count, n = start_t.shape[0], tables.n
    antennae = sensor_idx.shape[0]
    cap = complete_cutoff(ps.coords, eps)
    finite_r = radius_t[np.isfinite(radius_t)]
    need = required_cutoff(float(finite_r.max()), eps) if finite_r.size else 0.0
    tables = _widen(ps, tables, min(max(need, tables.r_cut), cap), cache)

    tid = np.repeat(np.arange(count, dtype=np.int64), antennae)
    sensor_f = np.tile(sensor_idx, count)
    spread_f = np.tile(spread, count)

    while True:
        start_f = np.ascontiguousarray(start_t).ravel()
        radius_f = np.ascontiguousarray(radius_t).ravel()
        cov = sparse_trial_coverage(
            tables, tid, sensor_f, start_f, spread_f, radius_f,
            trials=count, eps=eps,
        )
        cov_ang = None
        if want_critical:
            cov_ang = sparse_trial_coverage(
                tables, tid, sensor_f, start_f, spread_f, radius_f,
                trials=count, eps=eps, ignore_radius=True,
            )
        ids = (
            tables.src.astype(np.uint64) * np.uint64(n)
            + tables.indices.astype(np.uint64)
        )
        if pert.edge_fail > 0.0:
            for j in range(count):
                keep = _edge_fail_keep(draws.edge_seeds[j], ids, pert.edge_fail)
                cov[j] &= keep
                if cov_ang is not None:
                    cov_ang[j] &= keep
        if draws.alive is not None:
            pair_alive = draws.alive[:, tables.src] & draws.alive[:, tables.indices]
            cov &= pair_alive
            if cov_ang is not None:
                cov_ang &= pair_alive

        connected = np.zeros(count, dtype=bool) if want_connectivity else None
        critical = np.zeros(count) if want_critical else None
        widen_to = None
        for j in range(count):
            if draws.alive is not None:
                alive_j = draws.alive[j]
                n_eff = int(alive_j.sum())
                relabel = np.cumsum(alive_j) - 1
            else:
                n_eff, relabel = n, None
            if connected is not None:
                mask = cov[j]
                src = tables.src[mask]
                dst = tables.indices[mask]
                if relabel is not None:
                    src, dst = relabel[src], relabel[dst]
                if n_eff <= 1:
                    connected[j] = True
                elif mode == "symmetric":
                    connected[j] = symmetric_connected_edges(n_eff, src, dst)
                else:
                    connected[j] = strongly_connected_edges(n_eff, src, dst)
            if critical is None:
                continue
            mask = cov_ang[j]
            src = tables.src[mask]
            dst = tables.indices[mask]
            dists = tables.dist[mask]
            fade_src = draws.fade[j, src] if draws.fade is not None else None
            if fade_src is not None:
                dists = dists / fade_src
                if mode == "symmetric":
                    # Judge each mutual pair at its worse direction (see
                    # measure_trials); pairing uses the pre-relabel ids.
                    dists = _pair_max_dists(n, src, dst, dists)
            if relabel is not None:
                src, dst = relabel[src], relabel[dst]
            if mode == "symmetric":
                value = symmetric_critical_range_search(
                    n_eff, np.column_stack([src, dst]), dists, eps=eps
                )
            else:
                value = critical_range_search(
                    n_eff, np.column_stack([src, dst]), dists, eps=eps
                )
            critical[j] = value
            # Certify: every edge the accepting dense probe could use has
            # physical length <= value * max fade, so the candidate set is
            # provably complete iff that radius fits under r_cut.
            if np.isfinite(value) and value > 0.0:
                fade_max = (
                    float(draws.fade[j].max()) if draws.fade is not None else 1.0
                )
                needed = required_cutoff(value * fade_max, eps)
                if needed > tables.r_cut and tables.r_cut < cap:
                    widen_to = max(widen_to or 0.0, needed)
        if widen_to is None:
            return connected, critical
        COUNTERS.rcut_widenings += 1
        tables = _widen(ps, tables, min(max(widen_to, 2.0 * tables.r_cut), cap), cache)


def _widen(ps, tables, r_cut: float, cache):
    """Fetch tables at a (possibly) wider cutoff through the shared cache."""
    if r_cut <= tables.r_cut:
        return tables
    if cache is None:
        from repro.kernels.sparse import sparse_polar_tables

        return sparse_polar_tables(ps.coords, r_cut)
    return cache.sparse_polar(ps, r_cut)
