"""Monte-Carlo ensemble layer: probabilistic frontiers over random
orientations and failures.

See :mod:`repro.ensemble.spec` for the request model,
:mod:`repro.ensemble.trials` for the batched trial kernels,
:mod:`repro.ensemble.solver` for the sequential Wilson-interval probe and
φ-bisection, and :mod:`repro.ensemble.executor` for durable execution.
Importing this package registers the ``"ensemble"`` request kind.
"""

from repro.ensemble.executor import (
    EnsembleBatch,
    EnsembleOutcome,
    assemble_ensemble,
    execute_ensemble,
)
from repro.ensemble.solver import (
    EnsembleProbe,
    KEnsembleFrontier,
    monotonicity_audit,
    solve_instance_ensemble,
    wilson_interval,
)
from repro.ensemble.spec import EnsembleRequest, Perturbation

__all__ = [
    "EnsembleRequest",
    "Perturbation",
    "EnsembleBatch",
    "EnsembleOutcome",
    "execute_ensemble",
    "assemble_ensemble",
    "EnsembleProbe",
    "KEnsembleFrontier",
    "monotonicity_audit",
    "solve_instance_ensemble",
    "wilson_interval",
]
