"""Monte-Carlo ensemble requests: perturbation models over a base plan.

An :class:`EnsembleRequest` wraps the deterministic scenario machinery with
a :class:`Perturbation` — random per-sensor orientation rotations, i.i.d.
edge failures (the Monte-Carlo generalization of
:mod:`repro.analysis.robustness`), node knockouts, log-normal range fading —
and a trial budget ``M``.  Two modes mirror the deterministic request kinds:

* **curve** mode (a ``grid`` of :class:`~repro.engine._spec.GridCell`):
  estimate ``P(strongly connected)`` and critical-range quantiles at every
  ``(instance, cell)`` over ``M`` trials — the probabilistic analogue of a
  sweep;
* **threshold** mode (``ks`` + a predicate): bisect φ for the smallest
  angular budget at which ``P(strongly connected) ≥ p_target`` or
  ``quantile_q(metric) ≤ target`` — the probabilistic analogue of a
  frontier, with Wilson-interval sequential early stopping per probe.

Determinism contract: every random draw of trial ``t`` of instance slot
``i`` comes from a counter-based stream keyed by
``(fingerprint, i, t)`` (see :func:`repro.utils.rng.counter_rng` /
:func:`~repro.utils.rng.indexed_uniforms`), so any shard split, resume
order or process count reproduces the serial run bit for bit.  The trial
key deliberately excludes the probe φ: threshold probes at different φ
share common random numbers, which keeps the empirical success curve
monotone in φ far below the sampling noise of independent draws.

The request registers itself in the shared wire/ledger registry on import;
:func:`repro.engine._spec.request_from_wire` imports this module lazily
when it meets an ``"ensemble"`` kind tag, so plan files and service
submissions round-trip with zero changes to ``repro serve`` / ``repro
worker``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.engine._spec import (
    _TWO_PI,
    FRONTIER_METRICS,
    GridCell,
    RequestBase,
    _clamp_phi,
    _scenario_from_dict,
    register_request_kind,
)
from repro.errors import InvalidParameterError

__all__ = ["Perturbation", "EnsembleRequest"]


def _probability(value: float, name: str) -> float:
    value = float(value)
    if not 0.0 <= value < 1.0:
        raise InvalidParameterError(
            f"{name} must be a probability in [0, 1), got {value}"
        )
    return value


@dataclass(frozen=True)
class Perturbation:
    """The per-trial random deployment model.

    Attributes
    ----------
    rotate:
        Rotate every sensor's whole antenna fan by an independent
        ``U[0, 2π)`` angle — the randomly-oriented deployment of the
        Georgiou et al. line, applied on top of the construction's
        relative antenna geometry.
    edge_fail:
        Probability each *directed* covered link fails independently
        (receiver-side interference/obstruction).
    node_fail:
        Probability each sensor is knocked out; connectivity and critical
        range are judged on the surviving subnetwork (knocking out all but
        ≤ 1 sensors leaves a trivially connected network).
    fade_sigma:
        σ of a per-sensor log-normal transmit-range fade: radii are scaled
        by ``exp(σ·Z)``, ``Z ~ N(0,1)`` (median-1 fading; σ = 0 disables).
    """

    rotate: bool = False
    edge_fail: float = 0.0
    node_fail: float = 0.0
    fade_sigma: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rotate", bool(self.rotate))
        object.__setattr__(
            self, "edge_fail", _probability(self.edge_fail, "edge_fail")
        )
        object.__setattr__(
            self, "node_fail", _probability(self.node_fail, "node_fail")
        )
        sigma = float(self.fade_sigma)
        if not (math.isfinite(sigma) and sigma >= 0.0):
            raise InvalidParameterError(
                f"fade_sigma must be finite and >= 0, got {sigma}"
            )
        object.__setattr__(self, "fade_sigma", sigma)

    @property
    def is_identity(self) -> bool:
        """No randomness: every trial reproduces the deterministic network."""
        return (
            not self.rotate
            and self.edge_fail == 0.0
            and self.node_fail == 0.0
            and self.fade_sigma == 0.0
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rotate": self.rotate,
            "edge_fail": self.edge_fail,
            "node_fail": self.node_fail,
            "fade_sigma": self.fade_sigma,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Perturbation":
        return cls(
            rotate=bool(data["rotate"]),
            edge_fail=float(data["edge_fail"]),
            node_fail=float(data["node_fail"]),
            fade_sigma=float(data["fade_sigma"]),
        )

    def label(self) -> str:
        parts = []
        if self.rotate:
            parts.append("rotate")
        if self.edge_fail:
            parts.append(f"edge_fail={self.edge_fail:g}")
        if self.node_fail:
            parts.append(f"node_fail={self.node_fail:g}")
        if self.fade_sigma:
            parts.append(f"fade={self.fade_sigma:g}")
        return "+".join(parts) if parts else "identity"


@register_request_kind
@dataclass(frozen=True)
class EnsembleRequest(RequestBase):
    """Scenarios × perturbation × M trials (curve or threshold mode).

    Exactly one of ``grid`` (curve mode) and ``ks`` (threshold mode) must
    be non-empty; threshold mode requires exactly one of ``p_target``
    (``P(strongly connected) ≥ p_target``) and ``target``
    (``quantile_q(metric) ≤ target``, metric in lmax units).

    Identity: *everything* that can change a ledgered row is part of the
    fingerprint — the perturbation parameters, ``trials``, the checkpoint
    ``chunk`` (it defines the slot layout), ``confidence`` and
    ``early_stop`` (they change which trials a threshold probe runs).
    ``backend`` stays excluded: backends are bit-exact.
    """

    grid: tuple[GridCell, ...] = ()
    ks: tuple[int, ...] = ()
    trials: int = 100
    chunk: int = 25
    perturbation: Perturbation = field(default_factory=Perturbation)
    metric: str = "critical_range"
    p_target: float | None = None
    quantile: float = 0.9
    target: float | None = None
    phi_lo: float = 0.0
    phi_hi: float = _TWO_PI
    tol: float = 1e-3
    confidence: float = 0.95
    early_stop: bool = True
    compute_critical: bool = True
    #: Connectivity objective trials are planned and judged under
    #: (``"strong"`` | ``"symmetric"``); part of the identity, serialized
    #: only when non-default so strong-mode fingerprints stay frozen.
    mode: str = "strong"
    #: Kernel backend to execute with; excluded from serialization and the
    #: fingerprint like :attr:`~repro.engine._spec.PlanRequest.backend`.
    backend: "str | None" = None

    KIND: ClassVar[str] = "ensemble"

    def __post_init__(self) -> None:
        self._init_base()
        object.__setattr__(self, "grid", tuple(self.grid))
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        if not isinstance(self.perturbation, Perturbation):
            object.__setattr__(
                self, "perturbation", Perturbation.from_dict(self.perturbation)
            )
        if bool(self.grid) == bool(self.ks):
            raise InvalidParameterError(
                "an EnsembleRequest needs exactly one of a (k, phi) grid "
                "(curve mode) or ks (threshold mode)"
            )
        if self.trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {self.trials}")
        if self.chunk < 1:
            raise InvalidParameterError(f"chunk must be >= 1, got {self.chunk}")
        if self.metric not in FRONTIER_METRICS:
            raise InvalidParameterError(
                f"unknown ensemble metric {self.metric!r}; "
                f"choose from {FRONTIER_METRICS}"
            )
        if not 0.0 < float(self.quantile) < 1.0:
            raise InvalidParameterError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        object.__setattr__(self, "quantile", float(self.quantile))
        if not 0.0 < float(self.confidence) < 1.0:
            raise InvalidParameterError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        object.__setattr__(self, "confidence", float(self.confidence))
        if self.p_target is not None:
            object.__setattr__(
                self, "p_target", _probability(self.p_target, "p_target")
            )
            if self.p_target == 0.0:
                raise InvalidParameterError("p_target must be > 0")
        if self.target is not None:
            target = float(self.target)
            if not math.isfinite(target):
                raise InvalidParameterError(f"target must be finite, got {target}")
            object.__setattr__(self, "target", target)
        if self.ks:
            if any(k < 1 for k in self.ks):
                raise InvalidParameterError(f"every k must be >= 1, got {self.ks}")
            if (self.p_target is None) == (self.target is None):
                raise InvalidParameterError(
                    "threshold mode needs exactly one of p_target "
                    "(P(strongly connected) >= p) or target "
                    "(quantile_q(metric) <= target)"
                )
            object.__setattr__(self, "phi_lo", _clamp_phi(self.phi_lo, "phi_lo"))
            object.__setattr__(self, "phi_hi", _clamp_phi(self.phi_hi, "phi_hi"))
            if not self.phi_lo < self.phi_hi:
                raise InvalidParameterError(
                    f"need phi_lo < phi_hi, got [{self.phi_lo}, {self.phi_hi}]"
                )
            if not 0.0 < self.tol < self.phi_hi - self.phi_lo:
                raise InvalidParameterError(
                    f"tol must be in (0, phi_hi - phi_lo), got {self.tol}"
                )
        else:
            if self.p_target is not None or self.target is not None:
                raise InvalidParameterError(
                    "p_target/target are threshold-mode options; curve mode "
                    "(a grid) estimates the full distribution instead"
                )

    # -- derived shape ----------------------------------------------------

    @property
    def objective(self) -> str:
        """``"curve"`` (grid given) or ``"threshold"`` (ks given).

        Renamed from ``mode`` when the connectivity-mode seam landed:
        ``mode`` now names the connectivity objective (strong/symmetric),
        matching the other request kinds.
        """
        return "curve" if self.grid else "threshold"

    @property
    def predicate(self) -> str:
        """Threshold mode's predicate: ``"connectivity"`` or ``"quantile"``."""
        return "connectivity" if self.p_target is not None else "quantile"

    @property
    def threshold_probability(self) -> float:
        """The success probability a threshold probe must clear.

        ``quantile_q(metric) ≤ target`` is exactly
        ``P(metric ≤ target) ≥ q``, so both predicates reduce to a
        Bernoulli success rate against one probability bound.
        """
        return self.p_target if self.p_target is not None else self.quantile

    @property
    def wants_critical(self) -> bool:
        """Do trials need the per-trial critical range?"""
        if self.objective == "curve":
            return self.compute_critical
        return self.predicate == "quantile" and self.metric == "critical_range"

    @property
    def n_chunks(self) -> int:
        """Trial chunks per (instance) in curve mode (the checkpoint grain)."""
        return -(-self.trials // self.chunk)

    def chunk_trials(self, chunk_index: int) -> range:
        """The global trial indices of curve-mode chunk ``chunk_index``."""
        lo = chunk_index * self.chunk
        return range(lo, min(lo + self.chunk, self.trials))

    @property
    def total_slots(self) -> int:
        if self.objective == "curve":
            return self.total_instances * self.n_chunks
        return self.total_instances

    # -- serialization / identity -----------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return self._mode_payload({
            "scenarios": self._scenarios_payload(),
            "grid": [{"k": c.k, "phi": c.phi} for c in self.grid],
            "ks": list(self.ks),
            "trials": self.trials,
            "chunk": self.chunk,
            "perturbation": self.perturbation.to_dict(),
            "metric": self.metric,
            "p_target": self.p_target,
            "quantile": self.quantile,
            "target": self.target,
            "phi_lo": self.phi_lo,
            "phi_hi": self.phi_hi,
            "tol": self.tol,
            "confidence": self.confidence,
            "early_stop": self.early_stop,
            "compute_critical": self.compute_critical,
        })

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EnsembleRequest":
        return cls(
            scenarios=tuple(_scenario_from_dict(s) for s in data["scenarios"]),
            grid=tuple(GridCell(c["k"], c["phi"]) for c in data["grid"]),
            ks=tuple(int(k) for k in data["ks"]),
            trials=int(data["trials"]),
            chunk=int(data["chunk"]),
            perturbation=Perturbation.from_dict(data["perturbation"]),
            metric=str(data["metric"]),
            p_target=None if data["p_target"] is None else float(data["p_target"]),
            quantile=float(data["quantile"]),
            target=None if data["target"] is None else float(data["target"]),
            phi_lo=float(data["phi_lo"]),
            phi_hi=float(data["phi_hi"]),
            tol=float(data["tol"]),
            confidence=float(data["confidence"]),
            early_stop=bool(data["early_stop"]),
            compute_critical=bool(data["compute_critical"]),
            mode=str(data.get("mode", "strong")),
        )

    def _fingerprint_spec(self) -> dict[str, Any]:
        spec = self.to_dict()
        spec["kind"] = "ensemble"
        spec["grid"] = [
            {"k": c["k"], "phi": float(c["phi"]).hex()} for c in spec["grid"]
        ]
        pert = dict(spec["perturbation"])
        for f in ("edge_fail", "node_fail", "fade_sigma"):
            pert[f] = float(pert[f]).hex()
        spec["perturbation"] = pert
        for f in ("phi_lo", "phi_hi", "tol", "quantile", "confidence"):
            spec[f] = float(spec[f]).hex()
        for f in ("p_target", "target"):
            if spec[f] is not None:
                spec[f] = float(spec[f]).hex()
        return spec

    def describe(self) -> str:
        scen = ", ".join(s.label for s in self.scenarios[:4])
        if len(self.scenarios) > 4:
            scen += f", … ({len(self.scenarios)} scenarios)"
        pert = self.perturbation.label()
        suffix = "" if self.mode == "strong" else f" [{self.mode}]"
        if self.objective == "curve":
            cells = ", ".join(c.label for c in self.grid[:4])
            if len(self.grid) > 4:
                cells += f", … ({len(self.grid)} cells)"
            return (
                f"{self.total_instances} instances [{scen}] × grid [{cells}] "
                f"× {self.trials} trials ({pert}){suffix}"
            )
        goal = (
            f"P(connected) >= {self.p_target:g}"
            if self.predicate == "connectivity"
            else f"q{self.quantile:g}({self.metric}) <= {self.target:g}"
        )
        return (
            f"{self.total_instances} instances [{scen}] × k∈{list(self.ks)}: "
            f"{goal} over phi∈[{self.phi_lo:.4f}, {self.phi_hi:.4f}] "
            f"to tol {self.tol:g}, {self.trials} trials ({pert}){suffix}"
        )
