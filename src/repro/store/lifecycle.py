"""Run-directory lifecycle: compacting finished ledgers, collecting garbage.

A long sweep campaign leaves a run directory strewn with per-shard ledger
files (one per CI job), torn ``*.json.tmp`` leftovers from killed plan
writes, and plan files whose runs never checkpointed a single instance.
Two maintenance operations clean this up without ever touching plan
fingerprints or row bytes:

:func:`compact_plan`
    Archive every shard ledger of a finished plan into the single
    ``s0000of0001`` file.  Rows are carried over as their original raw
    JSON lines (deduplicated by slot, sorted in plan order), so replay
    after compaction is byte-for-byte the same data — resumed and
    assembled results stay bit-identical.

:func:`gc_store`
    Drop superseded artifacts: stale ``.json.tmp`` files, empty ledger
    files, and plans with zero checkpointed instances (or one named plan
    in its entirety).

Both return small report dataclasses and support ``dry_run``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.cache import CacheStats
from repro.engine._spec import Shard
from repro.store.ledger import RunStore, StoreError, _read_rows, _row_type_for

__all__ = ["CompactReport", "GcReport", "compact_plan", "gc_store"]


@dataclass(frozen=True)
class CompactReport:
    """What :func:`compact_plan` did to one plan's ledgers."""

    plan_key: str
    rows: int
    files_before: int
    bytes_before: int
    bytes_after: int
    path: Path

    def summary(self) -> str:
        return (
            f"plan {self.plan_key[:12]}: {self.rows} rows from "
            f"{self.files_before} shard file(s) -> {self.path.name} "
            f"({self.bytes_before} -> {self.bytes_after} bytes)"
        )


@dataclass(frozen=True)
class GcReport:
    """What :func:`gc_store` removed (or would remove under ``dry_run``)."""

    removed: list[Path] = field(default_factory=list)
    dry_run: bool = False

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        if not self.removed:
            return f"{verb} nothing"
        return f"{verb} {len(self.removed)} file(s): " + ", ".join(
            p.name for p in self.removed
        )


def _raw_rows(
    path: Path, row_type: str, *, skip_corrupt: bool = False
) -> dict[int, str]:
    """Slot -> original JSON line for every row of ``row_type`` in ``path``.

    Validates each kept line through the regular row parser first (same
    torn-tail/corruption rules as replay), but carries the *raw* line into
    the compacted file so no float ever re-serializes.  ``skip_corrupt``
    mirrors the replay policy for dead shards: torn middle lines left by a
    killed concurrent writer are dropped instead of refused — compaction is
    exactly how such a tear leaves the directory for good.
    """
    _read_rows(path, row_type=row_type, skip_corrupt=skip_corrupt)
    raw: dict[int, str] = {}
    with open(path, encoding="utf8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1 or skip_corrupt:
                continue  # torn tail, or torn middle of a dead shard
            raise
        if obj.get("type") != row_type:
            continue
        raw[int(obj["slot"])] = line
    return raw


def _coordination_paths(store: RunStore, plan_key: str) -> list[Path]:
    """Every queue/claim/dead/cancel file belonging to one plan."""
    k12 = plan_key[:12]
    paths: list[Path] = []
    for pattern in (
        f"queue-{k12}.json",
        f"cancel-{k12}.json",
        f"claim-{k12}-s*.json",
        f"dead-{k12}-s*.json",
    ):
        paths.extend(sorted(store.run_dir.glob(pattern)))
    return paths


def compact_plan(
    store: RunStore, plan_key: str | None = None, *, dry_run: bool = False
) -> CompactReport:
    """Merge every shard ledger of a plan into one ``s0000of0001`` file.

    Rows are deduplicated by plan slot (overlapping shards hold identical
    rows by determinism — last wins), ordered by slot, and written as
    their original JSON lines followed by one synthesized ``shard_done``
    summary whose cache stats are the sum of the rows' per-instance
    deltas.  The write is atomic (tmp + rename); the superseded shard
    files are deleted only after the archive lands.  The plan file and its
    fingerprint are untouched, so ``--resume`` and ``assemble`` keep
    working against the compacted directory.
    """
    from repro.store.coordination import is_shard_dead

    key, request = store.load_request(plan_key)
    row_type = _row_type_for(request)
    paths = store.ledger_paths(key)
    if not paths:
        raise StoreError(
            f"{store.run_dir} has no ledger files for plan {key[:12]}"
        )

    raw: dict[int, str] = {}
    elapsed = 0.0
    stats = CacheStats()
    bytes_before = 0
    for path in paths:
        bytes_before += path.stat().st_size
        shard = store.shard_of_path(path)
        skip = shard is not None and is_shard_dead(store, key, shard)
        for slot, line in _raw_rows(path, row_type, skip_corrupt=skip).items():
            if slot not in raw:
                obj = json.loads(line)
                elapsed += float(obj["elapsed"])
                stats.merge(CacheStats.from_dict(obj["cache"]))
            raw[slot] = line

    whole = Shard()
    target = store.ledger_path(key, whole)
    done = json.dumps(
        {
            "type": "shard_done",
            "shard": [whole.index, whole.count],
            "cache": stats.as_dict(),
            "elapsed": elapsed,
        }
    )
    body = "".join(raw[slot] + "\n" for slot in sorted(raw)) + done + "\n"
    if not dry_run:
        tmp = target.with_suffix(".jsonl.tmp")
        tmp.write_text(body, encoding="utf8")
        with open(tmp, encoding="utf8") as fh:
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        for path in paths:
            if path != target:
                path.unlink()
        # The archive holds only validated rows, so any recorded tear is
        # gone with the superseded shard files — their dead markers too.
        for marker in sorted(store.run_dir.glob(f"dead-{key[:12]}-s*.json")):
            marker.unlink()
    return CompactReport(
        plan_key=key,
        rows=len(raw),
        files_before=len(paths),
        bytes_before=bytes_before,
        bytes_after=len(body.encode("utf8")),
        path=target,
    )


def gc_store(
    store: RunStore, plan_key: str | None = None, *, dry_run: bool = False
) -> GcReport:
    """Remove superseded files from a run directory.

    Always removes stale ``*.tmp`` leftovers from interrupted atomic
    writes.  With ``plan_key``, additionally removes that plan *entirely*
    (its plan file and every shard ledger).  Without one, removes plans
    that never checkpointed an instance (zero rows across all their
    ledgers) together with their empty ledger files.  Never rewrites a
    surviving file, so fingerprints and row bytes are stable.
    """
    removed: list[Path] = []

    def drop(path: Path) -> None:
        removed.append(path)
        if not dry_run:
            path.unlink()

    for tmp in sorted(store.run_dir.glob("*.tmp")):
        drop(tmp)

    if plan_key is not None:
        key, _request = store.load_request(plan_key)
        for path in store.ledger_paths(key):
            drop(path)
        for path in _coordination_paths(store, key):
            drop(path)
        drop(store.plan_path(key))
        return GcReport(removed=removed, dry_run=dry_run)

    for key in store.plan_keys():
        data = json.loads(store.plan_path(key).read_text(encoding="utf8"))
        row_type = {"sweep": "instance", "frontier": "frontier"}[
            data.get("kind", "sweep")
        ]
        paths = store.ledger_paths(key)
        total = 0
        for path in paths:
            total += len(
                _read_rows(
                    path,
                    row_type=row_type,
                    skip_corrupt=store._skip_corrupt(key, path),
                )
            )
        if total == 0:
            for path in paths:
                drop(path)
            for path in _coordination_paths(store, key):
                drop(path)
            drop(store.plan_path(key))
    return GcReport(removed=removed, dry_run=dry_run)
