"""On-disk, content-addressed run ledger for plan execution.

A *run directory* holds the durable record of one or more
:class:`~repro.engine.spec.PlanRequest` executions:

``plan-<key12>.json``
    The full plan specification plus its content fingerprint (written once,
    idempotently).  ``<key12>`` is the first 12 hex digits of the
    fingerprint, so several distinct plans can share one run directory.

``ledger-<key12>-s<i>of<m>.jsonl``
    Append-only JSONL, one file per :class:`~repro.engine.spec.Shard` of the
    plan.  Each ``instance`` row checkpoints one completed instance chunk:
    its plan-order ``slot``, the per-instance facts
    (:class:`~repro.engine.executor.InstanceReport`), one metrics dict per
    grid cell (the :class:`~repro.engine.executor.RunRecord` payloads) and
    the instance's :class:`~repro.engine.cache.CacheStats` delta.

Rows are flushed as they are appended, so a killed run loses at most the
row being written; the loader tolerates a torn trailing line.  Floats
round-trip exactly through JSON (``repr`` is shortest-round-trip in
Python 3), which is what makes a resumed or merged run bit-identical to an
uninterrupted one — validated by determinism and kernel-counter assertions,
never wall-clock (CI is single-core).

Readers are *forward compatible*: unknown keys in a row, its metrics
dicts, its cache-stats delta or a recorded scenario are ignored rather
than rejected, so a ledger written by a newer version (with, say, a new
per-row tag or counter) still replays here.  Unknown *row types* are
likewise skipped.  Only structural damage — a corrupt line in the middle
of a file, a slot outside the plan, a cell-count mismatch — is an error.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, ClassVar, IO, Iterable, Sequence

from repro.analysis.metrics import OrientationMetrics
from repro.engine.cache import CacheStats
from repro.engine.executor import BatchResult, InstanceReport, RunRecord
from repro.engine.spec import (
    FrontierRequest,
    GridCell,
    PlanRequest,
    Scenario,
    Shard,
)
from repro.errors import ReproError

__all__ = [
    "LEDGER_VERSION",
    "StoreError",
    "plan_fingerprint",
    "plan_kind",
    "request_to_dict",
    "request_from_dict",
    "frontier_to_dict",
    "frontier_from_dict",
    "LedgerRow",
    "FrontierRow",
    "ShardLedger",
    "RunStore",
    "merge_stores",
    "assemble_batch",
]

LEDGER_VERSION = 1


class StoreError(ReproError):
    """A run directory is inconsistent with the requested operation."""


#: Known field names, used to drop unknown keys from ledgered dicts
#: (forward compatibility) instead of letting ``__init__`` raise.
_METRIC_FIELDS = frozenset(f.name for f in fields(OrientationMetrics))
_SCENARIO_FIELDS = frozenset(f.name for f in fields(Scenario))


def _scenario_from_dict(s: dict[str, Any]) -> Scenario:
    return Scenario(**{k: v for k, v in s.items() if k in _SCENARIO_FIELDS})


# -- plan identity -----------------------------------------------------------------


def request_to_dict(request: PlanRequest) -> dict[str, Any]:
    """JSON-serializable plan spec; round-trips via :func:`request_from_dict`."""
    return {
        "scenarios": [
            {
                "workload": s.workload,
                "n": s.n,
                "seeds": s.seeds,
                "tag": s.tag,
                "seed_offset": s.seed_offset,
            }
            for s in request.scenarios
        ],
        "grid": [{"k": c.k, "phi": c.phi} for c in request.grid],
        "compute_critical": request.compute_critical,
    }


def request_from_dict(data: dict[str, Any]) -> PlanRequest:
    """Rebuild a :class:`PlanRequest` from :func:`request_to_dict` output."""
    return PlanRequest(
        scenarios=tuple(_scenario_from_dict(s) for s in data["scenarios"]),
        grid=tuple(GridCell(c["k"], c["phi"]) for c in data["grid"]),
        compute_critical=bool(data["compute_critical"]),
    )


def frontier_to_dict(request: FrontierRequest) -> dict[str, Any]:
    """JSON-serializable frontier spec; round-trips via :func:`frontier_from_dict`."""
    return {
        "scenarios": [
            {
                "workload": s.workload,
                "n": s.n,
                "seeds": s.seeds,
                "tag": s.tag,
                "seed_offset": s.seed_offset,
            }
            for s in request.scenarios
        ],
        "ks": list(request.ks),
        "metric": request.metric,
        "target": request.target,
        "phi_lo": request.phi_lo,
        "phi_hi": request.phi_hi,
        "tol": request.tol,
    }


def frontier_from_dict(data: dict[str, Any]) -> FrontierRequest:
    """Rebuild a :class:`FrontierRequest` from :func:`frontier_to_dict` output."""
    return FrontierRequest(
        scenarios=tuple(_scenario_from_dict(s) for s in data["scenarios"]),
        ks=tuple(int(k) for k in data["ks"]),
        metric=str(data["metric"]),
        target=None if data["target"] is None else float(data["target"]),
        phi_lo=float(data["phi_lo"]),
        phi_hi=float(data["phi_hi"]),
        tol=float(data["tol"]),
    )


def plan_kind(request: PlanRequest | FrontierRequest) -> str:
    """``"sweep"`` for a :class:`PlanRequest`, ``"frontier"`` otherwise."""
    return "frontier" if isinstance(request, FrontierRequest) else "sweep"


def plan_fingerprint(request: PlanRequest | FrontierRequest) -> str:
    """SHA-256 content hash of a plan or frontier spec (the ledger key).

    Angles (grid φ, frontier interval/tolerance/target) are hashed via
    ``float.hex`` so the key depends on the exact float64 bit patterns —
    two specs share a ledger iff their instances and cells are
    bit-identical, the only equality under which reusing ledgered results
    is sound.  Frontier keys additionally mix in the spec kind, so a sweep
    and a frontier over the same scenarios never collide.
    """
    if isinstance(request, FrontierRequest):
        spec = frontier_to_dict(request)
        spec["kind"] = "frontier"
        for f in ("phi_lo", "phi_hi", "tol"):
            spec[f] = float(spec[f]).hex()
        if spec["target"] is not None:
            spec["target"] = float(spec["target"]).hex()
    else:
        spec = request_to_dict(request)
        spec["grid"] = [
            {"k": c["k"], "phi": float(c["phi"]).hex()} for c in spec["grid"]
        ]
    spec["ledger_version"] = LEDGER_VERSION
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf8")).hexdigest()


# -- rows --------------------------------------------------------------------------


@dataclass
class _InstanceRowBase:
    """Shared shape of one checkpointed instance chunk.

    Subclasses declare ``ROW_TYPE`` (the JSON ``"type"`` tag) and
    ``PAYLOAD`` (the name of their one extra list field); serialization,
    parsing and the :class:`InstanceReport` projection live here once, so
    the sweep and frontier replay paths cannot drift apart.
    """

    ROW_TYPE: ClassVar[str]
    PAYLOAD: ClassVar[str]

    slot: int
    scenario_index: int
    instance_index: int
    elapsed: float
    facts: dict[str, float]
    cache: dict[str, int]
    backend: str = "numpy"

    def to_json(self) -> str:
        return json.dumps(
            {
                "type": self.ROW_TYPE,
                "slot": self.slot,
                "scenario_index": self.scenario_index,
                "instance_index": self.instance_index,
                "elapsed": self.elapsed,
                "facts": self.facts,
                self.PAYLOAD: getattr(self, self.PAYLOAD),
                "cache": self.cache,
                "backend": self.backend,
            }
        )

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "_InstanceRowBase":
        # Reads known keys only: unknown keys written by a newer version
        # are ignored (ledger forward compatibility).
        return cls(
            slot=int(obj["slot"]),
            scenario_index=int(obj["scenario_index"]),
            instance_index=int(obj["instance_index"]),
            elapsed=float(obj["elapsed"]),
            facts=dict(obj["facts"]),
            cache={k: int(v) for k, v in obj["cache"].items()},
            backend=str(obj.get("backend", "numpy")),
            **{cls.PAYLOAD: list(obj[cls.PAYLOAD])},
        )

    def report(self) -> InstanceReport:
        return InstanceReport(
            scenario_index=self.scenario_index,
            instance_index=self.instance_index,
            n=int(self.facts["n"]),
            lmax=self.facts["lmax"],
            mst_weight=self.facts["mst_weight"],
            diameter=self.facts["diameter"],
            elapsed=self.elapsed,
        )


@dataclass
class LedgerRow(_InstanceRowBase):
    """One checkpointed sweep chunk: every grid cell of one instance."""

    ROW_TYPE: ClassVar[str] = "instance"
    PAYLOAD: ClassVar[str] = "metrics"

    metrics: list[dict[str, Any]] = field(default_factory=list)

    def cell_metrics(self) -> list[OrientationMetrics]:
        # Unknown metric keys (added by a newer version) are dropped.
        return [
            OrientationMetrics(
                **{k: v for k, v in m.items() if k in _METRIC_FIELDS}
            )
            for m in self.metrics
        ]


@dataclass
class FrontierRow(_InstanceRowBase):
    """One checkpointed frontier chunk: every ``k`` of one instance.

    ``frontiers`` holds one :meth:`repro.frontier.solver.KFrontier.as_dict`
    payload per requested ``k`` (request order); probe φ values and solved
    φ* round-trip exactly through JSON, which is what makes a resumed or
    merged frontier run bit-identical to an uninterrupted one.
    """

    ROW_TYPE: ClassVar[str] = "frontier"
    PAYLOAD: ClassVar[str] = "frontiers"

    frontiers: list[dict[str, Any]] = field(default_factory=list)


#: Ledger row type tag -> row class; a ledger file may only mix row types
#: with distinct tags (``shard_done`` summaries ride along untyped).
_ROW_TYPES = {cls.ROW_TYPE: cls for cls in (LedgerRow, FrontierRow)}

#: Plan kind -> row type tag.  The single request→rows mapping: a new plan
#: kind must be registered here (and in :func:`plan_kind`) or resume would
#: silently parse zero rows and re-execute everything.
_KIND_ROW_TYPES = {"sweep": LedgerRow.ROW_TYPE, "frontier": FrontierRow.ROW_TYPE}


def _row_type_for(request: PlanRequest | FrontierRequest) -> str:
    return _KIND_ROW_TYPES[plan_kind(request)]


# -- files -------------------------------------------------------------------------


class ShardLedger:
    """Append handle for one ``(plan, shard)`` ledger file."""

    def __init__(self, path: Path, plan_key: str, shard: Shard):
        self.path = path
        self.plan_key = plan_key
        self.shard = shard
        _drop_torn_tail(path)
        self._fh: IO[str] | None = open(path, "a", encoding="utf8")

    def append(self, row: LedgerRow) -> None:
        assert self._fh is not None, "ledger already closed"
        self._fh.write(row.to_json() + "\n")
        self._fh.flush()

    def finish(self, cache: CacheStats, elapsed: float) -> None:
        """Append the shard-completion summary row (informational)."""
        assert self._fh is not None, "ledger already closed"
        self._fh.write(
            json.dumps(
                {
                    "type": "shard_done",
                    "shard": [self.shard.index, self.shard.count],
                    "cache": cache.as_dict(),
                    "elapsed": elapsed,
                }
            )
            + "\n"
        )
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ShardLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _drop_torn_tail(path: Path) -> None:
    """Truncate a trailing line with no newline (a torn write from a kill).

    Must run before re-opening a ledger for append: gluing a fresh row onto
    the fragment would leave a corrupt row in the *middle* of the file,
    which readers rightly refuse.  The fragment itself carries no completed
    work (rows are flushed whole), so dropping it is lossless.
    """
    if not path.exists():
        return
    with open(path, "rb+") as fh:
        data = fh.read()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 if the file is one torn line
        fh.truncate(keep)


def _read_rows(path: Path, row_type: str = "instance") -> dict[int, Any]:
    """Parse one ledger file; tolerate a torn trailing line only.

    ``row_type`` selects the row class (see ``_ROW_TYPES``); rows of other
    types — ``shard_done`` summaries, rows of a different spec kind — are
    skipped.
    """
    row_cls = _ROW_TYPES[row_type]
    rows: dict[int, Any] = {}
    with open(path, encoding="utf8") as fh:
        lines = fh.read().split("\n")
    # A complete file ends with "\n", leaving one trailing "" entry.
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn write from a killed run; the row is simply lost
            raise StoreError(
                f"{path}: corrupt ledger row at line {lineno + 1}"
            ) from None
        if obj.get("type") != row_type:
            continue  # shard_done summaries, other row types
        row = row_cls.from_obj(obj)
        rows[row.slot] = row
    return rows


# -- the store ---------------------------------------------------------------------


@dataclass
class RunStore:
    """A run directory: durable, resumable, shardable plan executions.

    The same directory can be shared by every shard of a plan (each shard
    appends to its own file), by several distinct plans (files are keyed by
    the plan fingerprint), and by repeated resumed runs.
    """

    run_dir: Path
    _ledgers: list[ShardLedger] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.run_dir = Path(self.run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    @staticmethod
    def _key12(plan_key: str) -> str:
        return plan_key[:12]

    def plan_path(self, plan_key: str) -> Path:
        return self.run_dir / f"plan-{self._key12(plan_key)}.json"

    def ledger_path(self, plan_key: str, shard: Shard) -> Path:
        return self.run_dir / (
            f"ledger-{self._key12(plan_key)}"
            f"-s{shard.index:04d}of{shard.count:04d}.jsonl"
        )

    def ledger_paths(self, plan_key: str) -> list[Path]:
        """Every shard ledger of the plan present in this directory."""
        return sorted(self.run_dir.glob(f"ledger-{self._key12(plan_key)}-s*.jsonl"))

    # -- plans ---------------------------------------------------------------

    def write_plan(self, request: PlanRequest | FrontierRequest) -> str:
        """Record the plan/frontier spec (idempotent); returns its fingerprint."""
        key = plan_fingerprint(request)
        kind = plan_kind(request)
        path = self.plan_path(key)
        payload = {
            "ledger_version": LEDGER_VERSION,
            "plan_key": key,
            "kind": kind,
            "request": (
                frontier_to_dict(request)
                if kind == "frontier"
                else request_to_dict(request)
            ),
        }
        if path.exists():
            existing = json.loads(path.read_text(encoding="utf8"))
            if existing.get("plan_key") != key:
                raise StoreError(
                    f"{path} records a different plan "
                    f"(key {existing.get('plan_key', '?')[:12]} != {key[:12]})"
                )
            return key
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf8")
        os.replace(tmp, path)
        return key

    def plan_keys(self) -> list[str]:
        """Fingerprints of every plan recorded in this directory."""
        keys = []
        for path in sorted(self.run_dir.glob("plan-*.json")):
            keys.append(json.loads(path.read_text(encoding="utf8"))["plan_key"])
        return keys

    def load_request(
        self, plan_key: str | None = None
    ) -> "tuple[str, PlanRequest | FrontierRequest]":
        """Load the recorded plan or frontier spec (the only one, unless a
        key is given).  The returned request's type reflects the recorded
        ``kind`` (plan files without one predate frontiers and are sweeps).
        """
        keys = self.plan_keys()
        if plan_key is not None:
            matches = [k for k in keys if k.startswith(plan_key)]
            if not matches:
                raise StoreError(
                    f"{self.run_dir} has no plan matching key {plan_key[:12]!r}"
                )
            if len(matches) > 1:
                raise StoreError(
                    f"plan key prefix {plan_key!r} is ambiguous in "
                    f"{self.run_dir}: matches "
                    f"{', '.join(k[:12] for k in matches)}"
                )
            keys = matches
        if not keys:
            raise StoreError(f"{self.run_dir} records no plans")
        if len(keys) > 1:
            raise StoreError(
                f"{self.run_dir} records {len(keys)} plans "
                f"({', '.join(k[:12] for k in keys)}); pass a plan key"
            )
        key = keys[0]
        data = json.loads(self.plan_path(key).read_text(encoding="utf8"))
        kind = data.get("kind", "sweep")
        if kind == "frontier":
            request = frontier_from_dict(data["request"])
        else:
            request = request_from_dict(data["request"])
        rebuilt = plan_fingerprint(request)
        if rebuilt != key:
            raise StoreError(
                f"{self.plan_path(key)}: spec no longer hashes to its recorded "
                f"key ({rebuilt[:12]} != {key[:12]}); the file was edited"
            )
        return key, request

    # -- rows ----------------------------------------------------------------

    def load_rows(self, plan_key: str) -> dict[int, LedgerRow]:
        """All ledgered instance rows of the plan, across every shard file."""
        rows: dict[int, LedgerRow] = {}
        for path in self.ledger_paths(plan_key):
            for slot, row in _read_rows(path).items():
                rows[slot] = row
        return rows

    def load_frontier_rows(self, plan_key: str) -> dict[int, FrontierRow]:
        """All ledgered frontier rows of the spec, across every shard file."""
        rows: dict[int, FrontierRow] = {}
        for path in self.ledger_paths(plan_key):
            for slot, row in _read_rows(path, row_type="frontier").items():
                rows[slot] = row
        return rows

    def completed_for(self, request: PlanRequest) -> dict[int, LedgerRow]:
        """Ledgered rows for ``request`` (empty if never run here)."""
        return self.load_rows(plan_fingerprint(request))

    def shard_rows(
        self, request: PlanRequest | FrontierRequest, shard: Shard
    ) -> dict[int, Any]:
        """Rows recorded in one shard's own ledger file (kind-matched)."""
        path = self.ledger_path(plan_fingerprint(request), shard)
        if not path.exists():
            return {}
        return _read_rows(path, row_type=_row_type_for(request))

    def open_shard(
        self, request: "PlanRequest | FrontierRequest", shard: Shard
    ) -> ShardLedger:
        """Open the append handle for one shard (recording the plan spec)."""
        key = self.write_plan(request)
        ledger = ShardLedger(self.ledger_path(key, shard), key, shard)
        self._ledgers.append(ledger)
        return ledger

    def close(self) -> None:
        for ledger in self._ledgers:
            ledger.close()
        self._ledgers.clear()


# -- merge / reassembly ------------------------------------------------------------


def merge_stores(
    run_dirs: Sequence[str | Path], plan_key: str | None = None
) -> "tuple[str, PlanRequest | FrontierRequest, dict[int, Any]]":
    """Union the ledgers of several run directories (one shard per CI job).

    Every directory must record the same plan (sweep or frontier — the row
    type follows the recorded spec kind); rows are keyed by slot, so
    overlapping shards are harmless (rows for a slot are identical by
    determinism).
    """
    if not run_dirs:
        raise StoreError("no run directories to merge")
    key = None
    request = None
    rows: dict[int, Any] = {}
    for run_dir in run_dirs:
        store = RunStore(Path(run_dir))
        k, req = store.load_request(plan_key)
        if key is None:
            key, request = k, req
        elif k != key:
            raise StoreError(
                f"{run_dir} records plan {k[:12]}, expected {key[:12]}; "
                "shards of different plans cannot be merged"
            )
        if isinstance(request, FrontierRequest):
            rows.update(store.load_frontier_rows(key))
        else:
            rows.update(store.load_rows(key))
    assert key is not None and request is not None
    return key, request, rows


def assemble_batch(
    request: PlanRequest,
    rows: dict[int, LedgerRow],
    *,
    allow_partial: bool = False,
) -> BatchResult:
    """Reconstruct a :class:`BatchResult` purely from ledger rows.

    The records come back in plan order, so the aggregate tables are
    bit-identical to the ones an in-process :func:`execute_plan` of the
    same plan would produce.
    """
    expected = request.total_instances
    missing = [slot for slot in range(expected) if slot not in rows]
    if missing and not allow_partial:
        raise StoreError(
            f"ledger covers {expected - len(missing)}/{expected} instances "
            f"(first missing plan slot: {missing[0]}); run the remaining "
            "shards or pass allow_partial"
        )
    ncells = len(request.grid)
    records: list[RunRecord] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    elapsed = 0.0
    for slot in sorted(rows):
        row = rows[slot]
        if not 0 <= row.slot < expected:
            raise StoreError(f"ledger row slot {row.slot} outside the plan")
        if len(row.metrics) != ncells:
            raise StoreError(
                f"ledger row for slot {row.slot} has {len(row.metrics)} cell "
                f"metrics, plan has {ncells} grid cells"
            )
        scenario = request.scenarios[row.scenario_index]
        reports.append(row.report())
        for cell, m in zip(request.grid, row.cell_metrics()):
            records.append(
                RunRecord(scenario, row.instance_index, cell, m,
                          scenario_index=row.scenario_index)
            )
        stats.merge(CacheStats.from_dict(row.cache))
        elapsed += row.elapsed
    return BatchResult(
        request=request,
        records=records,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=1,
        elapsed=elapsed,
        replayed_instances=len(rows),
    )


def hit_rate(stats: CacheStats) -> float:
    """Cache hit fraction in [0, 1] (0 when the cache was never touched)."""
    touches = stats.hits + stats.misses
    return stats.hits / touches if touches else 0.0


def _isnan(x: float) -> bool:
    return isinstance(x, float) and math.isnan(x)


def rows_equal(a: Iterable[dict], b: Iterable[dict]) -> bool:
    """NaN-tolerant equality of aggregate-row sequences (test helper)."""
    la, lb = list(a), list(b)
    if len(la) != len(lb):
        return False
    for ra, rb in zip(la, lb):
        if ra.keys() != rb.keys():
            return False
        for k in ra:
            if ra[k] != rb[k] and not (_isnan(ra[k]) and _isnan(rb[k])):
                return False
    return True
