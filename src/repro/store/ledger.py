"""On-disk, content-addressed run ledger for plan execution.

A *run directory* holds the durable record of one or more
:class:`~repro.engine.spec.PlanRequest` executions:

``plan-<key12>.json``
    The full plan specification plus its content fingerprint (written once,
    idempotently).  ``<key12>`` is the first 12 hex digits of the
    fingerprint, so several distinct plans can share one run directory.

``ledger-<key12>-s<i>of<m>.jsonl``
    Append-only JSONL, one file per :class:`~repro.engine.spec.Shard` of the
    plan.  Each ``instance`` row checkpoints one completed instance chunk:
    its plan-order ``slot``, the per-instance facts
    (:class:`~repro.engine.executor.InstanceReport`), one metrics dict per
    grid cell (the :class:`~repro.engine.executor.RunRecord` payloads) and
    the instance's :class:`~repro.engine.cache.CacheStats` delta.

Rows are flushed as they are appended, so a killed run loses at most the
row being written; the loader tolerates a torn trailing line.  Floats
round-trip exactly through JSON (``repr`` is shortest-round-trip in
Python 3), which is what makes a resumed or merged run bit-identical to an
uninterrupted one — validated by determinism and kernel-counter assertions,
never wall-clock (CI is single-core).

Readers are *forward compatible*: unknown keys in a row, its metrics
dicts, its cache-stats delta or a recorded scenario are ignored rather
than rejected, so a ledger written by a newer version (with, say, a new
per-row tag or counter) still replays here.  Unknown *row types* are
likewise skipped.  Only structural damage — a corrupt line in the middle
of a file, a slot outside the plan, a cell-count mismatch — is an error.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, ClassVar, Iterable, Sequence

from repro.analysis.metrics import OrientationMetrics
from repro.engine.cache import CacheStats
from repro.engine.executor import BatchResult, InstanceReport, RunRecord
from repro.engine._spec import (
    LEDGER_VERSION,
    FrontierRequest,
    PlanRequest,
    RequestBase,
    Shard,
    request_from_wire,
)
from repro.errors import ReproError

__all__ = [
    "LEDGER_VERSION",
    "StoreError",
    "plan_fingerprint",
    "plan_kind",
    "request_to_dict",
    "request_from_dict",
    "frontier_to_dict",
    "frontier_from_dict",
    "LedgerRow",
    "FrontierRow",
    "EnsembleRow",
    "ShardLedger",
    "RunStore",
    "merge_stores",
    "assemble_batch",
]


class StoreError(ReproError):
    """A run directory is inconsistent with the requested operation."""


#: Known field names, used to drop unknown keys from ledgered dicts
#: (forward compatibility) instead of letting ``__init__`` raise.
_METRIC_FIELDS = frozenset(f.name for f in fields(OrientationMetrics))


# -- plan identity -----------------------------------------------------------------
#
# Serialization and fingerprinting live on the request classes themselves
# (:class:`repro.engine.spec.RequestBase`); these wrappers are the store's
# historical public spellings and must stay byte-compatible.


def request_to_dict(request: PlanRequest) -> dict[str, Any]:
    """JSON-serializable plan spec; round-trips via :func:`request_from_dict`."""
    return request.to_dict()


def request_from_dict(data: dict[str, Any]) -> PlanRequest:
    """Rebuild a :class:`PlanRequest` from :func:`request_to_dict` output."""
    return PlanRequest.from_dict(data)


def frontier_to_dict(request: FrontierRequest) -> dict[str, Any]:
    """JSON-serializable frontier spec; round-trips via :func:`frontier_from_dict`."""
    return request.to_dict()


def frontier_from_dict(data: dict[str, Any]) -> FrontierRequest:
    """Rebuild a :class:`FrontierRequest` from :func:`frontier_to_dict` output."""
    return FrontierRequest.from_dict(data)


def plan_kind(request: PlanRequest | FrontierRequest) -> str:
    """``"sweep"`` for a :class:`PlanRequest`, ``"frontier"`` otherwise."""
    return request.KIND if isinstance(request, RequestBase) else "sweep"


def plan_fingerprint(request: PlanRequest | FrontierRequest) -> str:
    """SHA-256 content hash of a plan or frontier spec (the ledger key).

    Delegates to :meth:`repro.engine.spec.RequestBase.fingerprint`; the
    scheme is frozen (see the fixture regression test), so every historical
    fingerprint remains valid.
    """
    return request.fingerprint()


# -- rows --------------------------------------------------------------------------


@dataclass
class _InstanceRowBase:
    """Shared shape of one checkpointed instance chunk.

    Subclasses declare ``ROW_TYPE`` (the JSON ``"type"`` tag) and
    ``PAYLOAD`` (the name of their one extra list field); serialization,
    parsing and the :class:`InstanceReport` projection live here once, so
    the sweep and frontier replay paths cannot drift apart.
    """

    ROW_TYPE: ClassVar[str]
    PAYLOAD: ClassVar[str]

    slot: int
    scenario_index: int
    instance_index: int
    elapsed: float
    facts: dict[str, float]
    cache: dict[str, int]
    backend: str = "numpy"
    mode: str = "strong"

    def to_json(self) -> str:
        payload = {
            "type": self.ROW_TYPE,
            "slot": self.slot,
            "scenario_index": self.scenario_index,
            "instance_index": self.instance_index,
            "elapsed": self.elapsed,
            "facts": self.facts,
            self.PAYLOAD: getattr(self, self.PAYLOAD),
            "cache": self.cache,
            "backend": self.backend,
        }
        # Provenance tag for the connectivity objective.  Strong-mode rows
        # predate the seam: omitting the default keeps them byte-identical
        # to every ledger written before it (readers default to "strong").
        if self.mode != "strong":
            payload["mode"] = self.mode
        return json.dumps(payload)

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "_InstanceRowBase":
        # Reads known keys only: unknown keys written by a newer version
        # are ignored (ledger forward compatibility).
        return cls(
            slot=int(obj["slot"]),
            scenario_index=int(obj["scenario_index"]),
            instance_index=int(obj["instance_index"]),
            elapsed=float(obj["elapsed"]),
            facts=dict(obj["facts"]),
            cache={k: int(v) for k, v in obj["cache"].items()},
            backend=str(obj.get("backend", "numpy")),
            mode=str(obj.get("mode", "strong")),
            **{cls.PAYLOAD: list(obj[cls.PAYLOAD])},
        )

    def report(self) -> InstanceReport:
        return InstanceReport(
            scenario_index=self.scenario_index,
            instance_index=self.instance_index,
            n=int(self.facts["n"]),
            lmax=self.facts["lmax"],
            mst_weight=self.facts["mst_weight"],
            diameter=self.facts["diameter"],
            elapsed=self.elapsed,
        )


@dataclass
class LedgerRow(_InstanceRowBase):
    """One checkpointed sweep chunk: every grid cell of one instance."""

    ROW_TYPE: ClassVar[str] = "instance"
    PAYLOAD: ClassVar[str] = "metrics"

    metrics: list[dict[str, Any]] = field(default_factory=list)

    def cell_metrics(self) -> list[OrientationMetrics]:
        # Unknown metric keys (added by a newer version) are dropped.
        return [
            OrientationMetrics(
                **{k: v for k, v in m.items() if k in _METRIC_FIELDS}
            )
            for m in self.metrics
        ]


@dataclass
class FrontierRow(_InstanceRowBase):
    """One checkpointed frontier chunk: every ``k`` of one instance.

    ``frontiers`` holds one :meth:`repro.frontier.solver.KFrontier.as_dict`
    payload per requested ``k`` (request order); probe φ values and solved
    φ* round-trip exactly through JSON, which is what makes a resumed or
    merged frontier run bit-identical to an uninterrupted one.
    """

    ROW_TYPE: ClassVar[str] = "frontier"
    PAYLOAD: ClassVar[str] = "frontiers"

    frontiers: list[dict[str, Any]] = field(default_factory=list)


@dataclass
class EnsembleRow(_InstanceRowBase):
    """One checkpointed ensemble chunk.

    Curve mode: one trial-chunk of one instance — ``results`` holds one
    ``{"successes", "trials", "critical"}`` payload per grid cell.
    Threshold mode: one whole instance — ``results`` holds one
    :meth:`repro.ensemble.solver.KEnsembleFrontier.as_dict` payload per
    requested ``k``.  Either way the slot is a *slot-space* index
    (``request.total_slots``), not an instance index.
    """

    ROW_TYPE: ClassVar[str] = "ensemble"
    PAYLOAD: ClassVar[str] = "results"

    results: list[dict[str, Any]] = field(default_factory=list)


#: Ledger row type tag -> row class; a ledger file may only mix row types
#: with distinct tags (``shard_done`` summaries ride along untyped).
_ROW_TYPES = {cls.ROW_TYPE: cls for cls in (LedgerRow, FrontierRow, EnsembleRow)}

#: Plan kind -> row type tag.  The single request→rows mapping: a new plan
#: kind must be registered here (and in :func:`plan_kind`) or resume would
#: silently parse zero rows and re-execute everything.
_KIND_ROW_TYPES = {
    "sweep": LedgerRow.ROW_TYPE,
    "frontier": FrontierRow.ROW_TYPE,
    "ensemble": EnsembleRow.ROW_TYPE,
}


def _row_type_for(request: PlanRequest | FrontierRequest) -> str:
    return _KIND_ROW_TYPES[plan_kind(request)]


# -- files -------------------------------------------------------------------------


class ShardLedger:
    """Append handle for one ``(plan, shard)`` ledger file.

    Concurrent-append contract (multi-worker mode): the file is opened with
    ``O_APPEND`` and every row is emitted as exactly ONE ``os.write`` of one
    newline-terminated line.  POSIX append semantics then guarantee whole
    lines never interleave, even if a second writer briefly overlaps a
    claim takeover — a row can be *torn* only by a kill mid-``write``, which
    the dead-shard tolerance in :func:`_read_rows` handles.  Do not route
    appends through a buffered stream: a large row could flush in several
    ``write`` syscalls and break the atomicity this contract relies on.
    """

    def __init__(self, path: Path, plan_key: str, shard: Shard):
        self.path = path
        self.plan_key = plan_key
        self.shard = shard
        _drop_torn_tail(path)
        self._fd: int | None = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def _write_line(self, line: str) -> None:
        assert self._fd is not None, "ledger already closed"
        data = (line + "\n").encode("utf8")
        assert b"\n" not in data[:-1], "ledger rows must be single lines"
        written = os.write(self._fd, data)
        assert written == len(data), "short ledger write"

    def append(self, row: LedgerRow) -> None:
        self._write_line(row.to_json())

    def finish(self, cache: CacheStats, elapsed: float) -> None:
        """Append the shard-completion summary row (informational)."""
        self._write_line(
            json.dumps(
                {
                    "type": "shard_done",
                    "shard": [self.shard.index, self.shard.count],
                    "cache": cache.as_dict(),
                    "elapsed": elapsed,
                }
            )
        )
        assert self._fd is not None
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ShardLedger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _drop_torn_tail(path: Path) -> None:
    """Truncate a trailing line with no newline (a torn write from a kill).

    Must run before re-opening a ledger for append: gluing a fresh row onto
    the fragment would leave a corrupt row in the *middle* of the file,
    which readers rightly refuse.  The fragment itself carries no completed
    work (rows are flushed whole), so dropping it is lossless.
    """
    if not path.exists():
        return
    with open(path, "rb+") as fh:
        data = fh.read()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 if the file is one torn line
        fh.truncate(keep)


def _read_rows(
    path: Path, row_type: str = "instance", *, skip_corrupt: bool = False
) -> dict[int, Any]:
    """Parse one ledger file; tolerate a torn trailing line only.

    ``row_type`` selects the row class (see ``_ROW_TYPES``); rows of other
    types — ``shard_done`` summaries, rows of a different spec kind — are
    skipped.

    ``skip_corrupt`` relaxes the structural-damage rule for shards whose
    writer is known to have died mid-append (a dead-shard marker, see
    :func:`repro.store.coordination.mark_shard_dead`): corrupt *middle*
    lines are skipped rather than refused, because with O_APPEND
    single-write rows the only way a torn line lands mid-file is a killed
    concurrent writer whose survivor kept appending.  The torn row carries
    no completed work (rows are written whole), so skipping it is lossless
    — its slot simply re-executes on resume.  Without the marker, a corrupt
    middle still means the file was damaged some other way and is refused.
    """
    row_cls = _ROW_TYPES[row_type]
    rows: dict[int, Any] = {}
    with open(path, encoding="utf8") as fh:
        lines = fh.read().split("\n")
    # A complete file ends with "\n", leaving one trailing "" entry.
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn write from a killed run; the row is simply lost
            if skip_corrupt:
                continue  # torn middle from a killed concurrent writer
            raise StoreError(
                f"{path}: corrupt ledger row at line {lineno + 1}"
            ) from None
        if obj.get("type") != row_type:
            continue  # shard_done summaries, other row types
        row = row_cls.from_obj(obj)
        rows[row.slot] = row
    return rows


# -- the store ---------------------------------------------------------------------


@dataclass
class RunStore:
    """A run directory: durable, resumable, shardable plan executions.

    The same directory can be shared by every shard of a plan (each shard
    appends to its own file), by several distinct plans (files are keyed by
    the plan fingerprint), and by repeated resumed runs.
    """

    run_dir: Path
    _ledgers: list[ShardLedger] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.run_dir = Path(self.run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    @staticmethod
    def _key12(plan_key: str) -> str:
        return plan_key[:12]

    def plan_path(self, plan_key: str) -> Path:
        return self.run_dir / f"plan-{self._key12(plan_key)}.json"

    def ledger_path(self, plan_key: str, shard: Shard) -> Path:
        return self.run_dir / (
            f"ledger-{self._key12(plan_key)}"
            f"-s{shard.index:04d}of{shard.count:04d}.jsonl"
        )

    def ledger_paths(self, plan_key: str) -> list[Path]:
        """Every shard ledger of the plan present in this directory."""
        return sorted(self.run_dir.glob(f"ledger-{self._key12(plan_key)}-s*.jsonl"))

    @staticmethod
    def shard_of_path(path: Path) -> "Shard | None":
        """Recover the :class:`Shard` a ledger file records (``None`` if the
        name does not follow the ``ledger-<key>-s<i>of<m>.jsonl`` scheme)."""
        import re

        m = re.fullmatch(r"ledger-[0-9a-f]{12}-s(\d+)of(\d+)\.jsonl", path.name)
        if m is None:
            return None
        return Shard(int(m.group(1)), int(m.group(2)))

    def _skip_corrupt(self, plan_key: str, path: Path) -> bool:
        """Tolerate torn middle lines in ``path``?  Only when a dead-shard
        marker records that a writer of this shard was killed mid-append."""
        from repro.store.coordination import is_shard_dead  # lazy: avoids cycle

        shard = self.shard_of_path(path)
        return shard is not None and is_shard_dead(self, plan_key, shard)

    # -- plans ---------------------------------------------------------------

    def write_plan(self, request: PlanRequest | FrontierRequest) -> str:
        """Record the plan/frontier spec (idempotent); returns its fingerprint."""
        key = plan_fingerprint(request)
        path = self.plan_path(key)
        payload = {
            "ledger_version": LEDGER_VERSION,
            "plan_key": key,
            **request.to_wire(),
        }
        if path.exists():
            existing = json.loads(path.read_text(encoding="utf8"))
            if existing.get("plan_key") != key:
                raise StoreError(
                    f"{path} records a different plan "
                    f"(key {existing.get('plan_key', '?')[:12]} != {key[:12]})"
                )
            return key
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf8")
        os.replace(tmp, path)
        return key

    def plan_keys(self) -> list[str]:
        """Fingerprints of every plan recorded in this directory."""
        keys = []
        for path in sorted(self.run_dir.glob("plan-*.json")):
            keys.append(json.loads(path.read_text(encoding="utf8"))["plan_key"])
        return keys

    def load_request(
        self, plan_key: str | None = None
    ) -> "tuple[str, PlanRequest | FrontierRequest]":
        """Load the recorded plan or frontier spec (the only one, unless a
        key is given).  The returned request's type reflects the recorded
        ``kind`` (plan files without one predate frontiers and are sweeps).
        """
        keys = self.plan_keys()
        if plan_key is not None:
            matches = [k for k in keys if k.startswith(plan_key)]
            if not matches:
                raise StoreError(
                    f"{self.run_dir} has no plan matching key {plan_key[:12]!r}"
                )
            if len(matches) > 1:
                raise StoreError(
                    f"plan key prefix {plan_key!r} is ambiguous in "
                    f"{self.run_dir}: matches "
                    f"{', '.join(k[:12] for k in matches)}"
                )
            keys = matches
        if not keys:
            raise StoreError(f"{self.run_dir} records no plans")
        if len(keys) > 1:
            raise StoreError(
                f"{self.run_dir} records {len(keys)} plans "
                f"({', '.join(k[:12] for k in keys)}); pass a plan key"
            )
        key = keys[0]
        data = json.loads(self.plan_path(key).read_text(encoding="utf8"))
        request = request_from_wire(data)
        rebuilt = plan_fingerprint(request)
        if rebuilt != key:
            raise StoreError(
                f"{self.plan_path(key)}: spec no longer hashes to its recorded "
                f"key ({rebuilt[:12]} != {key[:12]}); the file was edited"
            )
        return key, request

    # -- rows ----------------------------------------------------------------

    def load_rows(self, plan_key: str) -> dict[int, LedgerRow]:
        """All ledgered instance rows of the plan, across every shard file."""
        rows: dict[int, LedgerRow] = {}
        for path in self.ledger_paths(plan_key):
            parsed = _read_rows(
                path, skip_corrupt=self._skip_corrupt(plan_key, path)
            )
            for slot, row in parsed.items():
                rows[slot] = row
        return rows

    def load_typed_rows(self, plan_key: str, row_type: str) -> dict[int, Any]:
        """All ledgered rows of one row type, across every shard file."""
        rows: dict[int, Any] = {}
        for path in self.ledger_paths(plan_key):
            parsed = _read_rows(
                path,
                row_type=row_type,
                skip_corrupt=self._skip_corrupt(plan_key, path),
            )
            for slot, row in parsed.items():
                rows[slot] = row
        return rows

    def load_frontier_rows(self, plan_key: str) -> dict[int, FrontierRow]:
        """All ledgered frontier rows of the spec, across every shard file."""
        return self.load_typed_rows(plan_key, FrontierRow.ROW_TYPE)

    def load_ensemble_rows(self, plan_key: str) -> dict[int, EnsembleRow]:
        """All ledgered ensemble rows of the spec, across every shard file."""
        return self.load_typed_rows(plan_key, EnsembleRow.ROW_TYPE)

    def rows_for(self, request: "RequestBase") -> dict[int, Any]:
        """Ledgered rows of ``request``, with the row type keyed off its kind."""
        return self.load_typed_rows(
            plan_fingerprint(request), _row_type_for(request)
        )

    def completed_for(self, request: PlanRequest) -> dict[int, LedgerRow]:
        """Ledgered rows for ``request`` (empty if never run here)."""
        return self.load_rows(plan_fingerprint(request))

    def shard_rows(
        self, request: PlanRequest | FrontierRequest, shard: Shard
    ) -> dict[int, Any]:
        """Rows recorded in one shard's own ledger file (kind-matched)."""
        key = plan_fingerprint(request)
        path = self.ledger_path(key, shard)
        if not path.exists():
            return {}
        return _read_rows(
            path,
            row_type=_row_type_for(request),
            skip_corrupt=self._skip_corrupt(key, path),
        )

    def open_shard(
        self, request: "PlanRequest | FrontierRequest", shard: Shard
    ) -> ShardLedger:
        """Open the append handle for one shard (recording the plan spec)."""
        key = self.write_plan(request)
        ledger = ShardLedger(self.ledger_path(key, shard), key, shard)
        self._ledgers.append(ledger)
        return ledger

    def close(self) -> None:
        for ledger in self._ledgers:
            ledger.close()
        self._ledgers.clear()

    # -- coordination (delegates to repro.store.coordination) ----------------

    def progress(self, plan_key: str) -> "Any":
        """Cheap per-shard completion counts (no full-table assembly);
        see :func:`repro.store.coordination.plan_progress`."""
        from repro.store.coordination import plan_progress  # lazy: avoids cycle

        return plan_progress(self, plan_key)

    def cancel(self, plan_key: str, reason: "str | None" = None) -> None:
        """Flip the plan's cancellation tombstone; executors observe it
        between instance chunks and stop with ``PlanCancelled``."""
        from repro.store.coordination import cancel_plan  # lazy: avoids cycle

        cancel_plan(self, plan_key, reason)

    def is_cancelled(self, plan_key: str) -> bool:
        from repro.store.coordination import is_cancelled  # lazy: avoids cycle

        return is_cancelled(self, plan_key)

    def clear_cancel(self, plan_key: str) -> bool:
        """Remove the tombstone (a resubmission un-cancels); True if one was
        present."""
        from repro.store.coordination import clear_cancel  # lazy: avoids cycle

        return clear_cancel(self, plan_key)


# -- merge / reassembly ------------------------------------------------------------


def merge_stores(
    run_dirs: Sequence[str | Path], plan_key: str | None = None
) -> "tuple[str, PlanRequest | FrontierRequest, dict[int, Any]]":
    """Union the ledgers of several run directories (one shard per CI job).

    Every directory must record the same plan (sweep or frontier — the row
    type follows the recorded spec kind); rows are keyed by slot, so
    overlapping shards are harmless (rows for a slot are identical by
    determinism).
    """
    if not run_dirs:
        raise StoreError("no run directories to merge")
    key = None
    request = None
    rows: dict[int, Any] = {}
    for run_dir in run_dirs:
        store = RunStore(Path(run_dir))
        k, req = store.load_request(plan_key)
        if key is None:
            key, request = k, req
        elif k != key:
            mode, other = (
                getattr(request, "mode", "strong"),
                getattr(req, "mode", "strong"),
            )
            if mode != other:
                raise StoreError(
                    f"{run_dir} records a {other}-mode plan, expected "
                    f"{mode}; runs with different connectivity modes "
                    "cannot be merged"
                )
            raise StoreError(
                f"{run_dir} records plan {k[:12]}, expected {key[:12]}; "
                "shards of different plans cannot be merged"
            )
        rows.update(store.load_typed_rows(key, _row_type_for(request)))
    assert key is not None and request is not None
    return key, request, rows


def assemble_batch(
    request: PlanRequest,
    rows: dict[int, LedgerRow],
    *,
    allow_partial: bool = False,
) -> BatchResult:
    """Reconstruct a :class:`BatchResult` purely from ledger rows.

    The records come back in plan order, so the aggregate tables are
    bit-identical to the ones an in-process :func:`execute_plan` of the
    same plan would produce.
    """
    expected = request.total_instances
    missing = [slot for slot in range(expected) if slot not in rows]
    if missing and not allow_partial:
        raise StoreError(
            f"ledger covers {expected - len(missing)}/{expected} instances "
            f"(first missing plan slot: {missing[0]}); run the remaining "
            "shards or pass allow_partial"
        )
    ncells = len(request.grid)
    records: list[RunRecord] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    elapsed = 0.0
    for slot in sorted(rows):
        row = rows[slot]
        if not 0 <= row.slot < expected:
            raise StoreError(f"ledger row slot {row.slot} outside the plan")
        if len(row.metrics) != ncells:
            raise StoreError(
                f"ledger row for slot {row.slot} has {len(row.metrics)} cell "
                f"metrics, plan has {ncells} grid cells"
            )
        scenario = request.scenarios[row.scenario_index]
        reports.append(row.report())
        for cell, m in zip(request.grid, row.cell_metrics()):
            records.append(
                RunRecord(scenario, row.instance_index, cell, m,
                          scenario_index=row.scenario_index)
            )
        stats.merge(CacheStats.from_dict(row.cache))
        elapsed += row.elapsed
    return BatchResult(
        request=request,
        records=records,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=1,
        elapsed=elapsed,
        replayed_instances=len(rows),
    )


def hit_rate(stats: CacheStats) -> float:
    """Cache hit fraction in [0, 1] (0 when the cache was never touched)."""
    touches = stats.hits + stats.misses
    return stats.hits / touches if touches else 0.0


def _isnan(x: float) -> bool:
    return isinstance(x, float) and math.isnan(x)


def rows_equal(a: Iterable[dict], b: Iterable[dict]) -> bool:
    """NaN-tolerant equality of aggregate-row sequences (test helper)."""
    la, lb = list(a), list(b)
    if len(la) != len(lb):
        return False
    for ra, rb in zip(la, lb):
        if ra.keys() != rb.keys():
            return False
        for k in ra:
            if ra[k] != rb[k] and not (_isnan(ra[k]) and _isnan(rb[k])):
                return False
    return True
