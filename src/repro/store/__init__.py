"""Persistent run store: durable, resumable, shardable plan executions.

:mod:`repro.store.ledger` implements the on-disk format — a run directory
holding one ``plan-<key>.json`` spec per plan (keyed by the
:func:`plan_fingerprint` content hash) and one append-only
``ledger-<key>-s<i>of<m>.jsonl`` file per executed
:class:`~repro.engine.spec.Shard`.  :func:`repro.engine.execute_plan`
checkpoints each completed instance chunk into the store and replays
ledgered rows on resume; :func:`merge_stores` + :func:`assemble_batch`
rebuild the full :class:`~repro.engine.executor.BatchResult` from shard
ledgers produced on different machines.  Frontier runs
(:func:`repro.frontier.execute_frontier`) share the same directory
layout and fingerprint scheme with ``"type": "frontier"`` ledger rows;
:func:`repro.frontier.assemble_frontier` is their reassembler.

:mod:`repro.store.lifecycle` adds maintenance: :func:`compact_plan`
archives a finished plan's shard ledgers into one file (row bytes and
fingerprints unchanged) and :func:`gc_store` drops superseded artifacts.

:mod:`repro.store.coordination` makes a run directory a shared work
queue for the planning service and ``repro worker``: queue markers,
atomic per-shard claim files (``O_CREAT | O_EXCL`` leases), persistent
dead-shard markers that relax the torn-middle-line refusal for killed
concurrent writers, cancellation tombstones the executors poll between
chunks, and :func:`plan_progress` — cheap per-shard row counting with
no table assembly.
"""

from repro.store.coordination import (
    ClaimInfo,
    PlanProgress,
    QueueEntry,
    ShardProgress,
    break_stale_claim,
    cancel_plan,
    claim_shard,
    claims_for,
    clear_cancel,
    dequeue,
    enqueue,
    is_cancelled,
    is_shard_dead,
    mark_shard_dead,
    plan_progress,
    queued_plans,
    release_shard,
)
from repro.store.ledger import (
    LEDGER_VERSION,
    FrontierRow,
    LedgerRow,
    RunStore,
    ShardLedger,
    StoreError,
    assemble_batch,
    frontier_from_dict,
    frontier_to_dict,
    hit_rate,
    merge_stores,
    plan_fingerprint,
    plan_kind,
    request_from_dict,
    request_to_dict,
    rows_equal,
)
from repro.store.lifecycle import CompactReport, GcReport, compact_plan, gc_store

__all__ = [
    "LEDGER_VERSION",
    "ClaimInfo",
    "CompactReport",
    "FrontierRow",
    "GcReport",
    "LedgerRow",
    "PlanProgress",
    "QueueEntry",
    "RunStore",
    "ShardLedger",
    "ShardProgress",
    "StoreError",
    "assemble_batch",
    "break_stale_claim",
    "cancel_plan",
    "claim_shard",
    "claims_for",
    "clear_cancel",
    "compact_plan",
    "dequeue",
    "enqueue",
    "frontier_from_dict",
    "frontier_to_dict",
    "gc_store",
    "hit_rate",
    "is_cancelled",
    "is_shard_dead",
    "mark_shard_dead",
    "merge_stores",
    "plan_fingerprint",
    "plan_kind",
    "plan_progress",
    "queued_plans",
    "release_shard",
    "request_from_dict",
    "request_to_dict",
    "rows_equal",
]
