"""Persistent run store: durable, resumable, shardable plan executions.

:mod:`repro.store.ledger` implements the on-disk format — a run directory
holding one ``plan-<key>.json`` spec per plan (keyed by the
:func:`plan_fingerprint` content hash) and one append-only
``ledger-<key>-s<i>of<m>.jsonl`` file per executed
:class:`~repro.engine.spec.Shard`.  :func:`repro.engine.execute_plan`
checkpoints each completed instance chunk into the store and replays
ledgered rows on resume; :func:`merge_stores` + :func:`assemble_batch`
rebuild the full :class:`~repro.engine.executor.BatchResult` from shard
ledgers produced on different machines.  Frontier runs
(:func:`repro.frontier.execute_frontier`) share the same directory
layout and fingerprint scheme with ``"type": "frontier"`` ledger rows;
:func:`repro.frontier.assemble_frontier` is their reassembler.

:mod:`repro.store.lifecycle` adds maintenance: :func:`compact_plan`
archives a finished plan's shard ledgers into one file (row bytes and
fingerprints unchanged) and :func:`gc_store` drops superseded artifacts.
"""

from repro.store.ledger import (
    LEDGER_VERSION,
    FrontierRow,
    LedgerRow,
    RunStore,
    ShardLedger,
    StoreError,
    assemble_batch,
    frontier_from_dict,
    frontier_to_dict,
    hit_rate,
    merge_stores,
    plan_fingerprint,
    plan_kind,
    request_from_dict,
    request_to_dict,
    rows_equal,
)
from repro.store.lifecycle import CompactReport, GcReport, compact_plan, gc_store

__all__ = [
    "LEDGER_VERSION",
    "CompactReport",
    "FrontierRow",
    "GcReport",
    "LedgerRow",
    "RunStore",
    "ShardLedger",
    "StoreError",
    "assemble_batch",
    "compact_plan",
    "frontier_from_dict",
    "frontier_to_dict",
    "gc_store",
    "hit_rate",
    "merge_stores",
    "plan_fingerprint",
    "plan_kind",
    "request_from_dict",
    "request_to_dict",
    "rows_equal",
]
