"""Multi-worker coordination over a run directory: queues, claims, tombstones.

The run store's content-addressed layout already makes a run directory a
correct *shared* substrate — every shard appends to its own ledger file and
the plan fingerprint dedupes identical submissions — but it says nothing
about *who* executes what.  This module adds the small, crash-safe file
primitives the planning service and ``repro worker`` build on.  Everything
is plain files in the run directory, so coordination works across
processes and across machines sharing a filesystem, with no daemon state:

``queue-<key12>.json``
    Marks a plan as *queued for execution* and records how many shards it
    should be split into.  Written idempotently at submit time; removed
    once every instance is ledgered.

``claim-<key12>-s<i>of<m>.json``
    An exclusive execution lease on one shard, acquired atomically with
    ``O_CREAT | O_EXCL`` — exactly one worker wins a claim race, which is
    what makes N workers draining one run directory produce each ledger
    row exactly once.  Claims record owner/pid/host so a stale claim
    (holder process died) can be detected and broken.

``dead-<key12>-s<i>of<m>.json``
    A persistent marker that a writer of this shard was killed while
    holding its claim.  Its ledger file may contain a torn line in the
    *middle* (the survivor of a takeover kept appending after the kill);
    readers tolerate torn middles only for shards carrying this marker
    (see :func:`repro.store.ledger._read_rows`).

``cancel-<key12>.json``
    The plan's cancellation tombstone.  Executors poll it between instance
    chunks (:func:`repro.engine.execute_plan` /
    :func:`repro.frontier.execute_frontier`) and stop with
    :class:`~repro.errors.PlanCancelled`; completed chunks stay ledgered,
    so a later resume continues where the cancel landed.

:func:`plan_progress` is the cheap read path behind ``GET
/plans/{id}/progress``: it counts complete ledger rows per shard without
building metrics objects or assembling tables.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine._spec import RequestBase, Shard
from repro.store.ledger import StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.ledger import RunStore

__all__ = [
    "ClaimInfo",
    "QueueEntry",
    "ShardProgress",
    "PlanProgress",
    "enqueue",
    "queued_plans",
    "queue_entry",
    "dequeue",
    "claim_shard",
    "release_shard",
    "claim_info",
    "claims_for",
    "claim_is_stale",
    "break_stale_claim",
    "mark_shard_dead",
    "is_shard_dead",
    "cancel_plan",
    "is_cancelled",
    "clear_cancel",
    "plan_progress",
]


def _key12(plan_key: str) -> str:
    return plan_key[:12]


def _shard_suffix(shard: Shard) -> str:
    return f"s{shard.index:04d}of{shard.count:04d}"


def queue_path(store: "RunStore", plan_key: str) -> Path:
    return store.run_dir / f"queue-{_key12(plan_key)}.json"


def claim_path(store: "RunStore", plan_key: str, shard: Shard) -> Path:
    return store.run_dir / f"claim-{_key12(plan_key)}-{_shard_suffix(shard)}.json"


def dead_path(store: "RunStore", plan_key: str, shard: Shard) -> Path:
    return store.run_dir / f"dead-{_key12(plan_key)}-{_shard_suffix(shard)}.json"


def cancel_path(store: "RunStore", plan_key: str) -> Path:
    return store.run_dir / f"cancel-{_key12(plan_key)}.json"


def _write_atomic(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        return json.loads(path.read_text(encoding="utf8"))
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:
        return None  # half-written marker from a kill; treat as absent


# -- queue -------------------------------------------------------------------------


@dataclass(frozen=True)
class QueueEntry:
    """One queued plan: its full key and the shard split workers should use."""

    plan_key: str
    shards: int
    kind: str


def enqueue(store: "RunStore", request: RequestBase, *, shards: int = 1) -> str:
    """Record the plan spec and mark it queued for execution (idempotent).

    Returns the plan fingerprint — the job id.  Re-enqueueing an identical
    spec attaches to the existing queue entry; the *first* submission's
    shard split wins (a plan's shard partition must stay consistent while
    workers are draining it).
    """
    if shards < 1:
        raise StoreError(f"shard count must be >= 1, got {shards}")
    key = store.write_plan(request)
    path = queue_path(store, key)
    if path.exists():
        return key
    _write_atomic(
        path,
        {"plan_key": key, "shards": int(shards), "kind": request.KIND},
    )
    return key


def queue_entry(store: "RunStore", plan_key: str) -> QueueEntry | None:
    data = _read_json(queue_path(store, plan_key))
    if data is None:
        return None
    return QueueEntry(
        plan_key=data.get("plan_key", plan_key),
        shards=int(data.get("shards", 1)),
        kind=str(data.get("kind", "sweep")),
    )


def queued_plans(store: "RunStore") -> list[QueueEntry]:
    """Every queued plan in the directory (stable order by file name)."""
    entries = []
    for path in sorted(store.run_dir.glob("queue-*.json")):
        data = _read_json(path)
        if data is None or "plan_key" not in data:
            continue
        entries.append(
            QueueEntry(
                plan_key=str(data["plan_key"]),
                shards=int(data.get("shards", 1)),
                kind=str(data.get("kind", "sweep")),
            )
        )
    return entries


def dequeue(store: "RunStore", plan_key: str) -> bool:
    """Drop the queue marker (the plan finished); True if one was present."""
    try:
        queue_path(store, plan_key).unlink()
        return True
    except FileNotFoundError:
        return False


# -- claims ------------------------------------------------------------------------


@dataclass(frozen=True)
class ClaimInfo:
    """Who holds (or held) the execution lease on one shard."""

    plan_key: str
    shard: Shard
    owner: str
    pid: int
    host: str
    created: float


def claim_shard(
    store: "RunStore", plan_key: str, shard: Shard, owner: str
) -> bool:
    """Try to acquire the exclusive lease on ``(plan, shard)``.

    Atomic: ``O_CREAT | O_EXCL`` means exactly one contender wins, even
    across processes and NFS-style shared directories.  Returns ``False``
    if someone else holds the claim.
    """
    path = claim_path(store, plan_key, shard)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return False
    try:
        payload = {
            "plan_key": plan_key,
            "shard": [shard.index, shard.count],
            "owner": owner,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": time.time(),
        }
        os.write(fd, (json.dumps(payload, indent=2) + "\n").encode("utf8"))
    finally:
        os.close(fd)
    return True


def release_shard(store: "RunStore", plan_key: str, shard: Shard) -> bool:
    """Drop the lease (work finished or abandoned cleanly)."""
    try:
        claim_path(store, plan_key, shard).unlink()
        return True
    except FileNotFoundError:
        return False


def claim_info(
    store: "RunStore", plan_key: str, shard: Shard
) -> ClaimInfo | None:
    data = _read_json(claim_path(store, plan_key, shard))
    if data is None:
        return None
    i, m = data.get("shard", [shard.index, shard.count])
    return ClaimInfo(
        plan_key=data.get("plan_key", plan_key),
        shard=Shard(int(i), int(m)),
        owner=str(data.get("owner", "?")),
        pid=int(data.get("pid", 0)),
        host=str(data.get("host", "?")),
        created=float(data.get("created", 0.0)),
    )


def claims_for(store: "RunStore", plan_key: str) -> list[ClaimInfo]:
    infos = []
    for path in sorted(store.run_dir.glob(f"claim-{_key12(plan_key)}-s*.json")):
        data = _read_json(path)
        if data is None or "shard" not in data:
            continue
        i, m = data["shard"]
        info = claim_info(store, plan_key, Shard(int(i), int(m)))
        if info is not None:
            infos.append(info)
    return infos


def claim_is_stale(info: ClaimInfo) -> bool:
    """Is the claim's holder provably dead?

    Only decidable for claims from this host: a pid that no longer exists
    (or that we may not signal — pid reuse by another user) means the
    holder died without releasing.  Claims from other hosts are never
    considered stale automatically; break them explicitly.
    """
    if info.host != socket.gethostname() or info.pid <= 0:
        return False
    try:
        os.kill(info.pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    return False


def break_stale_claim(
    store: "RunStore", plan_key: str, shard: Shard
) -> bool:
    """Take down a dead holder's claim so the shard can be re-claimed.

    Writes the persistent dead-shard marker *first* (the shard's ledger may
    carry a torn middle line once a new writer appends after the kill; see
    :func:`mark_shard_dead`), then unlinks the claim.  Returns ``True`` if
    a stale claim was broken.
    """
    info = claim_info(store, plan_key, shard)
    if info is None or not claim_is_stale(info):
        return False
    mark_shard_dead(store, plan_key, shard, owner=info.owner)
    release_shard(store, plan_key, shard)
    return True


def mark_shard_dead(
    store: "RunStore",
    plan_key: str,
    shard: Shard,
    *,
    owner: str | None = None,
) -> None:
    """Persistently record that a writer of this shard died mid-run.

    From now on, readers of this shard's ledger tolerate corrupt *middle*
    lines (the torn write the kill left behind) instead of refusing the
    file — the torn slot simply re-executes on resume.  The marker is
    per-shard and never removed automatically: the tear stays in the file
    until a compaction rewrites it.
    """
    _write_atomic(
        dead_path(store, plan_key, shard),
        {
            "plan_key": plan_key,
            "shard": [shard.index, shard.count],
            "owner": owner,
            "marked": time.time(),
        },
    )


def is_shard_dead(store: "RunStore", plan_key: str, shard: Shard) -> bool:
    return dead_path(store, plan_key, shard).exists()


# -- cancellation tombstones -------------------------------------------------------


def cancel_plan(
    store: "RunStore", plan_key: str, reason: str | None = None
) -> None:
    """Flip the plan's cancellation tombstone (idempotent).

    Executors check it between instance chunks, so cancellation lands at a
    chunk boundary: everything already checkpointed stays valid and a later
    resume (which clears the tombstone) continues from the ledger.
    """
    _write_atomic(
        cancel_path(store, plan_key),
        {"plan_key": plan_key, "reason": reason, "cancelled": time.time()},
    )


def is_cancelled(store: "RunStore", plan_key: str) -> bool:
    return cancel_path(store, plan_key).exists()


def clear_cancel(store: "RunStore", plan_key: str) -> bool:
    try:
        cancel_path(store, plan_key).unlink()
        return True
    except FileNotFoundError:
        return False


# -- progress ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardProgress:
    """One shard's completion facts, straight from its ledger file."""

    shard: Shard
    done: int
    expected: int
    claimed: bool
    dead: bool

    @property
    def complete(self) -> bool:
        return self.done >= self.expected


@dataclass(frozen=True)
class PlanProgress:
    """Cheap per-plan completion summary (row counts, not tables).

    ``done_instances`` counts distinct completed plan slots across every
    shard ledger; torn or foreign lines are skipped, never counted, so the
    number is monotone over a run's lifetime.
    """

    plan_key: str
    kind: str
    total_instances: int
    done_instances: int
    shards: list[ShardProgress] = field(default_factory=list)
    queued_shards: int = 1
    cancelled: bool = False

    @property
    def complete(self) -> bool:
        return self.done_instances >= self.total_instances

    @property
    def state(self) -> str:
        """``queued`` → ``running`` → ``done``, or ``cancelled``."""
        if self.complete:
            return "done"
        if self.cancelled:
            return "cancelled"
        if self.done_instances > 0 or any(s.claimed for s in self.shards):
            return "running"
        return "queued"

    def as_dict(self) -> dict[str, Any]:
        return {
            "plan_key": self.plan_key,
            "kind": self.kind,
            "state": self.state,
            "total_instances": self.total_instances,
            "done_instances": self.done_instances,
            "queued_shards": self.queued_shards,
            "cancelled": self.cancelled,
            "shards": [
                {
                    "shard": s.shard.label,
                    "done": s.done,
                    "expected": s.expected,
                    "claimed": s.claimed,
                    "dead": s.dead,
                }
                for s in self.shards
            ],
        }


def _count_rows(path: Path, row_type: str) -> set[int]:
    """Slots of complete rows of ``row_type`` in one ledger file.

    The cheap counting pass behind progress reporting: parses each line
    but builds no row/metrics objects, and *never* refuses a file — torn
    lines (trailing or middle) are simply not counted.  Structural
    validation stays where correctness needs it (replay/assembly).
    """
    slots: set[int] = set()
    try:
        with open(path, encoding="utf8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail still being written
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn middle; progress must not refuse
                if obj.get("type") == row_type and "slot" in obj:
                    slots.add(int(obj["slot"]))
    except FileNotFoundError:
        pass
    return slots


def plan_progress(store: "RunStore", plan_key: str) -> PlanProgress:
    """Per-shard and total completion counts for one plan.

    Counts ledger rows without assembling tables (no metrics parsing, no
    plan-order reconstruction), so polling ``GET /plans/{id}/progress``
    stays cheap even for large plans.
    """
    from repro.store.ledger import _KIND_ROW_TYPES

    key, request = store.load_request(plan_key)
    kind = request.KIND
    row_type = _KIND_ROW_TYPES[kind]
    # Slot-space totals: one slot per instance for sweeps/frontiers, one
    # per (instance, trial chunk) for curve-mode ensembles.
    total = request.total_slots
    entry = queue_entry(store, key)
    queued_shards = entry.shards if entry is not None else 1

    all_slots: set[int] = set()
    shards: list[ShardProgress] = []
    for path in store.ledger_paths(key):
        shard = store.shard_of_path(path)
        slots = _count_rows(path, row_type)
        all_slots |= slots
        if shard is None:
            continue
        expected = sum(1 for slot in range(total) if shard.owns(slot))
        shards.append(
            ShardProgress(
                shard=shard,
                done=len(slots),
                expected=expected,
                claimed=claim_info(store, key, shard) is not None,
                dead=is_shard_dead(store, key, shard),
            )
        )
    # Shards that are claimed but have not checkpointed a row yet have no
    # ledger file; surface them so "running" is visible before first rows.
    seen = {s.shard for s in shards}
    for info in claims_for(store, key):
        if info.shard in seen:
            continue
        expected = sum(1 for slot in range(total) if info.shard.owns(slot))
        shards.append(
            ShardProgress(
                shard=info.shard,
                done=0,
                expected=expected,
                claimed=True,
                dead=is_shard_dead(store, key, info.shard),
            )
        )
    shards.sort(key=lambda s: (s.shard.count, s.shard.index))
    return PlanProgress(
        plan_key=key,
        kind=kind,
        total_instances=total,
        done_instances=len(all_slots & set(range(total))),
        shards=shards,
        queued_shards=queued_shards,
        cancelled=is_cancelled(store, key),
    )
