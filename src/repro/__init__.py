"""repro — sensor network connectivity with multiple directional antennae.

A complete reproduction of

    B. Bhattacharya, Y. Hu, Q. Shi, E. Kranakis, D. Krizanc,
    "Sensor Network Connectivity with Multiple Directional Antennae of a
    Given Angular Sum", IPPS 2009.

Quickstart
----------
>>> import numpy as np
>>> from repro import orient_antennae, is_strongly_connected
>>> rng = np.random.default_rng(0)
>>> pts = rng.random((50, 2))
>>> result = orient_antennae(pts, k=2, phi=np.pi)     # Theorem 3, part 1
>>> bool(is_strongly_connected(result.transmission_graph()))
True
"""

from repro._version import __version__
from repro.antenna.coverage import critical_range, transmission_graph
from repro.antenna.model import AntennaAssignment
from repro.core.bounds import paper_range_bound, table1_rows
from repro.core.kone import orient_k1
from repro.core.ktwo_zero import orient_k2_zero_spread
from repro.core.lemma1 import lemma1_orientation, lemma1_required_spread, optimal_star_spread
from repro.core.planner import choose_algorithm, orient_antennae
from repro.core.result import OrientationResult
from repro.core.theorem2 import orient_theorem2
from repro.core.theorem3 import orient_theorem3
from repro.core.theorem5 import orient_theorem5
from repro.core.theorem6 import orient_theorem6
from repro.api import assemble, submit
from repro.engine import (
    ArtifactCache,
    BatchResult,
    FrontierRequest,
    GridCell,
    PlanRequest,
    RequestBase,
    Scenario,
    Shard,
    execute_plan,
)
from repro.ensemble import EnsembleBatch, EnsembleRequest, Perturbation, execute_ensemble
from repro.errors import PlanCancelled, ReproError
from repro.frontier import FrontierBatch, execute_frontier
from repro.io import load_result, save_result
from repro.kernels import kernel_counters, polar_tables, reset_kernel_counters
from repro.geometry.points import PointSet
from repro.geometry.sectors import Sector
from repro.graph.connectivity import (
    directed_vertex_connectivity,
    is_strongly_c_connected,
    is_strongly_connected,
)
from repro.graph.digraph import DiGraph
from repro.spanning.emst import SpanningTree, euclidean_mst
from repro.spanning.rooted import RootedTree
from repro.store import RunStore

__all__ = [
    "__version__",
    "AntennaAssignment",
    "ArtifactCache",
    "BatchResult",
    "DiGraph",
    "EnsembleBatch",
    "EnsembleRequest",
    "FrontierBatch",
    "FrontierRequest",
    "GridCell",
    "OrientationResult",
    "Perturbation",
    "PlanCancelled",
    "PlanRequest",
    "PointSet",
    "ReproError",
    "RequestBase",
    "RootedTree",
    "RunStore",
    "Scenario",
    "Sector",
    "Shard",
    "SpanningTree",
    "assemble",
    "choose_algorithm",
    "execute_ensemble",
    "execute_frontier",
    "execute_plan",
    "critical_range",
    "directed_vertex_connectivity",
    "euclidean_mst",
    "is_strongly_c_connected",
    "is_strongly_connected",
    "kernel_counters",
    "polar_tables",
    "reset_kernel_counters",
    "lemma1_orientation",
    "lemma1_required_spread",
    "load_result",
    "save_result",
    "optimal_star_spread",
    "orient_antennae",
    "orient_k1",
    "orient_k2_zero_spread",
    "orient_theorem2",
    "orient_theorem3",
    "orient_theorem5",
    "orient_theorem6",
    "paper_range_bound",
    "submit",
    "table1_rows",
    "transmission_graph",
]
