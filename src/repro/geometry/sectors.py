"""Circular-sector model of a directional antenna beam.

A :class:`Sector` is the closed region swept counterclockwise from direction
``start`` through ``start + spread``, restricted to radius ``radius``, with
apex at some point (the apex is *not* stored here — the antenna model in
:mod:`repro.antenna.model` binds sectors to sensor indices; a bare Sector is
apex-relative).

Spread 0 is a single ray (the paper's "antennae of angle 0"): it covers
exactly the points lying on the ray within range, up to epsilon tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import (
    TWO_PI,
    angle_of,
    bisector,
    ccw_angle,
    in_ccw_interval,
    normalize_angle,
)

__all__ = [
    "Sector",
    "sector_between",
    "sector_toward",
    "radius_tolerance",
    "DEFAULT_ANGLE_EPS",
]

#: Absolute angular tolerance (radians) for boundary-inclusive coverage.
DEFAULT_ANGLE_EPS = 1e-9


def radius_tolerance(radius, eps: float = DEFAULT_ANGLE_EPS):
    """The distance tolerance used by every radius-inclusion test.

    Scales with the radius (``eps * max(1, r)``) so coverage is robust at
    any instance scale; an infinite radius contributes no scaling.  This is
    the single source of truth shared by :meth:`Sector.covers_offsets`, the
    batched coverage kernel and the critical-range search — their ``eps``
    semantics must agree or the measured critical range would not be the
    radius at which coverage switches on.  Vectorized over ``radius``.
    """
    r = np.asarray(radius, dtype=float)
    out = eps * np.maximum(1.0, np.where(np.isfinite(r), r, 1.0))
    return float(out) if np.ndim(radius) == 0 else out


@dataclass(frozen=True)
class Sector:
    """A closed circular sector: ccw from ``start`` spanning ``spread``.

    Attributes
    ----------
    start:
        Direction (radians) of the clockwise-most boundary ray.
    spread:
        Angular width in ``[0, 2π]``.  ``spread == 2π`` is omnidirectional.
    radius:
        Maximum reach; ``inf`` means unbounded (useful for pure angular
        containment tests).
    """

    start: float
    spread: float
    radius: float = np.inf

    def __post_init__(self) -> None:
        if not np.isfinite(self.spread) or not (0.0 <= self.spread <= TWO_PI + 1e-12):
            raise InvalidParameterError(f"sector spread must be in [0, 2*pi], got {self.spread}")
        if self.radius < 0:
            raise InvalidParameterError(f"sector radius must be >= 0, got {self.radius}")
        object.__setattr__(self, "start", float(normalize_angle(self.start)))
        object.__setattr__(self, "spread", float(min(self.spread, TWO_PI)))

    # -- derived geometry ------------------------------------------------------
    @property
    def end(self) -> float:
        """Direction of the counterclockwise-most boundary ray."""
        return float(normalize_angle(self.start + self.spread))

    @property
    def orientation(self) -> float:
        """Bisector direction (the antenna's "boresight")."""
        return bisector(self.start, self.spread)

    # -- queries ------------------------------------------------------------------
    def contains_direction(self, theta, *, eps: float = DEFAULT_ANGLE_EPS):
        """Angular containment test; vectorized over ``theta``."""
        return in_ccw_interval(theta, self.start, self.spread, eps=eps)

    def covers_offsets(
        self, offsets: np.ndarray, *, eps: float = DEFAULT_ANGLE_EPS
    ) -> np.ndarray:
        """Which apex-relative 2-D ``offsets`` does the sector cover?

        The apex itself (offset ``(0, 0)``) is *not* covered: a sensor never
        has an edge to itself.  Distance tolerance scales with the radius so
        the test is robust at any instance scale.
        """
        off = np.asarray(offsets, dtype=float)
        dist = np.hypot(off[..., 0], off[..., 1])
        within = dist <= self.radius + radius_tolerance(self.radius, eps)
        nonzero = dist > 0.0
        ang = self.contains_direction(angle_of(off), eps=eps)
        return within & nonzero & ang

    def covers_point(self, apex, point, *, eps: float = DEFAULT_ANGLE_EPS) -> bool:
        """Does a sector with the given ``apex`` cover ``point``?"""
        off = np.asarray(point, dtype=float) - np.asarray(apex, dtype=float)
        return bool(self.covers_offsets(off[None, :], eps=eps)[0])

    def with_radius(self, radius: float) -> "Sector":
        """Copy of this sector with a different radius."""
        return Sector(self.start, self.spread, radius)

    def rotated(self, delta: float) -> "Sector":
        """Copy rotated ccw by ``delta`` radians."""
        return Sector(self.start + delta, self.spread, self.radius)


def sector_between(
    apex, point_a, point_b, *, radius: float = np.inf, pad: float = 0.0
) -> Sector:
    """Smallest sector at ``apex`` sweeping ccw from ray→``point_a`` to ray→``point_b``.

    This is the construction used throughout Theorem 3's proof: "one antenna
    covers the sector between rays ``~ua`` and ``~ub``".  Both boundary rays
    (hence both points, if within radius) are covered.  ``pad`` widens the
    sector symmetrically by ``pad/2`` per side for numerical headroom.
    """
    apex = np.asarray(apex, dtype=float)
    a = angle_of(np.asarray(point_a, dtype=float) - apex)
    b = angle_of(np.asarray(point_b, dtype=float) - apex)
    sweep = float(ccw_angle(a, b))
    if pad:
        return Sector(a - pad / 2.0, min(sweep + pad, TWO_PI), radius)
    return Sector(a, sweep, radius)


def sector_toward(apex, point, *, spread: float = 0.0, radius: float = np.inf) -> Sector:
    """Sector centred on the ray from ``apex`` to ``point``.

    With the default ``spread=0`` this is the paper's angle-0 antenna aimed
    at a specific sensor.
    """
    apex = np.asarray(apex, dtype=float)
    direction = angle_of(np.asarray(point, dtype=float) - apex)
    return Sector(direction - spread / 2.0, spread, radius)
