"""Planar geometry primitives: angles, point sets, sectors, triangles.

Conventions (matching the paper, §1.2):

* angles are in radians, measured counterclockwise from the +x axis;
* ``ccw_angle(a, b)`` is the counterclockwise sweep from direction ``a`` to
  direction ``b`` in ``[0, 2π)``;
* the paper's ``∠uvw`` (ccw angle between rays ``v→u`` and ``v→w``) is
  :func:`repro.geometry.angles.angle_uvw`;
* sectors are closed (boundary-inclusive) with a small epsilon tolerance.
"""

from repro.geometry.angles import (
    TWO_PI,
    angle_of,
    angle_uvw,
    ccw_angle,
    ccw_gaps,
    circular_windows_sum,
    in_ccw_interval,
    normalize_angle,
    signed_angle_diff,
)
from repro.geometry.points import PointSet, pairwise_distances, chord_length
from repro.geometry.sectors import Sector, sector_between, sector_toward
from repro.geometry.triangles import (
    triangle_is_empty,
    law_of_cosines_side,
    max_pair_distance_bound,
)

__all__ = [
    "TWO_PI",
    "angle_of",
    "angle_uvw",
    "ccw_angle",
    "ccw_gaps",
    "circular_windows_sum",
    "in_ccw_interval",
    "normalize_angle",
    "signed_angle_diff",
    "PointSet",
    "pairwise_distances",
    "chord_length",
    "Sector",
    "sector_between",
    "sector_toward",
    "triangle_is_empty",
    "law_of_cosines_side",
    "max_pair_distance_bound",
]
