"""Validated planar point sets.

:class:`PointSet` wraps an ``(n, 2)`` float64 array, validating finiteness
and pairwise distinctness once so downstream algorithms can assume a clean
input.  It exposes the vectorized kernels (distance rows, distance matrices,
polar angles) every other module uses — keeping the n² work in numpy per the
optimization guide.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidPointSetError
from repro.geometry.angles import angle_of

__all__ = [
    "PointSet",
    "pairwise_distances",
    "max_pairwise_distance",
    "chord_length",
]


def pairwise_distances(coords: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix, shape ``(n, n)``.

    Uses the ``(a-b)² = a² + b² - 2ab`` expansion with a clip to guard the
    tiny negative values rounding can introduce.
    """
    c = np.asarray(coords, dtype=float)
    sq = np.einsum("ij,ij->i", c, c)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (c @ c.T)
    np.clip(d2, 0.0, None, out=d2)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(d2)


#: Below this size the diameter is taken over all pairs with the same
#: ``np.hypot`` expression as the polar tables — bit-identical to
#: ``PolarTables.dist.max()`` by construction.
_BRUTE_DIAMETER_MAX_N = 4096

#: Elements per ``(block, n)`` temporary in the brute diameter pass.
_DIAM_BLOCK_ELEMS = 4_000_000


def _hypot_max(c: np.ndarray, rows: np.ndarray) -> float:
    """Max ``hypot`` distance from any of ``rows`` to any point (blockwise)."""
    best = 0.0
    block = max(1, _DIAM_BLOCK_ELEMS // max(c.shape[0], 1))
    for lo in range(0, rows.shape[0], block):
        sub = c[rows[lo : lo + block]]
        off = c[None, :, :] - sub[:, None, :]
        d = np.hypot(off[..., 0], off[..., 1])
        best = max(best, float(d.max()) if d.size else 0.0)
    return best


def max_pairwise_distance(coords: np.ndarray) -> float:
    """The largest ``np.hypot`` pairwise distance, without ``(n, n)`` memory.

    The sparse measurement path's replacement for ``tables.dist.max()``:
    small instances take a brute blockwise pass over every pair (the same
    float expression as the dense tables, so the value is bit-identical);
    large instances reduce the candidate rows to the convex hull vertices
    (the true diameter endpoints), falling back to the axis-extreme points
    when the hull degenerates (collinear inputs).
    """
    c = np.asarray(coords, dtype=float)
    n = c.shape[0]
    if n <= 1:
        return 0.0
    if n <= _BRUTE_DIAMETER_MAX_N:
        return _hypot_max(c, np.arange(n))
    try:
        from scipy.spatial import ConvexHull

        rows = np.asarray(ConvexHull(c).vertices, dtype=np.int64)
    except Exception:  # QhullError on degenerate input, or no scipy
        rows = np.unique(
            [
                int(np.argmin(c[:, 0])), int(np.argmax(c[:, 0])),
                int(np.argmin(c[:, 1])), int(np.argmax(c[:, 1])),
                int(np.argmin(c[:, 0] + c[:, 1])), int(np.argmax(c[:, 0] + c[:, 1])),
                int(np.argmin(c[:, 0] - c[:, 1])), int(np.argmax(c[:, 0] - c[:, 1])),
            ]
        )
    return _hypot_max(c, rows)


def chord_length(theta, radius: float = 1.0):
    """Chord subtended by angle ``theta`` on a circle of ``radius``: 2r·sin(θ/2).

    This is the paper's recurring bound: two points within distance ``r`` of
    an apex, separated by angle θ at the apex, are at most ``2r·sin(θ/2)``
    apart (for θ ≥ π/3; see Fact 1(2)).
    """
    return 2.0 * radius * np.sin(np.asarray(theta, dtype=float) / 2.0)


class PointSet:
    """Immutable set of ``n`` distinct, finite points in the plane.

    Parameters
    ----------
    coords:
        Array-like of shape ``(n, 2)``.
    min_separation:
        Two points closer than this (absolute) are considered duplicates.

    Notes
    -----
    The coordinate array is copied and marked read-only: orientation results
    keep references to their point set and must not be mutable from outside.
    """

    __slots__ = ("_coords",)

    def __init__(self, coords, *, min_separation: float = 0.0):
        arr = np.array(coords, dtype=float, copy=True)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise InvalidPointSetError(
                f"expected an (n, 2) array of planar points, got shape {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise InvalidPointSetError("point set must contain at least one point")
        if not np.all(np.isfinite(arr)):
            raise InvalidPointSetError("point coordinates must be finite")
        self._coords = arr
        self._coords.setflags(write=False)
        if arr.shape[0] > 1:
            self._check_distinct(min_separation)

    def _check_distinct(self, min_separation: float) -> None:
        # Sort lexicographically; exact duplicates land adjacent, so a single
        # O(n log n) pass catches them without the n² matrix.
        order = np.lexsort((self._coords[:, 1], self._coords[:, 0]))
        srt = self._coords[order]
        same = np.all(np.abs(np.diff(srt, axis=0)) <= min_separation, axis=1)
        if np.any(same):
            i = int(np.argmax(same))
            a, b = order[i], order[i + 1]
            raise InvalidPointSetError(
                f"points {a} and {b} coincide at {srt[i].tolist()}"
            )

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return int(self._coords.shape[0])

    def __getitem__(self, idx) -> np.ndarray:
        return self._coords[idx]

    def __iter__(self):
        return iter(self._coords)

    def __repr__(self) -> str:
        return f"PointSet(n={len(self)})"

    # -- accessors ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """The read-only ``(n, 2)`` coordinate array."""
        return self._coords

    @property
    def n(self) -> int:
        return len(self)

    # -- kernels ----------------------------------------------------------------
    def distance(self, i: int, j: int) -> float:
        """Euclidean distance between points ``i`` and ``j``."""
        return float(np.hypot(*(self._coords[i] - self._coords[j])))

    def distances_from(self, i: int) -> np.ndarray:
        """Vector of distances from point ``i`` to every point (0 at ``i``)."""
        diff = self._coords - self._coords[i]
        return np.hypot(diff[:, 0], diff[:, 1])

    def distance_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` distance matrix (computed on demand, not cached)."""
        return pairwise_distances(self._coords)

    def angles_from(self, i: int, targets=None) -> np.ndarray:
        """Polar angles of rays from point ``i`` toward ``targets``.

        ``targets`` defaults to all points; the entry for ``i`` itself is 0
        by ``arctan2(0, 0)`` convention and should be masked by callers.
        """
        idx = slice(None) if targets is None else np.asarray(targets, dtype=int)
        diff = self._coords[idx] - self._coords[i]
        return angle_of(diff)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lower_left, upper_right)`` corners of the axis-aligned bbox."""
        return self._coords.min(axis=0), self._coords.max(axis=0)

    def translated(self, offset) -> "PointSet":
        """A new PointSet shifted by ``offset`` (shape ``(2,)``)."""
        return PointSet(self._coords + np.asarray(offset, dtype=float))

    def scaled(self, factor: float) -> "PointSet":
        """A new PointSet with coordinates multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise InvalidPointSetError(f"scale factor must be positive, got {factor}")
        return PointSet(self._coords * float(factor))
