"""Angular arithmetic on the circle, scalar and vectorized.

All functions accept floats or numpy arrays and broadcast like numpy ufuncs.
Angles are radians.  ``normalize_angle`` maps to ``[0, 2π)``;
``signed_angle_diff`` maps to ``(-π, π]``.

These are the primitives every orientation algorithm in :mod:`repro.core`
is built on, so they are deliberately small, pure, and vectorized (see the
scientific-Python optimization guide: avoid Python-level loops in kernels).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

TWO_PI = 2.0 * np.pi

#: Acceptance slop above 2π for angular *budgets*: accumulated float error
#: (e.g. ``4 * pi / 2``) is tolerated and snapped to 2π by
#: :func:`clamp_angular_budget`; anything larger is a caller bug.
BUDGET_SLOP = 1e-12

__all__ = [
    "TWO_PI",
    "BUDGET_SLOP",
    "clamp_angular_budget",
    "normalize_angle",
    "ccw_angle",
    "signed_angle_diff",
    "angle_of",
    "angle_uvw",
    "in_ccw_interval",
    "ccw_gaps",
    "circular_windows_sum",
    "bisector",
]


def clamp_angular_budget(phi: float, what: str = "phi") -> float:
    """Validate an angular-sum budget and clamp it to ``[0, 2π]`` exactly.

    The single validate-and-clamp rule shared by the spec layer
    (``GridCell`` / ``FrontierRequest``) and the planner
    (:func:`repro.core.planner.choose_dispatch` / ``orient_antennae``):
    values within :data:`BUDGET_SLOP` above 2π snap to 2π — downstream
    sector construction assumes φ ≤ 2π exactly, and the clamped value is
    what gets fingerprinted and ledgered — while anything further out
    raises.  Keeping one implementation guarantees a φ the spec accepts is
    never rejected (or left unclamped) at probe time.

    Raises :class:`~repro.errors.InvalidParameterError` outside
    ``[0, 2π + BUDGET_SLOP]``.
    """
    phi = float(phi)
    if not 0.0 <= phi <= TWO_PI + BUDGET_SLOP:
        raise InvalidParameterError(f"{what} must be in [0, 2pi], got {phi}")
    return min(phi, TWO_PI)


def normalize_angle(theta):
    """Map angle(s) into ``[0, 2π)``.

    >>> normalize_angle(-np.pi / 2) == 3 * np.pi / 2
    True
    """
    out = np.mod(theta, TWO_PI)
    # np.mod can return TWO_PI itself for inputs like -1e-17 due to rounding.
    return np.where(out >= TWO_PI, out - TWO_PI, out) if np.ndim(out) else (
        out - TWO_PI if out >= TWO_PI else out
    )


def ccw_angle(frm, to):
    """Counterclockwise sweep from direction ``frm`` to direction ``to``.

    Returns values in ``[0, 2π)``.  ``ccw_angle(a, a) == 0``.
    """
    return normalize_angle(np.asarray(to, dtype=float) - np.asarray(frm, dtype=float))


def signed_angle_diff(a, b):
    """Smallest signed difference ``a - b`` mapped to ``(-π, π]``.

    Useful for "is direction a within spread/2 of direction b" tests.
    """
    d = np.mod(np.asarray(a, dtype=float) - np.asarray(b, dtype=float), TWO_PI)
    out = np.where(d > np.pi, d - TWO_PI, d)
    return float(out) if np.ndim(out) == 0 else out


def angle_of(vec) -> np.ndarray:
    """Polar angle(s) of 2-D vector(s); shape (..., 2) -> shape (...)."""
    v = np.asarray(vec, dtype=float)
    return normalize_angle(np.arctan2(v[..., 1], v[..., 0]))


def angle_uvw(u, v, w) -> float:
    """The paper's ``∠uvw``: ccw angle between rays ``v→u`` and ``v→w``.

    All arguments are 2-D points.  The result is in ``[0, 2π)``; note it is
    *directional*: ``angle_uvw(u, v, w) + angle_uvw(w, v, u) ∈ {0, 2π}``.
    """
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    w = np.asarray(w, dtype=float)
    return float(ccw_angle(angle_of(u - v), angle_of(w - v)))


def in_ccw_interval(theta, start, sweep, *, eps: float = 1e-9):
    """Is direction ``theta`` inside the closed ccw interval ``[start, start+sweep]``?

    ``sweep`` must be in ``[0, 2π]``.  Boundary-inclusive with absolute
    tolerance ``eps`` (radians).  Vectorized over ``theta``.
    """
    sweep = float(sweep)
    if sweep < 0 or sweep > TWO_PI + 1e-12:
        raise ValueError(f"sweep must be within [0, 2*pi], got {sweep}")
    if sweep >= TWO_PI - eps:
        return np.full(np.shape(theta), True) if np.ndim(theta) else True
    rel = ccw_angle(start, theta)
    inside = rel <= sweep + eps
    # Points an epsilon *before* start wrap to ~2π; accept those too.
    near_start = rel >= TWO_PI - eps
    return inside | near_start if np.ndim(rel) else bool(inside or near_start)


def ccw_gaps(angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort directions ccw and return ``(order, gaps)``.

    ``order`` indexes the input so ``angles[order]`` is ascending in
    ``[0, 2π)``; ``gaps[i]`` is the ccw gap from ``angles[order[i]]`` to the
    next sorted direction (cyclically).  ``gaps.sum() == 2π`` for ``n >= 1``
    (a single direction has one gap of 2π).
    """
    a = normalize_angle(np.asarray(angles, dtype=float))
    if a.ndim != 1 or a.size == 0:
        raise ValueError("ccw_gaps expects a non-empty 1-D array of angles")
    order = np.argsort(a, kind="stable")
    srt = a[order]
    gaps = np.empty_like(srt)
    if srt.size == 1:
        gaps[0] = TWO_PI
    else:
        gaps[:-1] = np.diff(srt)
        gaps[-1] = TWO_PI - (srt[-1] - srt[0])
    return order, gaps


def circular_windows_sum(gaps: np.ndarray, k: int) -> np.ndarray:
    """Sums of all ``k`` consecutive gaps around the circle.

    ``out[i] = gaps[i] + gaps[i+1] + ... + gaps[i+k-1]`` with cyclic indices.
    Used by Lemma 1 to find the window of ``k`` consecutive angular gaps with
    maximum total (the antennae then skip that window).
    """
    g = np.asarray(gaps, dtype=float)
    n = g.size
    if not 1 <= k <= n:
        raise ValueError(f"window size k={k} must be in [1, {n}]")
    doubled = np.concatenate([g, g[: k - 1]])
    csum = np.concatenate([[0.0], np.cumsum(doubled)])
    return csum[k : k + n] - csum[:n]


def bisector(start: float, sweep: float) -> float:
    """Center direction of the ccw interval ``[start, start + sweep]``."""
    return float(normalize_angle(start + 0.5 * sweep))
