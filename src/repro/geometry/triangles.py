"""Triangle utilities backing Fact 1 of the paper.

Fact 1 (for ``u, w`` adjacent neighbours of ``v`` in an MST):

1. ``∠uvw ≥ π/3``;
2. ``d(u, w) ≤ 2·sin(∠uvw / 2)`` when edge lengths are ≤ 1;
3. the triangle ``△uvw`` is empty (contains no other point of the set).
"""

from __future__ import annotations

import numpy as np

__all__ = ["law_of_cosines_side", "max_pair_distance_bound", "triangle_is_empty"]


def law_of_cosines_side(a: float, b: float, gamma) -> np.ndarray:
    """Third side of a triangle with sides ``a``, ``b`` and included angle γ."""
    g = np.asarray(gamma, dtype=float)
    c2 = a * a + b * b - 2.0 * a * b * np.cos(g)
    return np.sqrt(np.clip(c2, 0.0, None))


def max_pair_distance_bound(theta, r_a: float = 1.0, r_b: float = 1.0) -> np.ndarray:
    """Max distance between two points at radii ≤ ``r_a``, ``r_b`` and angle θ apart.

    The maximum of the law of cosines over radii in ``[0, r_a] × [0, r_b]``:
    attained at the outer corner when ``cos θ ≤ min(r_a/ (2 r_b), r_b/(2 r_a))``-ish;
    we simply evaluate the three candidate corners, which is exact.
    """
    theta = np.asarray(theta, dtype=float)
    corner = law_of_cosines_side(r_a, r_b, theta)
    return np.maximum.reduce([corner, np.full_like(corner, r_a), np.full_like(corner, r_b)])


def triangle_is_empty(
    tri: np.ndarray, points: np.ndarray, *, eps: float = 1e-12
) -> bool:
    """Is the closed triangle free of other points (vertices excluded)?

    ``tri`` is ``(3, 2)``; ``points`` is ``(m, 2)``.  Points exactly equal to
    a triangle vertex are ignored; points strictly inside or on an edge make
    the triangle non-empty.  Uses barycentric sign tests, vectorized.
    """
    tri = np.asarray(tri, dtype=float)
    pts = np.asarray(points, dtype=float)
    if tri.shape != (3, 2):
        raise ValueError(f"tri must have shape (3, 2), got {tri.shape}")
    if pts.size == 0:
        return True
    a, b, c = tri
    # Degenerate triangle: treat the (zero-area) region as empty of interior.
    area2 = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    if abs(area2) <= eps:
        return True

    def side(p0, p1, q):
        return (p1[0] - p0[0]) * (q[:, 1] - p0[1]) - (p1[1] - p0[1]) * (q[:, 0] - p0[0])

    s1 = side(a, b, pts)
    s2 = side(b, c, pts)
    s3 = side(c, a, pts)
    if area2 < 0:
        s1, s2, s3 = -s1, -s2, -s3
    scale = abs(area2)
    tol = eps * max(scale, 1.0)
    inside = (s1 >= -tol) & (s2 >= -tol) & (s3 >= -tol)
    if not np.any(inside):
        return True
    # Exclude the triangle's own vertices.
    cand = pts[inside]
    for v in (a, b, c):
        cand = cand[~np.all(np.abs(cand - v) <= 1e-12, axis=1)]
    return cand.shape[0] == 0
