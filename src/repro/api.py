"""The single public surface of the library.

Everything that runs a request — the CLI, the planning service
(:mod:`repro.service`), worker processes, benchmarks, user scripts —
routes through this façade, and user code should import *from here*:

>>> from repro.api import submit, PlanRequest           # doctest: +SKIP
>>> result = submit(request, store=store, resume=True)  # doctest: +SKIP

Dispatch is a kind-keyed executor registry, not an isinstance chain:
every request kind (``"sweep"``, ``"frontier"``, ``"ensemble"``) derives
from :class:`~repro.engine._spec.RequestBase` — which owns
fingerprinting, versioned wire serialization
(:meth:`~repro.engine._spec.RequestBase.to_wire` /
:func:`~repro.engine._spec.request_from_wire`) and backend validation —
and registers its executor triple (execute / load rows / assemble) under
its ``KIND`` via :func:`register_executor`.  A request that round-trips
the service's wire format therefore executes identically to one
constructed in-process, for every kind, without this module enumerating
them.

Deep imports of the implementation modules (``repro.engine.spec``,
``repro.frontier.solver``, ``repro.service.wire``) keep working through
thin shims that emit :class:`DeprecationWarning`; the test suite treats
those warnings as errors internally, so nothing inside the library leans
on the deprecated paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.engine.cache import ArtifactCache
from repro.engine.executor import BatchResult, InstanceReport, execute_plan
from repro.engine._spec import (
    WIRE_VERSION,
    FrontierRequest,
    GridCell,
    PlanRequest,
    RequestBase,
    Scenario,
    Shard,
    UnknownRequestKind,
    UnsupportedWireVersion,
    WireFormatError,
    request_from_wire,
)
from repro.ensemble.executor import (
    EnsembleBatch,
    assemble_ensemble,
    execute_ensemble,
)
from repro.ensemble.spec import EnsembleRequest, Perturbation
from repro.errors import InvalidParameterError, PlanCancelled, ReproError
from repro.frontier.executor import (
    FrontierBatch,
    assemble_frontier,
    execute_frontier,
)

__all__ = [
    # entry points
    "submit",
    "assemble",
    "assemble_rows",
    "register_executor",
    # request model
    "RequestBase",
    "PlanRequest",
    "FrontierRequest",
    "EnsembleRequest",
    "Perturbation",
    "Scenario",
    "GridCell",
    "Shard",
    # result types
    "BatchResult",
    "FrontierBatch",
    "EnsembleBatch",
    "InstanceReport",
    # wire format
    "WIRE_VERSION",
    "request_from_wire",
    "WireFormatError",
    "UnknownRequestKind",
    "UnsupportedWireVersion",
    # errors
    "ReproError",
    "InvalidParameterError",
    "PlanCancelled",
]

#: What :func:`submit` returns: the result type of the request's kind.
SubmitResult = Union[BatchResult, FrontierBatch, EnsembleBatch]


@dataclass(frozen=True)
class _ExecutorEntry:
    """One request kind's executor triple."""

    execute: Callable[..., Any]
    load_rows: Callable[[Any, str], dict[int, Any]]
    assemble: Callable[..., Any]


_EXECUTORS: dict[str, _ExecutorEntry] = {}


def register_executor(
    kind: str,
    *,
    execute: Callable[..., Any],
    load_rows: Callable[[Any, str], dict[int, Any]],
    assemble: Callable[..., Any],
) -> None:
    """Register a request kind's executor triple.

    ``execute(request, **durable_kwargs)`` runs the request;
    ``load_rows(store, plan_key)`` fetches its ledgered rows;
    ``assemble(request, rows, allow_partial=...)`` rebuilds the result
    purely from those rows.  :func:`submit` and :func:`assemble` dispatch
    on ``request.KIND`` through this registry.
    """
    _EXECUTORS[kind] = _ExecutorEntry(execute, load_rows, assemble)


def _entry(request: RequestBase) -> _ExecutorEntry:
    kind = getattr(type(request), "KIND", None)
    entry = _EXECUTORS.get(kind)
    if entry is None:
        raise InvalidParameterError(
            f"no executor registered for request kind {kind!r} "
            f"(got {type(request).__name__}); known kinds: "
            f"{sorted(_EXECUTORS)}"
        )
    return entry


def _load_sweep_rows(store: Any, key: str) -> dict[int, Any]:
    return store.load_rows(key)


def _load_frontier_rows(store: Any, key: str) -> dict[int, Any]:
    return store.load_frontier_rows(key)


def _load_ensemble_rows(store: Any, key: str) -> dict[int, Any]:
    return store.load_ensemble_rows(key)


def _assemble_sweep(request: Any, rows: Any, *, allow_partial: bool = False):
    from repro.store.ledger import assemble_batch  # lazy: avoids cycle

    return assemble_batch(request, rows, allow_partial=allow_partial)


register_executor(
    PlanRequest.KIND,
    execute=execute_plan,
    load_rows=_load_sweep_rows,
    assemble=_assemble_sweep,
)
register_executor(
    FrontierRequest.KIND,
    execute=execute_frontier,
    load_rows=_load_frontier_rows,
    assemble=assemble_frontier,
)
register_executor(
    EnsembleRequest.KIND,
    execute=execute_ensemble,
    load_rows=_load_ensemble_rows,
    assemble=assemble_ensemble,
)


def submit(
    request: RequestBase,
    *,
    store: Any = None,
    shard: "Shard | tuple[int, int] | None" = None,
    resume: bool = False,
    backend: "str | None" = None,
    jobs: int = 1,
    cache: "ArtifactCache | None" = None,
    on_instance: "Callable[[InstanceReport], None] | None" = None,
) -> SubmitResult:
    """Execute any request kind through its executor; block until done.

    Parameters are the shared durable-execution surface (identical
    meaning to :func:`~repro.engine.execute_plan` /
    :func:`~repro.frontier.execute_frontier` /
    :func:`~repro.ensemble.execute_ensemble`):

    store / shard / resume:
        Checkpoint into a :class:`~repro.store.RunStore`, restrict to one
        round-robin :class:`Shard`, replay already-ledgered chunks.
    backend:
        Kernel backend name (``None`` → request field → ``REPRO_BACKEND``
        env → numpy default).
    jobs:
        Worker processes for chunk fan-out; ``<= 1`` runs inline.
    cache / on_instance:
        Serial-path artifact cache injection and per-instance progress
        hook, as on the executors.

    Returns :class:`BatchResult` for a :class:`PlanRequest`,
    :class:`FrontierBatch` for a :class:`FrontierRequest`,
    :class:`EnsembleBatch` for an :class:`EnsembleRequest`.  Raises
    :class:`~repro.errors.PlanCancelled` if the store carries the plan's
    cancellation tombstone (clear it with
    :meth:`~repro.store.RunStore.clear_cancel` and resubmit with
    ``resume=True`` to continue).
    """
    return _entry(request).execute(
        request,
        jobs=jobs,
        cache=cache,
        on_instance=on_instance,
        store=store,
        shard=shard,
        resume=resume,
        backend=backend,
    )


def assemble(
    request: RequestBase,
    store: Any,
    *,
    allow_partial: bool = False,
) -> SubmitResult:
    """Rebuild the full result of ``request`` purely from ledger rows.

    The read-side twin of :func:`submit`: loads the kind's ledgered rows
    and reassembles through the registry.  No kernel work runs; with
    ``allow_partial=False`` every plan slot must be ledgered (across any
    shard files in the run directory).
    """
    entry = _entry(request)
    rows = entry.load_rows(store, request.fingerprint())
    return entry.assemble(request, rows, allow_partial=allow_partial)


def assemble_rows(
    request: RequestBase,
    rows: dict[int, Any],
    *,
    allow_partial: bool = False,
) -> SubmitResult:
    """Like :func:`assemble`, from already-loaded ledger rows.

    For callers that gathered the rows themselves — e.g. ``repro merge``
    after :func:`~repro.store.merge_stores` pooled shard ledgers from
    several run directories.
    """
    return _entry(request).assemble(request, rows, allow_partial=allow_partial)
