"""The one public entry point for executing plans: :func:`submit`.

Everything that runs a request — the CLI, the planning service
(:mod:`repro.service`), worker processes, benchmarks, user scripts —
routes through this façade:

>>> from repro.api import submit, PlanRequest          # doctest: +SKIP
>>> result = submit(request, store=store, resume=True) # doctest: +SKIP

:func:`submit` dispatches on the request type (:class:`PlanRequest` →
:func:`repro.engine.execute_plan`, :class:`FrontierRequest` →
:func:`repro.frontier.execute_frontier`) with one shared keyword surface
for durability (``store``/``shard``/``resume``), fan-out (``jobs``) and
kernel selection (``backend``).  Both request kinds derive from
:class:`repro.engine.spec.RequestBase`, which owns fingerprinting,
wire-format serialization (:meth:`~repro.engine.spec.RequestBase.to_wire`
/ :func:`repro.engine.spec.request_from_wire`) and backend validation —
so a request that round-trips the service's wire format executes
identically to one constructed in-process.

The request/result types are re-exported here so service code (and user
code) can depend on :mod:`repro.api` alone.
"""

from __future__ import annotations

from typing import Any, Callable, Union

from repro.engine.cache import ArtifactCache
from repro.engine.executor import BatchResult, InstanceReport, execute_plan
from repro.engine.spec import (
    FrontierRequest,
    GridCell,
    PlanRequest,
    RequestBase,
    Scenario,
    Shard,
    request_from_wire,
)
from repro.errors import InvalidParameterError, PlanCancelled
from repro.frontier.executor import FrontierBatch, execute_frontier

__all__ = [
    "submit",
    "assemble",
    "RequestBase",
    "PlanRequest",
    "FrontierRequest",
    "Scenario",
    "GridCell",
    "Shard",
    "BatchResult",
    "FrontierBatch",
    "InstanceReport",
    "PlanCancelled",
    "request_from_wire",
]

#: What :func:`submit` returns: the sweep or frontier result type.
SubmitResult = Union[BatchResult, FrontierBatch]


def submit(
    request: RequestBase,
    *,
    store: Any = None,
    shard: "Shard | tuple[int, int] | None" = None,
    resume: bool = False,
    backend: "str | None" = None,
    jobs: int = 1,
    cache: "ArtifactCache | None" = None,
    on_instance: "Callable[[InstanceReport], None] | None" = None,
) -> SubmitResult:
    """Execute any request kind through its executor; block until done.

    Parameters are the shared durable-execution surface (identical
    meaning to :func:`~repro.engine.execute_plan` /
    :func:`~repro.frontier.execute_frontier`):

    store / shard / resume:
        Checkpoint into a :class:`~repro.store.RunStore`, restrict to one
        round-robin :class:`Shard`, replay already-ledgered chunks.
    backend:
        Kernel backend name (``None`` → request field → ``REPRO_BACKEND``
        env → numpy default).
    jobs:
        Worker processes for chunk fan-out; ``<= 1`` runs inline.
    cache / on_instance:
        Serial-path artifact cache injection and per-instance progress
        hook, as on the executors.

    Returns :class:`BatchResult` for a :class:`PlanRequest`,
    :class:`FrontierBatch` for a :class:`FrontierRequest`.  Raises
    :class:`~repro.errors.PlanCancelled` if the store carries the plan's
    cancellation tombstone (clear it with
    :meth:`~repro.store.RunStore.clear_cancel` and resubmit with
    ``resume=True`` to continue).
    """
    kwargs: dict[str, Any] = dict(
        jobs=jobs,
        cache=cache,
        on_instance=on_instance,
        store=store,
        shard=shard,
        resume=resume,
        backend=backend,
    )
    if isinstance(request, PlanRequest):
        return execute_plan(request, **kwargs)
    if isinstance(request, FrontierRequest):
        return execute_frontier(request, **kwargs)
    raise InvalidParameterError(
        f"submit() needs a PlanRequest or FrontierRequest, "
        f"got {type(request).__name__}"
    )


def assemble(
    request: RequestBase,
    store: Any,
    *,
    allow_partial: bool = False,
) -> SubmitResult:
    """Rebuild the full result of ``request`` purely from ledger rows.

    The read-side twin of :func:`submit`: dispatches to
    :func:`repro.store.assemble_batch` or
    :func:`repro.frontier.assemble_frontier` on the request kind.  No
    kernel work runs; with ``allow_partial=False`` every plan slot must be
    ledgered (across any shard files in the run directory).
    """
    from repro.frontier.executor import assemble_frontier
    from repro.store.ledger import assemble_batch

    if isinstance(request, PlanRequest):
        return assemble_batch(
            request,
            store.load_rows(request.fingerprint()),
            allow_partial=allow_partial,
        )
    if isinstance(request, FrontierRequest):
        return assemble_frontier(
            request,
            store.load_frontier_rows(request.fingerprint()),
            allow_partial=allow_partial,
        )
    raise InvalidParameterError(
        f"assemble() needs a PlanRequest or FrontierRequest, "
        f"got {type(request).__name__}"
    )
