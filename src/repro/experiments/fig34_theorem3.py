"""Experiments F3/F4 — Figures 3 and 4: Theorem 3's case analysis in action.

Figure 3 (part 1, φ = π) and Figure 4 (part 2, 2π/3 ≤ φ < π) are the
proof's case diagrams.  We reproduce them executably: run the construction
over workloads engineered to hit every degree, count how often each case
fires, and verify the per-part range guarantee
(2·sin(2π/9) for part 1; 2·sin(π/2 − φ/4) for part 2).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.theorem3 import orient_theorem3
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import clustered_points, make_workload, perturbed_star
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

__all__ = ["run_fig3", "run_fig4", "theorem3_case_census"]


def _instances(tag: str, trials: int):
    """Mixed workload stream hitting every MST degree."""
    for s in range(trials):
        kind = s % 4
        seed = stable_seed(tag, s)
        if kind == 0:
            yield perturbed_star(5, leg=2, seed=seed)
        elif kind == 1:
            yield perturbed_star(4, leg=3, seed=seed)
        elif kind == 2:
            yield clustered_points(72, clusters=6, cluster_std=0.4, seed=seed)
        else:
            yield make_workload("uniform", 64, seed)


def theorem3_case_census(phi: float, part: int, *, trials: int = 40) -> tuple[Counter, float, bool]:
    """Run the construction; return (case counts, worst realized range, all ok)."""
    cases: Counter = Counter()
    worst = 0.0
    all_ok = True
    for pts in _instances(f"fig34-{part}-{phi:.3f}", trials):
        ps = PointSet(pts)
        tree = euclidean_mst(ps)
        res = orient_theorem3(ps, phi, tree=tree, part=part)
        cases.update(res.stats["cases"])
        worst = max(worst, res.realized_range_normalized())
        rep = res.validate()
        all_ok &= rep.ok
    return cases, worst, all_ok


def run_fig3(*, trials: int = 40) -> ExperimentRecord:
    rec = ExperimentRecord(
        "F3",
        "Figure 3 / Theorem 3 part 1 (phi = pi): case frequencies and range",
        ["case", "count"],
    )
    cases, worst, ok = theorem3_case_census(np.pi, 1, trials=trials)
    for label in sorted(cases):
        rec.add(label, cases[label])
    bound = 2 * np.sin(2 * np.pi / 9)
    rec.note(f"worst realized range = {worst:.4f} lmax <= bound {bound:.4f}: {worst <= bound + 1e-9}")
    rec.note(f"all validations passed: {ok}")
    return rec


def run_fig4(
    *, phis: tuple[float, ...] = (2 * np.pi / 3, 0.75 * np.pi, 0.9 * np.pi), trials: int = 30
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "F4",
        "Figure 4 / Theorem 3 part 2 (2pi/3 <= phi < pi): cases and range vs phi",
        ["phi", "bound 2sin(pi/2-phi/4)", "worst realized", "ok", "top cases"],
    )
    for phi in phis:
        cases, worst, ok = theorem3_case_census(phi, 2, trials=trials)
        bound = 2 * np.sin(np.pi / 2 - phi / 4)
        top = ", ".join(f"{k}:{v}" for k, v in cases.most_common(4))
        rec.add(round(phi, 4), round(bound, 4), round(worst, 4),
                ok and worst <= bound + 1e-9, top)
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_fig3().to_ascii())
    print(run_fig4().to_ascii())
