"""Synthetic sensor deployments for the experiments.

The paper evaluates nothing empirically (it is a theory paper), so the
reproduction's workloads are chosen to (a) exercise every branch of every
construction and (b) model the deployments the introduction motivates:
uniform fields, clustered installations, corridor/grid plans, and the
adversarial geometries from the proofs (regular polygons for Lemma 1's lower
bound, spiders for the BTSP row, hexagonal lattices for degree ties).

All generators take a ``seed`` (int / Generator / None) and return plain
``(n, 2)`` float arrays; callers wrap them in :class:`PointSet`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import RngLike, as_rng

__all__ = [
    "uniform_points",
    "clustered_points",
    "grid_points",
    "annulus_points",
    "regular_polygon_star",
    "spider_points",
    "hexagonal_lattice",
    "perturbed_star",
    "caterpillar_points",
    "WORKLOADS",
    "make_workload",
]


def uniform_points(n: int, *, scale: float = 10.0, seed: RngLike = None) -> np.ndarray:
    """``n`` points uniform in a ``scale × scale`` square."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    rng = as_rng(seed)
    return rng.random((n, 2)) * scale


def clustered_points(
    n: int,
    *,
    clusters: int = 5,
    cluster_std: float = 0.5,
    scale: float = 10.0,
    clip: bool = False,
    seed: RngLike = None,
) -> np.ndarray:
    """Gaussian-blob deployment (dense hubs produce high-degree MST vertices).

    The Gaussian tails can land points outside the ``scale × scale`` field
    (negative coordinates included), which skews density comparisons against
    :func:`uniform_points` / :func:`grid_points`.  ``clip=True`` clamps every
    coordinate into ``[0, scale]`` — clipping rather than resampling, so the
    RNG draw sequence (and with it every in-field point) is unchanged.  The
    default stays ``False``: existing tags/seeds must keep producing
    bit-identical instances (ledger fingerprints depend on them).
    """
    if n < 1 or clusters < 1:
        raise InvalidParameterError("need n >= 1 and clusters >= 1")
    rng = as_rng(seed)
    centers = rng.random((clusters, 2)) * scale
    assign = rng.integers(0, clusters, size=n)
    pts = centers[assign] + rng.normal(scale=cluster_std, size=(n, 2))
    return np.clip(pts, 0.0, scale) if clip else pts


def grid_points(
    n: int, *, spacing: float = 1.0, jitter: float = 0.15, seed: RngLike = None
) -> np.ndarray:
    """Near-square grid with jitter (a planned corridor/field installation)."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    rng = as_rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    xs, ys = np.meshgrid(np.arange(side), np.arange(side))
    pts = np.stack([xs.ravel(), ys.ravel()], axis=1)[:n].astype(float) * spacing
    return pts + rng.normal(scale=jitter * spacing, size=pts.shape)


def annulus_points(
    n: int, *, r_inner: float = 4.0, r_outer: float = 6.0, seed: RngLike = None
) -> np.ndarray:
    """Ring deployment (perimeter surveillance); long thin MST paths."""
    if n < 1 or not 0 <= r_inner < r_outer:
        raise InvalidParameterError("need n >= 1 and 0 <= r_inner < r_outer")
    rng = as_rng(seed)
    theta = rng.uniform(0, 2 * np.pi, n)
    # Area-uniform radius in the annulus.
    r = np.sqrt(rng.uniform(r_inner**2, r_outer**2, n))
    return np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)


def regular_polygon_star(d: int, *, radius: float = 1.0) -> np.ndarray:
    """Hub + regular ``d``-gon — Lemma 1's tight lower-bound configuration.

    Point 0 is the hub; points 1..d sit on the circle.  (Figure 1.)
    """
    if d < 1:
        raise InvalidParameterError(f"d must be >= 1, got {d}")
    ang = np.linspace(0.0, 2 * np.pi, d, endpoint=False)
    ring = np.stack([radius * np.cos(ang), radius * np.sin(ang)], axis=1)
    return np.vstack([[0.0, 0.0], ring])


def spider_points(
    legs: int = 3, leg_len: int = 2, *, unit: float = 1.0, seed: RngLike = None
) -> np.ndarray:
    """Spider S(leg_len, …): hub with ``legs`` straight paths of ``leg_len`` hops.

    The 3-leg, 2-hop spider is the witness that the k = 1 "range 2" row is
    loose: any Hamiltonian cycle on it has an edge > 2·lmax.
    A tiny deterministic jitter (seeded) keeps points in general position
    without changing the MST topology.
    """
    if legs < 1 or leg_len < 1:
        raise InvalidParameterError("need legs >= 1 and leg_len >= 1")
    rng = as_rng(seed if seed is not None else 7)
    pts = [(0.0, 0.0)]
    for i in range(legs):
        a = 2 * np.pi * i / legs
        for step in range(1, leg_len + 1):
            pts.append((step * unit * np.cos(a), step * unit * np.sin(a)))
    arr = np.asarray(pts, dtype=float)
    return arr + rng.normal(scale=1e-6 * unit, size=arr.shape)


def hexagonal_lattice(rings: int = 2, *, unit: float = 1.0) -> np.ndarray:
    """Triangular/hexagonal lattice — maximal distance ties (degree-6 MSTs).

    ``rings`` hexagonal rings around a centre point; stresses the degree-5
    repair machinery.
    """
    if rings < 1:
        raise InvalidParameterError(f"rings must be >= 1, got {rings}")
    pts = [(0.0, 0.0)]
    for q in range(-rings, rings + 1):
        for r in range(-rings, rings + 1):
            s = -q - r
            if (q, r) == (0, 0) or abs(s) > rings:
                continue
            x = unit * (q + r / 2.0)
            y = unit * (np.sqrt(3) / 2.0) * r
            pts.append((x, y))
    return np.asarray(pts, dtype=float)


def perturbed_star(
    d: int, *, leg: int = 2, seed: RngLike = None, angle_jitter: float = 0.08
) -> np.ndarray:
    """Hub with ``d`` jittered spokes, each a path of ``leg`` hops.

    Produces MSTs with a guaranteed degree-``d`` hub (for d ≤ 5 and small
    jitter), exercising Theorem 3's degree-4/5 cases.
    """
    if not 1 <= d <= 6:
        raise InvalidParameterError(f"d must be in [1, 6], got {d}")
    rng = as_rng(seed)
    jitter = min(angle_jitter, np.pi / d / 4)  # keep adjacent spokes separated
    base = np.linspace(0, 2 * np.pi, d, endpoint=False) + rng.uniform(
        -jitter, jitter, d
    )
    pts = [(0.0, 0.0)]
    for a in base:
        # First hop at exactly radius 1 so hub edges beat inter-spoke chords
        # (chord >= 2 sin((2pi/d - 2*jitter)/2) > 1 for d <= 5); later hops
        # hug the spoke.
        for step in range(1, leg + 1):
            r_ = 1.0 if step == 1 else step * float(rng.uniform(0.93, 0.99))
            jit = 0.0 if step == 1 else float(rng.uniform(-0.03, 0.03))
            pts.append((r_ * np.cos(a + jit), r_ * np.sin(a + jit)))
    return np.asarray(pts, dtype=float)


def caterpillar_points(
    spine: int = 8, *, max_legs: int = 3, seed: RngLike = None
) -> np.ndarray:
    """A caterpillar-shaped deployment (spine path + short legs).

    Caterpillar MSTs admit certified ≤ 2·lmax square tours
    (:mod:`repro.btsp.square`).
    """
    if spine < 2:
        raise InvalidParameterError(f"spine must be >= 2, got {spine}")
    rng = as_rng(seed)
    pts = []
    for i in range(spine):
        pts.append((float(i), float(rng.uniform(-0.02, 0.02))))
    # Short legs (<= 0.45) against spine spacing 1.0 keep every leg's nearest
    # neighbour its own spine vertex, so the MST is exactly spine + legs (a
    # caterpillar).  At most one leg per side per vertex avoids leg-leg ties.
    for i in range(spine):
        n_legs = int(rng.integers(0, min(max_legs, 2) + 1))
        for leg_i in range(n_legs):
            side = 1.0 if leg_i == 0 else -1.0
            pts.append((i + float(rng.uniform(-0.05, 0.05)),
                        side * float(rng.uniform(0.35, 0.45))))
    return np.asarray(pts, dtype=float)


#: Named workload registry used by the benchmark harness.  ``clustered``
#: keeps its historical (unclipped) output so existing tags/seeds stay
#: bit-identical; ``clustered-clip`` is the in-field variant comparable
#: density-wise to ``uniform``/``grid``.
WORKLOADS = {
    "uniform": lambda n, seed: uniform_points(n, seed=seed),
    "clustered": lambda n, seed: clustered_points(n, seed=seed),
    "clustered-clip": lambda n, seed: clustered_points(n, clip=True, seed=seed),
    "grid": lambda n, seed: grid_points(n, seed=seed),
    "annulus": lambda n, seed: annulus_points(n, seed=seed),
}


def make_workload(name: str, n: int, seed: RngLike = None) -> np.ndarray:
    """Instantiate a registered workload by name."""
    if name not in WORKLOADS:
        raise InvalidParameterError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](n, seed)
