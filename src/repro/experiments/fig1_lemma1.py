"""Experiment F1 — Figure 1 / Lemma 1: node degree vs spread sum.

Two claims are reproduced:

* **Necessity** (Figure 1's regular polygon): on a hub with ``d`` neighbours
  forming a regular d-gon, *any* ``k`` antennae reaching all neighbours need
  total spread exactly ``2π(d−k)/d``.  We compute the exact optimum
  (closed-form + brute-force oracle) and show it meets the bound.
* **Sufficiency**: on random stars (arbitrary neighbour directions subject
  to the MST angle constraint) the Lemma-1 construction uses spread
  ≤ ``2π(d−k)/d`` and covers every neighbour.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact_orientation import exact_min_spread_star
from repro.core.lemma1 import (
    lemma1_orientation,
    lemma1_required_spread,
    optimal_star_spread,
)
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import regular_polygon_star
from repro.utils.rng import as_rng, stable_seed

__all__ = ["run_fig1", "random_mst_star_angles"]


def random_mst_star_angles(d: int, rng) -> np.ndarray:
    """Random neighbour directions with all gaps ≥ π/3 (MST-feasible star)."""
    while True:
        ang = np.sort(rng.uniform(0, 2 * np.pi, d))
        gaps = np.diff(np.concatenate([ang, [ang[0] + 2 * np.pi]]))
        if d == 1 or gaps.min() >= np.pi / 3:
            return ang


def run_fig1(*, random_trials: int = 200) -> ExperimentRecord:
    rec = ExperimentRecord(
        "F1",
        "Figure 1 / Lemma 1: spread 2pi(d-k)/d is necessary (regular d-gon) "
        "and sufficient (all stars)",
        [
            "d", "k", "lemma bound", "regular d-gon optimum", "necessity tight",
            "random max used", "sufficiency ok",
        ],
    )
    for d in range(2, 6):
        pts = regular_polygon_star(d)
        hub, ring = pts[0], pts[1:]
        ang = np.arctan2(ring[:, 1] - hub[1], ring[:, 0] - hub[0])
        for k in range(1, d + 1):
            bound = lemma1_required_spread(d, k)
            opt = exact_min_spread_star(ang, k)
            closed = optimal_star_spread(ang, k)
            assert abs(opt - closed) < 1e-9, "oracle vs closed form mismatch"
            # Sufficiency on random MST-feasible stars.
            rng = as_rng(stable_seed("fig1", d, k))
            worst_used = 0.0
            ok = True
            for _ in range(random_trials):
                a = random_mst_star_angles(d, rng)
                nbrs = np.stack([np.cos(a), np.sin(a)], axis=1)
                sectors = lemma1_orientation((0.0, 0.0), nbrs, k)
                used = sum(s.spread for s in sectors)
                worst_used = max(worst_used, used)
                if used > bound + 1e-9:
                    ok = False
                covered = [
                    any(s.covers_point((0.0, 0.0), p) for s in sectors) for p in nbrs
                ]
                if not all(covered):
                    ok = False
            rec.add(
                d, k, round(bound, 4), round(opt, 4),
                abs(opt - bound) < 1e-9, round(worst_used, 4), ok,
            )
    rec.note("necessity tight == True: the regular d-gon needs the full 2pi(d-k)/d.")
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_fig1().to_ascii())
