"""Experiment drivers reproducing every table and figure of the paper.

Each driver is importable and pure (returns row dicts); the ``benchmarks/``
tree wraps them in pytest-benchmark targets, and
``python -m repro.experiments.run_all`` regenerates the EXPERIMENTS.md data.
"""

from repro.experiments.workloads import (
    uniform_points,
    clustered_points,
    grid_points,
    annulus_points,
    regular_polygon_star,
    spider_points,
    hexagonal_lattice,
    perturbed_star,
    caterpillar_points,
    WORKLOADS,
    make_workload,
)
from repro.experiments.harness import run_config, aggregate_rows, ExperimentRecord

__all__ = [
    "uniform_points",
    "clustered_points",
    "grid_points",
    "annulus_points",
    "regular_polygon_star",
    "spider_points",
    "hexagonal_lattice",
    "perturbed_star",
    "caterpillar_points",
    "WORKLOADS",
    "make_workload",
    "run_config",
    "aggregate_rows",
    "ExperimentRecord",
]
