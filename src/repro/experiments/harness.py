"""Shared experiment harness: run configurations, aggregate, render rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses harness)
    from repro.engine.cache import ArtifactCache

from repro.analysis.metrics import OrientationMetrics, orientation_metrics
from repro.core.planner import orient_antennae
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed
from repro.utils.tables import format_ascii_table, format_markdown_table

__all__ = ["run_config", "aggregate_rows", "ExperimentRecord"]


def run_config(
    points: np.ndarray | PointSet,
    k: int,
    phi: float,
    *,
    compute_critical: bool = True,
    cache: "ArtifactCache | None" = None,
) -> OrientationMetrics:
    """Plan antennae for one instance and measure the outcome.

    With a ``cache`` (an :class:`repro.engine.cache.ArtifactCache`), the
    point set's spanning tree is reused across repeated calls on the same
    coordinates — sweeps over a ``(k, φ)`` grid build one EMST per instance.
    """
    if cache is not None:
        ps = cache.pointset(points)
        tree = cache.tree(ps)
    else:
        ps = points if isinstance(points, PointSet) else PointSet(points)
        tree = euclidean_mst(ps)
    result = orient_antennae(ps, k, phi, tree=tree)
    return orientation_metrics(result, compute_critical=compute_critical)


def aggregate_rows(metrics: Sequence[OrientationMetrics]) -> dict[str, Any]:
    """Aggregate repeated runs of one configuration into a report row.

    Runs measured with ``compute_critical=False`` carry NaN critical ranges;
    those are excluded from the critical aggregates, and if *no* run
    measured one the row reports ``None`` (rather than NaN plus the
    all-NaN-slice RuntimeWarnings ``np.nanmax`` would emit).
    """
    if not metrics:
        raise ValueError("no metrics to aggregate")
    crit = np.asarray([m.critical_range for m in metrics], dtype=float)
    crit = crit[~np.isnan(crit)]
    realized = np.asarray([m.realized_range for m in metrics], dtype=float)
    spread = np.asarray([m.max_spread_sum for m in metrics], dtype=float)
    return {
        "algorithm": metrics[0].algorithm,
        "k": metrics[0].k,
        "phi": metrics[0].phi,
        "runs": len(metrics),
        "bound": metrics[0].range_bound,
        "critical_max": float(crit.max()) if crit.size else None,
        "critical_mean": float(crit.mean()) if crit.size else None,
        "realized_max": float(realized.max()),
        "spread_max": float(spread.max()),
        "all_connected": all(m.strongly_connected for m in metrics),
        "bound_ok": (
            all(
                m.bound_satisfied()
                for m in metrics
                if not np.isnan(m.critical_range)
            )
            if crit.size
            else None
        ),
    }


@dataclass
class ExperimentRecord:
    """A titled table of result rows, renderable as ascii or markdown.

    Every experiment driver returns one of these; ``run_all`` stitches them
    into EXPERIMENTS.md and the benches print them under pytest -s.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_ascii(self) -> str:
        body = format_ascii_table(self.headers, self.rows,
                                  title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def to_markdown(self) -> str:
        parts = [f"### {self.experiment_id} — {self.title}", ""]
        parts.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"> {n}" for n in self.notes)
        return "\n".join(parts)


def seeded_instances(
    workload: Callable[[int, int], np.ndarray],
    n: int,
    seeds: int,
    tag: str,
) -> Iterable[np.ndarray]:
    """Deterministic instances for (workload, n): seeds derived from the tag."""
    for s in range(seeds):
        yield workload(n, stable_seed(tag, n, s))
