"""Experiment X6 — ablations of the design choices called out in DESIGN.md.

* Lemma-1 window construction vs exact minimal star cover (Theorem 2's
  per-node spread usage);
* forcing Theorem 3 part 2 at φ = π vs part 1 (range √2 vs 2·sin(2π/9) —
  why the part split exists);
* the paper's arc-split chains vs exact minimax chains (Theorems 5/6);
* degree repair on tie-heavy hexagonal lattices (without it, Theorem
  constructions reject degree-6 trees).
"""

from __future__ import annotations

import numpy as np

from repro.core.chains import arc_chains, best_chain_partition
from repro.core.theorem2 import orient_theorem2
from repro.core.theorem3 import orient_theorem3
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import (
    clustered_points,
    hexagonal_lattice,
    perturbed_star,
)
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

__all__ = ["run_ablations"]


def run_ablations() -> ExperimentRecord:
    rec = ExperimentRecord(
        "X6",
        "Ablations: construction variants and safety nets",
        ["ablation", "variant", "metric", "value"],
    )

    # 1. Lemma-1 window vs optimal cover (max per-node spread used, k=1).
    pts = PointSet(clustered_points(80, clusters=6, cluster_std=0.4,
                                    seed=stable_seed("abl-lemma1")))
    tree = euclidean_mst(pts)
    for variant in ("lemma1", "optimal"):
        res = orient_theorem2(pts, 1, tree=tree, construction=variant)
        rec.add("theorem2 star cover", variant, "max spread used (rad)",
                round(res.max_spread_sum(), 4))

    # 2. Theorem 3 parts at the phi = pi boundary.
    pts2 = PointSet(perturbed_star(5, leg=2, seed=stable_seed("abl-thm3")))
    tree2 = euclidean_mst(pts2)
    for part, label in ((1, "part 1 (2sin(2pi/9))"), (2, "part 2 forced (sqrt 2)")):
        res = orient_theorem3(pts2, np.pi, tree=tree2, part=part)
        rec.add("theorem3 at phi=pi", label, "range bound (lmax)",
                round(res.range_bound, 4))

    # 3. Arc-split vs exact chains on random 5-child stars (k=3 budget 2).
    worst_arc, worst_exact, arc_over_budget = 0.0, 0.0, 0
    for s in range(40):
        star = perturbed_star(5, leg=1, seed=stable_seed("abl-chains", s))
        ps = PointSet(star)
        hub, kids = ps.coords[0], ps.coords[1:]
        ang = np.arctan2(kids[:, 1] - hub[1], kids[:, 0] - hub[0])
        arcs = arc_chains(ang, 2 * np.pi / 3)
        if len(arcs) > 2:
            arc_over_budget += 1
        diff = kids[:, None, :] - kids[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        for ch in arcs:
            for a, b in zip(ch[:-1], ch[1:]):
                worst_arc = max(worst_arc, float(dist[a, b]))
        exact = best_chain_partition(dist, max_chains=2)
        worst_exact = max(worst_exact, exact.max_edge)
    rec.add("thm5 chains (d=5 stars)", "paper arc-split", "worst edge", round(worst_arc, 4))
    rec.add("thm5 chains (d=5 stars)", "exact minimax", "worst edge", round(worst_exact, 4))
    rec.add("thm5 chains (d=5 stars)", "paper arc-split", "over-budget instances",
            arc_over_budget)

    # 4. Degree repair on the hexagonal lattice.
    hexa = PointSet(hexagonal_lattice(2))
    raw = euclidean_mst(hexa, max_degree=None)
    fixed = euclidean_mst(hexa, max_degree=5)
    rec.add("degree repair (hex lattice)", "off", "max degree", raw.max_degree())
    rec.add("degree repair (hex lattice)", "on", "max degree", fixed.max_degree())
    rec.add("degree repair (hex lattice)", "on", "weight ratio",
            round(fixed.total_weight / raw.total_weight, 6))
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_ablations().to_ascii())
