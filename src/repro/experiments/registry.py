"""Registry mapping experiment ids to their drivers (used by run_all)."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments.ablations import run_ablations
from repro.experiments.btsp_experiment import run_btsp
from repro.experiments.fig1_lemma1 import run_fig1
from repro.experiments.fig2_facts import run_fig2
from repro.experiments.fig34_theorem3 import run_fig3, run_fig4
from repro.experiments.fig56_chains import run_fig5, run_fig6
from repro.experiments.harness import ExperimentRecord
from repro.experiments.interference_experiment import run_interference
from repro.experiments.robustness_experiment import run_robustness
from repro.experiments.scaling import run_scaling
from repro.experiments.table1 import run_table1
from repro.experiments.tradeoff import run_tradeoff

__all__ = ["EXPERIMENTS", "run_experiment", "supports_jobs"]

#: id -> zero-argument driver returning an ExperimentRecord.
EXPERIMENTS: dict[str, Callable[[], ExperimentRecord]] = {
    "T1": run_table1,
    "F1": run_fig1,
    "F2": run_fig2,
    "F3": run_fig3,
    "F4": run_fig4,
    "F5": run_fig5,
    "F6": run_fig6,
    "X1": run_tradeoff,
    "X2": run_btsp,
    "X3": run_robustness,
    "X4": run_interference,
    "X5": run_scaling,
    "X6": run_ablations,
}


def supports_jobs(experiment_id: str) -> bool:
    """Does this experiment's driver route through the parallel engine?

    Drivers that execute through :func:`repro.engine.execute_plan` expose a
    ``jobs`` keyword; the rest are inherently serial (closed-form checks,
    timing studies) and silently ignore a requested parallelism.
    """
    driver = EXPERIMENTS[experiment_id]
    return "jobs" in inspect.signature(driver).parameters


def run_experiment(experiment_id: str, *, jobs: int = 1) -> ExperimentRecord:
    """Run one experiment by id (raises KeyError for unknown ids).

    ``jobs`` is forwarded to engine-backed drivers (see
    :func:`supports_jobs`); serial drivers produce identical records for
    any value.
    """
    driver = EXPERIMENTS[experiment_id]
    if jobs != 1 and supports_jobs(experiment_id):
        return driver(jobs=jobs)
    return driver()
