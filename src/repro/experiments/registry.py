"""Registry mapping experiment ids to their drivers (used by run_all)."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.experiments.ablations import run_ablations
from repro.experiments.btsp_experiment import run_btsp
from repro.experiments.ensemble_experiment import run_ensemble
from repro.experiments.fig1_lemma1 import run_fig1
from repro.experiments.fig2_facts import run_fig2
from repro.experiments.fig34_theorem3 import run_fig3, run_fig4
from repro.experiments.fig56_chains import run_fig5, run_fig6
from repro.experiments.frontier_experiment import run_frontier
from repro.experiments.harness import ExperimentRecord
from repro.experiments.interference_experiment import run_interference
from repro.experiments.robustness_experiment import run_robustness
from repro.experiments.scaling import run_scaling
from repro.experiments.table1 import run_table1
from repro.experiments.tradeoff import run_tradeoff

__all__ = ["EXPERIMENTS", "run_experiment", "supports_jobs", "supports_store"]

#: id -> zero-argument driver returning an ExperimentRecord.
EXPERIMENTS: dict[str, Callable[[], ExperimentRecord]] = {
    "T1": run_table1,
    "F1": run_fig1,
    "F2": run_fig2,
    "F3": run_fig3,
    "F4": run_fig4,
    "F5": run_fig5,
    "F6": run_fig6,
    "X1": run_tradeoff,
    "X2": run_btsp,
    "X3": run_robustness,
    "X4": run_interference,
    "X5": run_scaling,
    "X6": run_ablations,
    "X7": run_frontier,
    "X8": run_ensemble,
}


def supports_jobs(experiment_id: str) -> bool:
    """Does this experiment's driver route through the parallel engine?

    Drivers that execute through :func:`repro.engine.execute_plan` expose a
    ``jobs`` keyword; the rest are inherently serial (closed-form checks,
    timing studies) and silently ignore a requested parallelism.
    """
    driver = EXPERIMENTS[experiment_id]
    return "jobs" in inspect.signature(driver).parameters


def supports_store(experiment_id: str) -> bool:
    """Does this experiment's driver checkpoint into a run store?

    Engine-backed drivers accept ``store``/``resume`` and pass them to
    :func:`repro.engine.execute_plan`, making the experiment durable and
    restartable; the rest are cheap enough that a ledger buys nothing.
    """
    driver = EXPERIMENTS[experiment_id]
    return "store" in inspect.signature(driver).parameters


def run_experiment(
    experiment_id: str, *, jobs: int = 1, store=None, resume: bool = False
) -> ExperimentRecord:
    """Run one experiment by id (raises KeyError for unknown ids).

    ``jobs`` is forwarded to engine-backed drivers (see
    :func:`supports_jobs`); serial drivers produce identical records for
    any value.  ``store``/``resume`` (a :class:`repro.store.RunStore`) are
    forwarded to drivers that checkpoint through the engine (see
    :func:`supports_store`) — each driver's plan gets its own ledger keyed
    by the plan fingerprint, so one run directory serves a whole run_all.
    """
    driver = EXPERIMENTS[experiment_id]
    kwargs = {}
    if jobs != 1 and supports_jobs(experiment_id):
        kwargs["jobs"] = jobs
    if store is not None and supports_store(experiment_id):
        kwargs["store"] = store
        kwargs["resume"] = resume
    return driver(**kwargs)
