"""Experiment X7 — adaptive φ-frontier location (the paper's tradeoff curve).

For k ∈ {1, 2, 3} the solver bisects φ to locate the smallest angular sum
at which the proven range bound drops to the k's next-better Table-1
level — the φ-thresholds that ARE the paper's contribution, recovered
empirically to ±tol instead of read off a formula.  The closed-form
crossovers of :func:`repro.experiments.tradeoff.crossover_phi` anchor the
k = 2 row exactly: the bisection must land within tol of
``crossover_phi(sqrt(2)) = π``.
"""

from __future__ import annotations

import numpy as np

from repro.engine import FrontierRequest, Scenario
from repro.experiments.harness import ExperimentRecord
from repro.experiments.tradeoff import crossover_phi
from repro.frontier import execute_frontier

__all__ = ["run_frontier"]

#: (k, target range bound in lmax units) — each target is the next-better
#: Table-1 level the k must spend angle to reach.  The analytic thresholds
#: are 8π/5 (k=1 reaching optimal range 1), π (k=2 reaching √2 via Theorem
#: 3 part 2) and 4π/5 (k=3 reaching range 1 via Theorem 2).
_GOALS = ((1, 1.0), (2, np.sqrt(2.0)), (3, 1.0))


def run_frontier(
    *,
    n: int = 48,
    seeds: int = 3,
    tol: float = 1e-3,
    jobs: int = 1,
    store=None,
    resume: bool = False,
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X7",
        "Adaptive phi-frontier: smallest angular sum reaching a target range",
        ["k", "target", "found", "phi* mean", "phi*/pi", "probes",
         "evaluated", "reused"],
    )
    for k, target in _GOALS:
        request = FrontierRequest(
            scenarios=(Scenario("uniform", n, seeds=seeds, tag="frontier-x7"),),
            ks=(k,),
            metric="range_bound",
            target=float(target),
            tol=tol,
        )
        batch = execute_frontier(request, jobs=jobs, store=store, resume=resume)
        row = batch.aggregate_rows()[0]
        mean = row["phi_star_mean"]
        rec.add(
            k, round(float(target), 4), f"{row['found']}/{row['runs']}",
            "-" if mean is None else round(mean, 4),
            "-" if mean is None else round(mean / np.pi, 3),
            row["probes"], row["evaluated"], row["reused"],
        )
    rec.note(
        f"analytic anchors: 8pi/5 = {8 * np.pi / 5:.4f} (k=1), "
        f"crossover_phi(sqrt(2)) = {crossover_phi(np.sqrt(2.0)):.4f} = pi (k=2), "
        f"4pi/5 = {4 * np.pi / 5:.4f} (k=3); each bisection lands within tol."
    )
    rec.note(
        f"bisection resolves each phi* to +-{tol:g} with O(log) probes; a "
        "dense grid at the same resolution would evaluate every cell."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_frontier().to_ascii())
