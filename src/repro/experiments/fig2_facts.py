"""Experiment F2 — Figure 2 / Facts 1-2: angular structure of Euclidean MSTs.

Over random deployments we verify, per instance:

* Fact 1.1 — consecutive MST-neighbour angles ≥ π/3;
* Fact 1.2 — consecutive-neighbour chord ≤ 2·lmax·sin(θ/2);
* Fact 1.3 — triangles over adjacent neighbours are empty;
* Fact 2 — at degree-5 vertices: consecutive ∈ [π/3, 2π/3] and two-apart
  ∈ [2π/3, π].

and report the observed extremes (how close real instances come to the
bounds the proofs rely on).
"""

from __future__ import annotations

import numpy as np

from repro.engine import ArtifactCache, Scenario
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import perturbed_star
from repro.spanning.facts import check_fact1, check_fact2
from repro.utils.rng import stable_seed

__all__ = ["run_fig2"]


def run_fig2(
    *,
    sizes: tuple[int, ...] = (32, 128),
    seeds: int = 4,
    workloads: tuple[str, ...] = ("uniform", "clustered", "grid", "annulus"),
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "F2",
        "Figure 2 / Facts 1-2: MST angular invariants over random deployments",
        [
            "workload", "n", "instances", "min adj angle (deg)", "pi/3 holds",
            "max chord ratio", "empty triangles", "deg5 vertices", "fact2 holds",
        ],
    )
    cache = ArtifactCache()
    for wl in workloads:
        for n in sizes:
            scenario = Scenario(wl, n, seeds=seeds, tag="fig2")
            min_ang = np.inf
            max_ratio = 0.0
            f1_ok = True
            f2_ok = True
            deg5 = 0
            count = 0
            for pts in scenario.instances():
                tree = cache.tree(pts)
                rep1 = check_fact1(tree)
                rep2 = check_fact2(tree)
                f1_ok &= rep1.ok
                f2_ok &= rep2.ok
                if np.isfinite(rep1.min_adjacent_angle):
                    min_ang = min(min_ang, rep1.min_adjacent_angle)
                max_ratio = max(max_ratio, rep1.max_chord_ratio)
                deg5 += int((tree.degrees() == 5).sum())
                count += 1
            rec.add(
                wl, n, count,
                round(np.degrees(min_ang), 2) if np.isfinite(min_ang) else "n/a",
                f1_ok, round(max_ratio, 4), f1_ok, deg5, f2_ok,
            )
    # Degree-5 hubs are rare in uniform data; add the adversarial star family
    # so Fact 2 is genuinely exercised.
    deg5 = 0
    ok = True
    for s in range(20):
        pts = perturbed_star(5, leg=2, seed=stable_seed("fig2-star", s))
        tree = cache.tree(pts)
        deg5 += int((tree.degrees() == 5).sum())
        ok &= check_fact2(tree).ok and check_fact1(tree).ok
    rec.add("star-d5", 11, 20, "-", ok, "-", ok, deg5, ok)
    rec.note("max chord ratio = d(u,w) / (2 lmax sin(theta/2)) <= 1 is Fact 1.2.")
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_fig2().to_ascii())
