"""Experiment X8 — Monte-Carlo ensemble frontiers (probabilistic Table 1).

Two parts, both through :func:`repro.ensemble.execute_ensemble`:

**Part A (curve)** — connection-probability-vs-φ curves at k ∈ {1, 2}
under random per-sensor rotation (the randomly-oriented deployment of the
Georgiou et al. line) plus a small independent link-failure rate.  Within
one dispatch regime P(strongly connected) rises monotonically with the
angular budget — wider antennae tolerate more rotation — which is the CI
sanity check.  Across regime boundaries the curve *collapses*: the
constructions that achieve the paper's best range bounds (Theorem 2's
zero-spread aimed antennae at k = 1, the aimed antenna pairs at k = 2)
have measure-zero tolerance to rotation, so spending *more* angle can
drop P(connected) to 0.  Range optimality is bought with fragility.

**Part B (p → 1 limit)** — the probabilistic frontier degenerates to the
deterministic one: with the identity perturbation every trial reproduces
the deterministic network, so bisecting φ on
``quantile_0.5(range_bound) ≤ target`` must land on exactly the Table-1
thresholds X7 finds — 8π/5 (k = 1), π (k = 2), 4π/5 (k = 3) — while the
Wilson-interval early stopper discards almost the whole trial budget
(the empirical p̂ is 0 or 1 after the first chunk).
"""

from __future__ import annotations

import numpy as np

from repro.engine import GridCell, Scenario
from repro.ensemble import EnsembleRequest, Perturbation, execute_ensemble
from repro.experiments.harness import ExperimentRecord

__all__ = ["run_ensemble", "curve_probabilities"]

#: Part A φ grids in units of π, each inside ONE dispatch regime so the
#: monotone-in-φ claim is about antenna width, not algorithm switches:
#: k = 1 stays below 8π/5 (the Lemma-1 positive-spread regime), k = 2
#: below π (Theorem 3 part 1).
_CURVE_FRACTIONS = {1: (0.6, 0.8, 1.0, 1.2, 1.4), 2: (0.4, 0.55, 0.7, 0.85, 0.99)}

#: Part A perturbation: random fan rotation + 2% directed-link failures.
_CURVE_PERTURBATION = Perturbation(rotate=True, edge_fail=0.02)

#: Part B (k, target range bound in lmax units) — identical to X7's goals;
#: the analytic thresholds are 8π/5, π (= crossover_phi(√2)) and 4π/5.
_GOALS = ((1, 1.0), (2, np.sqrt(2.0)), (3, 1.0))


def curve_probabilities(
    *, n: int = 40, seeds: int = 2, trials: int = 60,
    jobs: int = 1, store=None, resume: bool = False,
) -> dict[int, list[tuple[float, float]]]:
    """Part A raw data: ``k -> [(phi, p_connected), ...]`` in φ order.

    Exposed separately so the CI smoke job can assert monotonicity
    without parsing the rendered table.
    """
    request = EnsembleRequest(
        scenarios=(Scenario("uniform", n, seeds=seeds, tag="ensemble-x8"),),
        grid=tuple(
            GridCell(k, f * np.pi)
            for k, fractions in sorted(_CURVE_FRACTIONS.items())
            for f in fractions
        ),
        trials=trials,
        chunk=max(1, trials // 3),
        perturbation=_CURVE_PERTURBATION,
        compute_critical=False,
    )
    batch = execute_ensemble(request, jobs=jobs, store=store, resume=resume)
    curves: dict[int, list[tuple[float, float]]] = {}
    for row in batch.aggregate_rows():
        curves.setdefault(int(row["k"]), []).append(
            (float(row["phi"]), float(row["p_connected"]))
        )
    return curves


def run_ensemble(
    *,
    n: int = 40,
    seeds: int = 2,
    trials: int = 60,
    tol: float = 1e-3,
    jobs: int = 1,
    store=None,
    resume: bool = False,
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X8",
        "Monte-Carlo ensemble: P(connected) vs phi, and the p->1 "
        "deterministic limit",
        ["part", "k", "goal", "p_conn", "phi*/pi", "trials", "saved"],
    )
    curves = curve_probabilities(
        n=n, seeds=seeds, trials=trials, jobs=jobs, store=store, resume=resume
    )
    for k, points in sorted(curves.items()):
        for phi, p in points:
            rec.add(
                "curve", k, f"phi={phi / np.pi:.2f}pi",
                round(p, 3), "-", trials, "-",
            )
    for k, target in _GOALS:
        request = EnsembleRequest(
            scenarios=(Scenario("uniform", n, seeds=seeds, tag="ensemble-x8"),),
            ks=(k,),
            metric="range_bound",
            quantile=0.5,
            target=float(target),
            tol=tol,
            trials=trials,
            chunk=max(1, trials // 6),
            # identity perturbation: every trial IS the deterministic network
        )
        batch = execute_ensemble(request, jobs=jobs, store=store, resume=resume)
        row = batch.aggregate_rows()[0]
        mean = row["phi_star_mean"]
        rec.add(
            "p->1", k, f"q0.5(range)<={target:.3f}",
            "-",
            "-" if mean is None else round(mean / np.pi, 4),
            row["trials"], row["trials_saved"],
        )
    rec.note(
        "curve: P(strongly connected) under random fan rotation + 2% link "
        "failures rises with phi inside one dispatch regime (wider antennae "
        "tolerate more rotation); past the regime boundary the range-optimal "
        "aimed constructions (theorem2 zero-spread, k=2 antenna pairs) have "
        "zero rotation tolerance — range optimality is bought with fragility."
    )
    rec.note(
        f"p->1 limit: with the identity perturbation the probabilistic "
        f"frontier must reproduce X7's deterministic thresholds 8pi/5 = "
        f"{8 / 5:.4f}pi (k=1), pi (k=2), 4pi/5 = {4 / 5:.4f}pi (k=3); the "
        "Wilson early stopper discards most of the trial budget because "
        "every probe's success sequence is constant."
    )
    rec.note(
        "determinism: trial t of instance slot i draws from the counter "
        "stream (fingerprint, i, t), so these numbers are bit-identical "
        "for any --jobs, shard split or resume order."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_ensemble().to_ascii())
