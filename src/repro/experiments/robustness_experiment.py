"""Experiment X3 — strong c-connectivity of the constructions (§5 open problem).

Measures the vertex-connectivity order and random-failure survival of every
Table-1 construction on the same instances.  Expected shape: tree-backed
constructions are exactly 1-connected (any internal MST vertex is a cut
vertex), denser sector coverage occasionally buys survival at f = 1; the
omnidirectional baseline at range lmax is equally fragile — robustness
requires range, not just spread.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.augmentation import augment_to_biconnectivity
from repro.analysis.robustness import failure_sweep
from repro.baselines.omni import orient_omnidirectional
from repro.core.planner import orient_antennae
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import make_workload
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

__all__ = ["run_robustness"]


def run_robustness(*, n: int = 40, trials: int = 40) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X3",
        "Strong c-connectivity and failure survival (paper section 5 question)",
        ["config", "connectivity order c", "survive f=1", "survive f=2", "survive f=3",
         "extra antennae for c=2", "extra range (x lmax)"],
    )
    pts = make_workload("uniform", n, stable_seed("robust", n))
    ps = PointSet(pts)
    tree = euclidean_mst(ps)
    configs = [
        ("k=1 phi=1.2pi", lambda: orient_antennae(ps, 1, 1.2 * np.pi, tree=tree)),
        ("k=2 phi=pi", lambda: orient_antennae(ps, 2, np.pi, tree=tree)),
        ("k=3 phi=0", lambda: orient_antennae(ps, 3, 0.0, tree=tree)),
        ("k=4 phi=0", lambda: orient_antennae(ps, 4, 0.0, tree=tree)),
        ("k=5 phi=0", lambda: orient_antennae(ps, 5, 0.0, tree=tree)),
        ("omni r=lmax", lambda: orient_omnidirectional(ps, tree=tree)),
    ]
    for name, make in configs:
        res = make()
        rep = failure_sweep(res, max_failures=3, trials=trials, seed=0)
        try:
            _, aug = augment_to_biconnectivity(res)
            extra = aug.extra_antennae
            extra_range = round(aug.max_extra_edge_length / res.lmax, 3) if res.lmax else 0.0
        except Exception:  # pragma: no cover - defensive for odd instances
            extra, extra_range = "n/a", "n/a"
        rec.add(
            name,
            rep.connectivity_order,
            round(rep.survival(1), 3),
            round(rep.survival(2), 3),
            round(rep.survival(3), 3),
            extra,
            extra_range,
        )
    rec.note(
        "c = 1 everywhere is expected: all constructions route through MST cut "
        "vertices; achieving c-connectivity is the paper's open problem."
    )
    rec.note(
        "The last two columns measure our greedy answer to that problem: how "
        "many extra zero-spread antennae (and how much extra range) buy c = 2."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_robustness().to_ascii())
