"""Experiment T1 — reproduce Table 1 of the paper.

For every row of Table 1 we pick representative spread budgets inside the
row's φ-interval, run the planner over several workloads and seeds, and
check the paper's claim: the produced network is strongly connected and its
*measured critical range* (the smallest uniform radius that keeps it
strongly connected, in lmax units) does not exceed the row's bound.

The k = 1, φ < π row is reported with the measured tour bottleneck and the
certified lower bound instead of a hard pass/fail — the paper's "2" is loose
there (see DESIGN.md and bench_btsp.py).
"""

from __future__ import annotations

import math

from repro.core.bounds import table1_rows
from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.experiments.harness import ExperimentRecord

__all__ = ["representative_phis", "run_table1"]

_PI = math.pi


def representative_phis(row) -> list[float]:
    """Sample spread budgets inside a Table-1 row's φ-interval."""
    lo = row.phi_lo
    hi = row.phi_hi if math.isfinite(row.phi_hi) else min(2 * _PI, row.phi_lo + _PI / 2)
    if hi <= lo + 1e-9:
        return [lo]
    mid = 0.5 * (lo + hi)
    # Stay strictly inside half-open intervals.
    return sorted({lo, mid, lo + 0.95 * (hi - lo)})


def run_table1(
    *,
    sizes: tuple[int, ...] = (24, 96),
    seeds: int = 3,
    workloads: tuple[str, ...] = ("uniform", "clustered"),
    jobs: int = 1,
    store=None,
    resume: bool = False,
) -> ExperimentRecord:
    """Run every Table-1 row; returns the comparison table.

    The whole table is one :class:`PlanRequest`: the same instances are
    shared by every row, so the engine builds one EMST per (workload, n,
    seed) across all ~30 grid cells, and ``jobs > 1`` fans instances out to
    worker processes.  With a ``store`` (:class:`repro.store.RunStore`)
    each completed instance is checkpointed and ``resume=True`` restarts a
    killed run without repeating finished work.
    """
    rec = ExperimentRecord(
        "T1",
        "Table 1: range bounds per (k, phi) row — paper vs measured",
        [
            "k", "phi row", "phi used", "paper bound", "algorithm",
            "measured max", "measured mean", "connected", "bound ok",
        ],
    )
    scenarios = tuple(
        Scenario(wl, n, seeds=seeds, tag="table1")
        for wl in workloads
        for n in sizes
    )
    cell_info = [
        (row, phi) for row in table1_rows() for phi in representative_phis(row)
    ]
    request = PlanRequest(
        scenarios, tuple(GridCell(row.k, phi) for row, phi in cell_info)
    )
    batch = execute_plan(request, jobs=jobs, store=store, resume=resume)
    for (row, phi), agg in zip(cell_info, batch.aggregate_by_cell()):
        is_btsp_row = row.k == 1 and row.range_formula == "2"
        bound_cell = agg["bound_ok"] or is_btsp_row
        rec.add(
            row.k,
            row.phi_description,
            round(phi, 4),
            round(row.bound_at(min(phi, row.phi_hi) if math.isfinite(row.phi_hi) else phi), 4),
            agg["algorithm"],
            round(agg["critical_max"], 4),
            round(agg["critical_mean"], 4),
            agg["all_connected"],
            bound_cell,
        )
        if is_btsp_row:
            rec.note(
                f"k=1 phi={phi:.3f}: bottleneck-TSP regime; measured bottleneck "
                f"reported as-is (paper's '2' is loose on spider MSTs)."
            )
    rec.note(f"engine: {batch.cache_summary()}")
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_table1().to_ascii())
