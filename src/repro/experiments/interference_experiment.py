"""Experiment X4 — interference and capacity proxies (intro's motivation).

Directional orientations versus the omnidirectional baseline on identical
instances: mean/max interference degree (how many transmitters cover each
receiver) and the [19]-style beam-width capacity gain √(2π/θ).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.capacity import capacity_gain_yi_pei
from repro.analysis.interference import compare_interference
from repro.baselines.omni import orient_omnidirectional
from repro.core.planner import orient_antennae
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import make_workload
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

__all__ = ["run_interference"]


def run_interference(*, n: int = 128, seeds: int = 3) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X4",
        "Interference degree: directional vs omnidirectional (and [19] gain)",
        ["config", "mean interference", "max", "omni mean", "reduction x",
         "capacity gain sqrt(2pi/theta)"],
    )
    configs = [
        ("k=1 phi=1.2pi", 1, 1.2 * np.pi),
        ("k=2 phi=pi", 2, np.pi),
        ("k=2 phi=2pi/3", 2, 2 * np.pi / 3),
        ("k=3 phi=0", 3, 0.0),
        ("k=4 phi=0", 4, 0.0),
    ]
    for name, k, phi in configs:
        means, maxes, omeans, redus = [], [], [], []
        for s in range(seeds):
            pts = make_workload("uniform", n, stable_seed("interf", n, s))
            ps = PointSet(pts)
            tree = euclidean_mst(ps)
            directional = orient_antennae(ps, k, phi, tree=tree)
            omni = orient_omnidirectional(ps, tree=tree)
            cmpres = compare_interference(directional, omni)
            means.append(cmpres["directional_mean"])
            maxes.append(cmpres["directional_max"])
            omeans.append(cmpres["omni_mean"])
            redus.append(cmpres["mean_reduction_factor"])
        theta = max(phi, 1e-3)
        gain = capacity_gain_yi_pei(theta) if phi > 0 else float("inf")
        rec.add(
            name,
            round(float(np.mean(means)), 3),
            round(float(np.max(maxes)), 1),
            round(float(np.mean(omeans)), 3),
            round(float(np.mean(redus)), 2),
            round(gain, 2) if np.isfinite(gain) else "inf (theta->0)",
        )
    rec.note(
        "Reduction factors > 1 reproduce the introduction's claim that narrow "
        "beams cut unwanted coverage; zero-spread rows interfere only along rays."
    )
    rec.note(
        "Wide-spread k=1 rows can fall below 1x: their longer operating range "
        "(e.g. 2sin(pi-phi/2) lmax) covers more area than omni at lmax — the "
        "spread/range trade-off cuts both ways."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_interference().to_ascii())
