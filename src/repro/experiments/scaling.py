"""Experiment X5 — runtime scaling of the planner (engineering validation).

The orientation algorithms are linear-time after the O(n log n) MST; the
measured wall-clock over n confirms no accidental quadratic behaviour in
the vectorized kernels (the HPC guide's "measure, don't guess").
"""

from __future__ import annotations

import numpy as np

from repro.core.planner import orient_antennae
from repro.engine import Scenario
from repro.experiments.harness import ExperimentRecord
from repro.geometry.points import PointSet
from repro.spanning.emst import euclidean_mst
from repro.utils.timing import measure

__all__ = ["run_scaling"]


def run_scaling(
    *, sizes: tuple[int, ...] = (64, 256, 1024, 4096), k: int = 2, phi: float = np.pi
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X5",
        f"Planner runtime scaling (k={k}, phi={phi:.3f})",
        ["n", "mst (s)", "orient (s)", "orient us/vertex"],
    )
    for n in sizes:
        pts = PointSet(Scenario("uniform", n, tag="scaling").instance(0))
        t_mst, tree = measure(euclidean_mst, pts)
        t_orient, _ = measure(orient_antennae, pts, k, phi, tree=tree)
        rec.add(n, round(t_mst, 4), round(t_orient, 4),
                round(1e6 * t_orient / n, 2))
    rec.note("orient us/vertex should stay near-constant (linear construction).")
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_scaling().to_ascii())
