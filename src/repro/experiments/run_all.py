"""Regenerate all experiment tables: ``python -m repro.experiments.run_all``.

Writes the markdown bodies consumed by EXPERIMENTS.md to stdout (or a file
with ``--out``), and prints progress tables to stderr.  ``--jobs N`` fans
engine-backed experiments out over N worker processes; the emitted rows are
identical to a serial run (the engine orders results deterministically).

``--run-dir DIR`` makes the engine-backed experiments durable: each plan
checkpoints its completed instances into DIR's ledger, and re-running with
``--resume`` replays the finished work instead of recomputing it — a killed
run_all restarts where it died.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import (
    EXPERIMENTS,
    run_experiment,
    supports_jobs,
    supports_store,
)
from repro.store import StoreError


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write markdown to this file")
    parser.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to run (default: all)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for engine-backed experiments (default: 1)",
    )
    parser.add_argument(
        "--run-dir", default=None,
        help="checkpoint engine-backed experiments into this run directory",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay instances already ledgered in --run-dir",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and not args.run_dir:
        parser.error("--resume requires --run-dir")
    store = None
    if args.run_dir:
        from repro.store import RunStore

        store = RunStore(args.run_dir)
    ids = args.only if args.only else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")
    sections: list[str] = []
    for eid in ids:
        t0 = time.perf_counter()
        notes = []
        if args.jobs > 1 and supports_jobs(eid):
            notes.append(f"jobs={args.jobs}")
        if store is not None and supports_store(eid):
            notes.append(f"run-dir={args.run_dir}")
        mode = f" ({', '.join(notes)})" if notes else ""
        print(f"[run_all] running {eid}{mode} ...", file=sys.stderr, flush=True)
        try:
            rec = run_experiment(
                eid, jobs=args.jobs, store=store, resume=args.resume
            )
        except StoreError as exc:
            print(f"error: {eid}: {exc}", file=sys.stderr)
            return 2
        dt = time.perf_counter() - t0
        print(rec.to_ascii(), file=sys.stderr, flush=True)
        print(f"[run_all] {eid} done in {dt:.1f}s", file=sys.stderr, flush=True)
        sections.append(rec.to_markdown())
    body = "\n\n".join(sections) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf8") as fh:
            fh.write(body)
    else:
        print(body)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
