"""Experiments F5/F6 — Figures 5 and 6: star chain gadgets of Theorems 5/6.

The figures show how a root directs antennae among its children with
out-degree ≤ 2 (k = 3) or ≤ 3 (k = 4) while chain edges stay within √3 /
√2.  We reproduce them as measurements: distribution of chains-per-vertex,
worst chain edge (vs the bound), and a comparison between the paper's
arc-split construction and the exact minimax search — including the gap
pattern for which the paper's "two adjacent small angles" claim fails but a
2+2 split succeeds (DESIGN.md §4).
"""

from __future__ import annotations

import numpy as np

from repro.core.chains import arc_chains, best_chain_partition
from repro.core.theorem5 import orient_theorem5
from repro.core.theorem6 import orient_theorem6
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import clustered_points, perturbed_star
from repro.geometry.points import PointSet
from repro.utils.rng import stable_seed

__all__ = ["run_fig5", "run_fig6", "adversarial_gap_star", "chain_census"]


def adversarial_gap_star() -> np.ndarray:
    """Four unit spokes with gaps (2π/3+ε, π/3−ε′, 2π/3+ε, π/3−ε′).

    No two *adjacent* gaps are both ≤ 2π/3 (the paper's d = 4 claim fails),
    yet two disjoint small-gap pairs give a valid 2+2 chain split.  Radii are
    tweaked so the configuration is a genuine MST star.
    """
    eps = 0.05
    gaps = [2 * np.pi / 3 + eps, np.pi / 3 - eps / 2,
            2 * np.pi / 3 + eps, np.pi / 3 - eps / 2]
    # Shrink the radius of every second spoke so the small angular gap does
    # not violate the MST condition d(ci, cj) >= max radius.
    radii = [1.0, 0.55, 1.0, 0.55]
    ang = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
    pts = [(0.0, 0.0)]
    pts += [(r * np.cos(a), r * np.sin(a)) for r, a in zip(radii, ang)]
    return np.asarray(pts)


def chain_census(k: int, *, trials: int = 30) -> tuple[dict[int, int], float, bool]:
    """Chains-per-vertex histogram, worst chain edge (lmax units), all valid."""
    orient = orient_theorem5 if k == 3 else orient_theorem6
    hist: dict[int, int] = {}
    worst = 0.0
    ok = True
    for s in range(trials):
        kind = s % 3
        seed = stable_seed("fig56", k, s)
        if kind == 0:
            pts = perturbed_star(5, leg=1, seed=seed)
        elif kind == 1:
            pts = perturbed_star(4, leg=2, seed=seed)
        else:
            pts = clustered_points(60, clusters=5, cluster_std=0.45, seed=seed)
        ps = PointSet(pts)
        res = orient(ps)
        for c, cnt in res.stats["chains_per_vertex"].items():
            hist[c] = hist.get(c, 0) + cnt
        worst = max(worst, res.stats["max_chain_edge_normalized"])
        ok &= res.validate().ok
    return hist, worst, ok


def _fig(k: int, bound: float, exp_id: str, figure: str) -> ExperimentRecord:
    rec = ExperimentRecord(
        exp_id,
        f"Figure {figure} / Theorem {5 if k == 3 else 6} (k={k}): chain gadgets, "
        f"bound {bound:.4f} lmax",
        ["chains per vertex", "vertices"],
    )
    hist, worst, ok = chain_census(k)
    for c in sorted(hist):
        rec.add(c, hist[c])
    rec.note(f"worst chain edge {worst:.4f} lmax <= {bound:.4f}: {worst <= bound + 1e-7}")
    rec.note(f"all validations passed: {ok}")
    # Adversarial gap pattern: the arc construction at the paper's threshold.
    pts = adversarial_gap_star()
    ps = PointSet(pts)
    hub = ps.coords[0]
    kids = ps.coords[1:]
    ang = np.arctan2(kids[:, 1] - hub[1], kids[:, 0] - hub[0])
    thresh = 2 * np.pi / 3 if k == 3 else np.pi / 2
    arcs = arc_chains(ang, thresh)
    diff = kids[:, None, :] - kids[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    exact = best_chain_partition(dist, max_chains=k - 1)
    rec.note(
        f"adversarial star: paper arc-split gives {len(arcs)} chains "
        f"(budget {k - 1}); exact search: {exact.n_chains} chains, "
        f"max edge {exact.max_edge:.4f}"
    )
    if k == 3:
        # The paper's d=4 text asks for two *adjacent* angles <= 2pi/3 (a
        # 3-chain); show the adversarial star defeats that specific claim.
        d = len(ang)
        pair_ok = np.zeros((d, d), dtype=bool)
        for i in range(d):
            for j in range(d):
                if i != j:
                    a = abs(ang[i] - ang[j]) % (2 * np.pi)
                    pair_ok[i, j] = min(a, 2 * np.pi - a) <= thresh + 1e-12
        adjacent_exists = any(
            pair_ok[x, y] and pair_ok[y, z]
            for x in range(d) for y in range(d) for z in range(d)
            if len({x, y, z}) == 3
        )
        rec.note(
            f"adversarial star: paper's 'two adjacent angles <= 2pi/3' claim "
            f"holds: {adjacent_exists} (2+2 split rescues the theorem)"
        )
    return rec


def run_fig5() -> ExperimentRecord:
    return _fig(3, np.sqrt(3.0), "F5", "5")


def run_fig6() -> ExperimentRecord:
    return _fig(4, np.sqrt(2.0), "F6", "6")


if __name__ == "__main__":  # pragma: no cover
    print(run_fig5().to_ascii())
    print(run_fig6().to_ascii())
