"""Experiment X1 — the spread/range trade-off curve (Section 3's theme).

Sweeps φ for k = 2 across the three regimes (zero-spread, part 2, part 1,
Theorem 2), reporting paper bound and measured critical range, and locates
the crossovers against the k = 3 (√3) and k = 4 (√2) zero-spread rows: how
much total angle must two antennae spend to beat three or four antennae of
spread zero?
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import paper_range_bound
from repro.engine import GridCell, PlanRequest, Scenario, execute_plan
from repro.experiments.harness import ExperimentRecord

__all__ = ["run_tradeoff", "k2_bound_curve", "crossover_phi"]


def k2_bound_curve(phis: np.ndarray) -> np.ndarray:
    """Paper range bound for k = 2 at each φ (lmax units)."""
    return np.asarray([paper_range_bound(2, float(p))[0] for p in phis])


def crossover_phi(target_bound: float) -> float:
    """Smallest φ at which the k = 2 bound drops to ``target_bound``.

    Closed-form inversion per regime: part 2 gives
    φ = 4·(π/2 − arcsin(target/2)) for √2 < target ≤ √3; part 1's constant
    2·sin(2π/9) holds from π; range 1 from 6π/5.
    """
    if target_bound >= 2.0:
        return 0.0
    if target_bound > np.sqrt(2.0):
        return float(4.0 * (np.pi / 2.0 - np.arcsin(target_bound / 2.0)))
    if target_bound >= 2.0 * np.sin(2.0 * np.pi / 9.0):
        return float(np.pi)
    if target_bound >= 1.0:
        return float(6.0 * np.pi / 5.0)
    return float("inf")


def run_tradeoff(
    *,
    n: int = 64,
    seeds: int = 3,
    phis: tuple[float, ...] = (
        0.0, np.pi / 2, 2 * np.pi / 3, 0.75 * np.pi, 0.9 * np.pi,
        np.pi, 1.1 * np.pi, 6 * np.pi / 5, 1.5 * np.pi,
    ),
    jobs: int = 1,
    store=None,
    resume: bool = False,
) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X1",
        "Spread vs range trade-off for k = 2 (with k=3/k=4 crossovers)",
        ["phi", "phi/pi", "paper bound", "algorithm", "measured max", "measured mean"],
    )
    # One plan: the φ sweep is the grid, so all cells share each instance's EMST.
    request = PlanRequest(
        (Scenario("uniform", n, seeds=seeds, tag="tradeoff"),),
        tuple(GridCell(2, float(phi)) for phi in phis),
    )
    batch = execute_plan(request, jobs=jobs, store=store, resume=resume)
    for phi, agg in zip(phis, batch.aggregate_by_cell()):
        rec.add(
            round(float(phi), 4), round(float(phi) / np.pi, 3),
            round(paper_range_bound(2, float(phi))[0], 4),
            agg["algorithm"], round(agg["critical_max"], 4), round(agg["critical_mean"], 4),
        )
    rec.note(
        f"k=2 matches k=3's sqrt(3) bound at phi >= {crossover_phi(np.sqrt(3)):.4f} "
        f"(= 2pi/3), and k=4's sqrt(2) at phi >= {crossover_phi(np.sqrt(2)):.4f} (-> pi)."
    )
    rec.note(
        "Regime order along the sweep: k2-zero-spread (2.0) -> theorem3.part2 "
        "(2sin(pi/2-phi/4)) -> theorem3.part1 (2sin(2pi/9)) -> theorem2 (1.0)."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_tradeoff().to_ascii())
