"""Experiment X2 — the φ = 0 rows ([14]) and where "range 2" is loose.

Three measurements:

* k = 2 zero-spread: the leftmost-child/right-sibling construction stays
  within 2·lmax on every workload (provable; Table 1's k=2 row).
* k = 1 zero-spread: measured tour bottleneck vs the certified lower bound;
  on caterpillar MSTs the square tour certifies ≤ 2·lmax.
* the 3-leg spider: the optimal bottleneck tour *exceeds* 2·lmax, exhibiting
  the loose k = 1 row (each leg tip needs the hub as a tour neighbour).
"""

from __future__ import annotations

import numpy as np

from repro.btsp.exact import held_karp_bottleneck
from repro.btsp.heuristic import best_tour, bottleneck_lower_bound
from repro.btsp.square import caterpillar_square_tour, is_caterpillar
from repro.core.ktwo_zero import orient_k2_zero_spread
from repro.experiments.harness import ExperimentRecord
from repro.experiments.workloads import caterpillar_points, make_workload, spider_points
from repro.geometry.points import PointSet, pairwise_distances
from repro.spanning.emst import euclidean_mst
from repro.utils.rng import stable_seed

__all__ = ["run_btsp"]


def _tour_bottleneck(coords: np.ndarray, order: list[int]) -> float:
    d = pairwise_distances(coords)
    idx = np.asarray(order + [order[0]])
    return float(d[idx[:-1], idx[1:]].max())


def run_btsp(*, seeds: int = 3) -> ExperimentRecord:
    rec = ExperimentRecord(
        "X2",
        "phi = 0 rows: k=2 LCRS vs 2*lmax; k=1 tour bottleneck vs lower bound",
        ["instance", "n", "lmax", "k", "measured / lmax", "certified ref", "within 2?"],
    )
    # k = 2 zero-spread across workloads.
    for wl in ("uniform", "clustered", "annulus"):
        for s in range(seeds):
            pts = make_workload(wl, 48, stable_seed("btsp-k2", wl, s))
            ps = PointSet(pts)
            res = orient_k2_zero_spread(ps)
            measured = res.realized_range_normalized()
            rec.add(f"{wl} (k2 LCRS)", len(ps), round(res.lmax, 3), 2,
                    round(measured, 4), "bound 2.0", measured <= 2.0 + 1e-9)

    # k = 1 tours on moderate instances.
    for wl in ("uniform", "clustered"):
        pts = make_workload(wl, 40, stable_seed("btsp-k1", wl))
        ps = PointSet(pts)
        tree = euclidean_mst(ps)
        tour = best_tour(ps)
        rec.add(f"{wl} (k1 tour)", len(ps), round(tree.lmax, 3), 1,
                round(tour.bottleneck / tree.lmax, 4),
                f"lb {tour.lower_bound / tree.lmax:.3f} lmax",
                tour.bottleneck <= 2 * tree.lmax + 1e-9)

    # Caterpillar: certified square tour <= 2 lmax.
    pts = caterpillar_points(8, seed=stable_seed("btsp-cat"))
    ps = PointSet(pts)
    tree = euclidean_mst(ps)
    if is_caterpillar(tree):
        order = caterpillar_square_tour(tree)
        bn = _tour_bottleneck(ps.coords, order)
        rec.add("caterpillar (square tour)", len(ps), round(tree.lmax, 3), 1,
                round(bn / tree.lmax, 4), "certified <= 2", bn <= 2 * tree.lmax + 1e-9)

    # The spider counter-example: optimal bottleneck exceeds 2 lmax.
    pts = spider_points(3, 2)
    ps = PointSet(pts)
    tree = euclidean_mst(ps)
    order, bn = held_karp_bottleneck(ps)
    lb = bottleneck_lower_bound(ps)
    rec.add("spider S(2,2,2) (k1 OPT)", len(ps), round(tree.lmax, 3), 1,
            round(bn / tree.lmax, 4), f"lb {lb / tree.lmax:.3f} lmax",
            bn <= 2 * tree.lmax + 1e-9)
    rec.note(
        "The spider row shows measured OPT > 2: the paper's k=1 'range 2' entry "
        "cannot hold in lmax units for all instances (soundness caveat, DESIGN.md)."
    )
    return rec


if __name__ == "__main__":  # pragma: no cover
    print(run_btsp().to_ascii())
