"""Bottleneck travelling-salesman substrate (reference [14] of the paper).

With a single zero-spread antenna per sensor, a strongly connected
orientation is exactly a directed Hamiltonian cycle, and minimizing the
range is the Euclidean bottleneck TSP.  This package provides an exact
solver for small instances, heuristics with a certified lower bound for
larger ones, and tree-square utilities backing the paper's "range ≤ 2" row
(and our demonstration that the row is loose for k = 1; see DESIGN.md).
"""

from repro.btsp.exact import held_karp_bottleneck
from repro.btsp.heuristic import (
    TourResult,
    nearest_neighbor_tour,
    two_opt_bottleneck,
    best_tour,
    bottleneck_lower_bound,
)
from repro.btsp.square import (
    tree_square_edges,
    is_caterpillar,
    caterpillar_square_tour,
)

__all__ = [
    "held_karp_bottleneck",
    "TourResult",
    "nearest_neighbor_tour",
    "two_opt_bottleneck",
    "best_tour",
    "bottleneck_lower_bound",
    "tree_square_edges",
    "is_caterpillar",
    "caterpillar_square_tour",
]
