"""Exact bottleneck TSP by Held–Karp dynamic programming.

``dp[S][j]`` = the smallest achievable maximum edge over all paths that
start at vertex 0, visit exactly the vertex set ``S`` (which contains 0 and
``j``), and end at ``j``.  Transition: append ``j`` to a path ending at
``i``.  The tour closes back to 0.  O(2ⁿ·n²) time, O(2ⁿ·n) memory —
practical to n ≈ 15, which is all the baseline comparisons need.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.points import PointSet, pairwise_distances

__all__ = ["held_karp_bottleneck"]

_MAX_N = 16


def held_karp_bottleneck(points) -> tuple[list[int], float]:
    """Optimal bottleneck tour: returns ``(order, bottleneck)``.

    ``order`` is a permutation of ``0..n-1``; the tour closes cyclically.
    For n ≤ 2 the "tour" degenerates (a single vertex, or the doubled edge).
    """
    coords = points.coords if isinstance(points, PointSet) else np.asarray(points, float)
    n = coords.shape[0]
    if n > _MAX_N:
        raise InvalidParameterError(
            f"held_karp_bottleneck is exponential; n={n} exceeds {_MAX_N}"
        )
    if n == 1:
        return [0], 0.0
    dist = pairwise_distances(coords)
    if n == 2:
        return [0, 1], float(dist[0, 1])

    full = 1 << n
    inf = np.inf
    dp = np.full((full, n), inf)
    parent = np.full((full, n), -1, dtype=np.int64)
    dp[1, 0] = 0.0
    for s in range(1, full):
        if not s & 1:  # all states include vertex 0
            continue
        row = dp[s]
        for j in range(1, n):
            if not s & (1 << j):
                continue
            prev = s ^ (1 << j)
            if prev == 0:
                continue
            # candidates: max(dp[prev][i], dist[i][j]) over i in prev
            cand = np.maximum(dp[prev], dist[:, j])
            mask = np.array([(prev >> i) & 1 for i in range(n)], dtype=bool)
            cand[~mask] = inf
            i_best = int(np.argmin(cand))
            if cand[i_best] < row[j]:
                row[j] = cand[i_best]
                parent[s, j] = i_best
    last = full - 1
    closing = np.maximum(dp[last], dist[:, 0])
    closing[0] = inf
    j = int(np.argmin(closing))
    bottleneck = float(closing[j])
    order = [j]
    s = last
    while parent[s, j] >= 0:
        i = int(parent[s, j])
        s ^= 1 << j
        j = i
        order.append(j)
    order.reverse()
    assert order[0] == 0 and len(order) == n
    return order, bottleneck
