"""Bottleneck-TSP heuristics with a certified lower bound.

``best_tour`` is the entry point: exact DP for tiny instances, otherwise
nearest-neighbour seeding plus bottleneck-aware 2-opt, compared against
:func:`bottleneck_lower_bound` so callers can report approximation quality
honestly (the paper's "range 2" row for k = 1 is evaluated this way).

The lower bound combines two necessities for any Hamiltonian cycle:

* every vertex needs two distinct tour neighbours, so the bottleneck is at
  least every vertex's second-nearest-neighbour distance;
* the threshold graph at the bottleneck must be spanning-biconnected
  (a Hamiltonian cycle is 2-connected), found by binary search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.btsp.exact import held_karp_bottleneck
from repro.geometry.points import PointSet, pairwise_distances

__all__ = [
    "TourResult",
    "nearest_neighbor_tour",
    "two_opt_bottleneck",
    "bottleneck_lower_bound",
    "best_tour",
]


@dataclass
class TourResult:
    """A tour plus its quality metrics."""

    order: list[int]
    bottleneck: float
    lower_bound: float
    method: str

    @property
    def ratio(self) -> float:
        """Approximation ratio versus the certified lower bound (≥ 1)."""
        if self.lower_bound <= 0:
            return 1.0
        return self.bottleneck / self.lower_bound


def _coords(points) -> np.ndarray:
    return points.coords if isinstance(points, PointSet) else np.asarray(points, float)


def tour_bottleneck(dist: np.ndarray, order: list[int]) -> float:
    """Longest edge of the closed tour ``order``."""
    n = len(order)
    if n <= 1:
        return 0.0
    idx = np.asarray(order + [order[0]], dtype=np.int64)
    return float(dist[idx[:-1], idx[1:]].max())


def nearest_neighbor_tour(dist: np.ndarray, start: int = 0) -> list[int]:
    """Greedy nearest-neighbour tour (seed for local search)."""
    n = dist.shape[0]
    unvisited = np.ones(n, dtype=bool)
    unvisited[start] = False
    order = [start]
    cur = start
    for _ in range(n - 1):
        masked = np.where(unvisited, dist[cur], np.inf)
        nxt = int(np.argmin(masked))
        order.append(nxt)
        unvisited[nxt] = False
        cur = nxt
    return order


def two_opt_bottleneck(
    dist: np.ndarray, order: list[int], *, max_rounds: int = 60
) -> list[int]:
    """2-opt local search minimizing (bottleneck, total length) lexicographically.

    A 2-opt move replaces edges (a,b),(c,d) with (a,c),(b,d) and reverses the
    middle segment; it is accepted if it strictly improves the objective.
    """
    n = len(order)
    if n < 4:
        return list(order)
    tour = list(order)

    def edge(i: int) -> float:
        return float(dist[tour[i], tour[(i + 1) % n]])

    for _ in range(max_rounds):
        improved = False
        current_bn = tour_bottleneck(dist, tour)
        for i in range(n - 1):
            a, b = tour[i], tour[i + 1]
            d_ab = float(dist[a, b])
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue
                c, d = tour[j], tour[(j + 1) % n]
                d_cd = float(dist[c, d])
                d_ac = float(dist[a, c])
                d_bd = float(dist[b, d])
                old_m = max(d_ab, d_cd)
                new_m = max(d_ac, d_bd)
                # Accept if it lowers the larger of the two touched edges and
                # does not create a new global bottleneck.
                if new_m < old_m - 1e-12 and (
                    old_m >= current_bn - 1e-12 or new_m < current_bn
                ):
                    tour[i + 1 : j + 1] = reversed(tour[i + 1 : j + 1])
                    improved = True
                    current_bn = tour_bottleneck(dist, tour)
                    break
            if improved:
                break
        if not improved:
            break
    return tour


def _second_nearest_bound(dist: np.ndarray) -> float:
    """max over v of (second-smallest positive distance from v)."""
    n = dist.shape[0]
    if n < 3:
        return float(dist.max()) if n == 2 else 0.0
    d = dist.copy()
    np.fill_diagonal(d, np.inf)
    two_smallest = np.partition(d, 1, axis=1)[:, :2]
    return float(two_smallest[:, 1].max())


def _is_biconnected_at(dist: np.ndarray, t: float) -> bool:
    """Is the threshold graph (edges ≤ t) spanning and 2-connected?"""
    n = dist.shape[0]
    if n < 3:
        return bool(np.all(dist[np.triu_indices(n, 1)] <= t)) if n == 2 else True
    adj = [np.flatnonzero((dist[v] <= t) & (np.arange(n) != v)) for v in range(n)]
    if any(len(a) < 2 for a in adj):
        return False
    # Iterative Hopcroft–Tarjan articulation check.
    disc = np.full(n, -1)
    low = np.zeros(n, dtype=np.int64)
    parent = np.full(n, -1)
    timer = 0
    stack = [(0, 0)]
    disc[0] = low[0] = timer
    timer += 1
    root_children = 0
    order_stack = []
    it = [0] * n
    while stack:
        u, _ = stack[-1]
        if it[u] < len(adj[u]):
            v = int(adj[u][it[u]])
            it[u] += 1
            if disc[v] == -1:
                parent[v] = u
                disc[v] = low[v] = timer
                timer += 1
                if u == 0:
                    root_children += 1
                stack.append((v, 0))
            elif v != parent[u]:
                low[u] = min(low[u], disc[v])
        else:
            stack.pop()
            if stack:
                p = stack[-1][0]
                low[p] = min(low[p], low[u])
                if p != 0 and low[u] >= disc[p]:
                    return False  # articulation point
    if np.any(disc == -1):
        return False  # disconnected
    return root_children < 2


def bottleneck_lower_bound(points) -> float:
    """Certified lower bound on the bottleneck of any Hamiltonian cycle."""
    coords = _coords(points)
    n = coords.shape[0]
    if n <= 1:
        return 0.0
    dist = pairwise_distances(coords)
    lb = _second_nearest_bound(dist)
    # Binary search the biconnectivity threshold over candidate distances.
    cand = np.unique(dist[np.triu_indices(n, 1)])
    cand = cand[cand >= lb - 1e-12]
    lo, hi = 0, len(cand) - 1
    if hi < 0 or _is_biconnected_at(dist, float(cand[0]) if len(cand) else 0.0):
        return max(lb, float(cand[0]) if len(cand) else lb)
    while lo < hi:
        mid = (lo + hi) // 2
        if _is_biconnected_at(dist, float(cand[mid])):
            hi = mid
        else:
            lo = mid + 1
    return max(lb, float(cand[hi]))


def best_tour(points, *, exact_threshold: int = 12, seeds: int = 4) -> TourResult:
    """Best available bottleneck tour for the instance size.

    Exact DP for ``n ≤ exact_threshold``; otherwise multi-start
    nearest-neighbour + bottleneck 2-opt.
    """
    coords = _coords(points)
    n = coords.shape[0]
    lb = bottleneck_lower_bound(points)
    if n <= 2:
        return TourResult(list(range(n)), lb, lb, "trivial")
    dist = pairwise_distances(coords)
    if n <= exact_threshold:
        order, bn = held_karp_bottleneck(coords)
        return TourResult(order, bn, lb, "held-karp")
    best_order: list[int] | None = None
    best_bn = np.inf
    starts = np.linspace(0, n - 1, num=min(seeds, n), dtype=int)
    for s in starts:
        order = nearest_neighbor_tour(dist, int(s))
        order = two_opt_bottleneck(dist, order)
        bn = tour_bottleneck(dist, order)
        if bn < best_bn:
            best_bn, best_order = bn, order
        if best_bn <= lb * (1.0 + 1e-9):
            break
    assert best_order is not None
    return TourResult(best_order, float(best_bn), lb, "nn+2opt")
