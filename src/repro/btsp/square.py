"""Tree squares and caterpillar tours.

Parker–Rardin's factor-2 bottleneck guarantee rests on Hamiltonian cycles in
*squares* of spanning structures: consecutive tour vertices at graph
distance ≤ 2 in a structure whose edges are ≤ t are at Euclidean distance
≤ 2t (triangle inequality).  The square of a **tree** is Hamiltonian iff the
tree is a caterpillar; :func:`caterpillar_square_tour` builds that cycle
explicitly, giving a certified ≤ 2·lmax tour whenever the MST is a
caterpillar.  Non-caterpillar MSTs (e.g. 3-leg spiders) are exactly the
instances where the paper's k = 1, "range 2" row is loose — benchmarked in
``benchmarks/bench_btsp.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.spanning.emst import SpanningTree

__all__ = ["tree_square_edges", "is_caterpillar", "caterpillar_spine", "caterpillar_square_tour"]


def tree_square_edges(tree: SpanningTree) -> np.ndarray:
    """Edges of T²: pairs at tree distance 1 or 2 (u < v)."""
    adj = tree.adjacency()
    pairs: set[tuple[int, int]] = set()
    for u, v in tree.edges:
        pairs.add((int(min(u, v)), int(max(u, v))))
    for w in range(tree.n):
        nbrs = adj[w]
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                a, b = nbrs[i], nbrs[j]
                pairs.add((min(a, b), max(a, b)))
    return np.asarray(sorted(pairs), dtype=np.int64)


def caterpillar_spine(tree: SpanningTree) -> list[int] | None:
    """The spine path of a caterpillar, or None if the tree is not one.

    A caterpillar is a tree whose non-leaf vertices induce a path.  Returns
    that path (possibly empty for stars, where every vertex but the centre
    is a leaf — the centre alone is the spine).
    """
    n = tree.n
    if n <= 2:
        return list(range(n))
    deg = tree.degrees()
    adj = tree.adjacency()
    internal = [v for v in range(n) if deg[v] >= 2]
    if not internal:  # n == 2 handled above
        return None  # pragma: no cover
    # The internal vertices must induce a path.
    ideg = {}
    iset = set(internal)
    for v in internal:
        ideg[v] = sum(1 for w in adj[v] if w in iset)
    if any(d > 2 for d in ideg.values()):
        return None
    ends = [v for v in internal if ideg[v] <= 1]
    if len(internal) == 1:
        return internal
    if len(ends) != 2:
        return None  # induced cycle or disconnected (impossible in a tree)
    # Walk the induced path.
    spine = [ends[0]]
    prev = -1
    cur = ends[0]
    while True:
        nxt = [w for w in adj[cur] if w in iset and w != prev]
        if not nxt:
            break
        prev, cur = cur, nxt[0]
        spine.append(cur)
    return spine if len(spine) == len(internal) else None


def is_caterpillar(tree: SpanningTree) -> bool:
    """Is the tree a caterpillar (its square is Hamiltonian)?"""
    return caterpillar_spine(tree) is not None


def caterpillar_square_tour(tree: SpanningTree) -> list[int]:
    """A Hamiltonian cycle of T² for a caterpillar ``tree``.

    Zigzag construction over the spine ``s_0..s_m``: the forward pass visits
    the even-indexed spine vertices interleaved with the *legs of the odd*
    ones (every hop skips at most one spine vertex, so tree distance ≤ 2);
    the backward pass visits the odd spine vertices interleaved with the
    legs of the even ones, closing at ``s_0``.  Consecutive tour vertices
    are at tree distance ≤ 2, so with edge lengths ≤ lmax the Euclidean
    bottleneck is ≤ 2·lmax.
    """
    spine = caterpillar_spine(tree)
    if spine is None:
        raise InvalidParameterError("tree is not a caterpillar; its square is not Hamiltonian")
    n = tree.n
    if n <= 2:
        return list(range(n))
    adj = tree.adjacency()
    sset = set(spine)
    legs = {s: [w for w in adj[s] if w not in sset] for s in spine}
    m = len(spine) - 1
    tour: list[int] = []
    # Forward: even spine, legs of odd spine.
    for i in range(0, m + 1):
        if i % 2 == 0:
            tour.append(spine[i])
        else:
            tour.extend(legs[spine[i]])
    # Backward: odd spine, legs of even spine (for even m this starts with
    # the legs of s_m, immediately after s_m itself — a distance-1 hop).
    for i in range(m, -1, -1):
        if i % 2 == 1:
            tour.append(spine[i])
        else:
            tour.extend(legs[spine[i]])
    assert len(tour) == n and len(set(tour)) == n, "zigzag missed a vertex"
    _verify_square_tour(tree, tour)
    return tour


def _verify_square_tour(tree: SpanningTree, tour: list[int]) -> None:
    """Assert consecutive tour vertices are at tree distance ≤ 2."""
    adj = [set(a) for a in tree.adjacency()]
    n = len(tour)
    for idx in range(n):
        a, b = tour[idx], tour[(idx + 1) % n]
        if b in adj[a]:
            continue
        if not adj[a] & adj[b]:
            raise InvalidParameterError(
                f"square-tour hop ({a}, {b}) exceeds tree distance 2"
            )
