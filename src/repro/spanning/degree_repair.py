"""Reduce MST maximum degree to 5 by weight-preserving edge swaps.

Geometry: if a vertex ``u`` has degree ≥ 6 in an MST, some pair of incident
edges ``(u, v)``, ``(u, w)`` subtends an angle ≤ π/3, which forces
``d(v, w) ≤ max(d(u, v), d(u, w))`` (law of cosines).  Strict inequality
would contradict MST minimality (cycle property), so on a genuine MST the
configuration is an exact tie and we may swap the longer incident edge for
``(v, w)`` without changing total weight.  Each swap lowers the degree of
``u``; a bounded number of passes handles the tie chains that arise in
symmetric lattices.  If the cap is hit (adversarially constructed non-MST
input), the caller falls back to jitter (see :func:`repro.spanning.emst.euclidean_mst`).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.angles import ccw_gaps
from repro.spanning.emst import SpanningTree

__all__ = ["repair_degree", "find_tight_pair"]

#: Angular slack under which two incident edges count as a ≤ π/3 tie.
_ANGLE_TOL = 1e-7
#: Relative length slack for "the swap does not increase weight".
_LENGTH_TOL = 1e-9


def find_tight_pair(
    tree: SpanningTree, u: int
) -> tuple[int, int] | None:
    """Two neighbours of ``u`` with ccw gap ≤ π/3 (+tol), or None.

    Returns the pair ``(v, w)`` adjacent in ccw order around ``u`` whose gap
    is smallest, provided that gap is ≤ π/3 within tolerance.
    """
    nbrs = tree.adjacency()[u]
    if len(nbrs) < 2:
        return None
    nbrs_arr = np.asarray(nbrs, dtype=np.int64)
    ang = tree.points.angles_from(u, nbrs_arr)
    order, gaps = ccw_gaps(ang)
    i = int(np.argmin(gaps))
    if gaps[i] > np.pi / 3.0 + _ANGLE_TOL:
        return None
    v = int(nbrs_arr[order[i]])
    w = int(nbrs_arr[order[(i + 1) % len(order)]])
    return v, w


def repair_degree(
    tree: SpanningTree, *, max_degree: int = 5, max_passes: int | None = None
) -> SpanningTree:
    """Swap tied edges until every vertex has degree ≤ ``max_degree``.

    Swaps only when the replacement does not increase tree weight (within
    relative tolerance), so on true MST inputs the result remains an MST.
    Returns the (possibly unchanged) tree; never raises — the caller decides
    what to do if the bound was not met.
    """
    if tree.n <= 2:
        return tree
    limit = max_passes if max_passes is not None else 4 * tree.n
    current = tree
    for _ in range(limit):
        deg = current.degrees()
        over = np.flatnonzero(deg > max_degree)
        if over.size == 0:
            return current
        u = int(over[np.argmax(deg[over])])
        pair = find_tight_pair(current, u)
        if pair is None:
            return current  # not a tie configuration; give up gracefully
        v, w = pair
        duv = current.points.distance(u, v)
        duw = current.points.distance(u, w)
        dvw = current.points.distance(v, w)
        longer, other = (v, w) if duv >= duw else (w, v)
        d_longer = max(duv, duw)
        if dvw > d_longer * (1.0 + _LENGTH_TOL):
            return current  # swap would increase weight: not a true tie
        # Prefer to push the new degree onto the endpoint with smaller degree.
        if deg[other] > deg[longer] and dvw <= min(duv, duw) * (1.0 + _LENGTH_TOL):
            longer, other = other, longer
        current = current.replace_edge((u, longer), (v, w))
    return current
