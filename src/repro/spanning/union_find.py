"""Disjoint-set union with path halving and union by size.

Used by Kruskal's algorithm in :mod:`repro.spanning.emst` and by the
bottleneck-threshold searches in :mod:`repro.btsp`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set forest over integers ``0..n-1``."""

    __slots__ = ("parent", "size", "components")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.components = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s component (path-halving)."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def component_sizes(self) -> dict[int, int]:
        """Map root -> component size (roots only)."""
        out: dict[int, int] = {}
        for x in range(len(self.parent)):
            r = self.find(x)
            out[r] = out.get(r, 0) + 1
        return out
