"""Rooted spanning trees with the paper's §1.2 conventions.

For a tree ``T`` rooted at ``RT`` (a degree-one vertex in Theorem 3):

* ``p(v)`` is the parent of ``v``;
* ``T_v`` is the subtree rooted at ``v``;
* the children of ``v`` are enumerated ``v(1), ..., v(δ(v)-1)`` sorted in
  *counterclockwise* order — in Theorem 3's proof, starting from the ray
  from ``v`` toward the point ``p`` it must cover
  (:meth:`RootedTree.children_ccw_from`).

The class is index-based (vertices are integers into the tree's PointSet) and
all traversals are iterative, so deep path-graphs do not hit the recursion
limit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import angle_of, ccw_angle
from repro.spanning.emst import SpanningTree

__all__ = ["RootedTree"]


class RootedTree:
    """A spanning tree plus a root, parent pointers and children lists."""

    def __init__(self, tree: SpanningTree, root: int):
        n = tree.n
        if not 0 <= root < n:
            raise InvalidParameterError(f"root {root} out of range for {n} vertices")
        self.tree = tree
        self.root = int(root)
        adj = tree.adjacency()
        parent = np.full(n, -1, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)  # BFS order from the root
        seen = np.zeros(n, dtype=bool)
        seen[root] = True
        order[0] = root
        head, tail = 0, 1
        while head < tail:
            u = int(order[head])
            head += 1
            for v in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    parent[v] = u
                    order[tail] = v
                    tail += 1
        if tail != n:
            raise InvalidParameterError("tree is not connected")  # pragma: no cover
        self.parent = parent
        self.bfs_order = order
        children: list[list[int]] = [[] for _ in range(n)]
        for v in order[1:]:
            children[int(parent[v])].append(int(v))
        self.children = children

    # -- basic structure ---------------------------------------------------------
    @property
    def n(self) -> int:
        return self.tree.n

    @property
    def points(self):
        return self.tree.points

    def is_leaf(self, v: int) -> bool:
        """Leaf in the *rooted* sense: no children (the root may be a leaf of T)."""
        return len(self.children[v]) == 0

    def mst_degree(self, v: int) -> int:
        """Degree δ(v) in the underlying undirected tree."""
        return len(self.children[v]) + (0 if v == self.root else 1)

    def depth(self, v: int) -> int:
        d = 0
        while self.parent[v] >= 0:
            v = int(self.parent[v])
            d += 1
        return d

    # -- traversals ---------------------------------------------------------------
    def preorder(self) -> Iterator[int]:
        """Root-first order; every vertex appears after its parent."""
        return iter(self.bfs_order)  # BFS order satisfies the same contract

    def postorder(self) -> Iterator[int]:
        """Children-before-parent order."""
        return iter(self.bfs_order[::-1])

    def subtree_vertices(self, v: int) -> list[int]:
        """All vertices of the subtree ``T_v`` (including ``v``)."""
        out = [int(v)]
        stack = [int(v)]
        while stack:
            u = stack.pop()
            for c in self.children[u]:
                out.append(c)
                stack.append(c)
        return out

    # -- ccw child ordering (Theorem 3's convention) --------------------------------
    def children_ccw_from(self, v: int, ref_point: np.ndarray) -> list[int]:
        """Children of ``v`` sorted ccw starting at the ray ``v → ref_point``.

        The first element is "the first neighbour of v when rotating the ray
        ~vp" counterclockwise (paper, proof of Theorem 3).  ``ref_point``
        must not coincide with ``v``.
        """
        kids = self.children[v]
        pv = self.points[v]
        ref_vec = np.asarray(ref_point, dtype=float) - pv
        if float(np.hypot(ref_vec[0], ref_vec[1])) <= 0.0:
            raise InvalidParameterError(
                f"reference point coincides with vertex {v}; ccw order undefined"
            )
        if len(kids) <= 1:
            return list(kids)
        ref_ang = float(angle_of(ref_vec))
        kid_arr = np.asarray(kids, dtype=np.int64)
        ang = self.points.angles_from(v, kid_arr)
        rel = np.asarray(ccw_angle(ref_ang, ang), dtype=float)
        order = np.argsort(rel, kind="stable")
        return [int(kid_arr[i]) for i in order]

    def neighbors(self, v: int) -> list[int]:
        """All tree neighbours (children + parent) of ``v``."""
        out = list(self.children[v])
        if v != self.root:
            out.append(int(self.parent[v]))
        return out

    def edge_length(self, child: int) -> float:
        """Length of the tree edge from ``child`` to its parent."""
        p = int(self.parent[child])
        if p < 0:
            raise InvalidParameterError(f"vertex {child} is the root; no parent edge")
        return self.points.distance(child, p)

    @staticmethod
    def rooted_at_leaf(tree: SpanningTree, *, prefer: int | None = None) -> "RootedTree":
        """Root ``tree`` at a degree-one vertex (the paper's ``RT``).

        ``prefer`` selects a specific leaf when given; otherwise the smallest
        leaf index is used for determinism.
        """
        leaves = tree.leaves()
        if prefer is not None:
            if prefer not in set(int(x) for x in leaves) and tree.n > 1:
                raise InvalidParameterError(f"vertex {prefer} is not a leaf")
            return RootedTree(tree, int(prefer))
        return RootedTree(tree, int(leaves.min()))
