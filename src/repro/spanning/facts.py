"""Executable versions of the paper's Facts 1 and 2 (Figure 2).

Fact 1 — for ``u, w`` adjacent neighbours (consecutive in ccw order) of
``v`` in an MST:

1. ``∠uvw ≥ π/3``;
2. ``d(u, w) ≤ 2 sin(∠uvw / 2)`` (with edge lengths normalized ≤ 1);
3. the triangle ``△uvw`` is empty.

Fact 2 — for a degree-5 vertex ``v`` with ccw neighbours ``v1..v5``:

1. consecutive angles ``∠v_i v v_{i+1} ∈ [π/3, 2π/3]``;
2. two-apart angles ``∠v_i v v_{i+2} ∈ [2π/3, π]``.

These checkers are used three ways: as test oracles, as runtime sanity
assertions inside Theorem 3 (via lightweight condition checks), and as the
benchmark reproducing Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import ccw_gaps
from repro.geometry.points import chord_length
from repro.geometry.triangles import triangle_is_empty
from repro.spanning.emst import SpanningTree

__all__ = [
    "FactReport",
    "check_fact1",
    "check_fact2",
    "min_adjacent_angle",
    "adjacent_angle_report",
]

_ANG_TOL = 1e-7


@dataclass
class FactReport:
    """Outcome of a fact check over a whole tree."""

    ok: bool
    violations: list[str]
    min_adjacent_angle: float
    max_chord_ratio: float

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _neighbor_gaps(tree: SpanningTree, v: int):
    """ccw-sorted neighbours of ``v`` and the gaps between consecutive ones."""
    nbrs = np.asarray(tree.adjacency()[v], dtype=np.int64)
    ang = tree.points.angles_from(v, nbrs)
    order, gaps = ccw_gaps(ang)
    return nbrs[order], gaps


def min_adjacent_angle(tree: SpanningTree) -> float:
    """Smallest angle between consecutive MST edges over all vertices."""
    best = np.inf
    for v in range(tree.n):
        if len(tree.adjacency()[v]) >= 2:
            _, gaps = _neighbor_gaps(tree, v)
            best = min(best, float(gaps.min()))
    return float(best)


def adjacent_angle_report(tree: SpanningTree) -> np.ndarray:
    """All consecutive-neighbour angles in the tree (for histograms)."""
    out: list[float] = []
    for v in range(tree.n):
        nbrs = tree.adjacency()[v]
        if len(nbrs) >= 2:
            _, gaps = _neighbor_gaps(tree, v)
            out.extend(float(g) for g in gaps[: len(nbrs)])
    return np.asarray(out, dtype=float)


def check_fact1(
    tree: SpanningTree, *, check_empty_triangles: bool = True
) -> FactReport:
    """Verify Fact 1 at every internal vertex of ``tree``.

    The chord bound (part 2) is checked in normalized units: with
    ``lmax`` the longest tree edge, consecutive neighbours ``u, w`` of ``v``
    must satisfy ``d(u, w) ≤ 2·lmax·sin(∠uvw/2)`` whenever both incident
    edges have length ≤ lmax (always true by definition).
    """
    violations: list[str] = []
    min_ang = np.inf
    max_ratio = 0.0
    lmax = tree.lmax if tree.n > 1 else 1.0
    coords = tree.points.coords
    for v in range(tree.n):
        nbrs_sorted, gaps = (None, None)
        nbrs = tree.adjacency()[v]
        if len(nbrs) < 2:
            continue
        nbrs_sorted, gaps = _neighbor_gaps(tree, v)
        d = len(nbrs_sorted)
        for i in range(d if d > 2 else 1):
            u = int(nbrs_sorted[i])
            w = int(nbrs_sorted[(i + 1) % d])
            theta = float(gaps[i])
            min_ang = min(min_ang, theta)
            if theta < np.pi / 3.0 - _ANG_TOL:
                violations.append(
                    f"Fact1.1 at v={v}: angle {theta:.6f} < pi/3 between {u} and {w}"
                )
            duw = tree.points.distance(u, w)
            bound = float(chord_length(min(theta, np.pi), radius=lmax))
            if bound > 0:
                max_ratio = max(max_ratio, duw / bound)
            if theta <= np.pi and duw > bound * (1.0 + 1e-9):
                violations.append(
                    f"Fact1.2 at v={v}: d({u},{w})={duw:.6f} > 2 lmax sin(theta/2)={bound:.6f}"
                )
            if check_empty_triangles and not triangle_is_empty(
                np.stack([coords[u], coords[v], coords[w]]), coords
            ):
                violations.append(f"Fact1.3 at v={v}: triangle ({u},{v},{w}) not empty")
    return FactReport(
        ok=not violations,
        violations=violations,
        min_adjacent_angle=float(min_ang) if np.isfinite(min_ang) else np.nan,
        max_chord_ratio=float(max_ratio),
    )


def check_fact2(tree: SpanningTree) -> FactReport:
    """Verify Fact 2 at every degree-5 vertex of ``tree``."""
    violations: list[str] = []
    min_ang = np.inf
    for v in range(tree.n):
        if len(tree.adjacency()[v]) != 5:
            continue
        _, gaps = _neighbor_gaps(tree, v)
        min_ang = min(min_ang, float(gaps.min()))
        for i in range(5):
            g1 = float(gaps[i])
            if not (np.pi / 3.0 - _ANG_TOL <= g1 <= 2.0 * np.pi / 3.0 + _ANG_TOL):
                violations.append(
                    f"Fact2.1 at v={v}: consecutive angle {g1:.6f} outside [pi/3, 2pi/3]"
                )
            g2 = g1 + float(gaps[(i + 1) % 5])
            if not (2.0 * np.pi / 3.0 - _ANG_TOL <= g2 <= np.pi + _ANG_TOL):
                violations.append(
                    f"Fact2.2 at v={v}: two-apart angle {g2:.6f} outside [2pi/3, pi]"
                )
    return FactReport(
        ok=not violations,
        violations=violations,
        min_adjacent_angle=float(min_ang) if np.isfinite(min_ang) else np.nan,
        max_chord_ratio=np.nan,
    )
