"""Bounded-angle wedge layouts over a spanning tree (symmetric mode).

Symmetric connectivity needs every tree edge covered from *both* ends, so
each vertex must aim antennae at **all** of its tree neighbours — there is
no analogue of the strong-mode trick of covering a neighbour one-way and
routing back around the cycle.  The cheapest way to cover ``d`` neighbour
directions with at most ``k`` sectors is to leave the ``k`` largest
circular gaps between consecutive directions uncovered; the minimum
feasible per-vertex spread sum is therefore

    ``s*(v) = 2π − (sum of the k largest ccw gaps at v)``   (0 when d ≤ k).

Unlike Lemma 1's window (``k`` *consecutive* gaps skipped by one antenna),
the ``k`` skipped gaps here may fall anywhere on the circle — each maximal
run of non-skipped gaps becomes one wedge.  The layout depends only on the
neighbour directions, never on the budget φ: φ enters solely through the
feasibility test ``φ ≥ max_v s*(v)`` (see :mod:`repro.core.symmetric`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.angles import TWO_PI, ccw_angle, ccw_gaps

__all__ = ["wedge_spread_required", "wedge_layout", "tree_spread_requirements"]


def _gap_choice(gaps: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest gaps (ties to the lower index), sorted."""
    return np.sort(np.argsort(-gaps, kind="stable")[:k])


def wedge_spread_required(angles, k: int) -> float:
    """Minimum total spread to cover every direction with ``<= k`` sectors."""
    a = np.asarray(angles, dtype=float)
    if a.size <= k:
        return 0.0
    _, gaps = ccw_gaps(a)
    return float(max(0.0, TWO_PI - gaps[_gap_choice(gaps, k)].sum()))


def wedge_layout(angles, k: int) -> list[tuple[float, float]]:
    """``(start, spread)`` wedges covering all ``angles`` with ``<= k`` sectors.

    Achieves exactly :func:`wedge_spread_required` total spread.  With
    ``d <= k`` directions every wedge degenerates to a zero-spread ray
    (duplicates collapse); otherwise wedge ``i`` sweeps ccw from the
    direction following skipped gap ``i`` to the direction preceding
    skipped gap ``i + 1``.
    """
    if k < 1:
        raise InvalidParameterError(f"antenna count k must be >= 1, got {k}")
    a = np.asarray(angles, dtype=float)
    if a.size == 0:
        return []
    order, gaps = ccw_gaps(a)
    srt = np.asarray(a, dtype=float)[order]
    srt = np.mod(srt, TWO_PI)
    d = srt.size
    if d <= k:
        return [(float(x), 0.0) for x in np.unique(srt)]
    drop = _gap_choice(gaps, k)
    wedges: list[tuple[float, float]] = []
    for i in range(k):
        start = srt[(drop[i] + 1) % d]
        end = srt[drop[(i + 1) % k]]
        wedges.append((float(start), float(ccw_angle(start, end))))
    return wedges


def tree_spread_requirements(points, tree, k: int) -> np.ndarray:
    """Per-vertex ``s*(v)`` over ``tree``'s neighbour directions.

    ``points`` is the ``(n, 2)`` coordinate array (or anything exposing
    ``.coords``); the tree supplies the neighbour lists.  Feasibility of a
    budget φ is ``φ >= tree_spread_requirements(...).max()``.
    """
    coords = getattr(points, "coords", None)
    if coords is None:
        coords = np.asarray(points, dtype=float)
    out = np.zeros(tree.n, dtype=float)
    for v, nbrs in enumerate(tree.adjacency()):
        if len(nbrs) > k:
            off = coords[np.asarray(nbrs, dtype=np.int64)] - coords[v]
            out[v] = wedge_spread_required(np.arctan2(off[:, 1], off[:, 0]), k)
    return out
