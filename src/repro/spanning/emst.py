"""Euclidean minimum spanning trees with maximum degree ≤ 5.

The paper relies on a well-known geometric fact: every planar point set has
an MST of maximum degree at most 5 (two MST edges at a vertex subtend an
angle ≥ π/3, with equality only under distance ties).  We realize this as:

1. fast path: Kruskal restricted to Delaunay edges (the EMST is a subgraph
   of the Delaunay triangulation), O(n log n);
2. fallback for degenerate inputs (collinear, tiny n): dense Prim;
3. tie repair (:mod:`repro.spanning.degree_repair`) if any vertex ends up
   with degree 6 — only possible under exact distance ties — followed by a
   deterministic-jitter rebuild as a last resort.

A :class:`SpanningTree` stores edges, lengths, ``lmax`` (the paper's
normalization unit) and an adjacency structure reused by all orientation
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.errors import DegreeBoundError, InvalidPointSetError
from repro.geometry.points import PointSet
from repro.spanning.union_find import UnionFind

__all__ = ["SpanningTree", "euclidean_mst", "prim_mst_edges", "kruskal_on_edges"]


@dataclass
class SpanningTree:
    """A spanning tree over a :class:`PointSet`.

    Attributes
    ----------
    points:
        The underlying point set.
    edges:
        ``(n-1, 2)`` int array of undirected edges ``(u, v)`` with ``u < v``.
    lengths:
        Euclidean length of each edge.
    """

    points: PointSet
    edges: np.ndarray
    lengths: np.ndarray = field(default=None)  # type: ignore[assignment]
    _adj: list[list[int]] = field(default=None, repr=False)  # type: ignore[assignment]
    _degrees: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        n = len(self.points)
        if self.edges.shape[0] != max(n - 1, 0):
            raise InvalidPointSetError(
                f"a spanning tree over {n} points needs {n - 1} edges, "
                f"got {self.edges.shape[0]}"
            )
        self.edges = np.sort(self.edges, axis=1)
        if self.lengths is None:
            diff = self.points.coords[self.edges[:, 0]] - self.points.coords[self.edges[:, 1]]
            self.lengths = np.hypot(diff[:, 0], diff[:, 1])
        self.lengths = np.asarray(self.lengths, dtype=float)
        self._adj = None
        self._degrees = None
        self._validate_tree()

    def _validate_tree(self) -> None:
        n = len(self.points)
        if n == 1:
            return
        uf = UnionFind(n)
        for u, v in self.edges:
            if not uf.union(int(u), int(v)):
                raise InvalidPointSetError(f"edge ({u}, {v}) creates a cycle")
        if uf.components != 1:
            raise InvalidPointSetError("edges do not span all points")

    # -- structure ----------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def lmax(self) -> float:
        """Longest edge length — the paper's normalization unit (lmax)."""
        return float(self.lengths.max()) if self.lengths.size else 0.0

    @property
    def total_weight(self) -> float:
        return float(self.lengths.sum())

    def adjacency(self) -> list[list[int]]:
        """Neighbour lists (cached); ``adjacency()[u]`` lists u's neighbours."""
        if self._adj is None:
            adj: list[list[int]] = [[] for _ in range(self.n)]
            for u, v in self.edges:
                adj[int(u)].append(int(v))
                adj[int(v)].append(int(u))
            self._adj = adj
        return self._adj

    def degrees(self) -> np.ndarray:
        """Vertex degrees (cached; repeated ``leaves()``/``max_degree()`` are free)."""
        if self._degrees is None:
            deg = np.bincount(self.edges.ravel(), minlength=self.n)
            deg.setflags(write=False)
            self._degrees = deg
        return self._degrees

    def max_degree(self) -> int:
        return int(self.degrees().max()) if self.n > 1 else 0

    def edge_set(self) -> set[tuple[int, int]]:
        return {(int(u), int(v)) for u, v in self.edges}

    def leaves(self) -> np.ndarray:
        """Indices of degree-1 vertices (any leaf may serve as the root RT)."""
        if self.n == 1:
            return np.array([0], dtype=np.int64)
        return np.flatnonzero(self.degrees() == 1)

    def replace_edge(self, old: tuple[int, int], new: tuple[int, int]) -> "SpanningTree":
        """Return a new tree with ``old`` swapped for ``new`` (must stay a tree)."""
        u, v = sorted(int(x) for x in old)
        keep = ~((self.edges[:, 0] == u) & (self.edges[:, 1] == v))
        if keep.all():
            raise KeyError(f"edge {old} not in tree")
        edges = np.vstack([self.edges[keep], np.sort(np.asarray(new, dtype=np.int64))])
        return SpanningTree(self.points, edges)


def kruskal_on_edges(
    n: int, cand: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Kruskal over candidate edges; returns the chosen ``(n-1, 2)`` edges.

    Ties are broken deterministically by (weight, u, v) so repeated runs give
    identical trees.
    """
    cand = np.asarray(cand, dtype=np.int64).reshape(-1, 2)
    cand = np.sort(cand, axis=1)
    order = np.lexsort((cand[:, 1], cand[:, 0], weights))
    uf = UnionFind(n)
    out = []
    for idx in order:
        u, v = int(cand[idx, 0]), int(cand[idx, 1])
        if uf.union(u, v):
            out.append((u, v))
            if len(out) == n - 1:
                break
    if len(out) != n - 1:
        raise InvalidPointSetError("candidate edges do not connect the point set")
    return np.asarray(out, dtype=np.int64)


def prim_mst_edges(coords: np.ndarray) -> np.ndarray:
    """Dense O(n²) Prim — robust fallback for degenerate configurations.

    Vectorized: one distance row per extraction, no Python inner loop over
    candidate edges.
    """
    c = np.asarray(coords, dtype=float)
    n = c.shape[0]
    if n <= 1:
        return np.empty((0, 2), dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.full(n, -1, dtype=np.int64)
    in_tree[0] = True
    diff = c - c[0]
    best_dist = np.hypot(diff[:, 0], diff[:, 1])
    best_from[:] = 0
    best_dist[0] = np.inf
    edges = []
    for _ in range(n - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_dist)))
        edges.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        diff = c - c[nxt]
        d = np.hypot(diff[:, 0], diff[:, 1])
        closer = (~in_tree) & (d < best_dist)
        best_dist[closer] = d[closer]
        best_from[closer] = nxt
    return np.asarray(edges, dtype=np.int64)


def _delaunay_candidate_edges(coords: np.ndarray) -> np.ndarray | None:
    """Unique Delaunay edges, or None if qhull cannot triangulate."""
    try:
        from scipy.spatial import Delaunay
        from scipy.spatial import QhullError
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    try:
        tri = Delaunay(coords)
    except (QhullError, ValueError):
        return None
    simplices = tri.simplices
    e = np.vstack(
        [simplices[:, [0, 1]], simplices[:, [1, 2]], simplices[:, [0, 2]]]
    )
    e = np.sort(e, axis=1)
    return np.unique(e, axis=0)


def euclidean_mst(
    points: PointSet | np.ndarray,
    *,
    max_degree: int | None = 5,
    _jitter_attempts: int = 3,
) -> SpanningTree:
    """Compute a Euclidean MST, enforcing ``max_degree`` (default 5).

    Parameters
    ----------
    points:
        A :class:`PointSet` or raw ``(n, 2)`` coordinates.
    max_degree:
        If not None, repair distance ties so no vertex exceeds this degree
        (5 always suffices for MSTs of distinct points; see DESIGN.md).

    Returns
    -------
    SpanningTree
    """
    ps = points if isinstance(points, PointSet) else PointSet(points)
    n = len(ps)
    if n == 1:
        return SpanningTree(ps, np.empty((0, 2), dtype=np.int64))

    coords = ps.coords
    cand = _delaunay_candidate_edges(coords) if n >= 4 else None
    if cand is not None:
        diff = coords[cand[:, 0]] - coords[cand[:, 1]]
        w = np.hypot(diff[:, 0], diff[:, 1])
        try:
            edges = kruskal_on_edges(n, cand, w)
        except InvalidPointSetError:
            # Near-degenerate inputs (e.g. almost-collinear points) can make
            # qhull return a triangulation whose edges miss some points
            # entirely; dense Prim is always correct there.
            edges = prim_mst_edges(coords)
    else:
        edges = prim_mst_edges(coords)
    tree = SpanningTree(ps, edges)

    if max_degree is None or tree.max_degree() <= max_degree:
        return tree

    from repro.spanning.degree_repair import repair_degree

    tree = repair_degree(tree, max_degree=max_degree)
    if tree.max_degree() <= max_degree:
        return tree

    # Exact-tie pathologies (e.g. perfect hexagonal lattices): deterministic
    # tiny jitter breaks ties; the tree topology on the jittered points is a
    # valid MST of the original points up to the jitter magnitude.
    rng = np.random.default_rng(0xD15EA5E)
    scale = float(np.max(np.abs(coords))) or 1.0
    for attempt in range(_jitter_attempts):
        jitter = rng.normal(scale=scale * 1e-9 * (10.0**attempt), size=coords.shape)
        jittered = PointSet(coords + jitter)
        jt = euclidean_mst(jittered, max_degree=None)
        candidate = SpanningTree(ps, jt.edges)
        candidate = repair_degree(candidate, max_degree=max_degree)
        if candidate.max_degree() <= max_degree:
            return candidate
    raise DegreeBoundError(
        f"could not reduce MST maximum degree to {max_degree} "
        f"(stuck at {tree.max_degree()})"
    )
