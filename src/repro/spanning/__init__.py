"""Euclidean minimum spanning trees with the paper's degree-5 guarantee."""

from repro.spanning.emst import SpanningTree, euclidean_mst
from repro.spanning.rooted import RootedTree
from repro.spanning.union_find import UnionFind
from repro.spanning.facts import (
    check_fact1,
    check_fact2,
    min_adjacent_angle,
    adjacent_angle_report,
)

__all__ = [
    "SpanningTree",
    "euclidean_mst",
    "RootedTree",
    "UnionFind",
    "check_fact1",
    "check_fact2",
    "min_adjacent_angle",
    "adjacent_angle_report",
]
