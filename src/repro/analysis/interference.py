"""Interference proxy: how many transmitters cover each receiver.

The paper's system model explicitly ignores interference (§5: "In this
study the system model assumes that there is no interference").  Its
introduction, however, motivates directional antennae by interference
reduction ([19]'s θ-model: a receiver inside a transmission zone is
interfered with).  This module quantifies that effect for our orientations:
the *interference degree* of a sensor is the number of other sensors whose
antenna sectors (at their operating radius) cover it.  Comparing directional
orientations against the omnidirectional baseline reproduces the intro's
qualitative claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.antenna.coverage import coverage_matrix
from repro.core.result import OrientationResult
from repro.kernels.geometry import PolarTables

__all__ = ["InterferenceReport", "interference_report", "compare_interference"]


@dataclass
class InterferenceReport:
    """Distribution of interference degrees (in-coverage counts)."""

    mean: float
    max: int
    p95: float
    total_covered_pairs: int

    @classmethod
    def from_matrix(cls, cover: np.ndarray) -> "InterferenceReport":
        indeg = cover.sum(axis=0)
        return cls(
            mean=float(indeg.mean()) if indeg.size else 0.0,
            max=int(indeg.max()) if indeg.size else 0,
            p95=float(np.percentile(indeg, 95)) if indeg.size else 0.0,
            total_covered_pairs=int(cover.sum()),
        )


def interference_report(
    result: OrientationResult, *, tables: PolarTables | None = None
) -> InterferenceReport:
    """Interference degrees induced by an orientation result.

    ``tables`` is the optional shared polar geometry of the instance.
    """
    cover = coverage_matrix(result.points, result.assignment, tables=tables)
    return InterferenceReport.from_matrix(cover)


def compare_interference(
    directional: OrientationResult, omni: OrientationResult
) -> dict[str, float]:
    """Directional-vs-omni summary used by the interference bench."""
    d = interference_report(directional)
    o = interference_report(omni)
    return {
        "directional_mean": d.mean,
        "omni_mean": o.mean,
        "mean_reduction_factor": (o.mean / d.mean) if d.mean > 0 else float("inf"),
        "directional_max": float(d.max),
        "omni_max": float(o.max),
    }
