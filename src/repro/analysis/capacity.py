"""Capacity proxies from the paper's introduction ([7] and [19]).

Two closed-form figures the intro cites to motivate directional antennae:

* Gupta–Kumar [7]: with ``n`` optimally placed omnidirectional antennae the
  per-node transport capacity scales as ``Θ(√(W/n))``.
* Yi–Pei–Kalyanaraman [19]: directional transmission *and* reception with
  beam width θ yields a ``2π/θ · √(1/η)``-style gain; the paper quotes the
  ``√(2π/θ) / η`` form — we expose the gain factor ``2π/θ`` for transmit
  and receive beams separately so experiments can report both.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

__all__ = ["transport_capacity_gupta_kumar", "capacity_gain_yi_pei"]


def transport_capacity_gupta_kumar(n: int, bandwidth_w: float = 1.0) -> float:
    """Per-network transport capacity scale ``√(W·n)``-style ([7]).

    Returns the Θ(√(W n)) magnitude (bit-meters/sec up to constants); the
    per-node share is this divided by ``n``, i.e. Θ(√(W/n)).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if bandwidth_w <= 0:
        raise InvalidParameterError("bandwidth must be positive")
    return math.sqrt(bandwidth_w * n)


def capacity_gain_yi_pei(
    theta_tx: float, theta_rx: float | None = None, *, eta: float = 1.0
) -> float:
    """Capacity gain factor for beam widths ``θ`` ([19]).

    Transmit-only beamforming gains ``√(2π/θ_tx)``; adding directional
    reception multiplies by ``√(2π/θ_rx)``.  ``eta`` (the paper's α) scales
    the average fraction of interfered receivers; the quoted gain is
    ``√(2π/θ) · √(2π/θ_rx) / η``.
    """
    if not 0 < theta_tx <= 2 * math.pi:
        raise InvalidParameterError(f"theta_tx must be in (0, 2pi], got {theta_tx}")
    if eta <= 0:
        raise InvalidParameterError("eta must be positive")
    gain = math.sqrt(2 * math.pi / theta_tx)
    if theta_rx is not None:
        if not 0 < theta_rx <= 2 * math.pi:
            raise InvalidParameterError(f"theta_rx must be in (0, 2pi], got {theta_rx}")
        gain *= math.sqrt(2 * math.pi / theta_rx)
    return gain / eta
