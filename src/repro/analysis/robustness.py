"""Strong c-connectivity of produced orientations (the paper's §5 question).

The conclusion asks: "for a given integer c, ensure the network remains
strongly connected after the deletion of any c − 1 nodes."  The paper leaves
this open; this module *measures* the c-connectivity the Table-1
constructions actually deliver, which is the natural experimental companion
(tree-based constructions are expected to be exactly 1-connected — every
internal MST vertex is a cut — while denser incidental coverage sometimes
buys more).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.result import OrientationResult
from repro.errors import InvalidParameterError
from repro.graph.connectivity import (
    directed_vertex_connectivity,
    is_strongly_connected,
)
from repro.graph.digraph import DiGraph
from repro.kernels.connectivity import strongly_connected_edges
from repro.utils.rng import counter_rng

__all__ = ["strong_connectivity_order", "failure_sweep", "RobustnessReport"]


def strong_connectivity_order(g: DiGraph) -> int:
    """Largest c such that g stays strongly connected after any c−1 deletions.

    Equals ``directed_vertex_connectivity(g)`` for non-complete graphs, and
    ``n − 1`` for complete digraphs; 0 if not strongly connected at all.
    """
    if not is_strongly_connected(g):
        return 0
    return max(1, directed_vertex_connectivity(g))


@dataclass
class RobustnessReport:
    """Outcome of random-failure simulation on one orientation."""

    n: int
    connectivity_order: int
    survival_by_failures: dict[int, float]

    def survival(self, f: int) -> float:
        return self.survival_by_failures.get(f, float("nan"))


def _survives_deletion(g: DiGraph, removed: np.ndarray) -> bool:
    """Strong connectivity after deleting ``removed`` — no subgraph object.

    Masks the edge list and probes the CSR kernel directly, so a Monte-
    Carlo sweep of thousands of trials performs zero ``DiGraph`` builds.
    """
    keep = np.ones(g.n, dtype=bool)
    keep[removed] = False
    remap = np.cumsum(keep) - 1  # kept vertices -> dense ids, in order
    e = g.edges()
    n_kept = int(g.n - removed.size)
    if e.size == 0:
        return n_kept <= 1
    mask = keep[e[:, 0]] & keep[e[:, 1]]
    return strongly_connected_edges(n_kept, remap[e[mask, 0]], remap[e[mask, 1]])


def failure_sweep(
    result: OrientationResult,
    *,
    max_failures: int = 3,
    trials: int = 50,
    seed: int | None = 0,
    failures: "Sequence[int] | None" = None,
) -> RobustnessReport:
    """Monte-Carlo survival probability under random node failures.

    For each failure count f ∈ 1..max_failures (or the explicit
    ``failures`` counts), deletes f uniformly random sensors ``trials``
    times and reports the fraction of trials in which the surviving
    transmission graph is still strongly connected.

    Every trial draws from its own counter-based stream keyed by
    ``("robustness", seed, f, t)`` (see :func:`repro.utils.rng.counter_rng`),
    not from one sequential generator: trial (f, t) sees the same deletion
    set whatever subset of failure counts runs, in whatever order — so a
    standalone sweep, a restricted ``failures=[2]`` re-check and an
    ensemble-side reuse of the same seed all agree draw for draw.
    """
    if max_failures < 0:
        raise InvalidParameterError("max_failures must be >= 0")
    g = result.transmission_graph()
    n = g.n
    counts = range(1, max_failures + 1) if failures is None else failures
    survival: dict[int, float] = {}
    for f in counts:
        f = int(f)
        if f < 1:
            raise InvalidParameterError(f"failure counts must be >= 1, got {f}")
        if n - f < 2:
            break
        ok = 0
        for t in range(trials):
            rng = counter_rng("robustness", seed, f, t)
            removed = rng.choice(n, size=f, replace=False)
            if _survives_deletion(g, removed):
                ok += 1
        survival[f] = ok / trials
    order = strong_connectivity_order(g) if n <= 400 else (1 if is_strongly_connected(g) else 0)
    return RobustnessReport(n=n, connectivity_order=order, survival_by_failures=survival)
