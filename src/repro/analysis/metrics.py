"""One-stop summary metrics for an orientation result.

Aggregates the quantities every experiment reports: range bound vs realized
vs critical, spread usage, antenna counts, and graph size — so benchmark
drivers stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

from repro.core.result import OrientationResult
from repro.graph.connectivity import is_strongly_connected
from repro.kernels.geometry import PolarTables, polar_tables

__all__ = ["OrientationMetrics", "orientation_metrics"]


@dataclass
class OrientationMetrics:
    """Flat record of an orientation's measured properties."""

    algorithm: str
    n: int
    k: int
    phi: float
    range_bound: float
    realized_range: float
    critical_range: float
    max_spread_sum: float
    antennas_max: int
    antennas_total: int
    edges: int
    strongly_connected: bool

    def as_dict(self) -> dict:
        return asdict(self)

    def identical(self, other: "OrientationMetrics") -> bool:
        """Bitwise field equality, except NaN == NaN (skipped critical ranges).

        The engine's determinism guarantee (parallel == serial) is stated in
        terms of this predicate: dataclass ``==`` is unusable whenever
        ``compute_critical=False`` leaves NaN critical ranges.
        """
        for name, a in self.as_dict().items():
            b = getattr(other, name)
            if a != b and not (a != a and b != b):  # NaN-tolerant
                return False
        return True

    def bound_satisfied(self, tol: float = 1e-7) -> bool:
        """Is the measured critical range within the proven bound?"""
        return self.critical_range <= self.range_bound * (1.0 + tol) + 1e-12


def orientation_metrics(
    result: OrientationResult,
    *,
    compute_critical: bool = True,
    tables: PolarTables | None = None,
) -> OrientationMetrics:
    """Measure ``result``; ranges are reported in lmax units.

    ``tables`` is the instance's shared polar geometry (from the engine's
    :class:`~repro.engine.cache.ArtifactCache`); without it the tables are
    built once here and shared between the transmission-graph and
    critical-range measurements.
    """
    if tables is None:
        tables = polar_tables(result.points.coords)
    g = result.transmission_graph(tables=tables)
    counts = result.assignment.counts()
    critical = (
        result.measured_critical_range_normalized(tables=tables)
        if compute_critical
        else float("nan")
    )
    return OrientationMetrics(
        algorithm=result.algorithm,
        n=len(result.points),
        k=result.k,
        phi=result.phi,
        range_bound=result.range_bound,
        realized_range=result.realized_range_normalized(),
        critical_range=critical,
        max_spread_sum=result.max_spread_sum(),
        antennas_max=int(counts.max()) if len(counts) else 0,
        antennas_total=int(counts.sum()),
        edges=g.m,
        strongly_connected=is_strongly_connected(g),
    )
