"""One-stop summary metrics for an orientation result.

Aggregates the quantities every experiment reports: range bound vs realized
vs critical, spread usage, antenna counts, and graph size — so benchmark
drivers stay declarative.

Two entry points: :func:`orientation_metrics` measures a single result;
:func:`batched_orientation_metrics` measures a whole chunk of instances'
results through the packed multi-instance kernels — one backend launch per
measurement for the chunk, bit-identical values.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Sequence

import numpy as np

from repro.core.result import OrientationResult
from repro.graph.connectivity import is_strongly_connected, is_symmetrically_connected
from repro.kernels.backend import active_backend
from repro.kernels.batch import BatchedInstances, PackedPolarTables
from repro.kernels.geometry import PolarTables, polar_tables
from repro.kernels.instrument import recording
from repro.kernels.sparse import SparsePolarTables, sparse_metrics

__all__ = [
    "OrientationMetrics",
    "orientation_metrics",
    "batched_orientation_metrics",
]


@dataclass
class OrientationMetrics:
    """Flat record of an orientation's measured properties.

    ``mode`` names the connectivity objective the measurement was taken
    under: ``strongly_connected`` holds connectivity under that mode (mutual
    undirected connectivity when ``mode == "symmetric"``) and
    ``critical_range`` is that mode's critical radius.  ``edges`` is always
    the *directed* transmission-edge count, mode-independent.
    """

    algorithm: str
    n: int
    k: int
    phi: float
    range_bound: float
    realized_range: float
    critical_range: float
    max_spread_sum: float
    antennas_max: int
    antennas_total: int
    edges: int
    strongly_connected: bool
    mode: str = "strong"

    def as_dict(self) -> dict:
        d = asdict(self)
        # Strong-mode dicts predate the mode seam; omitting the default keeps
        # every previously written ledger metric payload byte-identical.
        if d.get("mode") == "strong":
            del d["mode"]
        return d

    def identical(self, other: "OrientationMetrics") -> bool:
        """Bitwise field equality, except NaN == NaN (skipped critical ranges).

        The engine's determinism guarantee (parallel == serial) is stated in
        terms of this predicate: dataclass ``==`` is unusable whenever
        ``compute_critical=False`` leaves NaN critical ranges.  Compares the
        full field set (``asdict``), including ``mode`` even when the
        serialized form omits its default.
        """
        for name, a in asdict(self).items():
            b = getattr(other, name)
            if a != b and not (a != a and b != b):  # NaN-tolerant
                return False
        return True

    def bound_satisfied(self, tol: float = 1e-7) -> bool:
        """Is the measured critical range within the proven bound?"""
        return self.critical_range <= self.range_bound * (1.0 + tol) + 1e-12


def orientation_metrics(
    result: OrientationResult,
    *,
    compute_critical: bool = True,
    tables: PolarTables | SparsePolarTables | None = None,
    mode: str = "strong",
) -> OrientationMetrics:
    """Measure ``result``; ranges are reported in lmax units.

    ``tables`` is the instance's shared polar geometry (from the engine's
    :class:`~repro.engine.cache.ArtifactCache`); without it the tables are
    built once here and shared between the transmission-graph and
    critical-range measurements.  Handing in :class:`SparsePolarTables` —
    or activating a backend whose ``use_sparse`` rule selects this
    instance — routes the measurement through the radius-bounded sparse
    path (:func:`repro.kernels.sparse.sparse_metrics`), bit-identical by
    its certification contract.  ``mode`` selects the connectivity
    objective the connectivity flag and critical range are measured under.
    """
    backend = active_backend()
    if isinstance(tables, SparsePolarTables):
        return _sparse_orientation_metrics(
            result, tables, compute_critical=compute_critical, backend=backend,
            mode=mode,
        )
    if tables is None:
        wants = getattr(backend, "use_sparse", None)
        if wants is not None and wants(len(result.points)):
            return _sparse_orientation_metrics(
                result, None, compute_critical=compute_critical, backend=backend,
                mode=mode,
            )
        tables = polar_tables(result.points.coords)
    g = result.transmission_graph(tables=tables)
    counts = result.assignment.counts()
    critical = (
        result.measured_critical_range_normalized(tables=tables, mode=mode)
        if compute_critical
        else float("nan")
    )
    connected = (
        is_strongly_connected(g) if mode == "strong" else is_symmetrically_connected(g)
    )
    return OrientationMetrics(
        algorithm=result.algorithm,
        n=len(result.points),
        k=result.k,
        phi=result.phi,
        range_bound=result.range_bound,
        realized_range=result.realized_range_normalized(),
        critical_range=critical,
        max_spread_sum=result.max_spread_sum(),
        antennas_max=int(counts.max()) if len(counts) else 0,
        antennas_total=int(counts.sum()),
        edges=g.m,
        strongly_connected=connected,
        mode=mode,
    )


def _sparse_orientation_metrics(
    result: OrientationResult,
    tables: SparsePolarTables | None,
    *,
    compute_critical: bool,
    backend,
    mode: str = "strong",
) -> OrientationMetrics:
    """Measure through the radius-bounded candidate geometry.

    Same fields, same floats as the dense path: the sparse kernels
    evaluate the identical per-pair expressions over the certified
    candidate set (see :mod:`repro.kernels.sparse`).
    """
    sensor_idx, start, spread, radius = result.assignment.flattened()
    with recording() as rec:
        edges, connected, critical_abs, _ = sparse_metrics(
            result.points.coords,
            sensor_idx,
            start,
            spread,
            radius,
            range_bound_abs=result.range_bound_absolute,
            compute_critical=compute_critical,
            tables=tables,
            mode=mode,
        )
    if compute_critical:
        critical = critical_abs / result.lmax if result.lmax > 0 else critical_abs
        result.stats["critical_range_kernels"] = {
            "backend": backend.name,
            "sparse": True,
            **rec.as_dict(),
        }
    else:
        critical = float("nan")
    counts = result.assignment.counts()
    return OrientationMetrics(
        algorithm=result.algorithm,
        n=len(result.points),
        k=result.k,
        phi=result.phi,
        range_bound=result.range_bound,
        realized_range=result.realized_range_normalized(),
        critical_range=critical,
        max_spread_sum=result.max_spread_sum(),
        antennas_max=int(counts.max()) if len(counts) else 0,
        antennas_total=int(counts.sum()),
        edges=edges,
        strongly_connected=connected,
        mode=mode,
    )


def batched_orientation_metrics(
    results: Sequence[OrientationResult],
    batch: BatchedInstances,
    tables: PackedPolarTables,
    *,
    compute_critical: bool = True,
    eps: float = 1e-9,
    mode: str = "strong",
) -> list[OrientationMetrics]:
    """Measure one grid cell's results for a whole chunk of instances.

    ``results[m]`` must be the orientation of instance ``m`` of ``batch``
    (same coords, same order); ``tables`` is the chunk's packed polar
    geometry (from :meth:`~repro.engine.cache.ArtifactCache.packed_polar`).
    Instead of per-instance kernel launches this issues *one* packed
    coverage + one packed connectivity call (plus one more coverage and
    one packed search when ``compute_critical``) for the entire chunk —
    the counter win ``execute_plan`` banks on — and returns values
    bit-identical to :func:`orientation_metrics` per instance.
    """
    backend = active_backend()
    m = len(results)
    if m != batch.m:
        raise ValueError(f"{m} results for a batch of {batch.m} instances")
    if m == 0:
        return []

    inst_parts, idx_parts, start_parts, spread_parts, radius_parts = (
        [], [], [], [], []
    )
    for i, result in enumerate(results):
        idx, start, spread, radius = result.assignment.flattened()
        inst_parts.append(np.full(idx.shape[0], i, dtype=np.int64))
        idx_parts.append(idx)
        start_parts.append(start)
        spread_parts.append(spread)
        radius_parts.append(radius)
    inst_idx = np.concatenate(inst_parts)
    sensor_idx = np.concatenate(idx_parts)
    start = np.concatenate(start_parts)
    spread = np.concatenate(spread_parts)
    radius = np.concatenate(radius_parts)

    cover = backend.packed_coverage(
        tables, inst_idx, sensor_idx, start, spread, radius, eps=eps
    )
    if mode == "symmetric":
        connected = backend.packed_symmetric_connected(cover, batch.counts)
    else:
        connected = backend.packed_strongly_connected(cover, batch.counts)
    edges = cover.reshape(m, -1).sum(axis=1)

    if compute_critical:
        cover_ang = backend.packed_coverage(
            tables, inst_idx, sensor_idx, start, spread, radius,
            eps=eps, ignore_radius=True,
        )
        if mode == "symmetric":
            critical_abs = backend.packed_symmetric_critical(
                tables, cover_ang, eps=eps
            )
        else:
            critical_abs = backend.packed_critical(tables, cover_ang, eps=eps)

    out = []
    for i, result in enumerate(results):
        if compute_critical:
            cr = float(critical_abs[i])
            critical = cr / result.lmax if result.lmax > 0 else cr
            result.stats["critical_range_kernels"] = {
                "backend": backend.name,
                "batched": True,
            }
        else:
            critical = float("nan")
        counts = result.assignment.counts()
        out.append(
            OrientationMetrics(
                algorithm=result.algorithm,
                n=len(result.points),
                k=result.k,
                phi=result.phi,
                range_bound=result.range_bound,
                realized_range=result.realized_range_normalized(),
                critical_range=critical,
                max_spread_sum=result.max_spread_sum(),
                antennas_max=int(counts.max()) if len(counts) else 0,
                antennas_total=int(counts.sum()),
                edges=int(edges[i]),
                strongly_connected=bool(connected[i]),
                mode=mode,
            )
        )
    return out
