"""Empirical attack on the paper's §5 open problem: strong 2-connectivity.

The paper leaves open how to orient antennae so the network survives node
deletions.  This module measures the *cost* of that goal on real instances:
starting from any Table-1 orientation (which is typically exactly
1-connected — every internal MST vertex is a cut vertex), it greedily mounts
extra zero-spread antennae that bypass cut vertices until the transmission
graph is strongly 2-connected, and reports how many extra antennae and how
much extra range were needed.

Greedy scheme: while some vertex ``x`` is a cut vertex (deleting it breaks
strong connectivity), look at the strongly connected components of
``G − x``; pick the component pair ``(A, B)`` with an A→B deficiency and add
the shortest possible new edge ``a → b`` (a zero-spread antenna at ``a``)
that restores reachability without ``x``.  Each added edge strictly repairs
at least one (x, component) deficiency, so the loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.antenna.model import AntennaAssignment
from repro.core.result import OrientationResult
from repro.errors import InfeasibleInstanceError
from repro.geometry.sectors import sector_toward
from repro.graph.digraph import DiGraph
from repro.graph.connectivity import is_strongly_connected

__all__ = ["AugmentationReport", "augment_to_biconnectivity"]


@dataclass
class AugmentationReport:
    """Cost of upgrading an orientation to strong 2-connectivity."""

    extra_antennae: int
    extra_edges: list[tuple[int, int]]
    max_extra_edge_length: float
    max_antennas_per_node: int
    achieved: bool


def _without_vertex(edges: np.ndarray, n: int, x: int) -> tuple[DiGraph, np.ndarray]:
    keep = np.ones(n, dtype=bool)
    keep[x] = False
    remap = -np.ones(n, dtype=np.int64)
    remap[keep] = np.arange(n - 1)
    mask = keep[edges[:, 0]] & keep[edges[:, 1]]
    sub = np.stack([remap[edges[mask, 0]], remap[edges[mask, 1]]], axis=1)
    inverse = np.flatnonzero(keep)
    return DiGraph(n - 1, sub), inverse


def _find_cut_vertex(edges: np.ndarray, n: int) -> tuple[int, DiGraph, np.ndarray] | None:
    for x in range(n):
        sub, inverse = _without_vertex(edges, n, x)
        if sub.n >= 2 and not is_strongly_connected(sub):
            return x, sub, inverse
    return None


def augment_to_biconnectivity(
    result: OrientationResult, *, max_extra: int | None = None
) -> tuple[OrientationResult, AugmentationReport]:
    """Add zero-spread antennae until the network is strongly 2-connected.

    Returns a **new** result (the input is not mutated) plus the cost
    report.  ``max_extra`` caps the number of added antennae (default
    ``4 n``); exceeding it raises :class:`InfeasibleInstanceError`.
    """
    points = result.points
    n = len(points)
    coords = points.coords
    assignment = AntennaAssignment(n)
    for i, s in result.assignment:
        assignment.add(i, s)
    edges = [tuple(map(int, e)) for e in result.intended_edges]
    # Start from the full transmission graph: incidental coverage counts.
    g = result.transmission_graph()
    all_edges = g.edges().copy()
    added: list[tuple[int, int]] = []
    cap = max_extra if max_extra is not None else 4 * n
    max_len = 0.0

    if n < 3:
        report = AugmentationReport(0, [], 0.0,
                                    int(assignment.counts().max()) if n else 0, n < 3)
        return result, report

    while True:
        cut = _find_cut_vertex(all_edges, n)
        if cut is None:
            break
        x, sub, inverse = cut
        if len(added) >= cap:
            raise InfeasibleInstanceError(
                f"2-connectivity augmentation exceeded {cap} extra antennae"
            )
        # Components of G - x in reverse topological order (Tarjan ids).
        from repro.graph.scc import condensation

        dag, comp = condensation(sub)
        # A source component (no incoming edges in the DAG) other than the
        # one containing... pick a source S and a sink T: add edge from T's
        # member to S's member (shortest pair) to break the deficiency.
        in_deg = dag.in_degrees()
        out_deg = dag.out_degrees()
        sources = np.flatnonzero(in_deg == 0)
        sinks = np.flatnonzero(out_deg == 0)
        s_comp = int(sources[0])
        # An isolated SCC is both source and sink; pair it with any other
        # component so the new edge never degenerates to a self-loop.
        t_candidates = [int(c) for c in sinks if int(c) != s_comp]
        if not t_candidates:
            t_candidates = [c for c in range(dag.n) if c != s_comp]
        t_comp = t_candidates[-1]
        s_members = inverse[np.flatnonzero(comp == s_comp)]
        t_members = inverse[np.flatnonzero(comp == t_comp)]
        # Shortest new edge from a sink-component vertex to a source-component
        # vertex (both avoiding x by construction).
        diff = coords[t_members][:, None, :] - coords[s_members][None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        ti, si = np.unravel_index(int(np.argmin(dist)), dist.shape)
        a, b = int(t_members[ti]), int(s_members[si])
        d = float(dist[ti, si])
        max_len = max(max_len, d)
        assignment.add(a, sector_toward(coords[a], coords[b], radius=d))
        added.append((a, b))
        edges.append((a, b))
        all_edges = np.vstack([all_edges, [[a, b]]])

    augmented = OrientationResult(
        points=points,
        assignment=assignment,
        intended_edges=np.asarray(edges, dtype=np.int64),
        k=int(assignment.counts().max()),
        phi=result.phi,
        range_bound=max(result.range_bound,
                        max_len / result.lmax if result.lmax else 0.0),
        lmax=result.lmax,
        algorithm=f"{result.algorithm}+2conn",
        stats={**result.stats, "augmentation_extra": len(added)},
    )
    report = AugmentationReport(
        extra_antennae=len(added),
        extra_edges=added,
        max_extra_edge_length=max_len,
        max_antennas_per_node=int(assignment.counts().max()),
        achieved=True,
    )
    return augmented, report
