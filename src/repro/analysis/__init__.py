"""Analyses beyond the paper's theorems: robustness, interference, capacity."""

from repro.analysis.robustness import (
    strong_connectivity_order,
    failure_sweep,
    RobustnessReport,
)
from repro.analysis.interference import interference_report, InterferenceReport
from repro.analysis.capacity import capacity_gain_yi_pei, transport_capacity_gupta_kumar
from repro.analysis.metrics import (
    batched_orientation_metrics,
    orientation_metrics,
    OrientationMetrics,
)

__all__ = [
    "strong_connectivity_order",
    "failure_sweep",
    "RobustnessReport",
    "interference_report",
    "InterferenceReport",
    "capacity_gain_yi_pei",
    "transport_capacity_gupta_kumar",
    "batched_orientation_metrics",
    "orientation_metrics",
    "OrientationMetrics",
]
