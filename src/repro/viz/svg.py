"""Render orientations as standalone SVG (no plotting dependency).

The paper's figures are geometric diagrams; these helpers produce the same
kind of picture for *your* instances: sensors as dots, MST edges, antenna
sectors as translucent wedges, and intended edges as arrows.  Output is a
plain SVG string — writable to a file and viewable in any browser.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.result import OrientationResult
from repro.geometry.points import PointSet
from repro.spanning.emst import SpanningTree

__all__ = ["render_orientation_svg", "render_tree_svg"]

_SECTOR_FILL = "#3b82f6"
_EDGE_COLOR = "#9ca3af"
_INTENT_COLOR = "#dc2626"
_NODE_COLOR = "#111827"


class _Canvas:
    """Maps instance coordinates into a padded SVG viewport."""

    def __init__(self, points: PointSet, size: int, pad: float):
        lo, hi = points.bounding_box()
        span = float(max(hi[0] - lo[0], hi[1] - lo[1])) or 1.0
        self.scale = (size - 2 * pad) / span
        self.lo = lo
        self.pad = pad
        self.size = size

    def xy(self, p) -> tuple[float, float]:
        x = self.pad + (float(p[0]) - float(self.lo[0])) * self.scale
        # SVG's y axis points down; flip so the picture matches the math.
        y = self.size - self.pad - (float(p[1]) - float(self.lo[1])) * self.scale
        return x, y

    def r(self, length: float) -> float:
        return float(length) * self.scale


def _sector_path(cv: _Canvas, apex, start: float, spread: float, radius: float) -> str:
    ax, ay = cv.xy(apex)
    r = cv.r(radius)
    if spread <= 1e-9:  # a ray
        ex = ax + r * math.cos(start)
        ey = ay - r * math.sin(start)
        return (
            f'<line x1="{ax:.2f}" y1="{ay:.2f}" x2="{ex:.2f}" y2="{ey:.2f}" '
            f'stroke="{_SECTOR_FILL}" stroke-width="1" opacity="0.8"/>'
        )
    end = start + spread
    sx = ax + r * math.cos(start)
    sy = ay - r * math.sin(start)
    ex = ax + r * math.cos(end)
    ey = ay - r * math.sin(end)
    large = 1 if spread > math.pi else 0
    # sweep-flag 0 because the flipped y-axis mirrors orientation.
    return (
        f'<path d="M {ax:.2f} {ay:.2f} L {sx:.2f} {sy:.2f} '
        f'A {r:.2f} {r:.2f} 0 {large} 0 {ex:.2f} {ey:.2f} Z" '
        f'fill="{_SECTOR_FILL}" opacity="0.15" stroke="{_SECTOR_FILL}" '
        f'stroke-width="0.5"/>'
    )


def _edges_svg(cv: _Canvas, points: PointSet, edges: Iterable, color: str,
               width: float, opacity: float, arrows: bool = False) -> list[str]:
    out = []
    for u, v in edges:
        x1, y1 = cv.xy(points[int(u)])
        x2, y2 = cv.xy(points[int(v)])
        marker = ' marker-end="url(#arrow)"' if arrows else ""
        out.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{color}" stroke-width="{width}" opacity="{opacity}"{marker}/>'
        )
    return out


def _document(size: int, body: list[str], title: str) -> str:
    head = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        "<defs>"
        '<marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="5" markerHeight="5" orient="auto-start-reverse">'
        f'<path d="M 0 0 L 10 5 L 0 10 z" fill="{_INTENT_COLOR}"/></marker>'
        "</defs>",
        f'<rect width="{size}" height="{size}" fill="white"/>',
        f'<title>{title}</title>',
    ]
    return "\n".join(head + body + ["</svg>"])


def render_tree_svg(tree: SpanningTree, *, size: int = 640, pad: float = 24.0) -> str:
    """A deployment plus its max-degree-5 MST as an SVG string."""
    cv = _Canvas(tree.points, size, pad)
    body = _edges_svg(cv, tree.points, tree.edges, _EDGE_COLOR, 1.2, 0.9)
    for p in tree.points:
        x, y = cv.xy(p)
        body.append(f'<circle cx="{x:.2f}" cy="{y:.2f}" r="3" fill="{_NODE_COLOR}"/>')
    return _document(size, body, f"EMST (n={tree.n}, lmax={tree.lmax:.3f})")


def render_orientation_svg(
    result: OrientationResult,
    *,
    size: int = 640,
    pad: float = 24.0,
    show_sectors: bool = True,
    show_intended: bool = True,
    sector_radius_cap: float | None = None,
) -> str:
    """An orientation result as an SVG string.

    ``sector_radius_cap`` (absolute units) trims very long sectors so dense
    pictures stay readable; defaults to the result's guaranteed range.
    """
    points = result.points
    cv = _Canvas(points, size, pad)
    body: list[str] = []
    cap = sector_radius_cap if sector_radius_cap is not None else (
        result.range_bound_absolute or 1.0
    )
    if show_sectors:
        for u, sector in result.assignment:
            radius = min(sector.radius, cap) if np.isfinite(sector.radius) else cap
            body.append(
                _sector_path(cv, points[u], sector.start, sector.spread, radius)
            )
    if show_intended and result.intended_edges.size:
        body.extend(
            _edges_svg(cv, points, result.intended_edges, _INTENT_COLOR, 1.0, 0.7,
                       arrows=True)
        )
    for p in points:
        x, y = cv.xy(p)
        body.append(f'<circle cx="{x:.2f}" cy="{y:.2f}" r="3" fill="{_NODE_COLOR}"/>')
    title = (
        f"{result.algorithm}: k={result.k}, phi={result.phi:.3f}, "
        f"bound={result.range_bound:.3f} lmax"
    )
    return _document(size, body, title)
