"""Zero-dependency SVG rendering of deployments and orientations."""

from repro.viz.svg import render_orientation_svg, render_tree_svg

__all__ = ["render_orientation_svg", "render_tree_svg"]
