"""Adaptive φ-frontier solver: bisection instead of dense ``(k, φ)`` grids.

The paper's central object is the tradeoff curve φ ↦ minimum stretch
achievable with ``k`` antennae of angular sum φ.  A dense sweep samples it
on a hand-picked grid — wasting kernel work far from the transition and
missing the transition between grid lines.  This package resolves the curve
adaptively:

* :mod:`repro.frontier.solver` — per-(instance, k) bisection of φ, with
  probes warm-started across the dispatch regimes of
  :func:`repro.core.planner.choose_algorithm` (constructions that ignore φ
  within their regime are evaluated once per regime, not once per probe);
* :mod:`repro.frontier.executor` — :func:`execute_frontier`, the chunked /
  process-pool / store-checkpointed runner mirroring
  :func:`repro.engine.execute_plan`: frontier runs are durable, resumable
  with zero kernel re-execution, and shardable bit-identically.

Specs live alongside the sweep specs:
:class:`repro.engine.spec.FrontierRequest`.  The CLI surface is
``repro frontier`` (and ``repro merge``, which recognises frontier ledgers).
"""

from repro.engine._spec import FrontierRequest
from repro.frontier.executor import (
    FrontierBatch,
    InstanceOutcome,
    assemble_frontier,
    execute_frontier,
)
from repro.frontier._solver import (
    PHI_FREE_ALGORITHMS,
    FrontierProbe,
    KFrontier,
    ProbeEngine,
    dispatch_regime,
    solve_instance_frontier,
)

__all__ = [
    "FrontierRequest",
    "FrontierBatch",
    "FrontierProbe",
    "InstanceOutcome",
    "KFrontier",
    "PHI_FREE_ALGORITHMS",
    "ProbeEngine",
    "assemble_frontier",
    "dispatch_regime",
    "execute_frontier",
    "solve_instance_frontier",
]
