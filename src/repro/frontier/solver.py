"""Deprecated import location — use :mod:`repro.api` (or :mod:`repro.frontier`).

Shim over :mod:`repro.frontier._solver`: every attribute access emits a
:class:`DeprecationWarning` while returning the real object, so old deep
imports keep working but cannot silently spread.
"""

from __future__ import annotations

import warnings

from repro.frontier import _solver as _impl

_MESSAGE = (
    "importing from 'repro.frontier.solver' is deprecated; "
    "import from 'repro.api' instead"
)


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    value = getattr(_impl, name)
    warnings.warn(_MESSAGE, DeprecationWarning, stacklevel=2)
    return value


def __dir__():
    return sorted(set(dir(_impl)))
