"""Durable, shardable executor for :class:`~repro.engine.spec.FrontierRequest`.

Mirrors :func:`repro.engine.execute_plan` end-to-end: work is chunked by
*instance* (one unit of work solves the instance's frontier at every
requested ``k``, sharing its artifacts through a per-worker
:class:`~repro.engine.cache.ArtifactCache`), dispatched to a
``ProcessPoolExecutor`` when ``jobs > 1`` and run inline otherwise, and —
with a :class:`~repro.store.RunStore` — checkpointed per instance into the
plan's shard ledger.  ``resume=True`` replays ledgered instances with zero
kernel re-execution; ``shard=(i, m)`` executes one of ``m`` deterministic
partitions whose union is bit-identical to an unsharded run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.cache import ArtifactCache, CacheStats
from repro.engine.executor import (
    InstanceReport,
    _execute_durable,
    _report,
    _tombstone_check,
)
from repro.engine._spec import FrontierRequest, Shard
from repro.frontier._solver import KFrontier, solve_instance_frontier
from repro.kernels.backend import resolve_backend, use_backend

__all__ = [
    "InstanceOutcome",
    "FrontierBatch",
    "execute_frontier",
    "assemble_frontier",
]


@dataclass(frozen=True)
class InstanceOutcome:
    """One instance's solved frontiers (one :class:`KFrontier` per k)."""

    scenario_index: int
    instance_index: int
    frontiers: list[KFrontier]


#: One unit of work: (slot, scenario_index, instance_index, coords).
_Task = tuple[int, int, int, Any]

#: One completed unit: (per-k frontier dicts, facts, elapsed, cache delta,
#: backend name).
_Payload = tuple[list[dict], dict[str, float], float, dict[str, int], str]


def _run_task(
    coords, request: FrontierRequest, cache: ArtifactCache, backend_name: str
) -> _Payload:
    before = cache.stats.as_dict()
    t0 = time.perf_counter()
    frontiers, facts = solve_instance_frontier(coords, request, cache=cache)
    dt = time.perf_counter() - t0
    after = cache.stats.as_dict()
    delta = {k: after[k] - before[k] for k in after}
    return [f.as_dict() for f in frontiers], facts, dt, delta, backend_name


def _run_chunk(
    chunk: list[_Task],
    request: FrontierRequest,
    backend_name: str,
    cache: ArtifactCache | None = None,
) -> list[tuple[int, _Payload]]:
    """Worker entry point: solve a chunk of instances with a local cache."""
    cache = cache if cache is not None else ArtifactCache()
    with use_backend(backend_name):
        return [
            (slot, _run_task(coords, request, cache, backend_name))
            for slot, _si, _ii, coords in chunk
        ]


def _iter_chunk_serial(
    chunk: list[_Task],
    request: FrontierRequest,
    backend_name: str,
    cache: ArtifactCache,
):
    """Serial twin of :func:`_run_chunk` that yields per instance.

    Frontier solving stays per-instance (the adaptive bisection is
    inherently sequential per ``(instance, k)``), so yielding lazily keeps
    the durable skeleton's per-instance checkpointing behaviour.
    """
    with use_backend(backend_name):
        for slot, _si, _ii, coords in chunk:
            yield slot, _run_task(coords, request, cache, backend_name)


@dataclass
class FrontierBatch:
    """All solved frontiers of a request, in deterministic plan order."""

    request: FrontierRequest
    outcomes: list[InstanceOutcome]
    instance_reports: list[InstanceReport]
    cache_stats: CacheStats
    jobs_used: int
    elapsed: float
    fallback_reason: str | None = None
    replayed_instances: int = 0
    shard: Shard = field(default_factory=Shard)
    backend: str | None = None

    def probe_totals(self) -> tuple[int, int]:
        """``(total probes, reused probes)`` over every (instance, k)."""
        total = reused = 0
        for outcome in self.outcomes:
            for f in outcome.frontiers:
                total += f.probe_count
                reused += f.reused_count
        return total, reused

    def aggregate_rows(self) -> list[dict[str, Any]]:
        """One row per (scenario, k) over every instance present.

        Threshold mode reports where the φ* landed (over the instances whose
        frontier was located or already met at ``phi_lo``); staircase mode
        reports plateau counts.  Scenarios with no instances in this shard
        are skipped.  Probe counts separate warm-start hits (``reused``)
        from planner+kernel evaluations.
        """
        buckets: dict[tuple[int, int], list[KFrontier]] = {}
        for outcome in self.outcomes:
            for ki, f in enumerate(outcome.frontiers):
                buckets.setdefault((outcome.scenario_index, ki), []).append(f)
        rows: list[dict[str, Any]] = []
        for si, ki in sorted(buckets):
            scenario = self.request.scenarios[si]
            fs = buckets[(si, ki)]
            row: dict[str, Any] = {
                "workload": scenario.workload,
                "n": scenario.n,
                "k": self.request.ks[ki],
                "metric": self.request.metric,
                "runs": len(fs),
            }
            if self.request.search_mode == "threshold":
                stars = [f.phi_star for f in fs if f.phi_star is not None]
                row["target"] = self.request.target
                row["found"] = len(stars)
                row["phi_star_mean"] = (
                    sum(stars) / len(stars) if stars else None
                )
                row["phi_star_min"] = min(stars) if stars else None
                row["phi_star_max"] = max(stars) if stars else None
            else:
                levels = [len(f.steps) for f in fs]
                row["levels_mean"] = sum(levels) / len(levels)
                row["transitions_mean"] = sum(x - 1 for x in levels) / len(levels)
            row["probes"] = sum(f.probe_count for f in fs)
            row["evaluated"] = sum(f.evaluated_count for f in fs)
            row["reused"] = sum(f.reused_count for f in fs)
            rows.append(row)
        return rows

    def summary(self) -> str:
        mode = f"{self.jobs_used} workers" if self.jobs_used > 1 else "serial"
        total, reused = self.probe_totals()
        parts = [
            f"{len(self.outcomes)} instances × k∈{list(self.request.ks)}: "
            f"{total} probes ({reused} warm-start reuses, "
            f"{total - reused} evaluated)"
        ]
        if not self.shard.is_whole:
            parts.append(f"shard {self.shard.label}")
        if self.replayed_instances:
            parts.append(f"{self.replayed_instances} instances from ledger")
        return f"{'; '.join(parts)} ({mode}, {self.elapsed:.2f}s)"


def _outcome(si: int, ii: int, frontier_dicts: list[dict]) -> InstanceOutcome:
    return InstanceOutcome(
        scenario_index=si,
        instance_index=ii,
        frontiers=[KFrontier.from_dict(d) for d in frontier_dicts],
    )


def execute_frontier(
    request: FrontierRequest,
    *,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    on_instance: Callable[[InstanceReport], None] | None = None,
    store: Any = None,
    shard: "Shard | tuple[int, int] | None" = None,
    resume: bool = False,
    backend: str | None = None,
) -> FrontierBatch:
    """Solve every (instance × k) frontier of ``request``.

    The parameters mirror :func:`repro.engine.execute_plan`: ``jobs`` for
    process-pool fan-out (serial fallback recorded in ``fallback_reason``),
    ``store``/``shard``/``resume`` for durable, partitioned, replayable
    execution, ``backend`` to pick the kernel backend (``None`` defers to
    ``request.backend``, then ``REPRO_BACKEND``, then numpy).  Results are
    reassembled in plan order, so serial, parallel, sharded-and-merged and
    resumed runs are all bit-identical.
    """
    t_start = time.perf_counter()
    backend_name = resolve_backend(backend or request.backend).name
    shard = Shard.of(shard)
    all_tasks: list[_Task] = [
        (slot, si, ii, coords)
        for slot, (si, ii, coords) in enumerate(request.instances())
    ]

    def payload_of_row(slot: int, row: Any) -> _Payload:
        from repro.store.ledger import StoreError  # lazy: avoids cycle

        if len(row.frontiers) != len(request.ks):
            raise StoreError(
                f"ledger row for slot {slot} has {len(row.frontiers)} "
                f"k-frontiers, request has {len(request.ks)} ks"
            )
        return (
            list(row.frontiers),
            dict(row.facts),
            row.elapsed,
            row.cache,
            getattr(row, "backend", "numpy"),
        )

    def row_of_payload(slot: int, si: int, ii: int, payload: _Payload) -> Any:
        from repro.store.ledger import FrontierRow  # lazy: avoids cycle

        frontier_dicts, facts, dt, delta, row_backend = payload
        return FrontierRow(
            slot=slot,
            scenario_index=si,
            instance_index=ii,
            elapsed=dt,
            facts=facts,
            frontiers=frontier_dicts,
            cache=delta,
            backend=row_backend,
            mode=request.mode,
        )

    payloads, replayed, jobs_used, fallback_reason, ledger = _execute_durable(
        request, all_tasks, shard,
        jobs=jobs, cache=cache, on_instance=on_instance,
        store=store, resume=resume,
        run_chunk_serial=lambda chunk, c: _iter_chunk_serial(
            chunk, request, backend_name, c
        ),
        submit_chunk=lambda pool, chunk: pool.submit(
            _run_chunk, chunk, request, backend_name
        ),
        rows_for_resume=lambda s, key: s.load_frontier_rows(key),
        payload_of_row=payload_of_row,
        row_of_payload=row_of_payload,
        should_stop=_tombstone_check(store, request),
    )

    outcomes: list[InstanceOutcome] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    for slot, si, ii, _coords in all_tasks:
        if not shard.owns(slot):
            continue
        payload = payloads.get(slot)
        assert payload is not None, f"missing result for task slot {slot}"
        frontier_dicts, facts, dt, delta, _row_backend = payload
        outcomes.append(_outcome(si, ii, frontier_dicts))
        reports.append(_report(si, ii, facts, dt))
        stats.merge(CacheStats.from_dict(delta))
    elapsed = time.perf_counter() - t_start
    if ledger is not None:
        ledger.finish(stats, elapsed)
        ledger.close()
    return FrontierBatch(
        request=request,
        outcomes=outcomes,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=jobs_used,
        elapsed=elapsed,
        fallback_reason=fallback_reason,
        replayed_instances=replayed,
        shard=shard,
        backend=backend_name,
    )


def assemble_frontier(
    request: FrontierRequest,
    rows: dict[int, Any],
    *,
    allow_partial: bool = False,
) -> FrontierBatch:
    """Reconstruct a :class:`FrontierBatch` purely from ledger rows.

    The frontier twin of :func:`repro.store.assemble_batch`: outcomes come
    back in plan order, so the aggregate tables are bit-identical to an
    in-process :func:`execute_frontier` of the same request.
    """
    from repro.store.ledger import StoreError  # lazy: avoids cycle

    expected = request.total_instances
    missing = [slot for slot in range(expected) if slot not in rows]
    if missing and not allow_partial:
        raise StoreError(
            f"ledger covers {expected - len(missing)}/{expected} instances "
            f"(first missing plan slot: {missing[0]}); run the remaining "
            "shards or pass allow_partial"
        )
    outcomes: list[InstanceOutcome] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    elapsed = 0.0
    for slot in sorted(rows):
        row = rows[slot]
        if not 0 <= row.slot < expected:
            raise StoreError(f"ledger row slot {row.slot} outside the plan")
        if len(row.frontiers) != len(request.ks):
            raise StoreError(
                f"ledger row for slot {row.slot} has {len(row.frontiers)} "
                f"k-frontiers, request has {len(request.ks)} ks"
            )
        outcomes.append(
            _outcome(row.scenario_index, row.instance_index, row.frontiers)
        )
        reports.append(row.report())
        stats.merge(CacheStats.from_dict(row.cache))
        elapsed += row.elapsed
    return FrontierBatch(
        request=request,
        outcomes=outcomes,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=1,
        elapsed=elapsed,
        replayed_instances=len(rows),
    )
