"""Per-instance adaptive φ-frontier solver with warm-started probes.

A *probe* evaluates the requested metric at one ``(k, φ)``: dispatch the
Table-1 planner, orient, measure.  Probing is where all the kernel work
lives, so the solver avoids it three ways:

* the instance's PointSet / EMST / polar tables come from the engine's
  :class:`~repro.engine.cache.ArtifactCache` and are shared by every probe;
* exact φ re-probes (bisection endpoints, staircase refinement) are memoised
  per instance;
* probes landing in a dispatch regime whose construction ignores φ
  (:data:`PHI_FREE_ALGORITHMS` — e.g. Theorem 2 aims zero-spread antennae
  along MST edges regardless of the budget) reuse the regime's one measured
  value instead of re-running the planner and kernels.

The bisection assumes the metric is weakly non-increasing in φ (more
angular budget never hurts), which holds for every field admitted by
:data:`repro.engine.spec.FRONTIER_METRICS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.analysis.metrics import orientation_metrics
from repro.core.planner import choose_dispatch
from repro.core.symmetric import SYMMETRIC_ALGORITHM, orient_for_mode
from repro.engine.cache import ArtifactCache
from repro.engine.executor import instance_artifacts
from repro.engine._spec import FrontierRequest

__all__ = [
    "PHI_FREE_ALGORITHMS",
    "dispatch_regime",
    "FrontierProbe",
    "KFrontier",
    "ProbeEngine",
    "solve_instance_frontier",
]

#: Algorithms whose construction (and therefore every measured metric except
#: the recorded φ itself) is independent of φ within their dispatch regime.
#: Theorem 2 / 5 / 6 and the zero-spread constructions aim antennae purely
#: from the spanning tree; Theorem 3 part 1 clamps its working budget to π.
#: The φ-dependent regimes (``k1-tour``, ``k1-pairs``, ``theorem3.part2``)
#: widen their sectors with φ and must be re-probed.
#:
#: Audited for symmetric mode: the bounded-angle construction
#: (``"bounded-angle-mst"``) is deliberately NOT a member — its wedge
#: *layout* ignores φ, but the feasible/infeasible decision (and with it
#: every measured metric) flips at ``max_v s*(v)``, so a symmetric probe
#: may never be answered from a regime memo.  The exact-φ memo still
#: applies in both modes.
PHI_FREE_ALGORITHMS = frozenset(
    {"theorem2", "theorem3.part1", "k2-zero-spread", "theorem5", "theorem6"}
)


def dispatch_regime(k: int, phi: float) -> tuple[str, int]:
    """The planner's dispatch regime at ``(k, φ)``: ``(algorithm, k_used)``.

    Two probes share a regime iff the planner runs the same algorithm with
    the same number of antennae; for :data:`PHI_FREE_ALGORITHMS` that makes
    their orientations identical.  ``k_used`` matters: e.g. with a k = 2
    budget, Theorem 2 runs with 2 antennae for φ ≥ 6π/5 — the same name but
    a different construction than Theorem 2 with 1 antenna at φ ≥ 8π/5.
    Delegates to :func:`repro.core.planner.choose_dispatch`, the exact
    dispatch :func:`orient_antennae` runs — the memo's soundness depends on
    the two never diverging.
    """
    return choose_dispatch(k, phi)


@dataclass(frozen=True)
class FrontierProbe:
    """One metric evaluation at ``(k, φ)`` (``reused`` = no kernel work)."""

    phi: float
    value: float
    algorithm: str
    reused: bool

    def as_list(self) -> list:
        """Compact JSON form (ledger rows hold many probes)."""
        return [self.phi, self.value, self.algorithm, self.reused]

    @classmethod
    def from_list(cls, data: list) -> "FrontierProbe":
        return cls(float(data[0]), float(data[1]), str(data[2]), bool(data[3]))


@dataclass
class KFrontier:
    """The solved frontier of one ``(instance, k)``.

    Threshold mode (``request.target`` set):

    * ``status``: ``"located"`` (φ* bracketed to tol inside the interval),
      ``"below_lo"`` (already met at ``phi_lo``) or ``"unattained"`` (not
      met even at ``phi_hi``);
    * ``phi_star``: smallest probed φ meeting the target (``None`` when
      unattained).  For ``"located"`` the true threshold lies in
      ``(phi_star - tol, phi_star]``.

    Staircase mode: ``status == "mapped"``; ``steps`` lists the constant-
    value plateaus ``{"phi_lo", "phi_hi", "value"}`` in φ order, adjacent
    plateaus separated by a gap of at most tol containing the transition.

    ``probes`` records every evaluation in order; ``reused`` ones cost zero
    kernel work (regime memo or exact-φ memo hits).
    """

    k: int
    status: str
    phi_star: float | None
    value_lo: float
    value_hi: float
    probes: list[FrontierProbe] = field(default_factory=list)
    steps: list[dict[str, float]] = field(default_factory=list)

    @property
    def probe_count(self) -> int:
        return len(self.probes)

    @property
    def reused_count(self) -> int:
        return sum(1 for p in self.probes if p.reused)

    @property
    def evaluated_count(self) -> int:
        """Probes that actually ran the planner and kernels."""
        return self.probe_count - self.reused_count

    def as_dict(self) -> dict[str, Any]:
        return {
            "k": self.k,
            "status": self.status,
            "phi_star": self.phi_star,
            "value_lo": self.value_lo,
            "value_hi": self.value_hi,
            "probes": [p.as_list() for p in self.probes],
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KFrontier":
        return cls(
            k=int(data["k"]),
            status=str(data["status"]),
            phi_star=None if data["phi_star"] is None else float(data["phi_star"]),
            value_lo=float(data["value_lo"]),
            value_hi=float(data["value_hi"]),
            probes=[FrontierProbe.from_list(p) for p in data["probes"]],
            steps=[dict(s) for s in data["steps"]],
        )


class ProbeEngine:
    """Warm-started metric evaluator for one ``(instance, k)``.

    Layers two memos over the shared per-instance artifacts: an exact-φ memo
    (bit-pattern keyed) and a regime memo for :data:`PHI_FREE_ALGORITHMS`.
    Both return the value a fresh evaluation would — for φ-free regimes the
    orientation is literally the same assignment, so every metric field
    except the recorded φ is unchanged (asserted in ``tests/test_frontier``).
    """

    def __init__(self, pointset, tree, tables, k: int, metric: str,
                 compute_critical: bool,
                 regime_memo: "dict[tuple[str, int], float] | None" = None,
                 mode: str = "strong"):
        self._ps = pointset
        self._tree = tree
        self._tables = tables
        self.k = int(k)
        self.metric = metric
        self.compute_critical = compute_critical
        self.mode = mode
        self._by_phi: dict[float, FrontierProbe] = {}
        # The regime key (algorithm, k_used) identifies the construction
        # regardless of the caller's k budget, so the memo may be shared by
        # every k of one instance (``solve_instance_frontier`` does) — e.g.
        # k = 5 and k = 7 clamp to identical dispatches.
        self._by_regime: dict[tuple[str, int], float] = (
            regime_memo if regime_memo is not None else {}
        )
        self.probes: list[FrontierProbe] = []

    def __call__(self, phi: float) -> FrontierProbe:
        phi = float(phi)
        hit = self._by_phi.get(phi)
        if hit is not None:
            probe = FrontierProbe(phi, hit.value, hit.algorithm, True)
        else:
            if self.mode == "strong":
                algo, k_used = dispatch_regime(self.k, phi)
                regime = (algo, k_used)
                phi_free = algo in PHI_FREE_ALGORITHMS
            else:
                # Symmetric construction depends on φ through the
                # feasibility flip, so no regime is φ-free (see the
                # PHI_FREE_ALGORITHMS audit note).
                algo, regime, phi_free = SYMMETRIC_ALGORITHM, None, False
            if phi_free and regime in self._by_regime:
                probe = FrontierProbe(phi, self._by_regime[regime], algo, True)
            else:
                result = orient_for_mode(
                    self._ps, self.k, phi, mode=self.mode, tree=self._tree
                )
                m = orientation_metrics(
                    result,
                    compute_critical=self.compute_critical,
                    tables=self._tables,
                    mode=self.mode,
                )
                value = float(getattr(m, self.metric))
                probe = FrontierProbe(phi, value, algo, False)
                if phi_free:
                    self._by_regime[regime] = value
            self._by_phi[phi] = probe
        self.probes.append(probe)
        return probe


def _solve_threshold(
    probe: Callable[[float], FrontierProbe],
    lo: float,
    hi: float,
    tol: float,
    target: float,
) -> tuple[str, float | None, float, float]:
    """Bisect for the smallest φ with ``metric(φ) ≤ target``.

    Invariant: ``lo`` fails the target, ``hi`` meets it.  Returns
    ``(status, phi_star, value_lo, value_hi)``.
    """
    p_lo = probe(lo)
    if p_lo.value <= target:
        return "below_lo", lo, p_lo.value, p_lo.value
    p_hi = probe(hi)
    if p_hi.value > target:
        return "unattained", None, p_lo.value, p_hi.value
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if not lo < mid < hi:  # tol below float resolution of the interval
            break
        if probe(mid).value <= target:
            hi = mid
        else:
            lo = mid
    return "located", hi, p_lo.value, p_hi.value


def _solve_staircase(
    probe: Callable[[float], FrontierProbe],
    lo: float,
    hi: float,
    tol: float,
) -> tuple[list[dict[str, float]], float, float]:
    """Map the metric's plateaus over ``[lo, hi]``.

    Recursively splits every interval whose endpoint values differ until it
    is narrower than ``tol`` — the cost adapts to the number of distinct
    levels (an all-flat curve costs 2 probes; each transition costs
    ``O(log((hi-lo)/tol))``).  Intervals where the metric varies
    *continuously* (the φ-dependent regimes) degrade to tol-dense sampling,
    which is exactly the dense grid's cost — adaptivity never does worse.
    """
    p_lo, p_hi = probe(lo), probe(hi)
    samples: dict[float, float] = {lo: p_lo.value, hi: p_hi.value}
    stack = [(lo, p_lo.value, hi, p_hi.value)]
    while stack:
        a, va, b, vb = stack.pop()
        if b - a <= tol or va == vb:
            continue
        mid = 0.5 * (a + b)
        if not a < mid < b:
            continue
        vm = probe(mid).value
        samples[mid] = vm
        # Right half pushed first so the left half is refined first (the
        # evaluation order — and with it the ledgered probe list — is
        # deterministic).
        stack.append((mid, vm, b, vb))
        stack.append((a, va, mid, vm))
    steps: list[dict[str, float]] = []
    for phi in sorted(samples):
        value = samples[phi]
        if steps and steps[-1]["value"] == value:
            steps[-1]["phi_hi"] = phi
        else:
            steps.append({"phi_lo": phi, "phi_hi": phi, "value": value})
    return steps, p_lo.value, p_hi.value


def solve_instance_frontier(
    coords: np.ndarray,
    request: FrontierRequest,
    *,
    cache: ArtifactCache | None = None,
) -> tuple[list[KFrontier], dict[str, float]]:
    """Solve the frontier of one instance at every ``k`` of the request.

    Returns one :class:`KFrontier` per ``k`` (in request order) and the
    instance-level facts (same schema as the sweep executor's
    :class:`~repro.engine.executor.InstanceReport` fields).
    """
    cache = cache if cache is not None else ArtifactCache()
    ps, tree, tables, facts = instance_artifacts(cache, coords)
    frontiers: list[KFrontier] = []
    regime_memo: dict[tuple[str, int], float] = {}  # shared across the ks
    for k in request.ks:
        engine = ProbeEngine(
            ps, tree, tables, k, request.metric, request.compute_critical,
            regime_memo=regime_memo, mode=request.mode,
        )
        if request.search_mode == "threshold":
            assert request.target is not None
            status, phi_star, v_lo, v_hi = _solve_threshold(
                engine, request.phi_lo, request.phi_hi, request.tol,
                request.target,
            )
            steps: list[dict[str, float]] = []
        else:
            steps, v_lo, v_hi = _solve_staircase(
                engine, request.phi_lo, request.phi_hi, request.tol
            )
            status, phi_star = "mapped", None
        frontiers.append(
            KFrontier(
                k=int(k),
                status=status,
                phi_star=phi_star,
                value_lo=v_lo,
                value_hi=v_hi,
                probes=engine.probes,
                steps=steps,
            )
        )
    return frontiers, facts
