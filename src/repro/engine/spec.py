"""Deprecated import location — the spec types live on :mod:`repro.api`.

This shim keeps ``from repro.engine.spec import PlanRequest`` (and every
other name the module used to export) working while steering callers to
the single public surface.  Each attribute access emits a
:class:`DeprecationWarning`; the repo's own test suite escalates that
warning to an error, so no internal code path can regress onto the old
spelling.
"""

from __future__ import annotations

import warnings

from repro.engine import _spec as _impl

_MESSAGE = (
    "importing from 'repro.engine.spec' is deprecated; "
    "import from 'repro.api' instead"
)


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    value = getattr(_impl, name)
    warnings.warn(_MESSAGE, DeprecationWarning, stacklevel=2)
    return value


def __dir__():
    return sorted(set(dir(_impl)))
