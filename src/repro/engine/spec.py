"""Declarative scenario specifications for batch planning.

A :class:`Scenario` names a workload generator from
:mod:`repro.experiments.workloads`, an instance size and a seed range; it
expands into a reproducible sequence of point arrays (the same scenario
always yields bit-identical instances, in any process).  A
:class:`PlanRequest` crosses one or more scenarios with a grid of
``(k, φ)`` cells — the unit of work the sweep executor consumes.  A
:class:`FrontierRequest` instead pairs scenarios with an adaptive φ
search per ``k`` (see :mod:`repro.frontier`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.experiments.workloads import WORKLOADS, make_workload
from repro.geometry.angles import clamp_angular_budget
from repro.kernels.backend import KNOWN_BACKENDS
from repro.utils.rng import stable_seed

__all__ = ["Scenario", "GridCell", "PlanRequest", "FrontierRequest", "Shard"]

#: OrientationMetrics fields a frontier search may bisect on.  Each is
#: (weakly) non-increasing in φ — the bisection invariant — with one
#: documented exception: the k = 1 recorded bound below π carries the
#: measured tour bottleneck (the paper's own row is loose there), which can
#: sit below the π-side pairs bound.  The bisection still maintains its
#: bracket (lo fails, hi meets) and returns a valid crossing.
FRONTIER_METRICS = ("critical_range", "realized_range", "range_bound")

_TWO_PI = 2.0 * math.pi


def _validate_backend(backend: "str | None") -> "str | None":
    """Spec-level backend validation (availability is checked at run time).

    The field is deliberately EXCLUDED from serialization and from
    :func:`repro.store.plan_fingerprint`: backends are bit-exact, so the
    same plan computed on any backend is the same plan — the per-row
    ``backend`` tag in the ledger records provenance instead.
    """
    if backend is None:
        return None
    if backend not in KNOWN_BACKENDS:
        raise InvalidParameterError(
            f"unknown kernel backend {backend!r}; "
            f"choose from {', '.join(KNOWN_BACKENDS)}"
        )
    return backend


@dataclass(frozen=True)
class Scenario:
    """A reproducible ensemble of workload instances.

    Attributes
    ----------
    workload:
        Name of a generator registered in
        :data:`repro.experiments.workloads.WORKLOADS`.
    n:
        Points per instance.
    seeds:
        Number of instances (seed indices ``0 .. seeds-1``).
    tag:
        Namespace mixed into the per-instance seed so distinct experiments
        draw independent instances from the same ``(workload, n)``.
    seed_offset:
        First seed index (lets callers split one logical ensemble into
        disjoint shards).
    """

    workload: str
    n: int
    seeds: int = 1
    tag: str = "engine"
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise InvalidParameterError(
                f"unknown workload {self.workload!r}; choose from {sorted(WORKLOADS)}"
            )
        if self.n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {self.n}")
        if self.seeds < 1:
            raise InvalidParameterError(f"seeds must be >= 1, got {self.seeds}")
        if self.seed_offset < 0:
            raise InvalidParameterError(
                f"seed_offset must be >= 0, got {self.seed_offset}"
            )

    @property
    def label(self) -> str:
        return f"{self.workload}-n{self.n}"

    def instance_seed(self, index: int) -> int:
        """Stable 63-bit seed of instance ``index`` (process-independent)."""
        return stable_seed(self.tag, self.workload, self.n, self.seed_offset + index)

    def instance(self, index: int) -> np.ndarray:
        """Materialize instance ``index`` as an ``(n, 2)`` float array."""
        if not 0 <= index < self.seeds:
            raise InvalidParameterError(
                f"instance index {index} outside [0, {self.seeds})"
            )
        return make_workload(self.workload, self.n, self.instance_seed(index))

    def instances(self) -> Iterator[np.ndarray]:
        """All instances, in seed order."""
        for i in range(self.seeds):
            yield self.instance(i)


#: The shared validate-and-clamp rule for angular budgets (snap the
#: ``1e-12`` float slop above 2π to exactly 2π, reject anything further):
#: a spec-accepted φ is fingerprinted/ledgered clamped and is never
#: rejected or left unclamped by the planner at probe time.
_clamp_phi = clamp_angular_budget


@dataclass(frozen=True)
class GridCell:
    """One planner configuration: ``k`` antennae with angular-sum budget φ."""

    k: int
    phi: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "phi", _clamp_phi(self.phi))

    @property
    def label(self) -> str:
        """Short display form — NOT an identity: distinct φ closer than
        5e-5 collide.  Anywhere a cell's φ identifies a row (the CLI
        tables), it is rendered at full ``repr`` precision instead (see
        ``_IDENTITY_COLUMNS`` in :mod:`repro.__main__`); fingerprints hash
        the exact float bits (:func:`repro.store.plan_fingerprint`)."""
        return f"k={self.k},phi={self.phi:.4f}"


@dataclass(frozen=True)
class Shard:
    """One of ``count`` disjoint partitions of a plan's instances.

    Instances are assigned round-robin by plan-order slot
    (``slot % count == index``), so the partition is a pure function of the
    :class:`PlanRequest` — every shard of a plan can be computed on a
    different machine and the union of the shards is exactly the plan.
    ``Shard(0, 1)`` is the whole plan.
    """

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise InvalidParameterError(
                f"shard count must be >= 1, got {self.count}"
            )
        if not 0 <= self.index < self.count:
            raise InvalidParameterError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI spelling ``"i/m"`` (e.g. ``"0/2"``)."""
        i, sep, m = text.partition("/")
        if not sep:
            raise InvalidParameterError(
                f"shard spec must look like 'i/m', got {text!r}"
            )
        try:
            return cls(int(i), int(m))
        except ValueError as exc:
            raise InvalidParameterError(
                f"shard spec must be two integers 'i/m', got {text!r}"
            ) from exc

    @classmethod
    def of(cls, value: "Shard | tuple[int, int] | None") -> "Shard":
        """Normalize ``None`` / ``(i, m)`` / :class:`Shard` to a Shard."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        i, m = value
        return cls(int(i), int(m))

    @property
    def is_whole(self) -> bool:
        return self.count == 1

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"

    def owns(self, slot: int) -> bool:
        """Does this shard execute the instance at plan-order ``slot``?"""
        return slot % self.count == self.index


@dataclass(frozen=True)
class PlanRequest:
    """Scenarios × grid: the full batch the executor runs.

    Every instance of every scenario is evaluated at every grid cell; the
    per-instance artifacts (point set, spanning tree, distance matrix) are
    shared across the cells through the :class:`~repro.engine.cache.ArtifactCache`.
    """

    scenarios: tuple[Scenario, ...]
    grid: tuple[GridCell, ...]
    compute_critical: bool = True
    #: Kernel backend to execute with (``None`` = env var / default).  Not
    #: part of the plan's identity: excluded from serialization and the
    #: fingerprint (see :func:`_validate_backend`).
    backend: "str | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "grid", tuple(self.grid))
        object.__setattr__(self, "backend", _validate_backend(self.backend))
        if not self.scenarios:
            raise InvalidParameterError("a PlanRequest needs at least one scenario")
        if not self.grid:
            raise InvalidParameterError("a PlanRequest needs at least one grid cell")

    @classmethod
    def sweep(
        cls,
        *,
        workloads: Sequence[str],
        sizes: Sequence[int],
        seeds: int,
        ks: Sequence[int],
        phis: Sequence[float],
        tag: str = "sweep",
        compute_critical: bool = True,
        backend: "str | None" = None,
    ) -> "PlanRequest":
        """Build the dense cross product (workloads × sizes) × (ks × phis)."""
        scenarios = tuple(
            Scenario(w, int(n), seeds=seeds, tag=tag)
            for w in workloads
            for n in sizes
        )
        grid = tuple(GridCell(int(k), float(p)) for k in ks for p in phis)
        return cls(
            scenarios, grid, compute_critical=compute_critical, backend=backend
        )

    @property
    def total_instances(self) -> int:
        return sum(s.seeds for s in self.scenarios)

    @property
    def total_runs(self) -> int:
        return self.total_instances * len(self.grid)

    def instances(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(scenario_index, instance_index, coords)`` in plan order.

        This is the deterministic enumeration both the serial and the
        parallel executor paths follow; result ordering is defined by it.
        """
        for si, scenario in enumerate(self.scenarios):
            for ii in range(scenario.seeds):
                yield si, ii, scenario.instance(ii)

    def describe(self) -> str:
        cells = ", ".join(c.label for c in self.grid[:4])
        if len(self.grid) > 4:
            cells += f", … ({len(self.grid)} cells)"
        scen = ", ".join(s.label for s in self.scenarios[:4])
        if len(self.scenarios) > 4:
            scen += f", … ({len(self.scenarios)} scenarios)"
        return (
            f"{self.total_instances} instances [{scen}] × grid [{cells}] "
            f"= {self.total_runs} runs"
        )


@dataclass(frozen=True)
class FrontierRequest:
    """Scenarios × ks: an adaptive φ-frontier search (see :mod:`repro.frontier`).

    For every instance of every scenario and every ``k`` in ``ks``, the
    frontier solver bisects φ over ``[phi_lo, phi_hi]`` to resolution
    ``tol`` instead of evaluating a dense grid:

    * with a ``target``, it locates the smallest angular sum at which
      ``metric(φ) ≤ target`` (*threshold* mode);
    * without one, it maps the metric-vs-φ staircase — every φ interval on
      which the metric is constant, with each transition bracketed to
      ``tol`` (*staircase* mode).

    ``metric`` names an :class:`~repro.analysis.metrics.OrientationMetrics`
    field (one of :data:`FRONTIER_METRICS`); all are weakly non-increasing
    in φ, which is the bisection invariant.
    """

    scenarios: tuple[Scenario, ...]
    ks: tuple[int, ...]
    metric: str = "critical_range"
    target: float | None = None
    phi_lo: float = 0.0
    phi_hi: float = _TWO_PI
    tol: float = 1e-3
    #: Kernel backend to execute with (``None`` = env var / default);
    #: excluded from serialization and the fingerprint like
    #: :attr:`PlanRequest.backend`.
    backend: "str | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        object.__setattr__(self, "backend", _validate_backend(self.backend))
        if not self.scenarios:
            raise InvalidParameterError("a FrontierRequest needs at least one scenario")
        if not self.ks:
            raise InvalidParameterError("a FrontierRequest needs at least one k")
        if any(k < 1 for k in self.ks):
            raise InvalidParameterError(f"every k must be >= 1, got {self.ks}")
        if self.metric not in FRONTIER_METRICS:
            raise InvalidParameterError(
                f"unknown frontier metric {self.metric!r}; "
                f"choose from {FRONTIER_METRICS}"
            )
        object.__setattr__(self, "phi_lo", _clamp_phi(self.phi_lo, "phi_lo"))
        object.__setattr__(self, "phi_hi", _clamp_phi(self.phi_hi, "phi_hi"))
        if not self.phi_lo < self.phi_hi:
            raise InvalidParameterError(
                f"need phi_lo < phi_hi, got [{self.phi_lo}, {self.phi_hi}]"
            )
        if not 0.0 < self.tol < self.phi_hi - self.phi_lo:
            raise InvalidParameterError(
                f"tol must be in (0, phi_hi - phi_lo), got {self.tol}"
            )
        if self.target is not None:
            target = float(self.target)
            # NaN would skip both bisection guards (every comparison is
            # False) and fabricate a "located" result at phi_hi.
            if not math.isfinite(target):
                raise InvalidParameterError(f"target must be finite, got {target}")
            object.__setattr__(self, "target", target)

    @property
    def mode(self) -> str:
        """``"threshold"`` (a target bound is given) or ``"staircase"``."""
        return "threshold" if self.target is not None else "staircase"

    @property
    def compute_critical(self) -> bool:
        """Probes measure the critical range only when the metric needs it."""
        return self.metric == "critical_range"

    @property
    def total_instances(self) -> int:
        return sum(s.seeds for s in self.scenarios)

    def instances(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(scenario_index, instance_index, coords)`` in plan order.

        The same deterministic enumeration :meth:`PlanRequest.instances`
        uses; shard partitions and ledger slots are defined against it.
        """
        for si, scenario in enumerate(self.scenarios):
            for ii in range(scenario.seeds):
                yield si, ii, scenario.instance(ii)

    def describe(self) -> str:
        scen = ", ".join(s.label for s in self.scenarios[:4])
        if len(self.scenarios) > 4:
            scen += f", … ({len(self.scenarios)} scenarios)"
        goal = (
            f"{self.metric} <= {self.target:g}"
            if self.target is not None
            else f"{self.metric} staircase"
        )
        return (
            f"{self.total_instances} instances [{scen}] × k∈{list(self.ks)}: "
            f"{goal} over phi∈[{self.phi_lo:.4f}, {self.phi_hi:.4f}] "
            f"to tol {self.tol:g}"
        )
