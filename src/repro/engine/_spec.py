"""Declarative scenario specifications for batch planning.

A :class:`Scenario` names a workload generator from
:mod:`repro.experiments.workloads`, an instance size and a seed range; it
expands into a reproducible sequence of point arrays (the same scenario
always yields bit-identical instances, in any process).  A
:class:`PlanRequest` crosses one or more scenarios with a grid of
``(k, φ)`` cells — the unit of work the sweep executor consumes.  A
:class:`FrontierRequest` instead pairs scenarios with an adaptive φ
search per ``k`` (see :mod:`repro.frontier`).

Both request kinds derive from :class:`RequestBase`, which owns the three
identity-critical behaviours — JSON serialization (:meth:`RequestBase.to_dict`
/ :meth:`RequestBase.from_dict`), the SHA-256 content fingerprint
(:meth:`RequestBase.fingerprint`, the run-store ledger key and the service's
idempotent job id), and backend validation — so a new request kind cannot
drift from the established wire/ledger contract.  The fingerprint scheme is
frozen: refactors must keep every historical fingerprint byte-stable
(regression-tested against ``tests/fixtures/plan_fingerprints.json``).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, ClassVar, Iterator, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.experiments.workloads import WORKLOADS, make_workload
from repro.geometry.angles import clamp_angular_budget
from repro.kernels.backend import KNOWN_BACKENDS
from repro.kernels.connectivity import CONNECTIVITY_MODES, validate_mode
from repro.utils.rng import stable_seed

__all__ = [
    "LEDGER_VERSION",
    "WIRE_VERSION",
    "FRONTIER_METRICS",
    "CONNECTIVITY_MODES",
    "Scenario",
    "GridCell",
    "RequestBase",
    "PlanRequest",
    "FrontierRequest",
    "Shard",
    "REQUEST_KINDS",
    "register_request_kind",
    "WireFormatError",
    "UnknownRequestKind",
    "UnsupportedWireVersion",
    "request_from_wire",
]

#: Version mixed into every plan fingerprint (and recorded in plan files);
#: bump only for a deliberate, ledger-breaking format change.  Lives here —
#: next to the fingerprint implementation — and is re-exported by
#: :mod:`repro.store` for compatibility.
LEDGER_VERSION = 1

#: Version of the kind-tagged wire envelope (:meth:`RequestBase.to_wire`).
#: Readers accept every version up to this one; a payload from a *newer*
#: writer fails with :class:`UnsupportedWireVersion` instead of being
#: misparsed.  Deliberately NOT part of the fingerprint — the envelope
#: wraps the spec, it is not the spec.
WIRE_VERSION = 1

#: OrientationMetrics fields a frontier search may bisect on.  Each is
#: (weakly) non-increasing in φ — the bisection invariant — with one
#: documented exception: the k = 1 recorded bound below π carries the
#: measured tour bottleneck (the paper's own row is loose there), which can
#: sit below the π-side pairs bound.  The bisection still maintains its
#: bracket (lo fails, hi meets) and returns a valid crossing.
FRONTIER_METRICS = ("critical_range", "realized_range", "range_bound")

_TWO_PI = 2.0 * math.pi


def _validate_backend(backend: "str | None") -> "str | None":
    """Spec-level backend validation (availability is checked at run time).

    The field is deliberately EXCLUDED from serialization and from
    :func:`repro.store.plan_fingerprint`: backends are bit-exact, so the
    same plan computed on any backend is the same plan — the per-row
    ``backend`` tag in the ledger records provenance instead.
    """
    if backend is None:
        return None
    if backend not in KNOWN_BACKENDS:
        raise InvalidParameterError(
            f"unknown kernel backend {backend!r}; "
            f"choose from {', '.join(KNOWN_BACKENDS)}"
        )
    return backend


@dataclass(frozen=True)
class Scenario:
    """A reproducible ensemble of workload instances.

    Attributes
    ----------
    workload:
        Name of a generator registered in
        :data:`repro.experiments.workloads.WORKLOADS`.
    n:
        Points per instance.
    seeds:
        Number of instances (seed indices ``0 .. seeds-1``).
    tag:
        Namespace mixed into the per-instance seed so distinct experiments
        draw independent instances from the same ``(workload, n)``.
    seed_offset:
        First seed index (lets callers split one logical ensemble into
        disjoint shards).
    """

    workload: str
    n: int
    seeds: int = 1
    tag: str = "engine"
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise InvalidParameterError(
                f"unknown workload {self.workload!r}; choose from {sorted(WORKLOADS)}"
            )
        if self.n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {self.n}")
        if self.seeds < 1:
            raise InvalidParameterError(f"seeds must be >= 1, got {self.seeds}")
        if self.seed_offset < 0:
            raise InvalidParameterError(
                f"seed_offset must be >= 0, got {self.seed_offset}"
            )

    @property
    def label(self) -> str:
        return f"{self.workload}-n{self.n}"

    def instance_seed(self, index: int) -> int:
        """Stable 63-bit seed of instance ``index`` (process-independent)."""
        return stable_seed(self.tag, self.workload, self.n, self.seed_offset + index)

    def instance(self, index: int) -> np.ndarray:
        """Materialize instance ``index`` as an ``(n, 2)`` float array."""
        if not 0 <= index < self.seeds:
            raise InvalidParameterError(
                f"instance index {index} outside [0, {self.seeds})"
            )
        return make_workload(self.workload, self.n, self.instance_seed(index))

    def instances(self) -> Iterator[np.ndarray]:
        """All instances, in seed order."""
        for i in range(self.seeds):
            yield self.instance(i)


#: Known scenario field names, used to drop unknown keys from serialized
#: scenarios (ledger/wire forward compatibility) instead of letting
#: ``__init__`` raise.
_SCENARIO_FIELDS = ("workload", "n", "seeds", "tag", "seed_offset")


def _scenario_from_dict(s: dict[str, Any]) -> Scenario:
    return Scenario(**{k: v for k, v in s.items() if k in _SCENARIO_FIELDS})


#: The shared validate-and-clamp rule for angular budgets (snap the
#: ``1e-12`` float slop above 2π to exactly 2π, reject anything further):
#: a spec-accepted φ is fingerprinted/ledgered clamped and is never
#: rejected or left unclamped by the planner at probe time.
_clamp_phi = clamp_angular_budget


@dataclass(frozen=True)
class GridCell:
    """One planner configuration: ``k`` antennae with angular-sum budget φ."""

    k: int
    phi: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        object.__setattr__(self, "phi", _clamp_phi(self.phi))

    @property
    def label(self) -> str:
        """Short display form — NOT an identity: distinct φ closer than
        5e-5 collide.  Anywhere a cell's φ identifies a row (the CLI
        tables), it is rendered at full ``repr`` precision instead (see
        ``_IDENTITY_COLUMNS`` in :mod:`repro.__main__`); fingerprints hash
        the exact float bits (:func:`repro.store.plan_fingerprint`)."""
        return f"k={self.k},phi={self.phi:.4f}"


@dataclass(frozen=True)
class Shard:
    """One of ``count`` disjoint partitions of a plan's instances.

    Instances are assigned round-robin by plan-order slot
    (``slot % count == index``), so the partition is a pure function of the
    :class:`PlanRequest` — every shard of a plan can be computed on a
    different machine and the union of the shards is exactly the plan.
    ``Shard(0, 1)`` is the whole plan.
    """

    index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise InvalidParameterError(
                f"shard count must be >= 1, got {self.count}"
            )
        if not 0 <= self.index < self.count:
            raise InvalidParameterError(
                f"shard index {self.index} outside [0, {self.count})"
            )

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI spelling ``"i/m"`` (e.g. ``"0/2"``)."""
        i, sep, m = text.partition("/")
        if not sep:
            raise InvalidParameterError(
                f"shard spec must look like 'i/m', got {text!r}"
            )
        try:
            return cls(int(i), int(m))
        except ValueError as exc:
            raise InvalidParameterError(
                f"shard spec must be two integers 'i/m', got {text!r}"
            ) from exc

    @classmethod
    def of(cls, value: "Shard | tuple[int, int] | None") -> "Shard":
        """Normalize ``None`` / ``(i, m)`` / :class:`Shard` to a Shard."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        i, m = value
        return cls(int(i), int(m))

    @property
    def is_whole(self) -> bool:
        return self.count == 1

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"

    def owns(self, slot: int) -> bool:
        """Does this shard execute the instance at plan-order ``slot``?"""
        return slot % self.count == self.index


@dataclass(frozen=True)
class RequestBase:
    """Shared shape of an executable request (sweep or frontier).

    Subclasses declare ``KIND`` (the wire/ledger kind tag) and implement
    :meth:`to_dict` / :meth:`from_dict` / :meth:`_fingerprint_spec`;
    scenario handling, backend validation, the fingerprint hash and the
    kind-tagged wire form live here once, so the two request kinds (and any
    future one) share a single identity/serialization contract.
    """

    scenarios: tuple[Scenario, ...]

    #: Wire/ledger kind tag (``"sweep"`` / ``"frontier"``); also the value
    #: :func:`repro.store.plan_kind` reports.
    KIND: ClassVar[str] = ""

    def _init_base(self) -> None:
        """Subclass ``__post_init__`` prologue: normalize shared fields."""
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "backend", _validate_backend(self.backend))
        object.__setattr__(self, "mode", validate_mode(self.mode))
        if not self.scenarios:
            raise InvalidParameterError(
                f"a {type(self).__name__} needs at least one scenario"
            )

    def _mode_payload(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Append the connectivity mode to a serialized spec — only when it
        is not the default.  Strong-mode specs keep their historical byte
        form, so every pre-existing fingerprint and ledger key is stable;
        symmetric mode is a new key new fingerprints simply include.
        Readers use ``data.get("mode", "strong")`` (forward-compatible)."""
        if self.mode != "strong":
            spec["mode"] = self.mode
        return spec

    def _scenarios_payload(self) -> list[dict[str, Any]]:
        """The scenarios' serialized form (shared by every request kind)."""
        return [
            {
                "workload": s.workload,
                "n": s.n,
                "seeds": s.seeds,
                "tag": s.tag,
                "seed_offset": s.seed_offset,
            }
            for s in self.scenarios
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable spec; round-trips via :meth:`from_dict`.

        The ``backend`` field is deliberately excluded: backends are
        bit-exact, so it is execution advice, not identity (see
        :func:`_validate_backend`).
        """
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RequestBase":
        """Rebuild a request from its :meth:`to_dict` form."""
        raise NotImplementedError

    def _fingerprint_spec(self) -> dict[str, Any]:
        """The dict that is hashed: :meth:`to_dict` with every angle float
        replaced by its ``float.hex`` bit pattern (plus a kind tag where
        needed).  Frozen — any change breaks every recorded ledger key."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """SHA-256 content hash of the spec (the ledger key and job id).

        Angles are hashed via ``float.hex`` so the key depends on the exact
        float64 bit patterns — two specs share a ledger iff their instances
        and cells are bit-identical, the only equality under which reusing
        ledgered results is sound.
        """
        spec = self._fingerprint_spec()
        spec["ledger_version"] = LEDGER_VERSION
        blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf8")).hexdigest()

    def to_wire(self) -> dict[str, Any]:
        """The versioned wire envelope
        (``{"wire_version": 1, "kind": ..., "request": ...}``) — the plan-file
        and service wire shape.  Inverse: :func:`request_from_wire`."""
        return {
            "wire_version": WIRE_VERSION,
            "kind": self.KIND,
            "request": self.to_dict(),
        }

    @property
    def total_instances(self) -> int:
        return sum(s.seeds for s in self.scenarios)

    @property
    def total_slots(self) -> int:
        """Number of ledger slots this request checkpoints.

        One per instance for sweeps and frontiers; request kinds that
        checkpoint at a finer grain (the ensemble layer's per-trial-chunk
        rows) override this.  Shard ownership, resume accounting and
        progress totals are all defined against the slot space.
        """
        return self.total_instances

    def instances(self) -> Iterator[tuple[int, int, np.ndarray]]:
        """Yield ``(scenario_index, instance_index, coords)`` in plan order.

        This is the deterministic enumeration every executor path follows;
        result ordering, shard partitions and ledger slots are defined
        against it.
        """
        for si, scenario in enumerate(self.scenarios):
            for ii in range(scenario.seeds):
                yield si, ii, scenario.instance(ii)


@dataclass(frozen=True)
class PlanRequest(RequestBase):
    """Scenarios × grid: the full batch the executor runs.

    Every instance of every scenario is evaluated at every grid cell; the
    per-instance artifacts (point set, spanning tree, distance matrix) are
    shared across the cells through the :class:`~repro.engine.cache.ArtifactCache`.
    """

    grid: tuple[GridCell, ...] = ()
    compute_critical: bool = True
    #: Connectivity objective every cell is evaluated under (``"strong"``
    #: or ``"symmetric"``).  Unlike ``backend`` this IS identity: symmetric
    #: plans measure a different objective, so the mode participates in
    #: serialization and the fingerprint (conditionally — see
    #: :meth:`RequestBase._mode_payload`).
    mode: str = "strong"
    #: Kernel backend to execute with (``None`` = env var / default).  Not
    #: part of the plan's identity: excluded from serialization and the
    #: fingerprint (see :func:`_validate_backend`).
    backend: "str | None" = None

    KIND: ClassVar[str] = "sweep"

    def __post_init__(self) -> None:
        self._init_base()
        object.__setattr__(self, "grid", tuple(self.grid))
        if not self.grid:
            raise InvalidParameterError("a PlanRequest needs at least one grid cell")

    def to_dict(self) -> dict[str, Any]:
        return self._mode_payload({
            "scenarios": self._scenarios_payload(),
            "grid": [{"k": c.k, "phi": c.phi} for c in self.grid],
            "compute_critical": self.compute_critical,
        })

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PlanRequest":
        return cls(
            scenarios=tuple(_scenario_from_dict(s) for s in data["scenarios"]),
            grid=tuple(GridCell(c["k"], c["phi"]) for c in data["grid"]),
            compute_critical=bool(data["compute_critical"]),
            mode=str(data.get("mode", "strong")),
        )

    def _fingerprint_spec(self) -> dict[str, Any]:
        spec = self.to_dict()
        spec["grid"] = [
            {"k": c["k"], "phi": float(c["phi"]).hex()} for c in spec["grid"]
        ]
        return spec

    @classmethod
    def sweep(
        cls,
        *,
        workloads: Sequence[str],
        sizes: Sequence[int],
        seeds: int,
        ks: Sequence[int],
        phis: Sequence[float],
        tag: str = "sweep",
        compute_critical: bool = True,
        mode: str = "strong",
        backend: "str | None" = None,
    ) -> "PlanRequest":
        """Build the dense cross product (workloads × sizes) × (ks × phis)."""
        scenarios = tuple(
            Scenario(w, int(n), seeds=seeds, tag=tag)
            for w in workloads
            for n in sizes
        )
        grid = tuple(GridCell(int(k), float(p)) for k in ks for p in phis)
        return cls(
            scenarios, grid, compute_critical=compute_critical, mode=mode,
            backend=backend,
        )

    @property
    def total_runs(self) -> int:
        return self.total_instances * len(self.grid)

    def describe(self) -> str:
        cells = ", ".join(c.label for c in self.grid[:4])
        if len(self.grid) > 4:
            cells += f", … ({len(self.grid)} cells)"
        scen = ", ".join(s.label for s in self.scenarios[:4])
        if len(self.scenarios) > 4:
            scen += f", … ({len(self.scenarios)} scenarios)"
        suffix = "" if self.mode == "strong" else f" [{self.mode}]"
        return (
            f"{self.total_instances} instances [{scen}] × grid [{cells}] "
            f"= {self.total_runs} runs{suffix}"
        )


@dataclass(frozen=True)
class FrontierRequest(RequestBase):
    """Scenarios × ks: an adaptive φ-frontier search (see :mod:`repro.frontier`).

    For every instance of every scenario and every ``k`` in ``ks``, the
    frontier solver bisects φ over ``[phi_lo, phi_hi]`` to resolution
    ``tol`` instead of evaluating a dense grid:

    * with a ``target``, it locates the smallest angular sum at which
      ``metric(φ) ≤ target`` (*threshold* mode);
    * without one, it maps the metric-vs-φ staircase — every φ interval on
      which the metric is constant, with each transition bracketed to
      ``tol`` (*staircase* mode).

    ``metric`` names an :class:`~repro.analysis.metrics.OrientationMetrics`
    field (one of :data:`FRONTIER_METRICS`); all are weakly non-increasing
    in φ, which is the bisection invariant.
    """

    ks: tuple[int, ...] = ()
    metric: str = "critical_range"
    target: float | None = None
    phi_lo: float = 0.0
    phi_hi: float = _TWO_PI
    tol: float = 1e-3
    #: Connectivity objective the probes are measured under; identity, like
    #: :attr:`PlanRequest.mode` (conditionally serialized/fingerprinted).
    mode: str = "strong"
    #: Kernel backend to execute with (``None`` = env var / default);
    #: excluded from serialization and the fingerprint like
    #: :attr:`PlanRequest.backend`.
    backend: "str | None" = None

    KIND: ClassVar[str] = "frontier"

    def __post_init__(self) -> None:
        self._init_base()
        object.__setattr__(self, "ks", tuple(int(k) for k in self.ks))
        if not self.ks:
            raise InvalidParameterError("a FrontierRequest needs at least one k")
        if any(k < 1 for k in self.ks):
            raise InvalidParameterError(f"every k must be >= 1, got {self.ks}")
        if self.metric not in FRONTIER_METRICS:
            raise InvalidParameterError(
                f"unknown frontier metric {self.metric!r}; "
                f"choose from {FRONTIER_METRICS}"
            )
        object.__setattr__(self, "phi_lo", _clamp_phi(self.phi_lo, "phi_lo"))
        object.__setattr__(self, "phi_hi", _clamp_phi(self.phi_hi, "phi_hi"))
        if not self.phi_lo < self.phi_hi:
            raise InvalidParameterError(
                f"need phi_lo < phi_hi, got [{self.phi_lo}, {self.phi_hi}]"
            )
        if not 0.0 < self.tol < self.phi_hi - self.phi_lo:
            raise InvalidParameterError(
                f"tol must be in (0, phi_hi - phi_lo), got {self.tol}"
            )
        if self.target is not None:
            target = float(self.target)
            # NaN would skip both bisection guards (every comparison is
            # False) and fabricate a "located" result at phi_hi.
            if not math.isfinite(target):
                raise InvalidParameterError(f"target must be finite, got {target}")
            object.__setattr__(self, "target", target)

    @property
    def search_mode(self) -> str:
        """``"threshold"`` (a target bound is given) or ``"staircase"``.

        Renamed from ``mode`` when requests grew a *connectivity* mode;
        ``mode`` is now always one of :data:`CONNECTIVITY_MODES`.
        """
        return "threshold" if self.target is not None else "staircase"

    @property
    def compute_critical(self) -> bool:
        """Probes measure the critical range only when the metric needs it."""
        return self.metric == "critical_range"

    def to_dict(self) -> dict[str, Any]:
        return self._mode_payload({
            "scenarios": self._scenarios_payload(),
            "ks": list(self.ks),
            "metric": self.metric,
            "target": self.target,
            "phi_lo": self.phi_lo,
            "phi_hi": self.phi_hi,
            "tol": self.tol,
        })

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FrontierRequest":
        return cls(
            scenarios=tuple(_scenario_from_dict(s) for s in data["scenarios"]),
            ks=tuple(int(k) for k in data["ks"]),
            metric=str(data["metric"]),
            target=None if data["target"] is None else float(data["target"]),
            phi_lo=float(data["phi_lo"]),
            phi_hi=float(data["phi_hi"]),
            tol=float(data["tol"]),
            mode=str(data.get("mode", "strong")),
        )

    def _fingerprint_spec(self) -> dict[str, Any]:
        spec = self.to_dict()
        spec["kind"] = "frontier"
        for f in ("phi_lo", "phi_hi", "tol"):
            spec[f] = float(spec[f]).hex()
        if spec["target"] is not None:
            spec["target"] = float(spec["target"]).hex()
        return spec

    def describe(self) -> str:
        scen = ", ".join(s.label for s in self.scenarios[:4])
        if len(self.scenarios) > 4:
            scen += f", … ({len(self.scenarios)} scenarios)"
        goal = (
            f"{self.metric} <= {self.target:g}"
            if self.target is not None
            else f"{self.metric} staircase"
        )
        suffix = "" if self.mode == "strong" else f" [{self.mode}]"
        return (
            f"{self.total_instances} instances [{scen}] × k∈{list(self.ks)}: "
            f"{goal} over phi∈[{self.phi_lo:.4f}, {self.phi_hi:.4f}] "
            f"to tol {self.tol:g}{suffix}"
        )


#: Kind tag -> request class.  The single wire/ledger dispatch table: every
#: request kind (sweep, frontier, ensemble, any future one) is rebuilt
#: through this registry — there is no per-kind if/elif chain anywhere in
#: the wire path.
REQUEST_KINDS: dict[str, type[RequestBase]] = {
    PlanRequest.KIND: PlanRequest,
    FrontierRequest.KIND: FrontierRequest,
}

#: Kinds registered lazily on first use: importing this low-level module
#: must not pull in the subsystems built on top of it, so their request
#: classes self-register when their module loads, and the wire reader
#: imports that module on demand.
_LAZY_KINDS = {"ensemble": "repro.ensemble.spec"}


class WireFormatError(InvalidParameterError):
    """A wire envelope (:meth:`RequestBase.to_wire` form) cannot be read."""


class UnknownRequestKind(WireFormatError):
    """The envelope's ``kind`` tag names no registered request class."""


class UnsupportedWireVersion(WireFormatError):
    """The envelope was written by a newer wire format than this reader."""


def register_request_kind(cls: type[RequestBase]) -> type[RequestBase]:
    """Register ``cls`` in the wire/ledger dispatch table (idempotent).

    Usable as a class decorator by out-of-module request kinds.
    """
    if not cls.KIND:
        raise InvalidParameterError(f"{cls.__name__} declares no KIND tag")
    REQUEST_KINDS[cls.KIND] = cls
    return cls


def request_from_wire(data: dict[str, Any]) -> RequestBase:
    """Rebuild a request from its versioned :meth:`RequestBase.to_wire` envelope.

    Tolerates a missing ``wire_version`` (envelopes written before PR 8 are
    version 1) and a missing ``kind`` (plan files written before frontiers
    existed are sweeps).  An unknown kind raises :class:`UnknownRequestKind`;
    an envelope from a future writer raises :class:`UnsupportedWireVersion` —
    both are :class:`InvalidParameterError` subclasses, so existing error
    mapping (service 400s, CLI exit code 2) applies unchanged.
    """
    version = data.get("wire_version", WIRE_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise WireFormatError(
            f"wire_version must be a positive integer, got {version!r}"
        )
    if version > WIRE_VERSION:
        raise UnsupportedWireVersion(
            f"wire_version {version} is newer than this reader "
            f"(supports <= {WIRE_VERSION}); upgrade to load this payload"
        )
    kind = data.get("kind", PlanRequest.KIND)
    cls = REQUEST_KINDS.get(kind)
    if cls is None and kind in _LAZY_KINDS:
        import importlib

        importlib.import_module(_LAZY_KINDS[kind])
        cls = REQUEST_KINDS.get(kind)
    if cls is None:
        known = sorted(set(REQUEST_KINDS) | set(_LAZY_KINDS))
        raise UnknownRequestKind(
            f"unknown request kind {kind!r}; choose from {known}"
        )
    return cls.from_dict(data["request"])
