"""Content-addressed cache for per-instance geometric artifacts.

Planning one instance at several ``(k, φ)`` cells repeats the same expensive
preprocessing: validating the :class:`PointSet`, building the degree-≤5
Euclidean MST, the dense pairwise-distance matrix, and the kernel layer's
``(n, n)`` polar angle/distance tables (the trig every coverage matrix and
critical-range search reads from).  :class:`ArtifactCache` keys all of them
on a SHA-256 hash of the raw coordinate bytes, so every cell of a sweep
after the first is a cache hit — one EMST build and one trig pass per
instance, regardless of grid size.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.points import PointSet, pairwise_distances
from repro.kernels.backend import active_backend
from repro.kernels.batch import BatchedInstances, PackedPolarTables
from repro.kernels.geometry import PolarTables, polar_tables
from repro.kernels.sparse import SparsePolarTables, sparse_polar_tables
from repro.spanning.emst import SpanningTree, euclidean_mst

__all__ = ["content_hash", "CacheStats", "ArtifactCache"]


def content_hash(coords) -> str:
    """SHA-256 of an ``(n, 2)`` coordinate array's shape and exact bytes.

    Hashes the float64 bit patterns (no rounding): two arrays share a key
    iff they are bit-identical, which is the only equality under which
    reusing a spanning tree is sound.
    """
    arr = coords.coords if isinstance(coords, PointSet) else np.asarray(coords, float)
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode("ascii"))
    h.update(arr.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss and build counters (builds ≤ misses: artifacts are lazy)."""

    hits: int = 0
    misses: int = 0
    pointset_builds: int = 0
    tree_builds: int = 0
    distance_builds: int = 0
    polar_builds: int = 0
    sparse_polar_builds: int = 0
    evictions: int = 0

    def merge(self, other: "CacheStats") -> None:
        """Fold another cache's counters into this one (parallel workers)."""
        self.hits += other.hits
        self.misses += other.misses
        self.pointset_builds += other.pointset_builds
        self.tree_builds += other.tree_builds
        self.distance_builds += other.distance_builds
        self.polar_builds += other.polar_builds
        self.sparse_polar_builds += other.sparse_polar_builds
        self.evictions += other.evictions

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pointset_builds": self.pointset_builds,
            "tree_builds": self.tree_builds,
            "distance_builds": self.distance_builds,
            "polar_builds": self.polar_builds,
            "sparse_polar_builds": self.sparse_polar_builds,
            "evictions": self.evictions,
        }

    _FIELDS = (
        "hits", "misses", "pointset_builds", "tree_builds",
        "distance_builds", "polar_builds", "sparse_polar_builds",
        "evictions",
    )

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        """Rebuild stats from :meth:`as_dict` output, tolerantly.

        Unknown keys (counters added by a future version whose ledger we
        are replaying) are ignored instead of raising ``TypeError`` —
        part of the ledger forward-compatibility contract.
        """
        return cls(**{k: int(data[k]) for k in cls._FIELDS if k in data})


@dataclass
class _Entry:
    pointset: PointSet
    tree: SpanningTree | None = None
    distances: np.ndarray | None = None
    polar: PolarTables | None = None
    #: Radius-bounded candidate tables, keyed by their cutoff: a sweep's
    #: grid cells share one default-cutoff artifact, while the widening
    #: loop's larger rebuilds coexist without clobbering it.
    sparse: dict[float, SparsePolarTables] = field(default_factory=dict)


@dataclass
class ArtifactCache:
    """LRU cache of per-instance artifacts, keyed by coordinate content hash.

    Parameters
    ----------
    maxsize:
        Maximum number of *instances* kept (None = unbounded).  A sweep
        touching instances in plan order only ever needs one live entry per
        concurrently-processed instance, so small bounds are safe.
    """

    maxsize: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, _Entry]" = field(default_factory=OrderedDict, repr=False)
    _packed: "OrderedDict[str, PackedPolarTables]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __len__(self) -> int:
        return len(self._entries)

    def _entry(self, coords) -> _Entry:
        key = content_hash(coords)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.stats.misses += 1
        if isinstance(coords, PointSet):
            ps = coords
        else:
            ps = PointSet(coords)
            self.stats.pointset_builds += 1
        entry = _Entry(pointset=ps)
        self._entries[key] = entry
        if self.maxsize is not None and len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def pointset(self, coords) -> PointSet:
        """The validated :class:`PointSet` for ``coords`` (built once)."""
        return self._entry(coords).pointset

    def tree(self, coords) -> SpanningTree:
        """The degree-≤5 Euclidean MST for ``coords`` (built once)."""
        entry = self._entry(coords)
        if entry.tree is None:
            entry.tree = euclidean_mst(entry.pointset)
            self.stats.tree_builds += 1
        return entry.tree

    def distances(self, coords) -> np.ndarray:
        """The dense ``(n, n)`` pairwise-distance matrix (built once)."""
        entry = self._entry(coords)
        if entry.distances is None:
            entry.distances = pairwise_distances(entry.pointset.coords)
            self.stats.distance_builds += 1
        return entry.distances

    def polar(self, coords) -> PolarTables:
        """The kernel layer's ``(n, n)`` polar angle/distance tables (built once).

        Shared by every coverage matrix and critical-range search on the
        instance — one trig pass per instance per sweep.
        """
        entry = self._entry(coords)
        if entry.polar is None:
            entry.polar = polar_tables(entry.pointset.coords)
            self.stats.polar_builds += 1
        return entry.polar

    def sparse_polar(self, coords, r_cut: float) -> SparsePolarTables:
        """Radius-bounded CSR candidate tables at cutoff ``r_cut`` (built once).

        The sparse analogue of :meth:`polar` for large instances: one
        kd-tree query + one trig pass per (instance, cutoff), shared by
        every grid cell whose certification needs at most ``r_cut``.
        """
        entry = self._entry(coords)
        key = float(r_cut)
        tables = entry.sparse.get(key)
        if tables is None:
            tables = sparse_polar_tables(entry.pointset.coords, key)
            entry.sparse[key] = tables
            self.stats.sparse_polar_builds += 1
        return tables

    def packed_polar(self, batch: BatchedInstances) -> PackedPolarTables:
        """Packed polar tables for a whole chunk, keyed by the batch hash.

        Deliberately NOT tracked in :class:`CacheStats`: packed tables are
        *chunk*-scoped artifacts, and chunk boundaries depend on job count
        and resume state.  Folding their builds into the per-instance stat
        deltas would make ledgered totals depend on how a run was chunked —
        breaking the restart-invariance guarantee (a resumed run reports
        the same stats as an uninterrupted one).  Their accounting lives in
        the kernel counters instead (``packed_polar_builds``,
        ``batched_instances``), which are launch-level by design.
        """
        key = batch.key
        tables = self._packed.get(key)
        if tables is not None:
            self._packed.move_to_end(key)
            return tables
        tables = active_backend().packed_polar(batch)
        self._packed[key] = tables
        if self.maxsize is not None and len(self._packed) > self.maxsize:
            self._packed.popitem(last=False)
        return tables

    def clear(self) -> None:
        self._entries.clear()
        self._packed.clear()
