"""Parallel batch executor: the one way to run a :class:`PlanRequest`.

Work is chunked by *instance* (each unit of work plans one instance at every
grid cell, reusing the instance's spanning tree through the
:class:`~repro.engine.cache.ArtifactCache`), dispatched to a
``ProcessPoolExecutor`` when ``jobs > 1`` and run inline otherwise.  Results
are reassembled in plan order, so serial and parallel execution return
bit-identical :class:`~repro.analysis.metrics.OrientationMetrics`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis.metrics import OrientationMetrics, orientation_metrics
from repro.core.planner import orient_antennae
from repro.engine.cache import ArtifactCache, CacheStats
from repro.engine.spec import GridCell, PlanRequest, Scenario
from repro.experiments.harness import aggregate_rows

__all__ = [
    "RunRecord",
    "InstanceReport",
    "BatchResult",
    "run_instance_grid",
    "execute_plan",
]


@dataclass(frozen=True)
class RunRecord:
    """One planner run: (scenario, instance) evaluated at one grid cell."""

    scenario: Scenario
    instance_index: int
    cell: GridCell
    metrics: OrientationMetrics


@dataclass(frozen=True)
class InstanceReport:
    """Per-instance facts shared by every cell (computed once via the cache)."""

    scenario_index: int
    instance_index: int
    n: int
    lmax: float
    mst_weight: float
    diameter: float
    elapsed: float


def run_instance_grid(
    coords: np.ndarray,
    grid: Sequence[GridCell],
    *,
    compute_critical: bool = True,
    cache: ArtifactCache | None = None,
) -> tuple[list[OrientationMetrics], dict[str, float]]:
    """Plan one instance at every grid cell, building its artifacts once.

    Returns the per-cell metrics (grid order) and the instance-level facts
    derived from the cached artifacts (``lmax``, MST weight, diameter).
    """
    cache = cache if cache is not None else ArtifactCache()
    ps = cache.pointset(coords)
    tree = cache.tree(ps)
    tables = cache.polar(ps)
    facts = {
        "n": float(len(ps)),
        "lmax": tree.lmax,
        "mst_weight": tree.total_weight,
        "diameter": float(tables.dist.max()) if tables.dist.size else 0.0,
    }
    metrics = []
    for cell in grid:
        result = orient_antennae(ps, cell.k, cell.phi, tree=tree)
        metrics.append(
            orientation_metrics(
                result, compute_critical=compute_critical, tables=tables
            )
        )
    return metrics, facts


# -- parallel plumbing ------------------------------------------------------------

#: One unit of work shipped to a worker: (slot, scenario_index, instance_index,
#: coords).  ``slot`` is the task's position in plan order.
_Task = tuple[int, int, int, np.ndarray]


def _run_chunk(
    chunk: list[_Task], grid: tuple[GridCell, ...], compute_critical: bool
) -> tuple[list[tuple[int, list[OrientationMetrics], dict[str, float], float]], CacheStats]:
    """Worker entry point: process a chunk of instances with a local cache."""
    cache = ArtifactCache()
    out = []
    for slot, _si, _ii, coords in chunk:
        t0 = time.perf_counter()
        metrics, facts = _run_one(coords, grid, compute_critical, cache)
        out.append((slot, metrics, facts, time.perf_counter() - t0))
    return out, cache.stats


def _run_one(coords, grid, compute_critical, cache):
    return run_instance_grid(
        coords, grid, compute_critical=compute_critical, cache=cache
    )


@dataclass
class BatchResult:
    """All runs of a plan, in deterministic plan order, plus execution facts."""

    request: PlanRequest
    records: list[RunRecord]
    instance_reports: list[InstanceReport]
    cache_stats: CacheStats
    jobs_used: int
    elapsed: float
    fallback_reason: str | None = None
    _by_cell: list[list[OrientationMetrics]] = field(default=None, repr=False)  # type: ignore[assignment]

    def metrics_by_cell(self) -> list[list[OrientationMetrics]]:
        """Metrics grouped per grid position (plan order within each group)."""
        if self._by_cell is None:
            groups: list[list[OrientationMetrics]] = [
                [] for _ in self.request.grid
            ]
            ncells = len(self.request.grid)
            for i, rec in enumerate(self.records):
                groups[i % ncells].append(rec.metrics)
            self._by_cell = groups
        return self._by_cell

    def aggregate_by_cell(self) -> list[dict[str, Any]]:
        """One aggregate row per grid cell, over every scenario instance."""
        return [aggregate_rows(ms) for ms in self.metrics_by_cell()]

    def aggregate_by_scenario_cell(self) -> list[dict[str, Any]]:
        """One aggregate row per (scenario, cell), labelled with the scenario."""
        ncells = len(self.request.grid)
        rows = []
        base = 0  # index of the scenario's first instance in plan order
        for scenario in self.request.scenarios:
            for ci in range(ncells):
                ms = [
                    self.records[(base + j) * ncells + ci].metrics
                    for j in range(scenario.seeds)
                ]
                row = aggregate_rows(ms)
                row["workload"] = scenario.workload
                row["n"] = scenario.n
                rows.append(row)
            base += scenario.seeds
        return rows

    def cache_summary(self) -> str:
        """Deterministic cache facts (identical for serial and parallel runs)."""
        s = self.cache_stats
        return (
            f"{len(self.records)} runs over {len(self.instance_reports)} instances; "
            f"{s.tree_builds} EMST builds shared across {len(self.request.grid)} "
            f"grid cells ({s.hits} cache hits)"
        )

    def summary(self) -> str:
        mode = f"{self.jobs_used} workers" if self.jobs_used > 1 else "serial"
        return f"{self.cache_summary()} ({mode}, {self.elapsed:.2f}s)"


def _chunk_tasks(tasks: list[_Task], jobs: int) -> list[list[_Task]]:
    """Split tasks into contiguous chunks, ~4 per worker for load balance."""
    target = max(1, -(-len(tasks) // (jobs * 4)))
    return [tasks[i : i + target] for i in range(0, len(tasks), target)]


def execute_plan(
    request: PlanRequest,
    *,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    on_instance: Callable[[InstanceReport], None] | None = None,
) -> BatchResult:
    """Run every (instance × cell) of ``request`` and collect the metrics.

    Parameters
    ----------
    request:
        The batch description.
    jobs:
        Worker processes; ``<= 1`` runs inline.  Parallel execution falls
        back to serial (recording ``fallback_reason``) if a process pool
        cannot be created in the current environment.
    cache:
        Serial path only: an external :class:`ArtifactCache` to use/observe.
        Workers always build their own per-process caches; their stats are
        merged into the result.
    on_instance:
        Progress hook invoked with each :class:`InstanceReport` as it
        completes (arrival order; the result itself stays in plan order).
    """
    t_start = time.perf_counter()
    tasks: list[_Task] = [
        (slot, si, ii, coords)
        for slot, (si, ii, coords) in enumerate(request.instances())
    ]
    grid = request.grid
    slots: list[tuple[list[OrientationMetrics], dict[str, float], float] | None]
    slots = [None] * len(tasks)
    stats = CacheStats()
    fallback_reason = None
    jobs_used = 1

    pool = None
    if jobs > 1 and len(tasks) > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        except (OSError, ValueError, PermissionError) as exc:
            fallback_reason = f"process pool unavailable ({exc}); ran serially"

    if pool is not None:
        chunks = _chunk_tasks(tasks, min(jobs, len(tasks)))
        try:
            futures = [
                pool.submit(_run_chunk, chunk, grid, request.compute_critical)
                for chunk in chunks
            ]
            jobs_used = min(jobs, len(tasks))
            for future in as_completed(futures):
                outcomes, worker_stats = future.result()
                stats.merge(worker_stats)
                for slot, metrics, facts, dt in outcomes:
                    slots[slot] = (metrics, facts, dt)
                    if on_instance is not None:
                        _, si, ii, _ = tasks[slot]
                        on_instance(_report(si, ii, facts, dt))
        finally:
            pool.shutdown(wait=True)
    else:
        local_cache = cache if cache is not None else ArtifactCache()
        # Snapshot so the result records only this run's counter deltas even
        # when the caller's cache is reused across several plans.
        before = local_cache.stats.as_dict()
        for slot, si, ii, coords in tasks:
            t0 = time.perf_counter()
            metrics, facts = _run_one(
                coords, grid, request.compute_critical, local_cache
            )
            dt = time.perf_counter() - t0
            slots[slot] = (metrics, facts, dt)
            if on_instance is not None:
                on_instance(_report(si, ii, facts, dt))
        after = local_cache.stats.as_dict()
        stats = CacheStats(**{k: after[k] - before[k] for k in after})

    records: list[RunRecord] = []
    reports: list[InstanceReport] = []
    for (slot, si, ii, _coords), payload in zip(tasks, slots):
        assert payload is not None, f"missing result for task slot {slot}"
        metrics, facts, dt = payload
        scenario = request.scenarios[si]
        reports.append(_report(si, ii, facts, dt))
        for cell, m in zip(grid, metrics):
            records.append(RunRecord(scenario, ii, cell, m))
    return BatchResult(
        request=request,
        records=records,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=jobs_used,
        elapsed=time.perf_counter() - t_start,
        fallback_reason=fallback_reason,
    )


def _report(si: int, ii: int, facts: dict[str, float], dt: float) -> InstanceReport:
    return InstanceReport(
        scenario_index=si,
        instance_index=ii,
        n=int(facts["n"]),
        lmax=facts["lmax"],
        mst_weight=facts["mst_weight"],
        diameter=facts["diameter"],
        elapsed=dt,
    )
