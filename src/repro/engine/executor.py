"""Parallel batch executor: the one way to run a :class:`PlanRequest`.

Work is chunked by *instance* (each unit of work plans one instance at every
grid cell, reusing the instance's spanning tree through the
:class:`~repro.engine.cache.ArtifactCache`), dispatched to a
``ProcessPoolExecutor`` when ``jobs > 1`` and run inline otherwise.  Results
are reassembled in plan order, so serial and parallel execution return
bit-identical :class:`~repro.analysis.metrics.OrientationMetrics`.

With a :class:`~repro.store.RunStore` the executor becomes durable: every
completed instance chunk is checkpointed into the store's append-only
ledger, ``resume=True`` replays ledgered chunks instead of re-executing
them, and ``shard=(i, m)`` restricts execution to one of ``m`` disjoint,
deterministic partitions of the plan's instances — the merged shards are
bit-identical to an unsharded run.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis.metrics import (
    OrientationMetrics,
    batched_orientation_metrics,
    orientation_metrics,
)
from repro.core.symmetric import orient_for_mode
from repro.engine.cache import ArtifactCache, CacheStats
from repro.engine._spec import GridCell, PlanRequest, Scenario, Shard
from repro.experiments.harness import aggregate_rows
from repro.geometry.points import max_pairwise_distance
from repro.kernels.backend import active_backend, resolve_backend, use_backend
from repro.kernels.batch import pack_instances
from repro.kernels.sparse import default_instance_cutoff

__all__ = [
    "RunRecord",
    "InstanceReport",
    "BatchResult",
    "instance_artifacts",
    "run_instance_grid",
    "execute_plan",
]


@dataclass(frozen=True)
class RunRecord:
    """One planner run: (scenario, instance) evaluated at one grid cell."""

    scenario: Scenario
    instance_index: int
    cell: GridCell
    metrics: OrientationMetrics
    scenario_index: int = -1


@dataclass(frozen=True)
class InstanceReport:
    """Per-instance facts shared by every cell (computed once via the cache)."""

    scenario_index: int
    instance_index: int
    n: int
    lmax: float
    mst_weight: float
    diameter: float
    elapsed: float


def _wants_sparse(backend, n: int) -> bool:
    """Does ``backend`` route an ``n``-point instance through the sparse path?"""
    use_sparse = getattr(backend, "use_sparse", None)
    return bool(use_sparse is not None and use_sparse(n))


def instance_artifacts(cache: ArtifactCache, coords: np.ndarray):
    """``(pointset, tree, tables, facts)`` for one instance, via the cache.

    The ``facts`` dict is the ledgered schema behind
    :class:`InstanceReport` (``n``/``lmax``/``mst_weight``/``diameter``) —
    shared by the sweep and frontier executors so their replay paths
    cannot drift apart.  Under a sparse-routing backend ``tables`` is the
    cached radius-bounded :class:`~repro.kernels.sparse.SparsePolarTables`
    artifact at the instance's default cutoff instead of the dense
    ``(n, n)`` tables; the facts keep the same values (``diameter`` via
    :func:`~repro.geometry.points.max_pairwise_distance`).
    """
    ps = cache.pointset(coords)
    tree = cache.tree(ps)
    if _wants_sparse(active_backend(), len(ps)):
        tables = cache.sparse_polar(ps, default_instance_cutoff(tree.lmax))
        diameter = max_pairwise_distance(ps.coords) if len(ps) > 1 else 0.0
    else:
        tables = cache.polar(ps)
        diameter = float(tables.dist.max()) if tables.dist.size else 0.0
    facts = {
        "n": float(len(ps)),
        "lmax": tree.lmax,
        "mst_weight": tree.total_weight,
        "diameter": diameter,
    }
    return ps, tree, tables, facts


def run_instance_grid(
    coords: np.ndarray,
    grid: Sequence[GridCell],
    *,
    compute_critical: bool = True,
    cache: ArtifactCache | None = None,
    mode: str = "strong",
) -> tuple[list[OrientationMetrics], dict[str, float]]:
    """Plan one instance at every grid cell, building its artifacts once.

    Returns the per-cell metrics (grid order) and the instance-level facts
    derived from the cached artifacts (``lmax``, MST weight, diameter).
    ``mode`` selects the connectivity objective: the Table-1 dispatcher for
    ``"strong"``, the bounded-angle MST construction for ``"symmetric"``
    (see :func:`repro.core.symmetric.orient_for_mode`) — measured under the
    same mode.
    """
    cache = cache if cache is not None else ArtifactCache()
    ps, tree, tables, facts = instance_artifacts(cache, coords)
    metrics = []
    for cell in grid:
        result = orient_for_mode(ps, cell.k, cell.phi, mode=mode, tree=tree)
        metrics.append(
            orientation_metrics(
                result, compute_critical=compute_critical, tables=tables,
                mode=mode,
            )
        )
    return metrics, facts


# -- parallel plumbing ------------------------------------------------------------

#: One unit of work shipped to a worker: (slot, scenario_index, instance_index,
#: coords).  ``slot`` is the task's position in plan order.
_Task = tuple[int, int, int, np.ndarray]

#: One completed unit of work: (per-cell metrics, instance facts, elapsed
#: seconds, per-instance CacheStats delta, backend name).  The delta is what
#: makes cache accounting independent of chunking/sharding: totals are sums
#: of deltas.  The backend name records which kernel backend produced the
#: metrics (provenance for the ledger row).
_Payload = tuple[
    list[OrientationMetrics], dict[str, float], float, dict[str, int], str
]

#: Cap on ``m * n_max**2`` elements per packed batch: a sub-batch of this
#: size costs ~64 MB in float64 polar tables, so huge-n chunks degrade to
#: smaller launches instead of exhausting memory.  Sub-batch boundaries are
#: a pure function of the chunk's contents, so metrics stay bit-identical
#: and counter totals stay reproducible for a given chunking.
_BATCH_MAX_ELEMS = 4_000_000


def _run_chunk(
    chunk: list[_Task],
    grid: tuple[GridCell, ...],
    compute_critical: bool,
    backend_name: str,
    batched: bool,
    cache: ArtifactCache | None = None,
    mode: str = "strong",
) -> list[tuple[int, _Payload]]:
    """Worker entry point: process a chunk of instances with a local cache.

    All kernel work (per-instance or batched) runs under ``backend_name``,
    planning and measuring under connectivity ``mode``.
    """
    cache = cache if cache is not None else ArtifactCache()
    with use_backend(backend_name) as backend:
        if batched:
            # Sparse-routed instances cannot take the packed dense path
            # (it materializes (m, n_max, n_max) tables); split the chunk
            # and measure them per-instance, everything else packed.
            dense = [t for t in chunk if not _wants_sparse(backend, t[3].shape[0])]
            sparse = [t for t in chunk if _wants_sparse(backend, t[3].shape[0])]
            out: list[tuple[int, _Payload]] = []
            if dense:
                out.extend(
                    _run_chunk_batched(
                        dense, grid, compute_critical, cache, backend_name, mode
                    )
                )
            out.extend(
                (
                    slot,
                    _run_task(
                        coords, grid, compute_critical, cache, backend_name, mode
                    ),
                )
                for slot, _si, _ii, coords in sparse
            )
            return out
        return [
            (
                slot,
                _run_task(coords, grid, compute_critical, cache, backend_name, mode),
            )
            for slot, _si, _ii, coords in chunk
        ]


def _run_task(
    coords, grid, compute_critical, cache, backend_name, mode="strong"
) -> _Payload:
    """Run one instance, measuring wall time and its cache-stats delta."""
    before = cache.stats.as_dict()
    t0 = time.perf_counter()
    metrics, facts = run_instance_grid(
        coords, grid, compute_critical=compute_critical, cache=cache, mode=mode
    )
    dt = time.perf_counter() - t0
    after = cache.stats.as_dict()
    delta = {k: after[k] - before[k] for k in after}
    return metrics, facts, dt, delta, backend_name


def _run_chunk_batched(
    chunk: list[_Task],
    grid: tuple[GridCell, ...],
    compute_critical: bool,
    cache: ArtifactCache,
    backend_name: str,
    mode: str = "strong",
) -> list[tuple[int, _Payload]]:
    """Process a chunk through the packed multi-instance kernels.

    Per-instance artifacts (pointset, spanning tree) are still built one at
    a time inside per-instance cache-stat delta windows — so ledgered cache
    accounting is identical to the per-instance path — but measurement is
    one packed kernel launch per grid cell for the whole chunk instead of a
    Python-level launch per instance.  Packed polar tables are chunk-scoped
    (see :meth:`ArtifactCache.packed_polar`) and kept out of the deltas.

    Metrics are bit-identical to the per-instance path; elapsed time is
    attributed evenly across the chunk's instances (per-instance wall time
    is not separable when launches are fused).
    """
    t0 = time.perf_counter()
    entries = []  # (slot, pointset, tree, cache-stats delta)
    for slot, _si, _ii, coords in chunk:
        before = cache.stats.as_dict()
        ps = cache.pointset(coords)
        tree = cache.tree(ps)
        after = cache.stats.as_dict()
        entries.append(
            (slot, ps, tree, {k: after[k] - before[k] for k in after})
        )

    n_max = max(len(ps) for _, ps, _, _ in entries)
    per = max(1, _BATCH_MAX_ELEMS // max(n_max * n_max, 1))
    payload_parts: list[tuple[int, list[OrientationMetrics], dict, dict]] = []
    for base in range(0, len(entries), per):
        sub = entries[base : base + per]
        batch = pack_instances([ps.coords for _, ps, _, _ in sub])
        tables = cache.packed_polar(batch)
        cell_metrics: list[list[OrientationMetrics]] = [[] for _ in sub]
        for cell in grid:
            results = [
                orient_for_mode(ps, cell.k, cell.phi, mode=mode, tree=tree)
                for _, ps, tree, _ in sub
            ]
            for j, m in enumerate(
                batched_orientation_metrics(
                    results, batch, tables,
                    compute_critical=compute_critical, mode=mode,
                )
            ):
                cell_metrics[j].append(m)
        for j, (slot, ps, tree, delta) in enumerate(sub):
            n = len(ps)
            facts = {
                "n": float(n),
                "lmax": tree.lmax,
                "mst_weight": tree.total_weight,
                "diameter": float(tables.dist[j, :n, :n].max()) if n else 0.0,
            }
            payload_parts.append((slot, cell_metrics[j], facts, delta))

    dt = (time.perf_counter() - t0) / max(len(chunk), 1)
    return [
        (slot, (metrics, facts, dt, delta, backend_name))
        for slot, metrics, facts, delta in payload_parts
    ]


@dataclass
class BatchResult:
    """All runs of a plan, in deterministic plan order, plus execution facts.

    For sharded runs the records cover exactly the shard's instances (still
    whole instance × grid blocks, in plan order); ``replayed_instances``
    counts chunks that came from a store ledger rather than execution.
    """

    request: PlanRequest
    records: list[RunRecord]
    instance_reports: list[InstanceReport]
    cache_stats: CacheStats
    jobs_used: int
    elapsed: float
    fallback_reason: str | None = None
    replayed_instances: int = 0
    shard: Shard = field(default_factory=Shard)
    backend: str | None = None
    _by_cell: list[list[OrientationMetrics]] = field(default=None, repr=False)  # type: ignore[assignment]

    def metrics_by_cell(self) -> list[list[OrientationMetrics]]:
        """Metrics grouped per grid position (plan order within each group).

        Records always arrive in whole per-instance blocks of
        ``len(request.grid)`` cells, so the grouping is valid for sharded
        and ledger-assembled results too.
        """
        if self._by_cell is None:
            ncells = len(self.request.grid)
            groups: list[list[OrientationMetrics]] = [[] for _ in range(ncells)]
            for i, rec in enumerate(self.records):
                groups[i % ncells].append(rec.metrics)
            self._by_cell = groups
        return self._by_cell

    def aggregate_by_cell(self) -> list[dict[str, Any]]:
        """One aggregate row per grid cell, over every instance present.

        Empty for a batch with no records (e.g. a shard that owns no
        instances of a small plan).
        """
        return [aggregate_rows(ms) for ms in self.metrics_by_cell() if ms]

    def aggregate_by_scenario_cell(self) -> list[dict[str, Any]]:
        """One aggregate row per (scenario, cell), labelled with the scenario.

        Scenarios with no instances present (possible in a sharded partial
        result) are skipped rather than reported as empty rows.
        """
        ncells = len(self.request.grid)
        buckets: dict[tuple[int, int], list[OrientationMetrics]] = {}
        for base in range(0, len(self.records), ncells):
            block = self.records[base : base + ncells]
            si = block[0].scenario_index
            for ci, rec in enumerate(block):
                buckets.setdefault((si, ci), []).append(rec.metrics)
        rows = []
        for si in sorted({key[0] for key in buckets}):
            scenario = self.request.scenarios[si]
            for ci in range(ncells):
                ms = buckets.get((si, ci))
                if not ms:
                    continue
                row = aggregate_rows(ms)
                row["workload"] = scenario.workload
                row["n"] = scenario.n
                rows.append(row)
        return rows

    def cache_summary(self) -> str:
        """Deterministic cache facts (identical for serial and parallel runs)."""
        s = self.cache_stats
        return (
            f"{len(self.records)} runs over {len(self.instance_reports)} instances; "
            f"{s.tree_builds} EMST builds shared across {len(self.request.grid)} "
            f"grid cells ({s.hits} cache hits)"
        )

    def summary(self) -> str:
        mode = f"{self.jobs_used} workers" if self.jobs_used > 1 else "serial"
        parts = [self.cache_summary()]
        if not self.shard.is_whole:
            parts.append(f"shard {self.shard.label}")
        if self.replayed_instances:
            parts.append(f"{self.replayed_instances} instances from ledger")
        return f"{'; '.join(parts)} ({mode}, {self.elapsed:.2f}s)"


def _chunk_tasks(tasks: list[_Task], jobs: int) -> list[list[_Task]]:
    """Split tasks into contiguous chunks, ~4 per worker for load balance."""
    target = max(1, -(-len(tasks) // (jobs * 4)))
    return [tasks[i : i + target] for i in range(0, len(tasks), target)]


def _tombstone_check(store: Any, request: Any) -> "Callable[[], bool] | None":
    """``should_stop`` hook polling the plan's cancel marker in ``store``."""
    if store is None or not hasattr(store, "is_cancelled"):
        return None
    key = request.fingerprint()
    return lambda: store.is_cancelled(key)


def _execute_durable(
    request: Any,
    all_tasks: list[_Task],
    shard: Shard,
    *,
    jobs: int,
    cache: "ArtifactCache | None",
    on_instance: "Callable[[InstanceReport], None] | None",
    store: Any,
    resume: bool,
    run_chunk_serial: Callable[[list[_Task], ArtifactCache], Any],
    submit_chunk: Callable[[Any, list[_Task]], Any],
    rows_for_resume: Callable[[Any, str], dict[int, Any]],
    payload_of_row: Callable[[int, Any], Any],
    row_of_payload: Callable[[int, int, int, Any], Any],
    should_stop: "Callable[[], bool] | None" = None,
) -> tuple[dict[int, Any], int, int, "str | None", Any]:
    """The durable-execution skeleton shared by the sweep and frontier
    executors: resume-guarded store handling, per-completion checkpointing,
    process-pool fan-out with serial fallback, payloads keyed by plan slot.

    Payloads are ``(result, facts, elapsed, cache_delta, backend)`` tuples;
    only the ``result`` element differs between executors, which is what the
    ``run_chunk_serial`` / ``submit_chunk`` / ``payload_of_row`` /
    ``row_of_payload`` hooks parameterize (``submit_chunk`` exists because
    pool workers must be module-level picklable functions;
    ``run_chunk_serial`` yields completed ``(slot, payload)`` pairs for one
    chunk inline, so a batched executor can fuse kernel launches across the
    chunk while a per-instance one checkpoints as each instance lands).
    ``rows_for_resume`` loads the plan's ledgered rows; ``payload_of_row``
    validates one against the request shape (raising ``StoreError``) and
    converts it.

    ``should_stop`` is the cancellation hook: polled before execution
    starts and between completed chunks.  When it reports ``True`` the
    ledger is closed (completed chunks stay checkpointed, no ``shard_done``
    summary is written) and :class:`~repro.errors.PlanCancelled` is raised,
    so a later resume continues exactly where the cancel landed.

    Returns ``(payloads, replayed, jobs_used, fallback_reason, ledger)``;
    the caller reassembles its result type in plan order and must
    ``finish``/``close`` the ledger (if any) once its stats are summed —
    any change to this orchestration (fallback policy, refusal rules,
    checkpoint timing) applies to both executors by construction.
    """
    payloads: dict[int, Any] = {}
    ledger = None
    replayed = 0
    if store is not None:
        from repro.store.ledger import StoreError  # lazy: avoids cycle

        key = store.write_plan(request)
        if not resume and store.shard_rows(request, shard):
            raise StoreError(
                f"{store.ledger_path(key, shard)} already records completed "
                "instances for this plan; pass resume=True (or --resume) to "
                "continue it, or use a fresh run directory"
            )
        if resume:
            for slot, row in rows_for_resume(store, key).items():
                if not shard.owns(slot) or not 0 <= slot < len(all_tasks):
                    continue
                payloads[slot] = payload_of_row(slot, row)
            replayed = len(payloads)

    todo = [t for t in all_tasks if shard.owns(t[0]) and t[0] not in payloads]

    def stop_check() -> None:
        if should_stop is None or not should_stop():
            return
        from repro.errors import PlanCancelled

        if ledger is not None:
            ledger.close()  # checkpointed chunks survive; no shard_done
        raise PlanCancelled(
            f"plan execution cancelled (shard {shard.label}); completed "
            "chunks are ledgered — clear the cancel marker and resume to "
            "continue"
        )

    def checkpoint(slot: int, payload: Any) -> None:
        nonlocal ledger
        if store is None:
            return
        if ledger is None:
            ledger = store.open_shard(request, shard)
        _, si, ii, _ = all_tasks[slot]
        ledger.append(row_of_payload(slot, si, ii, payload))

    def complete(slot: int, payload: Any) -> None:
        payloads[slot] = payload
        checkpoint(slot, payload)
        if on_instance is not None:
            _, si, ii, _ = all_tasks[slot]
            on_instance(_report(si, ii, payload[1], payload[2]))

    stop_check()
    fallback_reason = None
    jobs_used = 1
    pool = None
    if jobs > 1 and len(todo) > 1:
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(todo)))
        except (OSError, ValueError, PermissionError) as exc:
            fallback_reason = f"process pool unavailable ({exc}); ran serially"

    if pool is not None:
        chunks = _chunk_tasks(todo, min(jobs, len(todo)))
        try:
            futures = [submit_chunk(pool, chunk) for chunk in chunks]
            jobs_used = min(jobs, len(todo))
            for future in as_completed(futures):
                for slot, payload in future.result():
                    complete(slot, payload)
                stop_check()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    else:
        local_cache = cache if cache is not None else ArtifactCache()
        for serial_chunk in _chunk_tasks(todo, 1):
            for slot, payload in run_chunk_serial(serial_chunk, local_cache):
                complete(slot, payload)
            stop_check()
    return payloads, replayed, jobs_used, fallback_reason, ledger


def execute_plan(
    request: PlanRequest,
    *,
    jobs: int = 1,
    cache: ArtifactCache | None = None,
    on_instance: Callable[[InstanceReport], None] | None = None,
    store: Any = None,
    shard: "Shard | tuple[int, int] | None" = None,
    resume: bool = False,
    backend: str | None = None,
    batch_instances: bool = True,
) -> BatchResult:
    """Run every (instance × cell) of ``request`` and collect the metrics.

    Parameters
    ----------
    request:
        The batch description.
    jobs:
        Worker processes; ``<= 1`` runs inline.  Parallel execution falls
        back to serial (recording ``fallback_reason``) if a process pool
        cannot be created in the current environment.
    cache:
        Serial path only: an external :class:`ArtifactCache` to use/observe.
        Workers always build their own per-process caches; their stats are
        merged into the result.
    on_instance:
        Progress hook invoked with each :class:`InstanceReport` as it
        completes (arrival order; the result itself stays in plan order).
        Not invoked for instances replayed from a store ledger.
    store:
        A :class:`~repro.store.RunStore`.  Every completed instance chunk is
        appended to the plan's shard ledger as it finishes, so a killed run
        can be resumed without losing completed work.
    shard:
        A :class:`~repro.engine.spec.Shard` (or ``(i, m)`` tuple): execute
        only the instances with plan slot ``slot % m == i``.  The returned
        records cover exactly those instances; the union over all shards is
        bit-identical to an unsharded run.
    resume:
        With a ``store``: replay already-ledgered instance chunks (from any
        shard's ledger in the run directory) instead of re-executing them.
        Without ``resume``, a ledger that already has rows for this plan's
        shard is an error — appending twice would corrupt the run.  With a
        ``store`` the plan's cancellation tombstone (see
        :meth:`~repro.store.RunStore.cancel`) is polled between chunks;
        a set tombstone stops execution with
        :class:`~repro.errors.PlanCancelled`, keeping completed chunks
        ledgered for a later resume.
    backend:
        Kernel backend name for all measurement work.  ``None`` defers to
        ``request.backend``, then the ``REPRO_BACKEND`` environment
        variable, then the numpy default.  Unknown or unavailable backends
        raise :class:`~repro.kernels.backend.BackendUnavailable` up front.
    batch_instances:
        Evaluate each chunk of instances through the packed multi-instance
        kernels (one launch per grid cell per chunk) instead of a Python
        loop of per-instance launches.  Metrics are bit-identical either
        way; ``False`` is the per-instance escape hatch.
    """
    t_start = time.perf_counter()
    backend_name = resolve_backend(backend or request.backend).name
    shard = Shard.of(shard)
    all_tasks: list[_Task] = [
        (slot, si, ii, coords)
        for slot, (si, ii, coords) in enumerate(request.instances())
    ]
    grid = request.grid

    def payload_of_row(slot: int, row: Any) -> _Payload:
        from repro.store.ledger import StoreError  # lazy: avoids cycle

        if len(row.metrics) != len(grid):
            raise StoreError(
                f"ledger row for slot {slot} has {len(row.metrics)} "
                f"cell metrics, plan has {len(grid)} grid cells"
            )
        return (
            row.cell_metrics(),
            dict(row.facts),
            row.elapsed,
            row.cache,
            getattr(row, "backend", "numpy"),
        )

    def row_of_payload(slot: int, si: int, ii: int, payload: _Payload) -> Any:
        from repro.store.ledger import LedgerRow  # lazy: avoids cycle

        metrics, facts, dt, delta, row_backend = payload
        return LedgerRow(
            slot=slot,
            scenario_index=si,
            instance_index=ii,
            elapsed=dt,
            facts=facts,
            metrics=[m.as_dict() for m in metrics],
            cache=delta,
            backend=row_backend,
            mode=request.mode,
        )

    payloads, replayed, jobs_used, fallback_reason, ledger = _execute_durable(
        request, all_tasks, shard,
        jobs=jobs, cache=cache, on_instance=on_instance,
        store=store, resume=resume,
        run_chunk_serial=lambda chunk, c: _run_chunk(
            chunk, grid, request.compute_critical,
            backend_name, batch_instances, cache=c, mode=request.mode,
        ),
        submit_chunk=lambda pool, chunk: pool.submit(
            _run_chunk, chunk, grid, request.compute_critical,
            backend_name, batch_instances, mode=request.mode,
        ),
        rows_for_resume=lambda s, key: s.load_rows(key),
        payload_of_row=payload_of_row,
        row_of_payload=row_of_payload,
        should_stop=_tombstone_check(store, request),
    )

    # Reassemble in plan order (restricted to the shard).  Cache stats are
    # the sum of per-instance deltas — replayed instances contribute their
    # ledgered deltas, so a resumed run reports the same totals as an
    # uninterrupted one.
    records: list[RunRecord] = []
    reports: list[InstanceReport] = []
    stats = CacheStats()
    for slot, si, ii, _coords in all_tasks:
        if not shard.owns(slot):
            continue
        payload = payloads.get(slot)
        assert payload is not None, f"missing result for task slot {slot}"
        metrics, facts, dt, delta, _row_backend = payload
        scenario = request.scenarios[si]
        reports.append(_report(si, ii, facts, dt))
        stats.merge(CacheStats.from_dict(delta))
        for cell, m in zip(grid, metrics):
            records.append(RunRecord(scenario, ii, cell, m, scenario_index=si))
    elapsed = time.perf_counter() - t_start
    if ledger is not None:
        ledger.finish(stats, elapsed)
        ledger.close()
    return BatchResult(
        request=request,
        records=records,
        instance_reports=reports,
        cache_stats=stats,
        jobs_used=jobs_used,
        elapsed=elapsed,
        fallback_reason=fallback_reason,
        replayed_instances=replayed,
        shard=shard,
        backend=backend_name,
    )


def _report(si: int, ii: int, facts: dict[str, float], dt: float) -> InstanceReport:
    return InstanceReport(
        scenario_index=si,
        instance_index=ii,
        n=int(facts["n"]),
        lmax=facts["lmax"],
        mst_weight=facts["mst_weight"],
        diameter=facts["diameter"],
        elapsed=dt,
    )
