"""Batch planning engine: scenario specs, artifact caching, parallel execution.

The engine is the one way to run *batches* of planner configurations:

* :mod:`repro.engine.spec` — declarative descriptions of a workload ensemble
  (:class:`Scenario`) and of the ``(k, φ)`` grid to evaluate over it
  (:class:`PlanRequest`);
* :mod:`repro.engine.cache` — a content-addressed :class:`ArtifactCache`
  sharing point sets, pairwise-distance matrices and spanning trees across
  every grid cell of an instance;
* :mod:`repro.engine.executor` — :func:`execute_plan`, a chunked
  process-pool executor with a serial fallback, deterministic result
  ordering and incremental aggregation.

Experiment drivers (:mod:`repro.experiments`), the ``repro sweep`` CLI and
the benchmarks all route through :func:`execute_plan`.
"""

from repro.engine.cache import ArtifactCache, CacheStats, content_hash
from repro.engine.executor import (
    BatchResult,
    InstanceReport,
    RunRecord,
    execute_plan,
    run_instance_grid,
)
from repro.engine._spec import (
    FrontierRequest,
    GridCell,
    PlanRequest,
    RequestBase,
    Scenario,
    Shard,
    request_from_wire,
)

__all__ = [
    "ArtifactCache",
    "BatchResult",
    "CacheStats",
    "FrontierRequest",
    "GridCell",
    "InstanceReport",
    "PlanRequest",
    "RequestBase",
    "RunRecord",
    "Scenario",
    "Shard",
    "content_hash",
    "execute_plan",
    "request_from_wire",
    "run_instance_grid",
]
