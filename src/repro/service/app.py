"""The planning service's ASGI application (pure stdlib, no framework).

:func:`create_app` returns a standard ASGI 3 coroutine — runnable under
any ASGI server, the bundled stdlib bridge (:mod:`repro.service.http`),
or fully in-process for tests (:mod:`repro.service.testing`).  Routes:

====== =============================== ==========================================
POST   ``/plans``                      submit a wire-format request; the plan
                                       fingerprint is the job id (idempotent)
GET    ``/plans``                      list every known plan with its state
GET    ``/plans/{id}``                 job status (id may be a unique prefix)
GET    ``/plans/{id}/progress``        per-shard / per-instance completion
GET    ``/plans/{id}/result``          merged tables once all shards landed
                                       (``?aggregate=scenario|cell``); 409 with
                                       progress while incomplete
POST   ``/plans/{id}/cancel``          flip the cancellation tombstone
GET    ``/metrics``                    process-wide kernel instrument counters
GET    ``/healthz``                    liveness
====== =============================== ==========================================

Handlers run the blocking store work in a thread
(``asyncio.to_thread``) so the event loop stays responsive while plans
execute.  Library errors map to JSON problem bodies: 400 for invalid
payloads, 404 for unknown ids, 409 for not-yet-complete results.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.errors import InvalidParameterError, ReproError
from repro.kernels.instrument import kernel_counters
from repro.service.jobs import IncompleteJob, JobManager
from repro.service._wire import dump_json, load_json, parse_submit
from repro.store.ledger import RunStore, StoreError

__all__ = ["create_app"]

#: ASGI 3 application signature.
ASGIApp = Callable[[dict, Callable, Callable], Awaitable[None]]


def create_app(
    store: "RunStore | str",
    *,
    backend: "str | None" = None,
    jobs: int = 1,
    execute: bool = True,
    manager: "JobManager | None" = None,
) -> ASGIApp:
    """Build the service app over ``store`` (a :class:`RunStore` or path).

    ``execute=False`` queues submissions without running them (external
    ``repro worker`` processes drain the directory instead).  Pass an
    existing ``manager`` to share one across apps (tests).  The manager is
    exposed as ``app.manager`` for in-process callers.
    """
    if not isinstance(store, RunStore):
        store = RunStore(store)
    if manager is None:
        manager = JobManager(store, backend=backend, jobs=jobs, execute=execute)

    async def app(scope: dict, receive: Callable, send: Callable) -> None:
        if scope["type"] == "lifespan":
            await _lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        method = scope["method"].upper()
        path = scope["path"].rstrip("/") or "/"
        query = _parse_query(scope.get("query_string", b""))
        body = await _read_body(receive)
        status, payload = await asyncio.to_thread(
            _dispatch, manager, method, path, query, body
        )
        await _send_json(send, status, payload)

    app.manager = manager  # type: ignore[attr-defined]
    return app


# -- routing ----------------------------------------------------------------------


def _dispatch(
    manager: JobManager,
    method: str,
    path: str,
    query: dict[str, str],
    body: bytes,
) -> tuple[int, Any]:
    try:
        return _route(manager, method, path, query, body)
    except IncompleteJob as exc:
        return 409, {"error": str(exc), "progress": exc.progress.as_dict()}
    except InvalidParameterError as exc:
        return 400, {"error": str(exc)}
    except StoreError as exc:
        # Unknown/ambiguous ids surface here from RunStore.load_request.
        return 404, {"error": str(exc)}
    except ReproError as exc:
        return 500, {"error": str(exc)}


def _route(
    manager: JobManager,
    method: str,
    path: str,
    query: dict[str, str],
    body: bytes,
) -> tuple[int, Any]:
    if path == "/healthz" and method == "GET":
        return 200, {"ok": True}
    if path == "/metrics" and method == "GET":
        return 200, {"kernels": kernel_counters().as_dict()}
    if path == "/plans":
        if method == "POST":
            request, shards = parse_submit(load_json(body))
            descriptor = manager.submit(request, shards=shards)
            return 200, descriptor
        if method == "GET":
            return 200, {"plans": manager.jobs_list()}
        return 405, {"error": f"{method} not allowed on {path}"}

    parts = path.strip("/").split("/")
    if parts[0] == "plans" and len(parts) in (2, 3):
        job_id = parts[1]
        action = parts[2] if len(parts) == 3 else None
        if action is None and method == "GET":
            return 200, manager.status(job_id)
        if action == "progress" and method == "GET":
            return 200, manager.progress(job_id)
        if action == "result" and method == "GET":
            aggregate = query.get("aggregate", "scenario")
            if aggregate not in ("scenario", "cell"):
                raise InvalidParameterError(
                    f"aggregate must be 'scenario' or 'cell', got {aggregate!r}"
                )
            return 200, manager.result(job_id, aggregate=aggregate)
        if action == "cancel" and method == "POST":
            reason = None
            if body:
                data = load_json(body)
                if isinstance(data, dict):
                    reason = data.get("reason")
            return 200, manager.cancel(job_id, reason)
        if action in (None, "progress", "result", "cancel"):
            return 405, {"error": f"{method} not allowed on {path}"}
    return 404, {"error": f"no route for {method} {path}"}


# -- ASGI plumbing ----------------------------------------------------------------


async def _lifespan(receive: Callable, send: Callable) -> None:
    while True:
        message = await receive()
        if message["type"] == "lifespan.startup":
            await send({"type": "lifespan.startup.complete"})
        elif message["type"] == "lifespan.shutdown":
            await send({"type": "lifespan.shutdown.complete"})
            return


async def _read_body(receive: Callable) -> bytes:
    chunks: list[bytes] = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover - disconnect
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


async def _send_json(send: Callable, status: int, payload: Any) -> None:
    body = dump_json(payload)
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        }
    )
    await send({"type": "http.response.body", "body": body})


def _parse_query(raw: bytes) -> dict[str, str]:
    from urllib.parse import parse_qsl

    return dict(parse_qsl(raw.decode("latin1"), keep_blank_values=True))
