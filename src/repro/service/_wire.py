"""Wire format for the planning service: submit payloads and responses.

The body of ``POST /plans`` is the request's kind-tagged wire form (see
:meth:`repro.engine.spec.RequestBase.to_wire`) plus optional execution
hints:

.. code-block:: json

    {
      "kind": "sweep",
      "request": { "scenarios": [...], "grid": [...], ... },
      "shards": 2
    }

``kind`` defaults to ``"sweep"`` (matching plan files written before
frontiers existed); ``shards`` (default 1) is the round-robin split
workers claim — it is an execution hint, *not* part of the plan's
identity, so the same spec submitted with different shard counts
deduplicates onto one job id.  The deserialized request re-fingerprints
to exactly the id an in-process submission would get: the wire format
adds nothing that could perturb identity.

Everything here is plain ``dict`` ↔ JSON; HTTP framing lives in
:mod:`repro.service.app` / :mod:`repro.service.http`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine._spec import RequestBase, request_from_wire
from repro.errors import InvalidParameterError

__all__ = ["parse_submit", "submit_payload", "dump_json", "load_json"]


def submit_payload(request: RequestBase, *, shards: int = 1) -> dict[str, Any]:
    """The ``POST /plans`` body for ``request`` (client-side helper)."""
    payload = request.to_wire()
    if shards != 1:
        payload["shards"] = int(shards)
    return payload


def parse_submit(data: Any) -> tuple[RequestBase, int]:
    """Validate a submit payload; returns ``(request, shards)``.

    Raises :class:`~repro.errors.InvalidParameterError` on malformed
    payloads (non-object body, unknown kind, bad scenario/grid fields,
    invalid shard count) — the app layer maps that to a 400 response.
    """
    if not isinstance(data, dict):
        raise InvalidParameterError(
            f"submit payload must be a JSON object, got {type(data).__name__}"
        )
    if not isinstance(data.get("request"), dict):
        raise InvalidParameterError(
            'submit payload must carry a "request" object '
            '({"kind": ..., "request": {...}})'
        )
    request = request_from_wire(data)
    shards = data.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise InvalidParameterError(
            f"shards must be a positive integer, got {shards!r}"
        )
    return request, shards


def dump_json(payload: Any) -> bytes:
    """Serialize a response body (floats round-trip exactly via ``repr``)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf8")


def load_json(body: bytes) -> Any:
    """Parse a request body, mapping JSON errors to the library error type."""
    if not body:
        raise InvalidParameterError("request body is empty; expected JSON")
    try:
        return json.loads(body.decode("utf8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise InvalidParameterError(f"request body is not valid JSON: {exc}") from exc
