"""Minimal asyncio HTTP/1.1 server bridging sockets to the ASGI app.

The environment promises no ASGI server, so the service ships its own
bridge: :func:`serve` runs any ASGI 3 app (in practice
:func:`repro.service.create_app`) over ``asyncio.start_server``.  The
bridge is deliberately small — enough HTTP for the service's JSON API
and its CI smoke clients (``urllib``/``curl``):

- request line + headers parsed, ``Content-Length`` bodies read in full
  (no chunked transfer encoding),
- one request per connection (``Connection: close`` is always sent),
- malformed requests get a plain 400 and the connection is dropped.

Anything beyond that (TLS, keep-alive, websockets) belongs in a real
ASGI server, not here.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable
from urllib.parse import unquote, urlsplit

__all__ = ["serve", "handle_connection"]

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 64 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


async def handle_connection(
    app: Callable[[dict, Callable, Callable], Awaitable[None]],
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one HTTP request from ``reader`` through ``app``; then close."""
    try:
        request = await _read_request(reader)
    except _BadRequest as exc:
        writer.write(_plain_response(400, str(exc)))
        await writer.drain()
        writer.close()
        return
    except (asyncio.IncompleteReadError, ConnectionError):
        writer.close()
        return

    method, target, headers, body = request
    parts = urlsplit(target)
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method,
        "scheme": "http",
        "path": unquote(parts.path),
        "raw_path": parts.path.encode("latin1"),
        "query_string": parts.query.encode("latin1"),
        "headers": [
            (k.lower().encode("latin1"), v.encode("latin1"))
            for k, v in headers
        ],
        "client": None,
        "server": None,
    }

    received = False

    async def receive() -> dict[str, Any]:
        nonlocal received
        if received:
            return {"type": "http.disconnect"}
        received = True
        return {"type": "http.request", "body": body, "more_body": False}

    started: dict[str, Any] = {}
    chunks: list[bytes] = []

    async def send(message: dict[str, Any]) -> None:
        if message["type"] == "http.response.start":
            started["status"] = message["status"]
            started["headers"] = message.get("headers", [])
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body", b""))

    try:
        await app(scope, receive, send)
        status = started.get("status", 500)
        payload = b"".join(chunks)
        head = [f"HTTP/1.1 {status} {_STATUS_PHRASES.get(status, 'Unknown')}"]
        for name, value in started.get("headers", []):
            if name.lower() == b"content-length":
                continue  # recomputed below from the actual payload
            head.append(f"{name.decode('latin1')}: {value.decode('latin1')}")
        head.append(f"Content-Length: {len(payload)}")
        head.append("Connection: close")
        writer.write("\r\n".join(head).encode("latin1") + b"\r\n\r\n" + payload)
    except Exception as exc:  # pragma: no cover - app-level bugs
        writer.write(_plain_response(500, f"internal error: {exc}"))
    await writer.drain()
    writer.close()


async def serve(
    app: Callable[[dict, Callable, Callable], Awaitable[None]],
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    ready: "asyncio.Event | None" = None,
) -> None:
    """Run ``app`` forever on ``host:port`` (blocks in the event loop).

    ``ready`` is set once the listening socket is bound (tests/smoke
    scripts use it to know when to connect).
    """
    server = await asyncio.start_server(
        lambda r, w: handle_connection(app, r, w), host, port
    )
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


class _BadRequest(Exception):
    pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, list[tuple[str, str]], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise _BadRequest("request head too large")
    lines = head.decode("latin1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise _BadRequest(f"malformed request line: {lines[0]!r}") from exc
    if not version.startswith("HTTP/1."):
        raise _BadRequest(f"unsupported protocol {version!r}")
    headers: list[tuple[str, str]] = []
    length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers.append((name.strip(), value.strip()))
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError as exc:
                raise _BadRequest(f"bad Content-Length {value!r}") from exc
    if not 0 <= length <= _MAX_BODY_BYTES:
        raise _BadRequest(f"unreasonable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _plain_response(status: int, message: str) -> bytes:
    payload = (message + "\n").encode("utf8")
    return (
        f"HTTP/1.1 {status} {_STATUS_PHRASES.get(status, 'Unknown')}\r\n"
        f"Content-Type: text/plain\r\nContent-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin1") + payload
