"""In-process ASGI test client: drive the service with no sockets.

:class:`ServiceClient` invokes the app coroutine directly (the same code
path the HTTP bridge takes), so tests and :mod:`examples.service_demo`
exercise routing, wire parsing and job management without ports, network
permissions or timing dependence.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

__all__ = ["Response", "ServiceClient"]


@dataclass(frozen=True)
class Response:
    """Status + parsed JSON body of one in-process request."""

    status: int
    json: Any

    def raise_for_status(self) -> "Response":
        if self.status >= 400:
            raise AssertionError(f"HTTP {self.status}: {self.json}")
        return self


class ServiceClient:
    """Call an ASGI app as if over HTTP, synchronously."""

    def __init__(
        self, app: Callable[[dict, Callable, Callable], Awaitable[None]]
    ) -> None:
        self.app = app

    def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Any = None,
        query: str = "",
    ) -> Response:
        return asyncio.run(self._request(method, path, json_body, query))

    def get(self, path: str, *, query: str = "") -> Response:
        return self.request("GET", path, query=query)

    def post(self, path: str, *, json_body: Any = None) -> Response:
        return self.request("POST", path, json_body=json_body)

    async def _request(
        self, method: str, path: str, json_body: Any, query: str
    ) -> Response:
        if "?" in path:  # accept URL-style paths, as a real client would send
            path, _, inline_query = path.partition("?")
            query = inline_query if not query else f"{inline_query}&{query}"
        body = b"" if json_body is None else json.dumps(json_body).encode("utf8")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("latin1"),
            "query_string": query.encode("latin1"),
            "headers": [(b"content-type", b"application/json")],
            "client": None,
            "server": None,
        }
        sent = False

        async def receive() -> dict[str, Any]:
            nonlocal sent
            if sent:
                return {"type": "http.disconnect"}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        status: list[int] = []
        chunks: list[bytes] = []

        async def send(message: dict[str, Any]) -> None:
            if message["type"] == "http.response.start":
                status.append(message["status"])
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self.app(scope, receive, send)
        payload = b"".join(chunks)
        return Response(
            status=status[0] if status else 500,
            json=json.loads(payload.decode("utf8")) if payload else None,
        )
