"""Planning service: an async job API over the persistent run store.

The store's content-addressed design already *is* a job system — the
SHA-256 plan fingerprint is an idempotency key, shard ledgers are
exactly-once work records, and merge/assembly is bit-identical to serial
execution.  This package puts a network seam on it:

:mod:`repro.service.app`
    The ASGI application (pure stdlib): ``POST /plans`` submits a
    wire-format request and returns the fingerprint as job id; ``GET``
    routes report status/progress/results; ``POST .../cancel`` flips the
    tombstone.  Resubmitting an identical spec attaches to the existing
    ledger — a completed plan's second submission performs zero kernel
    work.
:mod:`repro.service.jobs`
    :class:`JobManager`: submissions → queued plans → background
    execution threads, all state in the run directory.
:mod:`repro.service.worker`
    Claim-and-drain loops for external worker processes
    (``repro worker``); atomic claim files make N workers on one
    directory exactly-once, bit-identical to serial.
:mod:`repro.service.wire`
    The JSON wire format (kind-tagged request payloads).
:mod:`repro.service.http`
    A minimal asyncio HTTP/1.1 bridge (``repro serve``) — the
    environment bakes in no ASGI server, so the service carries its own.
:mod:`repro.service.testing`
    In-process client for tests and examples.
"""

from repro.service.app import create_app
from repro.service.http import serve
from repro.service.jobs import IncompleteJob, JobManager
from repro.service.testing import Response, ServiceClient
from repro.service._wire import parse_submit, submit_payload
from repro.service.worker import drain_plan, drain_store, run_workers

__all__ = [
    "IncompleteJob",
    "JobManager",
    "Response",
    "ServiceClient",
    "create_app",
    "drain_plan",
    "drain_store",
    "parse_submit",
    "run_workers",
    "serve",
    "submit_payload",
]
