"""Workers: processes that claim queued plans' shards and execute them.

A worker owns no state — the run directory is the scheduler.  Its loop is:

1. list queued plans (:func:`repro.store.queued_plans`),
2. for each, try to claim an unfinished shard with an atomic
   ``O_CREAT | O_EXCL`` claim file (:func:`repro.store.claim_shard` —
   exactly one contender wins, so N workers sharing one directory execute
   each ledger row exactly once),
3. execute the claimed shard through the unchanged
   :func:`repro.api.submit` path with ``resume=True`` — worker output is
   therefore bit-identical to a serial in-process run of the same spec,
4. release the claim; when every instance of the plan is ledgered, drop
   its queue marker.

Claims left by a dead worker (its pid is gone) are broken via
:func:`repro.store.break_stale_claim`, which first writes the persistent
dead-shard marker that relaxes torn-middle refusal for that shard's
ledger.  Cancellation tombstones are honoured twice: plans carrying one
are never claimed, and :func:`repro.api.submit` itself stops between
chunks with :class:`~repro.errors.PlanCancelled`.

``repro worker --run-dir D --workers N`` (see :mod:`repro.__main__`)
runs :func:`run_workers`: N OS processes calling :func:`drain_store`.
The same drain loop, called on one plan from a thread, is how the
service app executes submissions in-process (:mod:`repro.service.jobs`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable

from repro.api import submit
from repro.engine._spec import Shard
from repro.errors import PlanCancelled, ReproError
from repro.store import coordination as coord
from repro.store.ledger import RunStore, StoreError

__all__ = ["drain_plan", "drain_store", "run_workers"]


def _default_owner() -> str:
    return f"worker-{os.getpid()}"


def drain_plan(
    store: RunStore,
    plan_key: str,
    *,
    owner: "str | None" = None,
    backend: "str | None" = None,
    jobs: int = 1,
    shard_filter: "Callable[[Shard], bool] | None" = None,
    on_shard: "Callable[[Shard, Any], None] | None" = None,
) -> bool:
    """Claim and execute every unclaimed, unfinished shard of one plan.

    Skips shards another worker holds (they are that worker's problem) and
    shards whose ledger already covers all owned instances.  Returns
    ``True`` when the whole plan is complete (and drops its queue marker) —
    regardless of which workers did the work.  A cancellation tombstone
    stops claiming immediately and returns ``False``.

    ``shard_filter`` restricts which shards this worker may claim (the CLI
    ``--shard i/m`` pin); ``on_shard`` observes each executed shard's
    result (the service uses it for logging).
    """
    owner = owner if owner is not None else _default_owner()
    key, request = store.load_request(plan_key)
    entry = coord.queue_entry(store, key)
    shards = entry.shards if entry is not None else 1

    for index in range(shards):
        shard = Shard(index, shards)
        if coord.is_cancelled(store, key):
            return False
        if shard_filter is not None and not shard_filter(shard):
            continue
        coord.break_stale_claim(store, key, shard)
        if _shard_complete(store, key, shard):
            continue
        if not coord.claim_shard(store, key, shard, owner):
            continue  # live contender holds it
        try:
            result = submit(
                request,
                store=store,
                shard=shard,
                resume=True,
                backend=backend,
                jobs=jobs,
            )
        except PlanCancelled:
            return False
        finally:
            coord.release_shard(store, key, shard)
        if on_shard is not None:
            on_shard(shard, result)

    progress = coord.plan_progress(store, key)
    if progress.complete:
        coord.dequeue(store, key)
        return True
    return False


def _shard_complete(store: RunStore, plan_key: str, shard: Shard) -> bool:
    progress = coord.plan_progress(store, plan_key)
    for sp in progress.shards:
        if sp.shard == shard:
            return sp.complete
    return False


def drain_store(
    store: RunStore,
    *,
    owner: "str | None" = None,
    backend: "str | None" = None,
    jobs: int = 1,
    once: bool = False,
    poll: float = 0.5,
    shard_filter: "Callable[[Shard], bool] | None" = None,
    should_stop: "Callable[[], bool] | None" = None,
    on_event: "Callable[[str], None] | None" = None,
) -> int:
    """Drain queued plans from a run directory until empty (or forever).

    One pass claims work from every queued, uncancelled plan via
    :func:`drain_plan`.  With ``once=True`` the loop exits as soon as a
    pass finds the queue empty; otherwise it sleeps ``poll`` seconds
    between passes until ``should_stop`` reports ``True``.  Returns the
    number of plans this call saw through to completion.
    """
    owner = owner if owner is not None else _default_owner()
    completed = 0
    while True:
        pending = [
            e for e in coord.queued_plans(store)
            if not coord.is_cancelled(store, e.plan_key)
        ]
        for entry in pending:
            try:
                done = drain_plan(
                    store,
                    entry.plan_key,
                    owner=owner,
                    backend=backend,
                    jobs=jobs,
                    shard_filter=shard_filter,
                )
            except (StoreError, ReproError) as exc:
                if on_event is not None:
                    on_event(f"plan {entry.plan_key[:12]} failed: {exc}")
                continue
            if done:
                completed += 1
                if on_event is not None:
                    on_event(f"plan {entry.plan_key[:12]} complete")
        remaining = [
            e for e in coord.queued_plans(store)
            if not coord.is_cancelled(store, e.plan_key)
        ]
        # A shard-pinned worker is done after one pass: whatever is left in
        # the queue belongs to other shard owners by construction.
        if once and (not remaining or shard_filter is not None):
            return completed
        if should_stop is not None and should_stop():
            return completed
        # Another worker holds the remaining claims: wait for it to finish
        # (or die and be broken as stale) instead of spinning on the queue.
        time.sleep(min(poll, 0.05) if once else poll)


def _worker_main(
    run_dir: str,
    owner: str,
    backend: "str | None",
    jobs: int,
    once: bool,
    poll: float,
    shard: "tuple[int, int] | None" = None,
) -> None:
    """Top-level process entry point (must be importable for spawn)."""
    store = RunStore(run_dir)
    shard_filter = None
    if shard is not None:
        pin = Shard(*shard)
        shard_filter = lambda s: s == pin  # noqa: E731 - picklable closure
    try:
        drain_store(
            store, owner=owner, backend=backend, jobs=jobs, once=once,
            poll=poll, shard_filter=shard_filter,
        )
    finally:
        store.close()


def run_workers(
    run_dir: str,
    workers: int,
    *,
    backend: "str | None" = None,
    jobs: int = 1,
    once: bool = True,
    poll: float = 0.5,
    shard: "tuple[int, int] | None" = None,
) -> None:
    """Run ``workers`` OS processes draining one shared run directory.

    Each process claims shards independently through the atomic claim
    files, so the partitioning of work is dynamic but every ledger row is
    written exactly once.  With ``once=True`` (the CLI default) all
    processes exit when the queue is empty; blocks until they are joined.
    """
    if workers < 1:
        raise StoreError(f"worker count must be >= 1, got {workers}")
    if workers == 1:
        _worker_main(run_dir, _default_owner(), backend, jobs, once, poll, shard)
        return
    # fork keeps the child independent of __main__ importability (and is
    # cheap); platforms without it (Windows, some macOS setups) get spawn.
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(method)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(run_dir, f"worker-{i}", backend, jobs, once, poll, shard),
            daemon=False,
        )
        for i in range(workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
